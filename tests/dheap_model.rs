//! Differential model test for the indexed d-ary heap kernel.
//!
//! [`kspin_graph::DaryHeap`] is checked against the kernel it replaced: a
//! `BinaryHeap<(Reverse<Weight>, u32)>` with lazy deletion (stale entries
//! left behind on every key improvement and skipped at pop time). Over
//! random `insert_or_decrease`/`pop`/`clear` sequences, the two must
//! produce identical non-stale pop sequences — that equivalence is what
//! guarantees every ported search (Dijkstra, BiDijkstra, A*, the NVD
//! sweeps, the inverted heaps) settles vertices in exactly the order it
//! did before the swap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use kspin_graph::{DaryHeap, Weight};

/// The lazy-deletion reference model. `best[item]` is the current key of
/// an item still logically in the queue (`u32::MAX` = absent/popped).
struct LazyModel {
    heap: BinaryHeap<(Reverse<Weight>, u32)>,
    best: Vec<Weight>,
    popped: Vec<bool>,
    pushes: u64,
    improves: u64,
    stale_skipped: u64,
}

impl LazyModel {
    fn new(n: usize) -> Self {
        LazyModel {
            heap: BinaryHeap::new(),
            best: vec![Weight::MAX; n],
            popped: vec![false; n],
            pushes: 0,
            improves: 0,
            stale_skipped: 0,
        }
    }

    /// Mirrors `DaryHeap::insert_or_decrease` under lazy deletion: absent
    /// items push, improvements push a duplicate, everything else no-ops.
    fn insert_or_decrease(&mut self, key: Weight, item: u32) {
        if self.popped[item as usize] {
            return;
        }
        if self.best[item as usize] == Weight::MAX {
            self.pushes += 1;
        } else if key < self.best[item as usize] {
            self.improves += 1;
        } else {
            return;
        }
        self.best[item as usize] = key;
        self.heap.push((Reverse(key), item));
    }

    /// Pops the next non-stale entry, counting the stale ones discarded on
    /// the way — the traffic the indexed kernel eliminates structurally.
    fn pop(&mut self) -> Option<(Weight, u32)> {
        while let Some((Reverse(k), item)) = self.heap.pop() {
            if self.popped[item as usize] || k != self.best[item as usize] {
                self.stale_skipped += 1;
                continue;
            }
            self.popped[item as usize] = true;
            return Some((k, item));
        }
        None
    }

    /// Mirrors `DaryHeap::clear`; also zeroes the traffic counters so
    /// post-clear comparisons line up with an epoch-base snapshot.
    fn clear(&mut self) {
        self.heap.clear();
        self.best.iter_mut().for_each(|b| *b = Weight::MAX);
        self.popped.iter_mut().for_each(|p| *p = false);
        self.pushes = 0;
        self.improves = 0;
        self.stale_skipped = 0;
    }

    fn live_len(&self) -> usize {
        self.best
            .iter()
            .zip(&self.popped)
            .filter(|&(&b, &p)| b != Weight::MAX && !p)
            .count()
    }
}

/// One scripted operation. Items/keys are drawn small so collisions (ties,
/// repeat relaxations of one item) are frequent rather than exceptional.
#[derive(Debug, Clone)]
enum Op {
    Insert(Weight, u32),
    Pop,
    Clear,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u32..3, 0u32..20, 0u32..16).prop_map(|(kind, key, item)| match kind {
            0 | 1 => Op::Insert(key, item),
            _ => Op::Pop,
        }),
        1..120,
    )
    .prop_map(|mut ops| {
        // Splice a Clear mid-sequence occasionally (keyed off the script
        // itself so the generator stays deterministic).
        if ops.len() > 40 {
            ops[20] = Op::Clear;
        }
        ops
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn dary_heap_matches_lazy_deletion_model(ops in arb_ops()) {
        const N: usize = 16;
        let mut dary = DaryHeap::new(N);
        let mut model = LazyModel::new(N);
        let mut epoch_base = dary.counters();
        for op in &ops {
            match *op {
                Op::Insert(key, item) => {
                    // The ported searches never relax a settled vertex;
                    // mirror that precondition here.
                    if model.popped[item as usize] {
                        continue;
                    }
                    dary.insert_or_decrease(key, item);
                    model.insert_or_decrease(key, item);
                }
                Op::Pop => {
                    prop_assert_eq!(dary.pop(), model.pop(), "pop order diverged");
                }
                Op::Clear => {
                    dary.clear();
                    model.clear();
                    epoch_base = dary.counters();
                }
            }
            let audit = dary.validate();
            prop_assert!(audit.is_ok(), "structural audit failed: {:?}", audit);
            prop_assert_eq!(dary.len(), model.live_len());
            prop_assert_eq!(dary.peek().is_none(), model.live_len() == 0);
            // The position map must agree with the model item-by-item, not
            // just in aggregate: `in_heap` is live-buffered, `was_inserted`
            // is live-or-popped (the lazy model's `inserted` side table).
            for item in 0..N as u32 {
                let live = model.best[item as usize] != Weight::MAX
                    && !model.popped[item as usize];
                prop_assert_eq!(dary.in_heap(item), live, "in_heap({}) diverged", item);
                let seen = model.best[item as usize] != Weight::MAX;
                prop_assert_eq!(dary.was_inserted(item), seen, "was_inserted({}) diverged", item);
            }
        }
        // Drain both to the end: the full pop sequences must agree.
        loop {
            let (a, b) = (dary.pop(), model.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
        let c = dary.counters().since(epoch_base);
        prop_assert_eq!(c.stale_skipped, 0, "indexed kernel produced a stale entry");
        // Same logical traffic: each lazy duplicate-push is an indexed
        // decrease-key, and the indexed kernel never re-pops.
        prop_assert_eq!(c.pushes, model.pushes);
        prop_assert_eq!(c.decrease_keys, model.improves);
        prop_assert_eq!(c.pops, model.pushes);
    }
}

/// Ties must break exactly like `BinaryHeap<(Reverse<Weight>, u32)>`:
/// equal keys pop in *descending* item order.
#[test]
fn tie_order_matches_std_kernel() {
    let mut dary = DaryHeap::new(8);
    let mut std_heap = BinaryHeap::new();
    for item in [3u32, 0, 6, 1, 5] {
        dary.push(7, item);
        std_heap.push((Reverse(7 as Weight), item));
    }
    while let Some((Reverse(k), item)) = std_heap.pop() {
        assert_eq!(dary.pop(), Some((k, item)));
    }
    assert_eq!(dary.pop(), None);
}
