//! Cross-crate integration: every method in the workspace — the three
//! K-SPIN variants (KS-CH, KS-HL, KS-GT), the Dijkstra engine, and the
//! three baselines (G-tree, ROAD, FS-FBS) — must produce identical exact
//! results on the same workload.

use kspin::adapters::{ChDistance, GtreeNetworkDistance, HlDistance};
use kspin::prelude::*;
use kspin_ch::{ChConfig, ContractionHierarchy};
use kspin_core::query::baseline::{brute_bknn, brute_topk, ine_bknn, ine_topk};
use kspin_fsfbs::{FsFbs, FsFbsConfig};
use kspin_gtree::tree::GtreeConfig;
use kspin_gtree::{GTree, GtreeSpatialKeyword, OccurrenceMode};
use kspin_hl::HubLabels;
use kspin_road::RoadIndex;
use kspin_text::generate::{corpus as gen_corpus, CorpusConfig};
use kspin_text::workload::{query_vectors, WorkloadConfig};

struct World {
    system: KspinSystem,
    ch: ContractionHierarchy,
    hl: HubLabels,
    gt: GTree,
}

fn build_world(n: usize, seed: u64) -> World {
    let graph = kspin_graph::generate::road_network(
        &kspin_graph::generate::RoadNetworkConfig::new(n, seed),
    );
    let mut cc = CorpusConfig::new(graph.num_vertices(), seed ^ 77);
    cc.object_fraction = 0.07;
    let (corpus, vocab) = gen_corpus(&cc);
    let ch = ContractionHierarchy::build(&graph, &ChConfig::default());
    let hl = HubLabels::build(&ch);
    let gt = GTree::build(&graph, &GtreeConfig::default());
    let system = KspinSystem::build(graph, corpus, vocab, &KspinConfig::default());
    World { system, ch, hl, gt }
}

fn workload(w: &World, len: usize) -> Vec<Vec<TermId>> {
    let cfg = WorkloadConfig {
        seed_terms: vec![0, 1, 2, 3, 4],
        objects_per_term: 2,
        vertices_per_vector: 1,
        seed: 99,
    };
    query_vectors(&w.system.corpus, &cfg, len)
}

#[test]
fn all_kspin_variants_agree_on_bknn() {
    let w = build_world(900, 1001);
    let s = &w.system;
    type BknnFn<'a> =
        Box<dyn FnMut(VertexId, usize, &[TermId], Op) -> Vec<(ObjectId, Weight)> + 'a>;
    let mut engines: Vec<(&str, BknnFn<'_>)> = Vec::new();
    let mut e_dij = s.engine_dijkstra();
    let mut e_ch = s.engine(ChDistance::new(&w.ch));
    let mut e_hl = s.engine(HlDistance::new(&w.hl));
    let mut e_gt = s.engine(GtreeNetworkDistance::new(&w.gt, &s.graph));
    engines.push((
        "dijkstra",
        Box::new(move |q, k, t, op| e_dij.bknn(q, k, t, op)),
    ));
    engines.push(("ks-ch", Box::new(move |q, k, t, op| e_ch.bknn(q, k, t, op))));
    engines.push(("ks-hl", Box::new(move |q, k, t, op| e_hl.bknn(q, k, t, op))));
    engines.push(("ks-gt", Box::new(move |q, k, t, op| e_gt.bknn(q, k, t, op))));

    for terms in workload(&w, 2).into_iter().take(3) {
        for q in [4u32, 404, 808] {
            for op in [Op::And, Op::Or] {
                let want = brute_bknn(&s.graph, &s.corpus, q, 5, &terms, op);
                let wd: Vec<Weight> = want.iter().map(|&(_, d)| d).collect();
                for (name, engine) in engines.iter_mut() {
                    let got = engine(q, 5, &terms, op);
                    let gd: Vec<Weight> = got.iter().map(|&(_, d)| d).collect();
                    assert_eq!(gd, wd, "{name} q={q} op={op:?} terms={terms:?}");
                }
            }
        }
    }
}

#[test]
fn all_kspin_variants_agree_on_topk() {
    let w = build_world(900, 1003);
    let s = &w.system;
    for terms in workload(&w, 2).into_iter().take(3) {
        for q in [11u32, 600] {
            let want = brute_topk(&s.graph, &s.corpus, q, 5, &terms);
            let ws: Vec<f64> = want.iter().map(|&(_, x)| x).collect();
            let check = |got: Vec<(ObjectId, f64)>, name: &str| {
                let gs: Vec<f64> = got.iter().map(|&(_, x)| x).collect();
                assert_eq!(gs.len(), ws.len(), "{name}");
                for (g, v) in gs.iter().zip(&ws) {
                    assert!((g - v).abs() < 1e-9, "{name} q={q}: {gs:?} vs {ws:?}");
                }
            };
            check(s.engine_dijkstra().top_k(q, 5, &terms), "dijkstra");
            check(
                s.engine(ChDistance::new(&w.ch)).top_k(q, 5, &terms),
                "ks-ch",
            );
            check(
                s.engine(HlDistance::new(&w.hl)).top_k(q, 5, &terms),
                "ks-hl",
            );
            check(
                s.engine(GtreeNetworkDistance::new(&w.gt, &s.graph))
                    .top_k(q, 5, &terms),
                "ks-gt",
            );
        }
    }
}

#[test]
fn baselines_agree_with_kspin() {
    let w = build_world(900, 1005);
    let s = &w.system;
    let sk = GtreeSpatialKeyword::build(&w.gt, &s.graph, &s.corpus);
    let road = RoadIndex::build(&w.gt, &s.graph, &s.corpus);
    let fsfbs = FsFbs::build(&s.graph, &s.corpus, &w.hl, FsFbsConfig::default());
    let mut kspin = s.engine(HlDistance::new(&w.hl));

    for terms in workload(&w, 2).into_iter().take(3) {
        for q in [21u32, 505] {
            // Top-k: K-SPIN vs G-tree (both modes) vs ROAD vs INE.
            let want: Vec<f64> = kspin.top_k(q, 5, &terms).iter().map(|&(_, x)| x).collect();
            for (name, got) in [
                (
                    "gtree",
                    sk.top_k(q, 5, &terms, OccurrenceMode::Aggregated).0,
                ),
                (
                    "gtree-opt",
                    sk.top_k(q, 5, &terms, OccurrenceMode::PerKeyword).0,
                ),
                ("road", road.top_k(q, 5, &terms)),
                ("ine", ine_topk(&s.graph, &s.corpus, q, 5, &terms)),
            ] {
                let gs: Vec<f64> = got.iter().map(|&(_, x)| x).collect();
                assert_eq!(gs.len(), want.len(), "{name} q={q}");
                for (g, v) in gs.iter().zip(&want) {
                    assert!((g - v).abs() < 1e-9, "{name} q={q}");
                }
            }
            // BkNN: K-SPIN vs G-tree vs FS-FBS vs INE.
            for (conj, op) in [(false, Op::Or), (true, Op::And)] {
                let want: Vec<Weight> = kspin
                    .bknn(q, 5, &terms, op)
                    .iter()
                    .map(|&(_, d)| d)
                    .collect();
                for (name, got) in [
                    (
                        "gtree",
                        sk.bknn(q, 5, &terms, conj, OccurrenceMode::Aggregated).0,
                    ),
                    ("fsfbs", fsfbs.bknn(q, 5, &terms, conj)),
                    ("ine", ine_bknn(&s.graph, &s.corpus, q, 5, &terms, op)),
                ] {
                    let gd: Vec<Weight> = got.iter().map(|&(_, d)| d).collect();
                    assert_eq!(gd, want, "{name} q={q} conj={conj}");
                }
            }
        }
    }
}

#[test]
fn kspin_does_fewer_matrix_ops_than_gtree() {
    // The §7.4.2 deep-dive, in miniature: KS-GT consumes the same G-tree
    // index with fewer matrix operations than G-tree's own top-k.
    let w = build_world(1500, 1007);
    let s = &w.system;
    let sk = GtreeSpatialKeyword::build(&w.gt, &s.graph, &s.corpus);
    let mut total_gtree = 0u64;
    let mut total_ksgt = 0u64;
    for terms in workload(&w, 2).into_iter().take(5) {
        for q in [13u32, 777, 1300] {
            let q = q.min(s.graph.num_vertices() as u32 - 1);
            let (_, ops) = sk.top_k(q, 10, &terms, OccurrenceMode::Aggregated);
            total_gtree += ops;
            let mut dist = GtreeNetworkDistance::new(&w.gt, &s.graph);
            let mut e = s.engine(dist);
            let _ = e.top_k(q, 10, &terms);
            dist = e.into_distance();
            total_ksgt += dist.total_ops();
        }
    }
    assert!(
        total_ksgt < total_gtree,
        "KS-GT ({total_ksgt} ops) should beat G-tree ({total_gtree} ops)"
    );
}
