//! Serving-layer determinism: the `BatchExecutor` must be a pure
//! throughput optimization — at any thread count, with the heap-seed cache
//! on or off, results are bit-identical to a sequential cold
//! `QueryEngine` loop, including after §6.2 updates invalidate cached
//! terms.

use kspin::prelude::*;
use kspin_core::{BoolExpr, SeedCacheConfig};
use kspin_text::workload::{zipf_queries, ZipfWorkloadConfig};

struct Fixture {
    graph: Graph,
    corpus: Corpus,
    alt: kspin::alt::AltIndex,
    index: KspinIndex,
    queries: Vec<ServingQuery>,
}

fn fixture() -> Fixture {
    let graph = kspin::graph::generate::road_network(
        &kspin::graph::generate::RoadNetworkConfig::new(1_200, 2026),
    );
    let mut cc = kspin::text::generate::CorpusConfig::new(graph.num_vertices(), 2027);
    cc.object_fraction = 0.1;
    let (corpus, _) = kspin::text::generate::corpus(&cc);
    let alt = kspin::alt::AltIndex::build(&graph, 8, kspin::alt::LandmarkStrategy::Farthest, 0);
    let index = KspinIndex::build(
        &graph,
        &corpus,
        &KspinConfig {
            rho: 4,
            seed_cache: SeedCacheConfig::enabled(),
            ..KspinConfig::default()
        },
    );
    // The fixed 200-query workload: Zipf-hot keywords over a small vertex
    // pool, cycled through all three query families.
    let zipf = zipf_queries(
        &corpus,
        &ZipfWorkloadConfig {
            num_queries: 200,
            terms_per_query: 2,
            zipf_exponent: 1.0,
            hot_vertex_pool: 24,
            seed: 41,
        },
        graph.num_vertices(),
    );
    let queries: Vec<ServingQuery> = zipf
        .iter()
        .enumerate()
        .map(|(i, q)| match i % 4 {
            0 => ServingQuery::Bknn {
                vertex: q.vertex,
                k: 8,
                terms: q.terms.clone(),
                op: Op::Or,
            },
            1 => ServingQuery::Bknn {
                vertex: q.vertex,
                k: 8,
                terms: q.terms.clone(),
                op: Op::And,
            },
            2 => ServingQuery::TopK {
                vertex: q.vertex,
                k: 8,
                terms: q.terms.clone(),
            },
            _ => ServingQuery::Boolean {
                vertex: q.vertex,
                k: 8,
                expr: BoolExpr::And(vec![BoolExpr::Term(q.terms[0]), BoolExpr::any(&q.terms)]),
            },
        })
        .collect();
    Fixture {
        graph,
        corpus,
        alt,
        index,
        queries,
    }
}

/// Sequential, cache-bypassing reference run (the "cold" baseline).
fn sequential_cold(f: &Fixture) -> Vec<ServingResult> {
    let mut engine = QueryEngine::new(
        &f.graph,
        &f.corpus,
        &f.index,
        &f.alt,
        DijkstraDistance::new(&f.graph),
    );
    engine.set_seed_cache(false);
    f.queries.iter().map(|q| q.run(&mut engine)).collect()
}

fn assert_batches_match(f: &Fixture, reference: &[ServingResult]) {
    for threads in [1, 2, 8] {
        for cache in [false, true] {
            // `with_exact_threads` bypasses the hardware clamp so the
            // 8-worker leg really runs 8 workers even on a 1-core host.
            let exec = BatchExecutor::new(&f.graph, &f.corpus, &f.index, &f.alt, 1)
                .with_exact_threads(threads)
                .with_seed_cache(cache);
            let out = exec.execute(&f.queries, || DijkstraDistance::new(&f.graph));
            assert_eq!(
                out.results, reference,
                "{threads}-thread cache={cache} run diverged from sequential cold"
            );
            if cache {
                assert!(
                    out.stats.cache_hits + out.stats.cache_misses > 0,
                    "cache-on run never consulted the cache"
                );
            } else {
                assert_eq!(out.stats.cache_hits + out.stats.cache_misses, 0);
            }
            // The d-ary kernel under every search: real heap traffic,
            // structurally zero stale pops.
            assert!(out.stats.heap_pops > 0, "workload produced no heap traffic");
            assert!(out.stats.heap_pushes >= out.stats.heap_pops);
            assert_eq!(
                out.stats.heap_stale_skipped, 0,
                "indexed kernel popped a stale entry"
            );
            // Allocation-freedom certificate, dynamic face: pre-sized
            // kernels never grow their entry arrays while serving.
            assert_eq!(
                out.stats.heap_grows, 0,
                "a heap kernel reallocated while serving"
            );
        }
    }
}

#[test]
fn batch_executor_matches_sequential_cold_at_all_thread_counts() {
    let f = fixture();
    let reference = sequential_cold(&f);
    assert_batches_match(&f, &reference);
    // The Zipf workload must actually exercise the fast path: a second
    // cached run over a warmed cache sees real hits.
    let exec = BatchExecutor::new(&f.graph, &f.corpus, &f.index, &f.alt, 2);
    let out = exec.execute(&f.queries, || DijkstraDistance::new(&f.graph));
    assert!(out.stats.cache_hits > 0, "warmed run produced no hits");
    assert!(out.stats.seed_reuse > 0);
}

/// Live §6.2 update stream: several epochs of interleaved deletes and
/// re-inserts, with batched reads between them keeping the seed cache warm.
/// After EVERY epoch, parallel + cached serving must still be bit-identical
/// to a sequential cold run over the post-update index — the dynamic face
/// of the `cargo xtask determinism` certificate.
#[test]
fn batch_executor_stays_deterministic_across_live_update_stream() {
    let mut f = fixture();

    // Objects of queried keywords, so updates hit cached seed cells.
    let mut touched: Vec<ObjectId> = f
        .queries
        .iter()
        .filter_map(|q| match q {
            ServingQuery::Bknn { terms, .. } | ServingQuery::TopK { terms, .. } => {
                f.corpus.inverted(terms[0]).first().map(|p| p.object)
            }
            ServingQuery::Boolean { .. } => None,
        })
        .collect();
    touched.sort_unstable();
    touched.dedup();
    touched.truncate(9);
    assert!(touched.len() >= 6, "workload touched too few objects");

    let mut dist = DijkstraDistance::new(&f.graph);
    let mut invalidated_so_far = 0;
    for (epoch, batch) in touched.chunks(3).enumerate() {
        // Batched reads warm the cache so this epoch's updates have live
        // entries to invalidate — the interleaving §6.2 serves.
        let warm = BatchExecutor::new(&f.graph, &f.corpus, &f.index, &f.alt, 2)
            .execute(&f.queries, || DijkstraDistance::new(&f.graph));
        assert!(warm.stats.cache_hits + warm.stats.cache_misses > 0);

        // Delete the epoch's batch, re-insert a prefix of it.
        for &o in batch {
            f.index.delete_object(&f.corpus, o);
        }
        for &o in batch.iter().take(epoch % batch.len().max(1)) {
            f.index.insert_object(&f.graph, &f.corpus, o, &mut dist);
        }
        let stats = f.index.seed_cache().expect("cache enabled").stats();
        assert!(
            stats.invalidated > invalidated_so_far,
            "epoch {epoch} updates invalidated no cached seed cells"
        );
        invalidated_so_far = stats.invalidated;

        // The certificate's claim, live: after every update epoch the
        // parallel cached executor equals the sequential cold reference.
        let reference = sequential_cold(&f);
        assert_batches_match(&f, &reference);
    }
}

/// Cache-conscious renumbering must be invisible at the serving boundary:
/// relabel the whole deployment (graph, corpus, index, ALT tables, CH) with
/// the Hilbert order, translate only the query vertices, and every batch —
/// at any thread count, with and without the one-to-many sweep pre-pass —
/// answers bit-identically to the un-renumbered sequential cold reference.
/// Results carry object ids, which are label-invariant, so equality is
/// exact equality of `ServingResult`s.
#[test]
fn hilbert_renumbering_is_invisible_to_serving() {
    let mut f = fixture();
    let reference = sequential_cold(&f);

    let r = kspin::graph::Relabeling::hilbert(&f.graph);
    r.validate().expect("hilbert order is a permutation");
    let pg = r.apply(&f.graph);
    // Relabel every structure holding raw vertex ids in place — the
    // production flow; nothing is rebuilt, so tie-breaks cannot move.
    f.corpus.relabel(&r);
    f.index.relabel(&r);
    let palt = f.alt.relabel(&r);
    let pch = kspin::ch::ContractionHierarchy::build(&f.graph, &kspin::ch::ChConfig::default())
        .relabel(&r);
    let queries: Vec<ServingQuery> = f
        .queries
        .iter()
        .cloned()
        .map(|mut q| {
            match &mut q {
                ServingQuery::Bknn { vertex, .. }
                | ServingQuery::TopK { vertex, .. }
                | ServingQuery::Boolean { vertex, .. } => *vertex = r.to_local(*vertex),
            }
            q
        })
        .collect();

    for threads in [1, 4] {
        for sweep in [false, true] {
            let mut exec =
                BatchExecutor::new(&pg, &f.corpus, &f.index, &palt, 1).with_exact_threads(threads);
            if sweep {
                exec = exec.with_sweep(&pch);
            }
            let out = exec.execute(&queries, || DijkstraDistance::new(&pg));
            assert_eq!(
                out.results, reference,
                "renumbered {threads}-thread sweep={sweep} run diverged"
            );
            if sweep {
                assert!(out.stats.sweeps > 0, "sweep pre-pass never ran");
            }
        }
    }
}

/// Snapshot persistence must be invisible at the serving boundary: save
/// the whole deployment, reload it from bytes, and every batch — at any
/// thread count, with the seed cache on or off, with and without the
/// one-to-many sweep pre-pass — answers bit-identically to the sequential
/// cold reference over the *originally built* structures. A §6.2 update
/// epoch applied to the reloaded engine then must land exactly where the
/// same epoch lands on a never-snapshotted cold build.
#[test]
fn snapshot_reload_is_invisible_to_serving() {
    let f = fixture();
    let reference = sequential_cold(&f);

    // The fixture discards its vocabulary; regenerate it with the same
    // deterministic config to assemble a full system for the save.
    let mut cc = kspin::text::generate::CorpusConfig::new(f.graph.num_vertices(), 2027);
    cc.object_fraction = 0.1;
    let (_, vocab) = kspin::text::generate::corpus(&cc);
    let ch = kspin::ch::ContractionHierarchy::build(&f.graph, &kspin::ch::ChConfig::default());
    let system = KspinSystem {
        graph: f.graph,
        corpus: f.corpus,
        vocab,
        alt: f.alt,
        index: f.index,
    };
    let bytes = system.save_snapshot(&kspin::snapshot::SnapshotExtras {
        ch: Some(ch),
        ..Default::default()
    });
    drop(system); // only the bytes survive
    let (mut sys, extras) = KspinSystem::load_snapshot(&bytes).expect("snapshot loads");
    let pch = extras.ch.expect("ch rides along");

    for threads in [1, 4] {
        for cache in [false, true] {
            for sweep in [false, true] {
                let mut exec = BatchExecutor::new(&sys.graph, &sys.corpus, &sys.index, &sys.alt, 1)
                    .with_exact_threads(threads)
                    .with_seed_cache(cache);
                if sweep {
                    exec = exec.with_sweep(&pch);
                }
                let out = exec.execute(&f.queries, || DijkstraDistance::new(&sys.graph));
                assert_eq!(
                    out.results, reference,
                    "reloaded {threads}-thread cache={cache} sweep={sweep} run diverged"
                );
                if sweep {
                    assert!(out.stats.sweeps > 0, "sweep pre-pass never ran");
                }
            }
        }
    }

    // The same §6.2 epoch on the reloaded engine and on a fresh cold
    // build: delete a batch of queried objects, re-insert half.
    let mut touched: Vec<ObjectId> = f
        .queries
        .iter()
        .filter_map(|q| match q {
            ServingQuery::Bknn { terms, .. } | ServingQuery::TopK { terms, .. } => {
                sys.corpus.inverted(terms[0]).first().map(|p| p.object)
            }
            ServingQuery::Boolean { .. } => None,
        })
        .collect();
    touched.sort_unstable();
    touched.dedup();
    touched.truncate(6);
    assert!(touched.len() >= 2, "workload touched too few objects");

    let mut f2 = fixture();
    let mut dist2 = DijkstraDistance::new(&f2.graph);
    let mut dist = DijkstraDistance::new(&sys.graph);
    for &o in &touched {
        sys.index.delete_object(&sys.corpus, o);
        f2.index.delete_object(&f2.corpus, o);
    }
    for &o in touched.iter().step_by(2) {
        sys.index
            .insert_object(&sys.graph, &sys.corpus, o, &mut dist);
        f2.index.insert_object(&f2.graph, &f2.corpus, o, &mut dist2);
    }
    let reference2 = sequential_cold(&f2);
    for threads in [1, 4] {
        for cache in [false, true] {
            let exec = BatchExecutor::new(&sys.graph, &sys.corpus, &sys.index, &sys.alt, 1)
                .with_exact_threads(threads)
                .with_seed_cache(cache);
            let out = exec.execute(&f.queries, || DijkstraDistance::new(&sys.graph));
            assert_eq!(
                out.results, reference2,
                "post-load epoch {threads}-thread cache={cache} run diverged from cold build"
            );
        }
    }
}

#[test]
fn batch_executor_stays_deterministic_after_updates() {
    let mut f = fixture();

    // Warm the cache so the updates below have entries to invalidate.
    let warm = BatchExecutor::new(&f.graph, &f.corpus, &f.index, &f.alt, 2)
        .execute(&f.queries, || DijkstraDistance::new(&f.graph));
    assert!(warm.stats.cache_misses > 0);

    // §6.2 lazy updates on objects of queried keywords: delete a batch,
    // re-insert half of it.
    let mut touched: Vec<ObjectId> = f
        .queries
        .iter()
        .filter_map(|q| match q {
            ServingQuery::Bknn { terms, .. } | ServingQuery::TopK { terms, .. } => {
                f.corpus.inverted(terms[0]).first().map(|p| p.object)
            }
            ServingQuery::Boolean { .. } => None,
        })
        .collect();
    touched.sort_unstable();
    touched.dedup();
    touched.truncate(6);
    assert!(touched.len() >= 2, "workload touched too few objects");
    let mut dist = DijkstraDistance::new(&f.graph);
    for &o in &touched {
        f.index.delete_object(&f.corpus, o);
    }
    for &o in touched.iter().step_by(2) {
        f.index.insert_object(&f.graph, &f.corpus, o, &mut dist);
    }
    let cache_stats = f.index.seed_cache().expect("cache enabled").stats();
    assert!(
        cache_stats.invalidated > 0,
        "updates must invalidate cached seed cells of touched keywords"
    );

    // Post-update: parallel + cached must again equal sequential cold.
    let reference = sequential_cold(&f);
    assert_batches_match(&f, &reference);
}
