//! The dynamic face of `cargo xtask allocs`: a counting global allocator
//! measures what batch serving actually allocates once warmed up.
//!
//! The static certificate proves no *unjustified* allocation source is
//! reachable from the steady-state entry points; every residual site
//! carries an `ALLOC-OK` capacity invariant (per-query buffers bounded by
//! `k`/`|ψ|`, per-batch setup amortized over the batch). This test pins
//! those invariants to numbers: after a warm-up batch populates the seed
//! cache, two identical measured batches must allocate (a) exactly the
//! same amount — steady state is reproducible, nothing accumulates — and
//! (b) at most a small justified constant per query.
//!
//! One test per binary: the allocation counter is process-global, so a
//! concurrently running sibling test would pollute the measurement.

// The workspace denies `unsafe_code`; a `#[global_allocator]` impl is the
// one place this test binary genuinely needs it (GlobalAlloc is an unsafe
// trait — the impl below only delegates to `System` and counts).
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use kspin::prelude::*;
use kspin_core::SeedCacheConfig;
use kspin_text::workload::{zipf_queries, ZipfWorkloadConfig};

/// Counts every heap acquisition (`alloc` and `realloc` — `dealloc` is
/// free of interest here) and delegates to the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_batches_allocate_a_pinned_reproducible_amount() {
    // Same fixture family as serving_determinism, sized down: Zipf-hot
    // keywords over a small vertex pool, cycled through query types.
    let graph = kspin::graph::generate::road_network(
        &kspin::graph::generate::RoadNetworkConfig::new(700, 2026),
    );
    let mut cc = kspin::text::generate::CorpusConfig::new(graph.num_vertices(), 2027);
    cc.object_fraction = 0.1;
    let (corpus, _) = kspin::text::generate::corpus(&cc);
    let alt = kspin::alt::AltIndex::build(&graph, 8, kspin::alt::LandmarkStrategy::Farthest, 0);
    let index = KspinIndex::build(
        &graph,
        &corpus,
        &KspinConfig {
            rho: 4,
            seed_cache: SeedCacheConfig::enabled(),
            ..KspinConfig::default()
        },
    );
    let zipf = zipf_queries(
        &corpus,
        &ZipfWorkloadConfig {
            num_queries: 120,
            terms_per_query: 2,
            zipf_exponent: 1.0,
            hot_vertex_pool: 16,
            seed: 41,
        },
        graph.num_vertices(),
    );
    let queries: Vec<ServingQuery> = zipf
        .iter()
        .enumerate()
        .map(|(i, q)| match i % 3 {
            0 => ServingQuery::Bknn {
                vertex: q.vertex,
                k: 8,
                terms: q.terms.clone(),
                op: Op::Or,
            },
            1 => ServingQuery::Bknn {
                vertex: q.vertex,
                k: 8,
                terms: q.terms.clone(),
                op: Op::And,
            },
            _ => ServingQuery::TopK {
                vertex: q.vertex,
                k: 8,
                terms: q.terms.clone(),
            },
        })
        .collect();

    // One worker: thread-spawn and shard bookkeeping is identical across
    // batches and the cross-batch comparison is exact, not statistical.
    let exec = BatchExecutor::new(&graph, &corpus, &index, &alt, 1)
        .with_exact_threads(1)
        .with_seed_cache(true);

    // Warm-up batch: first-fill of the seed cache (admissions allocate and
    // are allowed to — the same query set afterwards hits, never admits).
    let warm = exec.execute(&queries, || DijkstraDistance::new(&graph));
    assert!(
        warm.stats.cache_misses > 0,
        "warm-up batch admitted nothing — the fixture lost its purpose"
    );

    let measure = |label: &str| {
        let before = allocations();
        let out = exec.execute(&queries, || DijkstraDistance::new(&graph));
        let total = allocations() - before;
        assert_eq!(
            out.stats.cache_misses, 0,
            "{label}: a warmed batch of identical queries re-admitted seeds"
        );
        assert_eq!(
            out.stats.heap_grows, 0,
            "{label}: a pre-sized heap kernel reallocated while serving"
        );
        total
    };
    let second = measure("second batch");
    let third = measure("third batch");

    // Steady state is reproducible: nothing accumulates batch over batch
    // (no cache churn, no growing side tables, no leak-by-retention).
    assert_eq!(
        second, third,
        "identical warmed batches allocated different amounts"
    );

    // And it is small: per-batch engine/oracle construction plus the
    // ALLOC-OK'd per-query buffers (result Vecs bounded by k, per-term
    // heap generation, k-best BinaryHeap growth). The bound is deliberately
    // generous — it exists to catch regressions to per-candidate or
    // per-edge allocation, which blow past it by orders of magnitude.
    let per_query = second as f64 / queries.len() as f64;
    println!(
        "steady-state allocations: total={second} per-query={per_query:.1} \
         (batch of {})",
        queries.len()
    );
    assert!(
        per_query <= 64.0,
        "steady-state serving allocates {per_query:.1} times per query \
         (batch total {second}) — an ALLOC-OK invariant no longer holds"
    );
}
