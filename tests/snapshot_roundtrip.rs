//! Snapshot round-trip guarantees, test-enforced at the system level:
//!
//! 1. **Canonical serialization** — save → load → save is byte-identical.
//! 2. **Bit-identical serving** — a loaded system answers every query
//!    with exactly the bytes the cold-built system produces, including
//!    after §6.2 updates applied before the save.
//! 3. **Fail-closed loading** — flipping any single byte or truncating
//!    at any length yields a structured [`SnapshotError`] (naming the
//!    failing section for payload corruption); the loader never panics
//!    and never hands back a partially-initialized system.

use kspin::prelude::*;
use kspin::snapshot::SnapshotExtras;
use kspin_ch::{ChConfig, ContractionHierarchy};
use kspin_graph::Relabeling;
use kspin_gtree::partition::{partition, PartitionConfig};
use kspin_text::generate::{corpus as gen_corpus, CorpusConfig};
use kspin_text::workload::{query_vectors, WorkloadConfig};
use proptest::prelude::*;

fn build_system(n: usize, seed: u64) -> KspinSystem {
    let graph = kspin_graph::generate::road_network(
        &kspin_graph::generate::RoadNetworkConfig::new(n, seed),
    );
    let mut cc = CorpusConfig::new(graph.num_vertices(), seed ^ 77);
    cc.object_fraction = 0.08;
    let (corpus, vocab) = gen_corpus(&cc);
    let config = KspinConfig {
        rho: 4,
        seed_cache: SeedCacheConfig::enabled(),
        ..KspinConfig::default()
    };
    KspinSystem::build(graph, corpus, vocab, &config)
}

fn full_extras(s: &KspinSystem) -> SnapshotExtras {
    SnapshotExtras {
        ch: Some(ContractionHierarchy::build(&s.graph, &ChConfig::default())),
        hierarchy: Some(partition(&s.graph, &PartitionConfig { leaf_size: 64 })),
        relabeling: Some(Relabeling::hilbert(&s.graph)),
    }
}

fn serve(s: &KspinSystem, queries: usize) -> Vec<Vec<(ObjectId, u64)>> {
    let cfg = WorkloadConfig {
        seed_terms: vec![0, 1, 2, 3, 4],
        objects_per_term: 2,
        vertices_per_vector: 1,
        seed: 4242,
    };
    let vectors = query_vectors(&s.corpus, &cfg, queries);
    let mut engine = s.engine_dijkstra();
    let mut out = Vec::with_capacity(vectors.len() * 3);
    for (i, ts) in vectors.iter().enumerate() {
        let v = (i * 37 % s.graph.num_vertices()) as VertexId;
        let widen =
            |r: Vec<(ObjectId, Weight)>| r.into_iter().map(|(o, w)| (o, u64::from(w))).collect();
        out.push(widen(engine.bknn(v, 6, ts, Op::Or)));
        out.push(widen(engine.bknn(v, 6, ts, Op::And)));
        out.push(
            engine
                .top_k(v, 6, ts)
                .into_iter()
                .map(|(o, score)| (o, score.to_bits()))
                .collect(),
        );
    }
    out
}

#[test]
fn save_load_save_is_byte_identical() {
    let system = build_system(900, 11);
    let extras = full_extras(&system);
    let bytes = system.save_snapshot(&extras);
    let (loaded, loaded_extras) = KspinSystem::load_snapshot(&bytes).expect("load");
    let bytes2 = loaded.save_snapshot(&loaded_extras);
    assert_eq!(bytes, bytes2, "save -> load -> save must be the identity");
}

#[test]
fn loaded_system_serves_bit_identically() {
    let system = build_system(900, 12);
    let bytes = system.save_snapshot(&SnapshotExtras::default());
    let (loaded, extras) = KspinSystem::load_snapshot(&bytes).expect("load");
    assert!(extras.ch.is_none() && extras.hierarchy.is_none() && extras.relabeling.is_none());
    assert_eq!(serve(&system, 40), serve(&loaded, 40));
    loaded
        .index
        .validate(&loaded.corpus)
        .expect("loaded index audits clean");
}

#[test]
fn extras_round_trip_exactly() {
    let system = build_system(600, 13);
    let extras = full_extras(&system);
    let bytes = system.save_snapshot(&extras);
    let (_, e2) = KspinSystem::load_snapshot(&bytes).expect("load");
    let (ch, ch2) = (extras.ch.unwrap(), e2.ch.expect("ch survives"));
    assert_eq!(ch.flat_parts(), ch2.flat_parts());
    let (h, h2) = (
        extras.hierarchy.unwrap(),
        e2.hierarchy.expect("hierarchy survives"),
    );
    assert_eq!(h.flat_parts(), h2.flat_parts());
    let (r, r2) = (
        extras.relabeling.unwrap(),
        e2.relabeling.expect("relabeling survives"),
    );
    assert_eq!(r.forward(), r2.forward());
}

#[test]
fn updates_applied_before_save_survive_the_round_trip() {
    let mut system = build_system(900, 14);
    // §6.2 epoch: delete a batch of objects, then serve from a reload.
    let victims: Vec<ObjectId> = (0..system.corpus.num_objects() as ObjectId)
        .filter(|o| o % 7 == 0)
        .collect();
    for &o in &victims {
        system.index.delete_object(&system.corpus, o);
    }
    let bytes = system.save_snapshot(&SnapshotExtras::default());
    let (loaded, _) = KspinSystem::load_snapshot(&bytes).expect("load");
    assert_eq!(serve(&system, 30), serve(&loaded, 30));
    // Canonical even with a live update overlay.
    let bytes2 = loaded.save_snapshot(&SnapshotExtras::default());
    assert_eq!(bytes, bytes2);
}

fn small_snapshot() -> Vec<u8> {
    let system = build_system(300, 15);
    system.save_snapshot(&SnapshotExtras::default())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    // Any single flipped byte is rejected with a structured error.
    #[test]
    fn any_single_byte_flip_is_rejected(pos in 0usize..usize::MAX, flip in 1u8..=255) {
        let mut bytes = small_snapshot();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        match KspinSystem::load_snapshot(&bytes) {
            Err(e) => {
                // The error names a location and renders.
                let _ = e.at();
                prop_assert!(!e.to_string().is_empty());
            }
            Ok(_) => prop_assert!(false, "corrupt byte {pos} (^{flip:#04x}) accepted"),
        }
    }

    // Truncation at any length is rejected with a structured error.
    #[test]
    fn any_truncation_is_rejected(keep in 0usize..usize::MAX) {
        let bytes = small_snapshot();
        let keep = keep % bytes.len();
        let e = KspinSystem::load_snapshot(&bytes[..keep])
            .map(|_| ())
            .expect_err("truncated snapshot accepted");
        prop_assert!(!e.to_string().is_empty());
    }
}

/// Exhaustive (not sampled) corruption sweep on a tiny snapshot: every
/// byte position, two flip patterns, plus every truncation length.
#[test]
fn exhaustive_corruption_sweep_on_tiny_snapshot() {
    let graph = kspin_graph::generate::road_network(
        &kspin_graph::generate::RoadNetworkConfig::new(120, 16),
    );
    let (corpus, vocab) = gen_corpus(&CorpusConfig::new(graph.num_vertices(), 17));
    let system = KspinSystem::build(graph, corpus, vocab, &KspinConfig::default());
    let bytes = system.save_snapshot(&SnapshotExtras::default());
    for i in 0..bytes.len() {
        for flip in [0x01u8, 0x80] {
            let mut b = bytes.clone();
            b[i] ^= flip;
            assert!(
                KspinSystem::load_snapshot(&b).is_err(),
                "flip {flip:#04x} at byte {i} went unnoticed"
            );
        }
    }
    for len in 0..bytes.len() {
        assert!(
            KspinSystem::load_snapshot(&bytes[..len]).is_err(),
            "truncation to {len} bytes went unnoticed"
        );
    }
}
