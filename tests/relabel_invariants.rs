//! Property tests for cache-conscious vertex renumbering.
//!
//! A `Relabeling` must be invisible at the query level: every distance
//! kernel run on the permuted graph (with permuted endpoints) answers
//! bit-identically to the identity labeling, and the forward/inverse
//! permutation vectors compose to the identity both ways. proptest
//! drives the topology and the permutation; failures shrink to a
//! minimal counterexample.

use proptest::prelude::*;

use kspin_alt::{AltAstar, AltIndex, LandmarkStrategy};
use kspin_graph::{BiDijkstra, Dijkstra, Graph, GraphBuilder, Relabeling, VertexId, Weight};
use kspin_nvd::ApproxNvd;

/// A connected random graph: a spanning path plus random extra edges.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        5usize..40,
        proptest::collection::vec((0u32..40, 0u32..40, 1u32..100), 0..60),
    )
        .prop_map(|(n, extras)| {
            let mut b = GraphBuilder::new(n);
            for v in 0..n as u32 {
                b.set_coord(
                    v,
                    kspin_graph::Point::new((v as i32 * 37) % 100, (v as i32 * 61) % 100),
                );
            }
            // Spanning path guarantees connectivity.
            for v in 0..n as u32 - 1 {
                b.add_edge(v, v + 1, 1 + (v % 7));
            }
            for (u, v, w) in extras {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

/// A deterministic permutation of `0..n`: Fisher–Yates driven by an
/// xorshift64 stream seeded from `seed`.
fn scrambled_order(n: usize, seed: u64) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        order.swap(i, (s % (i as u64 + 1)) as usize);
    }
    order
}

/// Every relabeling family under test, derived from one graph + seed.
fn relabelings(g: &Graph, seed: u64) -> Vec<(&'static str, Relabeling)> {
    vec![
        ("identity", Relabeling::identity(g.num_vertices())),
        ("bfs", Relabeling::bfs(g)),
        ("hilbert", Relabeling::hilbert(g)),
        (
            "scrambled",
            Relabeling::from_order(scrambled_order(g.num_vertices(), seed)),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn forward_and_inverse_compose_to_the_identity(g in arb_graph(), seed in 0u64..u64::MAX) {
        for (name, r) in relabelings(&g, seed) {
            prop_assert!(r.validate().is_ok(), "{name}: {:?}", r.validate().err());
            prop_assert_eq!(r.len(), g.num_vertices(), "{}", name);
            for v in 0..g.num_vertices() as VertexId {
                prop_assert_eq!(r.to_local(r.to_external(v)), v, "{}", name);
                prop_assert_eq!(r.to_external(r.to_local(v)), v, "{}", name);
            }
            // map_in_place agrees with to_local element-wise.
            let mut ids: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
            r.map_in_place(&mut ids);
            for (v, &mapped) in ids.iter().enumerate() {
                prop_assert_eq!(mapped, r.to_local(v as VertexId), "{}", name);
            }
        }
    }

    #[test]
    fn non_permutation_orders_are_rejected(n in 2usize..20) {
        // from_order panics on duplicates; validate() is the audit-mode
        // complement used on deserialized permutations.
        let mut dup: Vec<VertexId> = (0..n as VertexId).collect();
        dup[0] = dup[1];
        let caught = std::panic::catch_unwind(|| Relabeling::from_order(dup));
        prop_assert!(caught.is_err(), "duplicate order must be rejected");
    }

    #[test]
    fn relabeled_graphs_answer_dijkstra_bit_identically(
        g in arb_graph(),
        seed in 0u64..u64::MAX,
        s in 0u32..40,
        t in 0u32..40,
    ) {
        let n = g.num_vertices() as u32;
        let (s, t) = (s % n, t % n);
        let mut dij = Dijkstra::new(g.num_vertices());
        let mut bi = BiDijkstra::new(g.num_vertices());
        let want_one = dij.one_to_one(&g, s, t);
        let want_bi = bi.distance(&g, s, t);
        prop_assert_eq!(want_one, want_bi);
        let targets: Vec<VertexId> = (0..n).step_by(3).collect();
        let want_many = dij.one_to_many(&g, s, &targets);
        for (name, r) in relabelings(&g, seed) {
            let pg = r.apply(&g);
            let mut pdij = Dijkstra::new(pg.num_vertices());
            let mut pbi = BiDijkstra::new(pg.num_vertices());
            prop_assert_eq!(
                pdij.one_to_one(&pg, r.to_local(s), r.to_local(t)),
                want_one,
                "{}", name
            );
            prop_assert_eq!(pbi.distance(&pg, r.to_local(s), r.to_local(t)), want_bi, "{}", name);
            let ptargets: Vec<VertexId> = targets.iter().map(|&v| r.to_local(v)).collect();
            let got_many = pdij.one_to_many(&pg, r.to_local(s), &ptargets);
            prop_assert_eq!(&got_many, &want_many, "{}", name);
        }
    }

    #[test]
    fn relabeled_alt_answers_bit_identically(
        g in arb_graph(),
        seed in 0u64..u64::MAX,
        s in 0u32..40,
        t in 0u32..40,
    ) {
        let n = g.num_vertices() as u32;
        let (s, t) = (s % n, t % n);
        let alt = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 1);
        let mut astar = AltAstar::new(g.num_vertices());
        let want = astar.distance(&g, &alt, s, t);
        for (name, r) in relabelings(&g, seed) {
            let pg = r.apply(&g);
            // The production path: translate the landmark tables in place
            // rather than re-selecting landmarks on the permuted graph.
            let palt = alt.relabel(&r);
            let mut pastar = AltAstar::new(pg.num_vertices());
            prop_assert_eq!(
                pastar.distance(&pg, &palt, r.to_local(s), r.to_local(t)),
                want,
                "{}", name
            );
            // Lower bounds themselves are bit-identical, not just the
            // exact distances they steer.
            for v in 0..n {
                prop_assert_eq!(
                    palt.lower_bound(r.to_local(s), r.to_local(v)),
                    alt.lower_bound(s, v),
                    "{}", name
                );
            }
        }
    }

    #[test]
    fn relabeled_nvd_answers_knn_bit_identically(
        g in arb_graph(),
        seed in 0u64..u64::MAX,
        gens_raw in proptest::collection::btree_set(0u32..40, 1..8),
        rho in 1usize..5,
        q in 0u32..40,
        k in 1usize..6,
    ) {
        let n = g.num_vertices() as u32;
        let q = q % n;
        let gens: Vec<VertexId> = gens_raw.into_iter().map(|v| v % n)
            .collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        let apx = ApproxNvd::build(&g, &gens, rho);
        let mut dij = Dijkstra::new(g.num_vertices());
        let want: Vec<(u32, Weight)> = apx.knn(g.coord(q), k, |v| dij.one_to_one(&g, q, v));
        for (name, r) in relabelings(&g, seed) {
            let pg = r.apply(&g);
            // The production path: translate the built NVD's vertex ids
            // instead of rebuilding on the permuted graph (a rebuild may
            // break boundary ties differently; a relabel cannot).
            let mut papx = apx.clone();
            papx.relabel(&r);
            let pq = r.to_local(q);
            let mut pdij = Dijkstra::new(pg.num_vertices());
            let got = papx.knn(pg.coord(pq), k, |v| pdij.one_to_one(&pg, pq, v));
            // Object-local ids and distances both bit-identical.
            prop_assert_eq!(&got, &want, "{}", name);
        }
    }
}
