//! Property-based invariants over randomly generated graphs and corpora.
//!
//! These go beyond the seeded fixtures: proptest drives graph topology,
//! weights, object placement and query parameters, shrinking any failure
//! to a minimal counterexample.

use proptest::prelude::*;

use kspin::prelude::*;
use kspin_alt::{AltIndex, LandmarkStrategy};
use kspin_ch::{ChConfig, ContractionHierarchy};
use kspin_core::heap::{HeapContext, InvertedHeap};
use kspin_core::query::baseline::brute_bknn;
use kspin_core::{ExactLowerBound, LowerBound};
use kspin_graph::{Dijkstra, GraphBuilder};
use kspin_hl::HubLabels;
use kspin_nvd::ApproxNvd;
use kspin_text::CorpusBuilder;

/// A connected random graph: a spanning path plus random extra edges.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        5usize..40,
        proptest::collection::vec((0u32..40, 0u32..40, 1u32..100), 0..60),
    )
        .prop_map(|(n, extras)| {
            let mut b = GraphBuilder::new(n);
            for v in 0..n as u32 {
                b.set_coord(
                    v,
                    kspin_graph::Point::new((v as i32 * 37) % 100, (v as i32 * 61) % 100),
                );
            }
            // Spanning path guarantees connectivity.
            for v in 0..n as u32 - 1 {
                b.add_edge(v, v + 1, 1 + (v % 7));
            }
            for (u, v, w) in extras {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn ch_and_hl_agree_with_dijkstra(g in arb_graph(), s in 0u32..40, t in 0u32..40) {
        let n = g.num_vertices() as u32;
        let (s, t) = (s % n, t % n);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        let mut chq = kspin_ch::ChQuery::new(&ch);
        let mut dij = Dijkstra::new(g.num_vertices());
        let want = dij.one_to_one(&g, s, t);
        prop_assert_eq!(chq.distance(s, t), want);
        prop_assert_eq!(hl.distance(s, t), want);
    }

    #[test]
    fn alt_bounds_are_admissible(g in arb_graph(), s in 0u32..40, t in 0u32..40) {
        let n = g.num_vertices() as u32;
        let (s, t) = (s % n, t % n);
        let alt = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 1);
        let mut dij = Dijkstra::new(g.num_vertices());
        let want = dij.one_to_one(&g, s, t);
        prop_assert!(alt.lower_bound(s, t) <= want);
    }

    #[test]
    fn approx_nvd_keeps_the_one_nn(
        g in arb_graph(),
        gens_raw in proptest::collection::btree_set(0u32..40, 1..8),
        rho in 1usize..5,
        q in 0u32..40,
    ) {
        let n = g.num_vertices() as u32;
        let q = q % n;
        let gens: Vec<VertexId> = gens_raw.into_iter().map(|v| v % n)
            .collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        let apx = ApproxNvd::build(&g, &gens, rho);
        let mut dij = Dijkstra::new(g.num_vertices());
        let dists = dij.one_to_many(&g, q, &gens);
        let best = *dists.iter().min().unwrap();
        let cands = apx.leaf_candidates(g.coord(q));
        prop_assert!(
            cands.iter().any(|&c| dists[c as usize] == best),
            "1NN missing: dists {:?}, candidates {:?}", dists, cands
        );
    }

    #[test]
    fn kspin_bknn_is_exact_on_random_corpora(
        g in arb_graph(),
        placements in proptest::collection::btree_map(0u32..40, proptest::collection::vec(0u32..6, 1..4), 1..12),
        q in 0u32..40,
        k in 1usize..6,
        conjunctive in any::<bool>(),
    ) {
        let n = g.num_vertices() as u32;
        let q = q % n;
        let mut cb = CorpusBuilder::new();
        let mut used = std::collections::HashSet::new();
        for (v, terms) in placements {
            let v = v % n;
            if !used.insert(v) {
                continue;
            }
            let doc: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            cb.add_object(v, &doc);
        }
        let corpus = cb.build();
        let alt = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 2);
        let index = KspinIndex::build(&g, &corpus, &KspinConfig { rho: 2, num_threads: 1, ..KspinConfig::default() });
        let mut engine = QueryEngine::new(&g, &corpus, &index, &alt, DijkstraDistance::new(&g));
        let op = if conjunctive { Op::And } else { Op::Or };
        let got = engine.bknn(q, k, &[0, 1], op);
        let want = brute_bknn(&g, &corpus, q, k, &[0, 1], op);
        let gd: Vec<Weight> = got.iter().map(|&(_, d)| d).collect();
        let wd: Vec<Weight> = want.iter().map(|&(_, d)| d).collect();
        prop_assert_eq!(gd, wd);
    }

    #[test]
    fn kspin_topk_is_exact_on_random_corpora(
        g in arb_graph(),
        placements in proptest::collection::btree_map(0u32..40, proptest::collection::vec(0u32..6, 1..4), 1..12),
        q in 0u32..40,
        k in 1usize..6,
    ) {
        let n = g.num_vertices() as u32;
        let q = q % n;
        let mut cb = CorpusBuilder::new();
        let mut used = std::collections::HashSet::new();
        for (v, terms) in placements {
            let v = v % n;
            if !used.insert(v) {
                continue;
            }
            let doc: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            cb.add_object(v, &doc);
        }
        let corpus = cb.build();
        let alt = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 3);
        let index = KspinIndex::build(&g, &corpus, &KspinConfig { rho: 2, num_threads: 1, ..KspinConfig::default() });
        let mut engine = QueryEngine::new(&g, &corpus, &index, &alt, DijkstraDistance::new(&g));
        let got = engine.top_k(q, k, &[0, 1]);
        let want = kspin_core::query::baseline::brute_topk(&g, &corpus, q, k, &[0, 1]);
        prop_assert_eq!(got.len(), want.len());
        for ((_, gs), (_, ws)) in got.iter().zip(&want) {
            prop_assert!((gs - ws).abs() < 1e-9);
        }
    }

    #[test]
    fn index_auditor_accepts_fresh_and_rebuilt_indexes(
        g in arb_graph(),
        placements in proptest::collection::btree_map(0u32..40, proptest::collection::vec(0u32..6, 1..4), 1..12),
        rho in 1usize..4,
    ) {
        let n = g.num_vertices() as u32;
        let mut cb = CorpusBuilder::new();
        let mut used = std::collections::HashSet::new();
        for (v, terms) in placements {
            let v = v % n;
            if !used.insert(v) {
                continue;
            }
            let doc: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            cb.add_object(v, &doc);
        }
        let corpus = cb.build();
        let mut index = KspinIndex::build(&g, &corpus, &KspinConfig { rho, num_threads: 1, ..KspinConfig::default() });
        prop_assert!(
            index.validate(&corpus).is_ok(),
            "fresh index failed audit: {:?}", index.validate(&corpus).err()
        );
        // Delete an object, fold the lazy updates in, and re-audit: the
        // rebuilt index must re-satisfy the ρ-split and all NVD invariants.
        index.delete_object(&corpus, 0);
        for t in 0..corpus.num_terms() as TermId {
            index.rebuild_term(&g, &corpus, t);
        }
        prop_assert!(
            index.validate(&corpus).is_ok(),
            "rebuilt index failed audit: {:?}", index.validate(&corpus).err()
        );
    }

    #[test]
    fn property1_extraction_order_is_nondecreasing_under_exact_bounds(
        g in arb_graph(),
        placements in proptest::collection::btree_map(0u32..40, proptest::collection::vec(0u32..6, 1..4), 1..12),
        q in 0u32..40,
        rho in 1usize..4,
    ) {
        let n = g.num_vertices() as u32;
        let q = q % n;
        let mut cb = CorpusBuilder::new();
        let mut used = std::collections::HashSet::new();
        for (v, terms) in placements {
            let v = v % n;
            if !used.insert(v) {
                continue;
            }
            let doc: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            cb.add_object(v, &doc);
        }
        let corpus = cb.build();
        let index = KspinIndex::build(&g, &corpus, &KspinConfig { rho, num_threads: 1, ..KspinConfig::default() });
        // An exact lower bound arms the heap's internal Property-1 audit;
        // the loop below re-checks the same monotonicity externally and
        // drains each heap to prove LazyReheap reaches every object.
        let exact = ExactLowerBound::new(&g);
        let ctx = HeapContext::new(&g, &corpus, &exact, q);
        for t in 0..corpus.num_terms() as TermId {
            let Some(mut heap) = InvertedHeap::create(&index, t, &ctx) else {
                continue;
            };
            let mut extracted = Vec::new();
            let mut prev = 0;
            while let Some(c) = heap.extract(&ctx) {
                prop_assert!(
                    c.lower_bound >= prev,
                    "term {}: extracted key {} after {}", t, c.lower_bound, prev
                );
                prev = c.lower_bound;
                extracted.push(c.object);
            }
            extracted.sort_unstable();
            let mut expect: Vec<ObjectId> =
                corpus.inverted(t).iter().map(|p| p.object).collect();
            expect.sort_unstable();
            prop_assert_eq!(
                extracted, expect,
                "term {}: lazy reheap must eventually surface every object exactly once", t
            );
        }
    }

    #[test]
    fn queries_stay_exact_under_the_armed_audit(
        g in arb_graph(),
        placements in proptest::collection::btree_map(0u32..40, proptest::collection::vec(0u32..6, 1..4), 1..12),
        q in 0u32..40,
        k in 1usize..6,
    ) {
        let n = g.num_vertices() as u32;
        let q = q % n;
        let mut cb = CorpusBuilder::new();
        let mut used = std::collections::HashSet::new();
        for (v, terms) in placements {
            let v = v % n;
            if !used.insert(v) {
                continue;
            }
            let doc: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            cb.add_object(v, &doc);
        }
        let corpus = cb.build();
        let index = KspinIndex::build(&g, &corpus, &KspinConfig { rho: 2, num_threads: 1, ..KspinConfig::default() });
        // Exact bounds keep the Property-1 extraction-order audit armed
        // through the full BkNN and top-k paths.
        let exact = ExactLowerBound::new(&g);
        let mut engine = QueryEngine::new(&g, &corpus, &index, &exact, DijkstraDistance::new(&g));
        let got = engine.bknn(q, k, &[0, 1], Op::Or);
        let want = brute_bknn(&g, &corpus, q, k, &[0, 1], Op::Or);
        let gd: Vec<Weight> = got.iter().map(|&(_, d)| d).collect();
        let wd: Vec<Weight> = want.iter().map(|&(_, d)| d).collect();
        prop_assert_eq!(gd, wd);
        let got = engine.top_k(q, k, &[0, 1]);
        let want = kspin_core::query::baseline::brute_topk(&g, &corpus, q, k, &[0, 1]);
        prop_assert_eq!(got.len(), want.len());
        for ((_, gs), (_, ws)) in got.iter().zip(&want) {
            prop_assert!((gs - ws).abs() < 1e-9);
        }
    }

    #[test]
    fn cached_seeding_preserves_property1_under_the_armed_audit(
        g in arb_graph(),
        placements in proptest::collection::btree_map(0u32..40, proptest::collection::vec(0u32..6, 1..4), 1..12),
        q in 0u32..40,
        k in 1usize..6,
    ) {
        let n = g.num_vertices() as u32;
        let q = q % n;
        let mut cb = CorpusBuilder::new();
        let mut used = std::collections::HashSet::new();
        for (v, terms) in placements {
            let v = v % n;
            if !used.insert(v) {
                continue;
            }
            let doc: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            cb.add_object(v, &doc);
        }
        let corpus = cb.build();
        let index = KspinIndex::build(&g, &corpus, &KspinConfig {
            rho: 2,
            num_threads: 1,
            seed_cache: kspin_core::SeedCacheConfig::enabled(),
        });
        // Exact bounds keep the heap's Property-1 extraction-order audit
        // armed; running the same queries twice exercises both the cache
        // miss path (admit) and the hit path (seeded create) under it.
        let exact = ExactLowerBound::new(&g);
        let mut cold = QueryEngine::new(&g, &corpus, &index, &exact, DijkstraDistance::new(&g));
        cold.set_seed_cache(false);
        let mut cached = QueryEngine::new(&g, &corpus, &index, &exact, DijkstraDistance::new(&g));
        for _ in 0..2 {
            let want = cold.bknn(q, k, &[0, 1], Op::Or);
            prop_assert_eq!(cached.bknn(q, k, &[0, 1], Op::Or), want);
            let want = cold.bknn(q, k, &[0, 1], Op::And);
            prop_assert_eq!(cached.bknn(q, k, &[0, 1], Op::And), want);
            let want = cold.top_k(q, k, &[0, 1]);
            let got = cached.top_k(q, k, &[0, 1]);
            prop_assert_eq!(got.len(), want.len());
            for ((go, gs), (wo, ws)) in got.iter().zip(&want) {
                prop_assert_eq!(go, wo);
                prop_assert!((gs - ws).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cached_results_stay_cold_equal_across_updates(
        g in arb_graph(),
        placements in proptest::collection::btree_map(0u32..40, proptest::collection::vec(0u32..6, 1..4), 2..12),
        q in 0u32..40,
        k in 1usize..6,
    ) {
        let n = g.num_vertices() as u32;
        let q = q % n;
        let mut cb = CorpusBuilder::new();
        let mut used = std::collections::HashSet::new();
        for (v, terms) in placements {
            let v = v % n;
            if !used.insert(v) {
                continue;
            }
            let doc: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            cb.add_object(v, &doc);
        }
        let corpus = cb.build();
        let mut index = KspinIndex::build(&g, &corpus, &KspinConfig {
            rho: 2,
            num_threads: 1,
            seed_cache: kspin_core::SeedCacheConfig::enabled(),
        });
        let exact = ExactLowerBound::new(&g);
        // Warm the cache, then run the §6.2 lazy-update path: results of a
        // cache-using engine must equal a cache-bypassing one before and
        // after, proving invalidation hooks the update path correctly.
        {
            let mut warm = QueryEngine::new(&g, &corpus, &index, &exact, DijkstraDistance::new(&g));
            warm.bknn(q, k, &[0, 1], Op::Or);
        }
        index.delete_object(&corpus, 0);
        {
            let mut cold = QueryEngine::new(&g, &corpus, &index, &exact, DijkstraDistance::new(&g));
            cold.set_seed_cache(false);
            let mut cached = QueryEngine::new(&g, &corpus, &index, &exact, DijkstraDistance::new(&g));
            let want = cold.bknn(q, k, &[0, 1], Op::Or);
            prop_assert_eq!(cached.bknn(q, k, &[0, 1], Op::Or), want);
        }
        let mut dist = DijkstraDistance::new(&g);
        index.insert_object(&g, &corpus, 0, &mut dist);
        let mut cold = QueryEngine::new(&g, &corpus, &index, &exact, DijkstraDistance::new(&g));
        cold.set_seed_cache(false);
        let mut cached = QueryEngine::new(&g, &corpus, &index, &exact, DijkstraDistance::new(&g));
        for _ in 0..2 {
            let want = cold.bknn(q, k, &[0, 1], Op::Or);
            prop_assert_eq!(cached.bknn(q, k, &[0, 1], Op::Or), want);
        }
    }

    #[test]
    fn lower_bound_trait_object_is_consistent(g in arb_graph()) {
        let alt = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 4);
        let dynamic: &dyn LowerBound = &alt;
        for s in 0..g.num_vertices() as u32 {
            prop_assert_eq!(dynamic.lower_bound(s, s), 0);
        }
    }
}
