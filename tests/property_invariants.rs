//! Property-based invariants over randomly generated graphs and corpora.
//!
//! These go beyond the seeded fixtures: proptest drives graph topology,
//! weights, object placement and query parameters, shrinking any failure
//! to a minimal counterexample.

use proptest::prelude::*;

use kspin::prelude::*;
use kspin_alt::{AltIndex, LandmarkStrategy};
use kspin_ch::{ChConfig, ContractionHierarchy};
use kspin_core::query::baseline::brute_bknn;
use kspin_core::LowerBound;
use kspin_graph::{Dijkstra, GraphBuilder};
use kspin_hl::HubLabels;
use kspin_nvd::ApproxNvd;
use kspin_text::CorpusBuilder;

/// A connected random graph: a spanning path plus random extra edges.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (5usize..40, proptest::collection::vec((0u32..40, 0u32..40, 1u32..100), 0..60))
        .prop_map(|(n, extras)| {
            let mut b = GraphBuilder::new(n);
            for v in 0..n as u32 {
                b.set_coord(v, kspin_graph::Point::new((v as i32 * 37) % 100, (v as i32 * 61) % 100));
            }
            // Spanning path guarantees connectivity.
            for v in 0..n as u32 - 1 {
                b.add_edge(v, v + 1, 1 + (v % 7));
            }
            for (u, v, w) in extras {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn ch_and_hl_agree_with_dijkstra(g in arb_graph(), s in 0u32..40, t in 0u32..40) {
        let n = g.num_vertices() as u32;
        let (s, t) = (s % n, t % n);
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        let mut chq = kspin_ch::ChQuery::new(&ch);
        let mut dij = Dijkstra::new(g.num_vertices());
        let want = dij.one_to_one(&g, s, t);
        prop_assert_eq!(chq.distance(s, t), want);
        prop_assert_eq!(hl.distance(s, t), want);
    }

    #[test]
    fn alt_bounds_are_admissible(g in arb_graph(), s in 0u32..40, t in 0u32..40) {
        let n = g.num_vertices() as u32;
        let (s, t) = (s % n, t % n);
        let alt = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 1);
        let mut dij = Dijkstra::new(g.num_vertices());
        let want = dij.one_to_one(&g, s, t);
        prop_assert!(alt.lower_bound(s, t) <= want);
    }

    #[test]
    fn approx_nvd_keeps_the_one_nn(
        g in arb_graph(),
        gens_raw in proptest::collection::btree_set(0u32..40, 1..8),
        rho in 1usize..5,
        q in 0u32..40,
    ) {
        let n = g.num_vertices() as u32;
        let q = q % n;
        let gens: Vec<VertexId> = gens_raw.into_iter().map(|v| v % n)
            .collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        let apx = ApproxNvd::build(&g, &gens, rho);
        let mut dij = Dijkstra::new(g.num_vertices());
        let dists = dij.one_to_many(&g, q, &gens);
        let best = *dists.iter().min().unwrap();
        let cands = apx.leaf_candidates(g.coord(q));
        prop_assert!(
            cands.iter().any(|&c| dists[c as usize] == best),
            "1NN missing: dists {:?}, candidates {:?}", dists, cands
        );
    }

    #[test]
    fn kspin_bknn_is_exact_on_random_corpora(
        g in arb_graph(),
        placements in proptest::collection::btree_map(0u32..40, proptest::collection::vec(0u32..6, 1..4), 1..12),
        q in 0u32..40,
        k in 1usize..6,
        conjunctive in any::<bool>(),
    ) {
        let n = g.num_vertices() as u32;
        let q = q % n;
        let mut cb = CorpusBuilder::new();
        let mut used = std::collections::HashSet::new();
        for (v, terms) in placements {
            let v = v % n;
            if !used.insert(v) {
                continue;
            }
            let doc: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            cb.add_object(v, &doc);
        }
        let corpus = cb.build();
        let alt = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 2);
        let index = KspinIndex::build(&g, &corpus, &KspinConfig { rho: 2, num_threads: 1 });
        let mut engine = QueryEngine::new(&g, &corpus, &index, &alt, DijkstraDistance::new(&g));
        let op = if conjunctive { Op::And } else { Op::Or };
        let got = engine.bknn(q, k, &[0, 1], op);
        let want = brute_bknn(&g, &corpus, q, k, &[0, 1], op);
        let gd: Vec<Weight> = got.iter().map(|&(_, d)| d).collect();
        let wd: Vec<Weight> = want.iter().map(|&(_, d)| d).collect();
        prop_assert_eq!(gd, wd);
    }

    #[test]
    fn kspin_topk_is_exact_on_random_corpora(
        g in arb_graph(),
        placements in proptest::collection::btree_map(0u32..40, proptest::collection::vec(0u32..6, 1..4), 1..12),
        q in 0u32..40,
        k in 1usize..6,
    ) {
        let n = g.num_vertices() as u32;
        let q = q % n;
        let mut cb = CorpusBuilder::new();
        let mut used = std::collections::HashSet::new();
        for (v, terms) in placements {
            let v = v % n;
            if !used.insert(v) {
                continue;
            }
            let doc: Vec<(TermId, u32)> = terms.iter().map(|&t| (t, 1)).collect();
            cb.add_object(v, &doc);
        }
        let corpus = cb.build();
        let alt = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 3);
        let index = KspinIndex::build(&g, &corpus, &KspinConfig { rho: 2, num_threads: 1 });
        let mut engine = QueryEngine::new(&g, &corpus, &index, &alt, DijkstraDistance::new(&g));
        let got = engine.top_k(q, k, &[0, 1]);
        let want = kspin_core::query::baseline::brute_topk(&g, &corpus, q, k, &[0, 1]);
        prop_assert_eq!(got.len(), want.len());
        for ((_, gs), (_, ws)) in got.iter().zip(&want) {
            prop_assert!((gs - ws).abs() < 1e-9);
        }
    }

    #[test]
    fn lower_bound_trait_object_is_consistent(g in arb_graph()) {
        let alt = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 4);
        let dynamic: &dyn LowerBound = &alt;
        for s in 0..g.num_vertices() as u32 {
            prop_assert_eq!(dynamic.lower_bound(s, s), 0);
        }
    }
}
