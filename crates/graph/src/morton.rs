//! Space-filling-curve codes over normalized coordinates.
//!
//! Two curves over a 65536 × 65536 grid normalized from a graph's bounding
//! box:
//!
//! * **Morton (Z-order)** codes interleave 16 bits per axis. The
//!   ρ-Approximate NVD stores its quadtree as a *Morton list* (§6.1, after
//!   Samet [22]): leaves sorted by the Z-order code of their lower corner,
//!   located by binary search.
//! * **Hilbert** codes follow the Hilbert curve over the same grid. Unlike
//!   Z-order the Hilbert curve has no long diagonal jumps, so sorting
//!   vertices by Hilbert code gives the best spatial locality for the
//!   cache-conscious renumbering in [`crate::relabel`].

use crate::types::Point;

/// Bits per axis; quadtree depth is at most this.
pub const BITS: u32 = 16;

/// Maps points in a fixed bounding box onto space-filling-curve codes.
#[derive(Debug, Clone, Copy)]
pub struct MortonSpace {
    min: Point,
    scale_x: f64,
    scale_y: f64,
}

impl MortonSpace {
    /// Creates a space covering `min..=max` (degenerate boxes allowed).
    pub fn new(min: Point, max: Point) -> Self {
        let extent = |lo: i32, hi: i32| -> f64 {
            let e = (hi as i64 - lo as i64) as f64;
            if e <= 0.0 {
                1.0
            } else {
                e
            }
        };
        let grid = ((1u64 << BITS) - 1) as f64;
        MortonSpace {
            min,
            // PANIC-OK: float division — grid and extent(..) are both f64.
            scale_x: grid / extent(min.x, max.x),
            scale_y: grid / extent(min.y, max.y), // PANIC-OK: float division.
        }
    }

    /// The raw fields — `(min, scale_x, scale_y)` — the flat-serialization
    /// boundary for snapshots.
    pub fn to_parts(&self) -> (Point, f64, f64) {
        (self.min, self.scale_x, self.scale_y)
    }

    /// Reassembles a space from stored parts.
    ///
    /// # Errors
    /// When either scale is non-finite or non-positive (every space built
    /// by [`MortonSpace::new`] has strictly positive finite scales).
    pub fn from_parts(min: Point, scale_x: f64, scale_y: f64) -> Result<Self, String> {
        if !(scale_x.is_finite() && scale_x > 0.0 && scale_y.is_finite() && scale_y > 0.0) {
            return Err(format!(
                "morton scales must be finite and positive, got ({scale_x}, {scale_y})"
            ));
        }
        Ok(MortonSpace {
            min,
            scale_x,
            scale_y,
        })
    }

    /// Grid cell of `p` on the normalized `2^BITS × 2^BITS` lattice. Points
    /// outside the box clamp to its border.
    #[inline]
    pub fn grid(&self, p: Point) -> (u32, u32) {
        let gx = (((p.x as i64 - self.min.x as i64) as f64 * self.scale_x) as i64)
            .clamp(0, (1 << BITS) - 1) as u32;
        let gy = (((p.y as i64 - self.min.y as i64) as f64 * self.scale_y) as i64)
            .clamp(0, (1 << BITS) - 1) as u32;
        (gx, gy)
    }

    /// The Morton code of `p`. Points outside the box clamp to its border.
    pub fn code(&self, p: Point) -> u32 {
        let (gx, gy) = self.grid(p);
        interleave(gx) | (interleave(gy) << 1)
    }

    /// The Hilbert-curve index of `p` on the normalized grid. Points outside
    /// the box clamp to its border.
    pub fn hilbert_code(&self, p: Point) -> u64 {
        let (gx, gy) = self.grid(p);
        hilbert_d(gx, gy)
    }
}

/// Spreads the low 16 bits of `x` into the even bit positions.
#[inline]
pub fn interleave(x: u32) -> u32 {
    let mut x = x & 0xFFFF;
    x = (x | (x << 8)) & 0x00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

/// Inverse of [`interleave`].
#[inline]
pub fn deinterleave(x: u32) -> u32 {
    let mut x = x & 0x5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF;
    x
}

/// Distance along the Hilbert curve of the grid cell `(x, y)` on the
/// `2^BITS × 2^BITS` lattice (coordinates above the lattice are masked).
///
/// The classic iterative quadrant-rotation formulation: at each scale `s`
/// the quadrant containing the point contributes `s² · q` to the index and
/// the frame is rotated/reflected so the sub-curve orientation matches.
pub fn hilbert_d(x: u32, y: u32) -> u64 {
    let n: u32 = 1 << BITS;
    let (mut x, mut y) = (x & (n - 1), y & (n - 1));
    let mut d: u64 = 0;
    let mut s: u32 = n / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant so the sub-curve enters the right corner.
        if ry == 0 {
            if rx == 1 {
                x = (n - 1) - x;
                y = (n - 1) - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_roundtrip() {
        for x in [0u32, 1, 2, 0xFFFF, 0x1234, 0xABCD] {
            assert_eq!(deinterleave(interleave(x)), x);
        }
    }

    #[test]
    fn codes_preserve_quadrant_order() {
        let s = MortonSpace::new(Point::new(0, 0), Point::new(100, 100));
        // The four quadrant corners must map to the four Morton quadrants in
        // Z order: (lo,lo) < (hi,lo) < (lo,hi) < (hi,hi) by top 2 bits.
        let c00 = s.code(Point::new(10, 10)) >> 30;
        let c10 = s.code(Point::new(90, 10)) >> 30;
        let c01 = s.code(Point::new(10, 90)) >> 30;
        let c11 = s.code(Point::new(90, 90)) >> 30;
        assert_eq!((c00, c10, c01, c11), (0, 1, 2, 3));
    }

    #[test]
    fn out_of_box_points_clamp() {
        let s = MortonSpace::new(Point::new(0, 0), Point::new(10, 10));
        assert_eq!(s.code(Point::new(-5, -5)), s.code(Point::new(0, 0)));
        assert_eq!(s.code(Point::new(50, 50)), s.code(Point::new(10, 10)));
    }

    #[test]
    fn degenerate_box_is_safe() {
        let s = MortonSpace::new(Point::new(5, 5), Point::new(5, 5));
        // No panic, and the box's own corner maps to the origin code.
        assert_eq!(s.code(Point::new(5, 5)), 0);
        // Points beyond the degenerate box clamp without overflow.
        let _ = s.code(Point::new(i32::MAX, i32::MIN));
    }

    #[test]
    fn nearby_points_share_prefixes() {
        let s = MortonSpace::new(Point::new(0, 0), Point::new(1 << 20, 1 << 20));
        let a = s.code(Point::new(1000, 1000));
        let b = s.code(Point::new(1010, 1010));
        let far = s.code(Point::new(1_000_000, 1_000_000));
        let shared_ab = (a ^ b).leading_zeros();
        let shared_af = (a ^ far).leading_zeros();
        assert!(shared_ab > shared_af);
    }

    #[test]
    fn hilbert_is_a_bijection_on_a_subgrid() {
        // Exhaustively check the low 8×8 corner maps to 64 distinct indices
        // and that horizontally/vertically adjacent low-corner cells of the
        // full curve are adjacent in index (the defining Hilbert property
        // checked on the first steps of the curve).
        let mut seen = std::collections::BTreeSet::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                seen.insert(hilbert_d(x, y));
            }
        }
        assert_eq!(seen.len(), 64);
        // The curve starts at the origin, and its first four steps stay
        // inside the 2×2 block containing the start (the defining
        // recursive-block property; the block's internal orientation
        // depends on the curve depth).
        assert_eq!(hilbert_d(0, 0), 0);
        let block: std::collections::BTreeSet<u64> = [(0, 0), (0, 1), (1, 0), (1, 1)]
            .iter()
            .map(|&(x, y)| hilbert_d(x, y))
            .collect();
        assert_eq!(block, (0..4).collect());
    }

    #[test]
    fn hilbert_neighbors_stay_close() {
        // Hilbert's locality: grid neighbors differ far less in index than
        // distant cells on average. Spot-check against a far pair.
        let near = hilbert_d(1000, 1000).abs_diff(hilbert_d(1000, 1001));
        let far = hilbert_d(0, 0).abs_diff(hilbert_d(65535, 0));
        assert!(near < far);
    }

    #[test]
    fn hilbert_space_matches_raw_grid() {
        let s = MortonSpace::new(Point::new(0, 0), Point::new(65535, 65535));
        assert_eq!(s.hilbert_code(Point::new(0, 1)), hilbert_d(0, 1));
    }
}
