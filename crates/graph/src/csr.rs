//! Compressed-sparse-row graph representation.
//!
//! The CSR layout keeps each vertex's adjacency contiguous, which is the
//! single biggest lever for Dijkstra throughput on road networks (the
//! traversal is memory-bound). Undirected edges are stored once per
//! direction.

use crate::types::{Edge, Point, VertexId, Weight};

/// An immutable undirected road-network graph in CSR form.
///
/// Construct via [`GraphBuilder`], [`crate::dimacs`] or [`crate::generate`].
#[derive(Debug, Clone)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets`/`weights` for vertex `v`.
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
    coords: Vec<Point>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (each stored twice internally).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Number of directed arcs (twice [`Self::num_edges`]).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Iterates `(neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        // PANIC-OK: offsets has n + 1 slots and v < n for every vertex id the
        // builder hands out; lo <= hi <= num_arcs by CSR construction.
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize; // PANIC-OK: v + 1 <= n.
        self.targets[lo..hi] // PANIC-OK: CSR offsets bound the arc arrays.
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied()) // PANIC-OK: same range.
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Coordinate of `v`.
    #[inline]
    pub fn coord(&self, v: VertexId) -> Point {
        // PANIC-OK: coords is sized n; v < n for every built vertex id.
        self.coords[v as usize]
    }

    /// All coordinates, indexed by vertex id.
    #[inline]
    pub fn coords(&self) -> &[Point] {
        &self.coords
    }

    /// Weight of edge `(u, v)` if present.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.neighbors(u).find(|&(t, _)| t == v).map(|(_, w)| w)
    }

    /// Iterates every undirected edge once (`u < v`).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| Edge::new(u, v, w))
        })
    }

    /// Approximate in-memory size in bytes (CSR arrays + coordinates).
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.targets.len() * 4
            + self.weights.len() * 4
            + self.coords.len() * 8
    }

    /// Axis-aligned bounding box over all vertex coordinates as
    /// `(min, max)`. Returns a degenerate box for an empty graph.
    pub fn bounding_box(&self) -> (Point, Point) {
        let mut min = Point::new(i32::MAX, i32::MAX);
        let mut max = Point::new(i32::MIN, i32::MIN);
        for p in &self.coords {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        if self.coords.is_empty() {
            (Point::new(0, 0), Point::new(0, 0))
        } else {
            (min, max)
        }
    }

    /// Borrowed views of the raw CSR arrays — `(offsets, targets, weights,
    /// coords)` — the flat-serialization boundary for snapshots.
    pub fn csr_parts(&self) -> (&[u32], &[VertexId], &[Weight], &[Point]) {
        (&self.offsets, &self.targets, &self.weights, &self.coords)
    }

    /// Reassembles a graph from raw CSR arrays without re-sorting or
    /// copying, validating every invariant the `PANIC-OK` indexing in the
    /// accessors relies on: `n + 1` monotone offsets bracketing the arc
    /// arrays, targets in range, and per-vertex adjacency strictly
    /// ascending (the builder's canonical order).
    ///
    /// # Errors
    /// A description of the first violated CSR invariant.
    pub fn from_csr_parts(
        offsets: Vec<u32>,
        targets: Vec<VertexId>,
        weights: Vec<Weight>,
        coords: Vec<Point>,
    ) -> Result<Graph, String> {
        if offsets.is_empty() {
            return Err("offsets must hold n + 1 entries, got 0".into());
        }
        let n = offsets.len() - 1;
        if coords.len() != n {
            return Err(format!(
                "coords holds {} entries for {n} vertices",
                coords.len()
            ));
        }
        if targets.len() != weights.len() {
            return Err(format!(
                "targets/weights length mismatch: {} vs {}",
                targets.len(),
                weights.len()
            ));
        }
        if u32::try_from(targets.len()).is_err() {
            return Err(format!("arc count {} exceeds u32 offsets", targets.len()));
        }
        if offsets.first() != Some(&0) || offsets.last() != Some(&(targets.len() as u32)) {
            return Err("offsets must start at 0 and end at the arc count".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be monotone non-decreasing".into());
        }
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            let adj = &targets[lo..hi];
            if adj.iter().any(|&t| t as usize >= n) {
                return Err(format!("vertex {v} has a target out of range {n}"));
            }
            if adj.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("vertex {v} adjacency is not strictly ascending"));
            }
        }
        Ok(Graph {
            offsets,
            targets,
            weights,
            coords,
        })
    }
}

/// Incremental builder for [`Graph`].
///
/// Accepts edges in any order; duplicate `(u, v)` pairs keep the smallest
/// weight, mirroring how the DIMACS loaders collapse parallel road segments.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<Edge>,
    coords: Vec<Point>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices at the origin.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            num_vertices: n,
            edges: Vec::new(),
            coords: vec![Point::default(); n],
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Sets the coordinate of vertex `v`.
    ///
    /// # Panics
    /// If `v` is out of range.
    pub fn set_coord(&mut self, v: VertexId, p: Point) {
        self.coords[v as usize] = p;
    }

    /// Adds an undirected edge. Self-loops are ignored (they can never lie
    /// on a shortest path with positive weights).
    ///
    /// # Panics
    /// If an endpoint is out of range or the weight is zero.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, weight: Weight) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge endpoint out of range: ({u}, {v}) with n = {}",
            self.num_vertices
        );
        assert!(weight > 0, "edge weights must be strictly positive");
        if u == v {
            return;
        }
        self.edges.push(Edge::new(u, v, weight));
    }

    /// Finalizes into a CSR [`Graph`], deduplicating parallel edges by
    /// minimum weight.
    pub fn build(mut self) -> Graph {
        // Canonicalize so duplicates collapse regardless of insertion order.
        for e in &mut self.edges {
            if e.u > e.v {
                std::mem::swap(&mut e.u, &mut e.v);
            }
        }
        self.edges.sort_unstable_by_key(|e| (e.u, e.v, e.weight));
        self.edges.dedup_by(|next, prev| {
            // Retain the first (minimum-weight) copy of each pair.
            next.u == prev.u && next.v == prev.v
        });

        let n = self.num_vertices;
        let mut deg = vec![0u32; n + 1];
        for e in &self.edges {
            deg[e.u as usize + 1] += 1;
            deg[e.v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let offsets = deg;
        let arcs = self.edges.len() * 2;
        let mut targets = vec![0 as VertexId; arcs];
        let mut weights = vec![0 as Weight; arcs];
        let mut cursor = offsets.clone();
        for e in &self.edges {
            let cu = &mut cursor[e.u as usize];
            targets[*cu as usize] = e.v;
            weights[*cu as usize] = e.weight;
            *cu += 1;
            let cv = &mut cursor[e.v as usize];
            targets[*cv as usize] = e.u;
            weights[*cv as usize] = e.weight;
            *cv += 1;
        }
        Graph {
            offsets,
            targets,
            weights,
            coords: self.coords,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 3);
        b.add_edge(2, 0, 10);
        b.build()
    }

    #[test]
    fn csr_counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle();
        assert_eq!(g.edge_weight(0, 1), Some(2));
        assert_eq!(g.edge_weight(1, 0), Some(2));
        assert_eq!(g.edge_weight(0, 2), Some(10));
        assert_eq!(g.edge_weight(1, 2), Some(3));
        assert_eq!(g.edge_weight(0, 0), None);
    }

    #[test]
    fn parallel_edges_keep_minimum_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 7);
        b.add_edge(1, 0, 3); // reversed duplicate, smaller
        b.add_edge(0, 1, 9);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 5);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_weight_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0);
    }

    #[test]
    fn edges_iterator_visits_each_edge_once() {
        let g = triangle();
        let mut es: Vec<_> = g.edges().map(|e| (e.u, e.v, e.weight)).collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1, 2), (0, 2, 10), (1, 2, 3)]);
    }

    #[test]
    fn coords_roundtrip_and_bbox() {
        let mut b = GraphBuilder::new(2);
        b.set_coord(0, Point::new(-5, 2));
        b.set_coord(1, Point::new(9, -1));
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.coord(0), Point::new(-5, 2));
        let (min, max) = g.bounding_box();
        assert_eq!(min, Point::new(-5, -1));
        assert_eq!(max, Point::new(9, 2));
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
