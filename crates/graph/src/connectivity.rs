//! Connected-component analysis.
//!
//! NVDs partition *all* vertices among objects, which only makes sense on a
//! connected graph (§2 assumes one). The synthetic generator and the DIMACS
//! loader both funnel through [`largest_component`] to guarantee this.

use crate::csr::{Graph, GraphBuilder};
use crate::types::VertexId;

/// Labels each vertex with a component id in `0..k` and returns
/// `(labels, component_sizes)`.
pub fn components(graph: &Graph) -> (Vec<u32>, Vec<usize>) {
    let n = graph.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n as VertexId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        stack.push(start);
        label[start as usize] = id;
        while let Some(v) = stack.pop() {
            size += 1;
            for (u, _) in graph.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = id;
                    stack.push(u);
                }
            }
        }
        sizes.push(size);
    }
    (label, sizes)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(graph: &Graph) -> bool {
    components(graph).1.len() <= 1
}

/// Extracts the largest connected component as a new graph with dense
/// renumbered vertex ids, returning `(subgraph, old_id_of_new)` where
/// `old_id_of_new[new] = old`.
pub fn largest_component(graph: &Graph) -> (Graph, Vec<VertexId>) {
    let (labels, sizes) = components(graph);
    if sizes.len() <= 1 {
        let ids = (0..graph.num_vertices() as VertexId).collect();
        return (graph.clone(), ids);
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .expect("non-empty component list");
    let mut new_of_old = vec![VertexId::MAX; graph.num_vertices()];
    let mut old_of_new = Vec::new();
    for v in 0..graph.num_vertices() {
        if labels[v] == best {
            new_of_old[v] = old_of_new.len() as VertexId;
            old_of_new.push(v as VertexId);
        }
    }
    let mut b = GraphBuilder::new(old_of_new.len());
    for (new, &old) in old_of_new.iter().enumerate() {
        b.set_coord(new as VertexId, graph.coord(old));
    }
    for e in graph.edges() {
        let (nu, nv) = (new_of_old[e.u as usize], new_of_old[e.v as usize]);
        if nu != VertexId::MAX && nv != VertexId::MAX {
            b.add_edge(nu, nv, e.weight);
        }
    }
    (b.build(), old_of_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Point;

    /// Two components: {0,1,2} (a path) and {3,4}; vertex 5 isolated.
    fn disconnected() -> Graph {
        let mut b = GraphBuilder::new(6);
        for v in 0..6 {
            b.set_coord(v, Point::new(v as i32, 0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(3, 4, 1);
        b.build()
    }

    #[test]
    fn counts_components_and_sizes() {
        let g = disconnected();
        let (labels, sizes) = components(&g);
        assert_eq!(sizes.len(), 3);
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[5]);
    }

    #[test]
    fn connectivity_predicate() {
        assert!(!is_connected(&disconnected()));
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1);
        assert!(is_connected(&b.build()));
        assert!(is_connected(&GraphBuilder::new(0).build()));
    }

    #[test]
    fn largest_component_extracts_and_renumbers() {
        let g = disconnected();
        let (sub, old_ids) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert!(is_connected(&sub));
        assert_eq!(old_ids, vec![0, 1, 2]);
        // Coordinates follow the renumbering.
        assert_eq!(sub.coord(2), Point::new(2, 0));
    }

    #[test]
    fn connected_graph_passes_through_unchanged() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let g = b.build();
        let (sub, ids) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
