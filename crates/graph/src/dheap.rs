//! The indexed d-ary heap kernel shared by every distance module.
//!
//! Every hot loop in this workspace — Dijkstra, bidirectional Dijkstra,
//! ALT A*, the NVD construction sweep, and the Heap Generator's inverted
//! heaps — is a monotone best-first search over a priority queue of
//! `(Weight, u32)` entries. The std `BinaryHeap` forces *lazy deletion*
//! there: a vertex relaxed-then-improved leaves its stale entry behind to
//! be percolated, popped, and discarded. [`DaryHeap`] replaces that with a
//! true `decrease-key`:
//!
//! * **Indexed** — a position map tracks where each item sits in the heap
//!   array, so an improved key is sifted in place instead of duplicated.
//!   A popped or never-inserted item is visible through the same map
//!   ([`DaryHeap::in_heap`] / [`DaryHeap::was_inserted`]), which also
//!   replaces the per-search `inserted: Vec<bool>` side tables.
//! * **4-ary, packed** — children of slot `i` are `4i+1 ..= 4i+4`; each
//!   entry packs `(key, !item)` into one `u64` so heap order is plain
//!   integer order (one compare) and a sift-down level's four children
//!   span 32 contiguous bytes. Road-network frontiers push far more than
//!   they pop deep, and a 4-ary layout halves the tree height the common
//!   `push`/`decrease` sift-up pays, at the price of at most four
//!   comparisons per sift-down level — the classic trade measured on road
//!   networks by Abeywickrama et al. (PAPERS.md).
//! * **Epoch-reset** — the position map is stamped with an epoch counter,
//!   so [`DaryHeap::clear`] is O(1) and a long-lived search struct never
//!   allocates after its arrays reach high-water capacity (the same trick
//!   the distance/parent arrays in [`crate::dijkstra`] already use).
//! * **Deterministic** — entries order by `(key asc, item desc)`, exactly
//!   the pop order of the `BinaryHeap<(Reverse<Weight>, u32)>` max-heap it
//!   replaces. Since each item appears at most once (at its best key), the
//!   pop *sequence* is bit-identical to the lazy-deletion kernel's
//!   non-stale pop sequence: every caller's results are unchanged.
//!
//! Instrumentation is structural: [`HeapCounters`] counts `pushes`,
//! `pops`, and `decrease_keys` at the only code paths that can perform
//! them, and `stale_skipped` has **no increment site at all** — the
//! indexed heap cannot produce a stale entry, which is the whole point.
//! The counter exists so benches report the lazy/indexed comparison on one
//! schema (`BENCH_distance.json`) and tests can assert it stays zero.

use crate::types::Weight;

/// Branching factor of the heap: four children per node, one 32-byte group
/// of packed entries per sift-down level.
pub const ARITY: usize = 4;

/// Position-map sentinel: the item was inserted this epoch and has since
/// been popped.
const POPPED: u32 = u32::MAX;

/// Structural instrumentation of one heap (cumulative over its lifetime;
/// snapshot and subtract via [`HeapCounters::since`] for per-query deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapCounters {
    /// Entries inserted (first insertion of an item per epoch).
    pub pushes: u64,
    /// Entries removed via [`DaryHeap::pop`].
    pub pops: u64,
    /// In-place key improvements — each one is a stale entry a lazy
    /// kernel would have pushed, percolated, popped, and skipped.
    pub decrease_keys: u64,
    /// Stale entries popped and discarded. **Structurally zero** for
    /// [`DaryHeap`] (no code path increments it); lazy-deletion reference
    /// kernels in benches and tests report their skips through the same
    /// field so the two kernels share one schema.
    pub stale_skipped: u64,
    /// Pushes that landed with the entry array already at capacity —
    /// i.e. pushes that made the allocator grow the heap. **Structurally
    /// zero** after [`DaryHeap::new`] pre-sizes `entries` to `n` (an item
    /// occupies at most one slot per epoch, so `len ≤ n` always); the
    /// counter exists so the steady-state allocation certificate is
    /// checkable dynamically per query, not just statically.
    pub grows: u64,
}

impl HeapCounters {
    /// The counter delta since `base` was snapshotted (saturating, so a
    /// stale base never underflows).
    pub fn since(self, base: HeapCounters) -> HeapCounters {
        HeapCounters {
            pushes: self.pushes.saturating_sub(base.pushes),
            pops: self.pops.saturating_sub(base.pops),
            decrease_keys: self.decrease_keys.saturating_sub(base.decrease_keys),
            stale_skipped: self.stale_skipped.saturating_sub(base.stale_skipped),
            grows: self.grows.saturating_sub(base.grows),
        }
    }
}

impl std::ops::AddAssign for HeapCounters {
    fn add_assign(&mut self, rhs: HeapCounters) {
        self.pushes += rhs.pushes;
        self.pops += rhs.pops;
        self.decrease_keys += rhs.decrease_keys;
        self.stale_skipped += rhs.stale_skipped;
        self.grows += rhs.grows;
    }
}

/// An indexed 4-ary min-heap over items `0..n` with `Weight` keys.
///
/// Each item may be present at most once; [`DaryHeap::insert_or_decrease`]
/// is the single relaxation entry point. Ties order by descending item id
/// (matching the `(Reverse<Weight>, u32)` tuple order of the std kernel
/// this replaces). `clear` is O(1); the arrays grow to high-water capacity
/// once and are never reallocated afterwards.
#[derive(Debug, Clone)]
pub struct DaryHeap {
    /// Heap-ordered packed entries, `(key << 32) | !item`: plain `u64`
    /// order *is* `(key asc, item desc)`, so every heap comparison is one
    /// integer compare and a sift-down level's four children span 32
    /// contiguous bytes.
    entries: Vec<u64>,
    /// `pos[item]` = heap slot of `item`, or [`POPPED`]; only meaningful
    /// when `stamp[item] == epoch`.
    pos: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    counters: HeapCounters,
}

/// Packs an entry so ascending `u64` order equals `(key asc, item desc)`;
/// the item is stored complemented so larger ids compare smaller.
#[inline]
fn pack(key: Weight, item: u32) -> u64 {
    (u64::from(key) << 32) | u64::from(!item)
}

#[inline]
fn key_of(entry: u64) -> Weight {
    (entry >> 32) as Weight
}

#[inline]
fn item_of(entry: u64) -> u32 {
    !(entry as u32)
}

impl DaryHeap {
    /// Creates a heap for items `0..n`.
    pub fn new(n: usize) -> Self {
        DaryHeap {
            // Pre-sized to the capacity invariant push relies on: each
            // item occupies at most one slot per epoch, so len ≤ n and
            // the entry array never reallocates after construction.
            entries: Vec::with_capacity(n),
            pos: vec![0; n],
            stamp: vec![0; n],
            epoch: 1,
            counters: HeapCounters::default(),
        }
    }

    /// Empties the heap and forgets every item's insertion state in O(1)
    /// (epoch bump). Counters are cumulative and survive.
    pub fn clear(&mut self) {
        #[cfg(any(debug_assertions, feature = "audit"))]
        self.audit_on_clear();
        self.entries.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: force-refresh every stamp.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// Number of buffered (not yet popped) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries remain.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The minimum entry `(key, item)` without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(Weight, u32)> {
        self.entries.first().map(|&e| (key_of(e), item_of(e)))
    }

    /// Whether `item` currently sits in the heap.
    #[inline]
    pub fn in_heap(&self, item: u32) -> bool {
        self.stamp[item as usize] == self.epoch && self.pos[item as usize] != POPPED
    }

    /// Whether `item` was inserted at any point this epoch (in the heap
    /// now, or already popped). Replaces the `inserted: Vec<bool>` side
    /// tables of the lazy kernels.
    #[inline]
    pub fn was_inserted(&self, item: u32) -> bool {
        // PANIC-OK: stamp is sized n at new(); items are 0..n by the kernel contract.
        self.stamp[item as usize] == self.epoch
    }

    /// Inserts `item` with `key`. `item` must not have been inserted this
    /// epoch (checked in debug builds); relaxation loops that may revisit
    /// items use [`DaryHeap::insert_or_decrease`].
    #[inline]
    pub fn push(&mut self, key: Weight, item: u32) {
        debug_assert!(
            !self.was_inserted(item),
            "push of item {item} already inserted this epoch"
        );
        // PANIC-OK: stamp is sized n at new(); items are 0..n by the kernel contract.
        self.stamp[item as usize] = self.epoch;
        let slot = self.entries.len();
        if slot == self.entries.capacity() {
            // Only reachable by pushing an item ≥ n (a kernel-contract
            // violation the indexing above would have caught first).
            self.counters.grows += 1;
        }
        // ALLOC-OK: new() pre-sizes entries to n and each item occupies at
        // most one slot per epoch, so len ≤ n and this never reallocates;
        // the grows counter above proves it dynamically per query.
        self.entries.push(pack(key, item));
        self.counters.pushes += 1;
        self.sift_up(slot);
    }

    /// The relaxation primitive: inserts `item` if unseen this epoch,
    /// decreases its key in place if `key` improves on the buffered one,
    /// and does nothing otherwise. Must not be called for an item already
    /// popped this epoch (a monotone search never improves a settled
    /// vertex; checked in debug builds).
    #[inline]
    pub fn insert_or_decrease(&mut self, key: Weight, item: u32) {
        let i = item as usize;
        // PANIC-OK: stamp/pos are sized n at new(); items are 0..n by the kernel contract.
        if self.stamp[i] != self.epoch {
            self.push(key, item);
            return;
        }
        let p = self.pos[i]; // PANIC-OK: pos is sized n; i < n as above.
        debug_assert!(
            p != POPPED,
            "decrease-key on item {item} already popped this epoch"
        );
        let p = p as usize;
        // PANIC-OK: pos[i] is a live slot (< entries.len()) by the position-map
        // invariant that `validate` audits after every op in the model tests.
        if key < key_of(self.entries[p]) {
            self.entries[p] = pack(key, item); // PANIC-OK: same slot as the read above.
            self.counters.decrease_keys += 1;
            self.sift_up(p);
        }
    }

    /// Removes and returns the minimum entry. Never returns a stale entry:
    /// each item pops at most once per epoch, at its final key.
    #[inline]
    pub fn pop(&mut self) -> Option<(Weight, u32)> {
        let top = *self.entries.first()?;
        let item = item_of(top);
        // PANIC-OK: every buffered item is < n (push stamped it), pos is sized n.
        self.pos[item as usize] = POPPED;
        self.counters.pops += 1;
        let last = self.entries.pop().unwrap_or(top);
        if !self.entries.is_empty() {
            self.entries[0] = last; // PANIC-OK: non-empty checked on the line above.
            self.pos[item_of(last) as usize] = 0; // PANIC-OK: buffered item < n.
            self.sift_down(0);
        }
        Some((key_of(top), item))
    }

    /// Lifetime-cumulative instrumentation counters.
    pub fn counters(&self) -> HeapCounters {
        self.counters
    }

    /// Hole-based sift-up: moves ancestors down until slot `i`'s entry is
    /// no longer before its parent. One packed compare per level.
    fn sift_up(&mut self, mut i: usize) {
        // PANIC-OK: callers pass a live slot (push: just appended; decrease: pos[i]).
        let entry = self.entries[i];
        while i > 0 {
            let parent = (i - 1) / ARITY; // PANIC-OK: ARITY is the const 4.
            let pe = self.entries[parent]; // PANIC-OK: parent < i < len.
            if entry < pe {
                self.entries[i] = pe; // PANIC-OK: i is a live slot throughout.
                self.pos[item_of(pe) as usize] = i as u32; // PANIC-OK: buffered item < n.
                i = parent;
            } else {
                break;
            }
        }
        self.entries[i] = entry; // PANIC-OK: i is a live slot throughout.
        self.pos[item_of(entry) as usize] = i as u32; // PANIC-OK: buffered item < n.
    }

    /// Hole-based sift-down: moves the smallest child up until slot `i`'s
    /// entry is no larger than all of its (at most [`ARITY`]) children.
    fn sift_down(&mut self, mut i: usize) {
        // PANIC-OK: the only caller (pop) passes slot 0 of a non-empty heap.
        let entry = self.entries[i];
        let len = self.entries.len();
        loop {
            let first = i * ARITY + 1;
            if first >= len {
                break;
            }
            let last = (first + ARITY).min(len);
            let mut best = first;
            let mut be = self.entries[first]; // PANIC-OK: first < len checked above.
            for c in first + 1..last {
                let ce = self.entries[c]; // PANIC-OK: c < last <= len.
                if ce < be {
                    best = c;
                    be = ce;
                }
            }
            if be < entry {
                self.entries[i] = be; // PANIC-OK: i is a live slot throughout.
                self.pos[item_of(be) as usize] = i as u32; // PANIC-OK: buffered item < n.
                i = best;
            } else {
                break;
            }
        }
        self.entries[i] = entry; // PANIC-OK: i is a live slot throughout.
        self.pos[item_of(entry) as usize] = i as u32; // PANIC-OK: buffered item < n.
    }

    /// The structural auditor (exercised by the invariant test suite):
    /// checks the heap order against every parent/child pair and the
    /// position map against every slot.
    pub fn validate(&self) -> Result<(), String> {
        for i in 1..self.entries.len() {
            let parent = (i - 1) / ARITY;
            if self.entries[i] < self.entries[parent] {
                // lint:allow(no-alloc-in-hot-loop) — cold path: the audit
                // only formats when an invariant is already violated.
                return Err(format!(
                    "heap order violated: slot {i} ({}, {}) before parent {parent} ({}, {})",
                    key_of(self.entries[i]),
                    item_of(self.entries[i]),
                    key_of(self.entries[parent]),
                    item_of(self.entries[parent])
                ));
            }
        }
        for (slot, &entry) in self.entries.iter().enumerate() {
            let item = item_of(entry);
            if self.stamp[item as usize] != self.epoch {
                // lint:allow(no-alloc-in-hot-loop) — cold audit-failure path.
                return Err(format!("slot {slot}: item {item} has a stale stamp"));
            }
            if self.pos[item as usize] != slot as u32 {
                // lint:allow(no-alloc-in-hot-loop) — cold audit-failure path.
                return Err(format!(
                    "position map desynced: item {item} at slot {slot} but pos says {}",
                    self.pos[item as usize]
                ));
            }
        }
        // Reverse direction: every item the position map claims is buffered
        // must actually occupy that slot. Catches a slot overwritten without
        // its evicted item being marked POPPED — invisible to the slot→pos
        // sweep above because the evicted item no longer appears in
        // `entries`.
        for (item, (&p, &s)) in self.pos.iter().zip(&self.stamp).enumerate() {
            if s != self.epoch || p == POPPED {
                continue;
            }
            let holds = self
                .entries
                .get(p as usize)
                .is_some_and(|&e| item_of(e) as usize == item);
            if !holds {
                // lint:allow(no-alloc-in-hot-loop) — cold audit-failure path.
                return Err(format!(
                    "position map dangles: item {item} claims slot {p} but the slot holds another item"
                ));
            }
        }
        Ok(())
    }

    /// Audit hook: re-validates the full structure before the epoch bump
    /// discards it. Armed by the `audit` feature (and always in debug
    /// builds); compiled out of release serving binaries, so the
    /// panic-reachability certificate never sees it.
    #[cfg(any(debug_assertions, feature = "audit"))]
    fn audit_on_clear(&self) {
        if let Err(violation) = self.validate() {
            panic!("DaryHeap invariant violated at clear: {violation}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order_with_binaryheap_tie_order() {
        let mut h = DaryHeap::new(8);
        for (key, item) in [(5, 0), (1, 1), (5, 2), (3, 3), (1, 4)] {
            h.push(key, item);
            h.validate().expect("valid after push");
        }
        // Ties pop by *descending* item id, matching the
        // BinaryHeap<(Reverse<Weight>, u32)> tuple order this replaces.
        let mut out = Vec::new();
        while let Some(e) = h.pop() {
            h.validate().expect("valid after pop");
            out.push(e);
        }
        assert_eq!(out, vec![(1, 4), (1, 1), (3, 3), (5, 2), (5, 0)]);
        let c = h.counters();
        assert_eq!(
            (c.pushes, c.pops, c.decrease_keys, c.stale_skipped),
            (5, 5, 0, 0)
        );
    }

    #[test]
    fn decrease_key_updates_in_place() {
        let mut h = DaryHeap::new(4);
        h.insert_or_decrease(10, 0);
        h.insert_or_decrease(20, 1);
        h.insert_or_decrease(5, 1); // improves item 1 in place
        h.insert_or_decrease(30, 1); // worse: ignored
        h.validate().expect("valid");
        assert_eq!(h.len(), 2);
        assert_eq!(h.pop(), Some((5, 1)));
        assert_eq!(h.pop(), Some((10, 0)));
        assert_eq!(h.pop(), None);
        let c = h.counters();
        assert_eq!(
            (c.pushes, c.pops, c.decrease_keys, c.stale_skipped),
            (2, 3 - 1, 1, 0)
        );
    }

    #[test]
    fn clear_is_an_epoch_bump() {
        let mut h = DaryHeap::new(4);
        h.push(7, 2);
        assert!(h.in_heap(2) && h.was_inserted(2));
        h.clear();
        assert!(h.is_empty());
        assert!(!h.in_heap(2) && !h.was_inserted(2));
        // The item is insertable again in the fresh epoch.
        h.insert_or_decrease(3, 2);
        assert_eq!(h.peek(), Some((3, 2)));
    }

    #[test]
    fn popped_items_stay_visible_via_was_inserted() {
        let mut h = DaryHeap::new(4);
        h.push(1, 3);
        assert_eq!(h.pop(), Some((1, 3)));
        assert!(h.was_inserted(3));
        assert!(!h.in_heap(3));
    }

    #[test]
    fn validate_catches_a_dangling_position_map() {
        // An item whose pos points at a slot another item occupies is
        // invisible to the slot→pos sweep (the item is gone from `entries`)
        // — only the reverse item→slot direction can see it.
        let mut h = DaryHeap::new(4);
        h.push(1, 0);
        h.push(2, 1);
        h.entries.truncate(1); // evict item 1 without marking it POPPED
        let err = h.validate().expect_err("dangling pos must fail the audit");
        assert!(err.contains("dangles"), "wrong violation: {err}");

        // The forward direction still fires on a desynced live slot.
        let mut h = DaryHeap::new(4);
        h.push(1, 0);
        h.push(2, 1);
        h.pos.swap(0, 1);
        assert!(h.validate().is_err(), "desynced map must fail the audit");
    }

    #[test]
    fn epoch_wrap_refreshes_all_stamps() {
        let mut h = DaryHeap::new(2);
        h.epoch = u32::MAX;
        h.push(1, 0);
        h.clear(); // wraps to 0 → refreshed to 1
        assert_eq!(h.epoch, 1);
        assert!(!h.was_inserted(0));
        h.push(2, 0);
        assert_eq!(h.pop(), Some((2, 0)));
    }

    #[test]
    fn counters_since_subtracts_a_snapshot() {
        let mut h = DaryHeap::new(4);
        h.push(1, 0);
        let base = h.counters();
        h.push(2, 1);
        h.insert_or_decrease(1, 1);
        let _ = h.pop();
        let d = h.counters().since(base);
        assert_eq!((d.pushes, d.pops, d.decrease_keys), (1, 1, 1));
    }
}
