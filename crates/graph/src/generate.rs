//! Synthetic road-network generator.
//!
//! Stands in for the DIMACS datasets (DESIGN.md §3, substitution 1). The
//! model is grid perturbation: vertices on a jittered grid, lattice edges
//! with random deletions, sparse diagonals, and travel-time weights
//! proportional to Euclidean length with a random congestion factor. The
//! result is planar-like, has road-network-like average degree (≈ 2.4–3.2),
//! and — critically for the paper's data structures — exhibits the spatial
//! coherence that makes Voronoi cells contiguous and quadtrees effective.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::connectivity::largest_component;
use crate::csr::{Graph, GraphBuilder};
use crate::types::{Point, VertexId, Weight};

/// Parameters of the grid-perturbation model.
#[derive(Debug, Clone)]
pub struct RoadNetworkConfig {
    /// Target number of vertices before largest-component extraction
    /// (the output is usually within a few percent of this).
    pub vertices: usize,
    /// RNG seed; identical configs generate identical networks.
    pub seed: u64,
    /// Probability that a lattice edge is removed (models missing road
    /// segments, rivers, parks). Default 0.15.
    pub deletion_rate: f64,
    /// Probability of adding a diagonal edge per grid cell. Default 0.08.
    pub diagonal_rate: f64,
    /// Grid spacing in coordinate units. Default 1000.
    pub spacing: i32,
    /// Coordinate jitter as a fraction of spacing. Default 0.3.
    pub jitter: f64,
    /// Maximum congestion factor: weights are Euclidean length scaled by a
    /// uniform factor in `[1.0, max_congestion]`. Default 1.5.
    pub max_congestion: f64,
    /// Every `highway_period`-th grid row/column is an arterial road whose
    /// edges are `highway_speedup`× faster. Real road networks owe their
    /// small highway dimension — the property CH and hub labels exploit —
    /// to exactly this structure; without it, label sizes degenerate to the
    /// grid's Θ(√n) treewidth. 0 disables highways.
    pub highway_period: usize,
    /// Travel-time divisor on highway edges. Default 4.0.
    pub highway_speedup: f64,
}

impl RoadNetworkConfig {
    /// A config with sensible defaults for `vertices` vertices.
    pub fn new(vertices: usize, seed: u64) -> Self {
        RoadNetworkConfig {
            vertices,
            seed,
            deletion_rate: 0.15,
            diagonal_rate: 0.08,
            spacing: 1000,
            jitter: 0.3,
            max_congestion: 1.5,
            highway_period: 12,
            highway_speedup: 4.0,
        }
    }
}

/// Generates a connected synthetic road network.
///
/// The returned graph is the largest connected component of the perturbed
/// grid, with dense vertex ids and coordinates attached.
pub fn road_network(config: &RoadNetworkConfig) -> Graph {
    assert!(config.vertices >= 1, "need at least one vertex");
    assert!(
        (0.0..1.0).contains(&config.deletion_rate),
        "deletion_rate must be in [0, 1)"
    );
    assert!(
        config.max_congestion >= 1.0,
        "congestion factor below 1 would undercut Euclidean length"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    let w = (config.vertices as f64).sqrt().ceil() as usize;
    let h = config.vertices.div_ceil(w);
    let n = w * h;
    let mut b = GraphBuilder::new(n);

    let jitter_amp = (config.spacing as f64 * config.jitter) as i32;
    let coord = |rng: &mut StdRng, base: i32, amp: i32| -> i32 {
        if amp == 0 {
            base
        } else {
            base + rng.gen_range(-amp..=amp)
        }
    };
    let mut pts = vec![Point::default(); n];
    for gy in 0..h {
        for gx in 0..w {
            let v = gy * w + gx;
            let p = Point::new(
                coord(&mut rng, (gx as i32) * config.spacing, jitter_amp),
                coord(&mut rng, (gy as i32) * config.spacing, jitter_amp),
            );
            pts[v] = p;
            b.set_coord(v as VertexId, p);
        }
    }

    let on_highway_line =
        |i: usize| config.highway_period > 0 && i.is_multiple_of(config.highway_period);
    let add = |b: &mut GraphBuilder, rng: &mut StdRng, u: usize, v: usize, highway: bool| {
        let len = pts[u].dist(&pts[v]);
        let factor = rng.gen_range(1.0..=config.max_congestion);
        let mut weight = len * factor;
        if highway {
            weight /= config.highway_speedup.max(1.0);
        }
        b.add_edge(
            u as VertexId,
            v as VertexId,
            weight.round().max(1.0) as Weight,
        );
    };

    for gy in 0..h {
        for gx in 0..w {
            let v = gy * w + gx;
            // Lattice edges right and down. Arterial (highway) edges are
            // never deleted — highways are contiguous in real networks.
            let row_hw = on_highway_line(gy);
            let col_hw = on_highway_line(gx);
            if gx + 1 < w && (row_hw || rng.gen::<f64>() >= config.deletion_rate) {
                add(&mut b, &mut rng, v, v + 1, row_hw);
            }
            if gy + 1 < h && (col_hw || rng.gen::<f64>() >= config.deletion_rate) {
                add(&mut b, &mut rng, v, v + w, col_hw);
            }
            // Occasional diagonal, alternating direction at random.
            if gx + 1 < w && gy + 1 < h && rng.gen::<f64>() < config.diagonal_rate {
                if rng.gen::<bool>() {
                    add(&mut b, &mut rng, v, v + w + 1, false);
                } else {
                    add(&mut b, &mut rng, v + 1, v + w, false);
                }
            }
        }
    }

    let (graph, _) = largest_component(&b.build());
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use crate::dijkstra::Dijkstra;

    #[test]
    fn generates_connected_network_near_target_size() {
        let g = road_network(&RoadNetworkConfig::new(2000, 42));
        assert!(is_connected(&g));
        let n = g.num_vertices();
        assert!(n > 1700 && n <= 2100, "unexpected size {n}");
    }

    #[test]
    fn is_deterministic_per_seed() {
        let cfg = RoadNetworkConfig::new(500, 7);
        let g1 = road_network(&cfg);
        let g2 = road_network(&cfg);
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        assert_eq!(g1.num_edges(), g2.num_edges());
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = road_network(&RoadNetworkConfig::new(500, 1));
        let g2 = road_network(&RoadNetworkConfig::new(500, 2));
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn average_degree_is_road_network_like() {
        let g = road_network(&RoadNetworkConfig::new(5000, 3));
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((2.2..3.6).contains(&avg), "average degree {avg}");
    }

    #[test]
    fn weights_track_euclidean_length_within_speed_bounds() {
        // Travel times lie between the highway free-flow bound and the
        // congested local-road bound.
        let cfg = RoadNetworkConfig::new(400, 11);
        let g = road_network(&cfg);
        for e in g.edges() {
            let d = g.coord(e.u).dist(&g.coord(e.v));
            let lo = d / cfg.highway_speedup - 1.0;
            let hi = d * cfg.max_congestion + 1.0;
            assert!(
                (e.weight as f64) >= lo && (e.weight as f64) <= hi,
                "weight {} outside [{lo}, {hi}] for length {d}",
                e.weight
            );
        }
    }

    #[test]
    fn highways_make_long_trips_faster() {
        // With highways, corner-to-corner travel time beats the no-highway
        // network's substantially.
        let mut with = RoadNetworkConfig::new(2500, 19);
        let mut without = with.clone();
        without.highway_period = 0;
        let gw = road_network(&with);
        let go = road_network(&without);
        let mut dw = Dijkstra::new(gw.num_vertices());
        let mut do_ = Dijkstra::new(go.num_vertices());
        let dhw = dw.one_to_one(&gw, 0, gw.num_vertices() as VertexId - 1);
        let dno = do_.one_to_one(&go, 0, go.num_vertices() as VertexId - 1);
        assert!(
            (dhw as f64) < dno as f64 * 0.7,
            "highway trip {dhw} not much faster than {dno}"
        );
        with.highway_speedup = 1.0;
        let _ = with; // config stays usable after the comparison
    }

    #[test]
    fn distances_are_finite_within_component() {
        let g = road_network(&RoadNetworkConfig::new(300, 5));
        let mut d = Dijkstra::new(g.num_vertices());
        d.sssp(&g, 0);
        let s = d.space();
        for v in 0..g.num_vertices() as VertexId {
            assert!(s.distance(v).is_some(), "vertex {v} unreachable");
        }
    }

    #[test]
    fn tiny_network_works() {
        let g = road_network(&RoadNetworkConfig::new(1, 0));
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
