//! Cache-conscious vertex renumbering.
//!
//! At road-network scale the distance kernels are memory-bound: the CSR
//! arrays no longer fit in cache and every relaxation risks a miss. The
//! single cheapest fix is to *renumber* vertices so that ids that are close
//! in the network (and therefore touched together by a search frontier) are
//! close in memory ("Simpler is More" — well-engineered layouts beat clever
//! structures at this scale). A [`Relabeling`] is a bijection between the
//! **external** numbering (whatever the dataset shipped) and a **local**,
//! cache-friendly numbering; [`Relabeling::apply`] produces the permuted CSR
//! graph and every index structure translates its stored ids once at build
//! time, so hot loops only ever see the local numbering.
//!
//! Two orders are provided:
//!
//! * [`Relabeling::bfs`] — breadth-first order from a root: frontier
//!   neighborhoods become contiguous id ranges, the classic bandwidth
//!   reduction.
//! * [`Relabeling::hilbert`] — Hilbert space-filling-curve order over vertex
//!   coordinates (via [`crate::morton`]): spatially adjacent vertices get
//!   adjacent ids without needing connectivity, and the curve has no long
//!   jumps (unlike raw Z-order).
//!
//! Renumbering is a pure relabeling: distances, degrees and coordinates are
//! carried along unchanged, so query *results* are bit-identical once
//! translated back through [`Relabeling::to_external`].

use crate::csr::{Graph, GraphBuilder};
use crate::morton::MortonSpace;
use crate::types::VertexId;

/// A bijection between external vertex ids and a cache-friendly local
/// numbering, with both directions materialized as dense `u32` vectors.
#[derive(Debug, Clone)]
pub struct Relabeling {
    /// `forward[external] = local`.
    forward: Vec<VertexId>,
    /// `inverse[local] = external`.
    inverse: Vec<VertexId>,
}

impl Relabeling {
    /// The identity relabeling on `n` vertices (the "original" layout axis).
    pub fn identity(n: usize) -> Self {
        let forward: Vec<VertexId> = (0..n as VertexId).collect();
        Relabeling {
            inverse: forward.clone(),
            forward,
        }
    }

    /// Builds a relabeling from a visit order: `order[local] = external`.
    ///
    /// # Panics
    /// If `order` is not a permutation of `0..n`.
    pub fn from_order(order: Vec<VertexId>) -> Self {
        match Relabeling::try_from_order(order) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`Relabeling::from_order`] for persisted orders:
    /// returns `Err` instead of panicking when `order` is not a
    /// permutation of `0..n` (the snapshot loader's entry point).
    ///
    /// # Errors
    /// A description of the first out-of-range or repeated external id.
    pub fn try_from_order(order: Vec<VertexId>) -> Result<Self, String> {
        let n = order.len();
        let mut forward = vec![VertexId::MAX; n];
        for (local, &ext) in order.iter().enumerate() {
            let slot = forward.get_mut(ext as usize).ok_or_else(|| {
                format!("order is not a permutation: external id {ext} out of range {n}")
            })?;
            if *slot != VertexId::MAX {
                return Err(format!(
                    "order is not a permutation: external id {ext} repeated"
                ));
            }
            *slot = local as VertexId;
        }
        Ok(Relabeling {
            forward,
            inverse: order,
        })
    }

    /// Breadth-first order from vertex 0 (external numbering). Vertices in
    /// components not reachable from the root are appended in ascending
    /// external order, so the result is always a full permutation.
    pub fn bfs(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for root in 0..n as VertexId {
            if seen[root as usize] {
                continue;
            }
            seen[root as usize] = true;
            queue.push_back(root);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for (v, _) in graph.neighbors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        queue.push_back(v);
                    }
                }
            }
        }
        Relabeling::from_order(order)
    }

    /// Hilbert-curve order over vertex coordinates. Ties (identical grid
    /// cells) break by ascending external id, so the order is deterministic.
    pub fn hilbert(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        let (min, max) = graph.bounding_box();
        let space = MortonSpace::new(min, max);
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        order.sort_by_key(|&v| (space.hilbert_code(graph.coord(v)), v));
        Relabeling::from_order(order)
    }

    /// Number of vertices covered by the bijection.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True when the relabeling covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Translates an external id to the local numbering.
    #[inline]
    pub fn to_local(&self, external: VertexId) -> VertexId {
        // PANIC-OK: forward is sized n and callers pass built vertex ids < n.
        self.forward[external as usize]
    }

    /// Translates a local id back to the external numbering.
    #[inline]
    pub fn to_external(&self, local: VertexId) -> VertexId {
        // PANIC-OK: inverse is sized n and callers pass built vertex ids < n.
        self.inverse[local as usize]
    }

    /// The full external→local vector (`forward[external] = local`).
    pub fn forward(&self) -> &[VertexId] {
        &self.forward
    }

    /// The full local→external vector (`inverse[local] = external`).
    pub fn inverse(&self) -> &[VertexId] {
        &self.inverse
    }

    /// Translates a slice of external ids to local ids in place. The
    /// boundary translation used by index structures when they relabel.
    pub fn map_in_place(&self, ids: &mut [VertexId]) {
        for v in ids {
            *v = self.to_local(*v);
        }
    }

    /// Permutes a per-vertex table from external to local indexing:
    /// `out[local] = table[external]`. Used for ALT landmark rows and any
    /// other dense vertex-indexed array.
    pub fn permute_table<T: Copy>(&self, table: &[T]) -> Vec<T> {
        assert_eq!(table.len(), self.len(), "table is not vertex-indexed");
        self.inverse
            .iter()
            .map(|&ext| table[ext as usize])
            .collect()
    }

    /// Applies the relabeling to a built graph, producing the permuted CSR.
    ///
    /// Goes through [`GraphBuilder`] so the result is a canonically valid
    /// CSR (sorted adjacency, deduplicated) regardless of the permutation.
    /// This is a build-time operation, not a hot path.
    pub fn apply(&self, graph: &Graph) -> Graph {
        let n = graph.num_vertices();
        assert_eq!(n, self.len(), "relabeling size mismatch");
        let mut b = GraphBuilder::new(n);
        for v in 0..n as VertexId {
            b.set_coord(self.to_local(v), graph.coord(v));
        }
        for e in graph.edges() {
            b.add_edge(self.to_local(e.u), self.to_local(e.v), e.weight);
        }
        b.build()
    }

    /// Audit-mode validation: both composition directions must be the
    /// identity and both vectors must be in range.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        if self.inverse.len() != n {
            return Err(format!(
                "forward/inverse length mismatch: {n} vs {}",
                self.inverse.len()
            ));
        }
        for (ext, &local) in self.forward.iter().enumerate() {
            if local as usize >= n {
                return Err(format!("forward[{ext}] = {local} out of range {n}"));
            }
            if self.inverse[local as usize] as usize != ext {
                return Err(format!(
                    "inverse(forward({ext})) = {} != {ext}",
                    self.inverse[local as usize]
                ));
            }
        }
        for (local, &ext) in self.inverse.iter().enumerate() {
            if ext as usize >= n {
                return Err(format!("inverse[{local}] = {ext} out of range {n}"));
            }
            if self.forward[ext as usize] as usize != local {
                return Err(format!(
                    "forward(inverse({local})) = {} != {local}",
                    self.forward[ext as usize]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{road_network, RoadNetworkConfig};
    use crate::types::Point;

    fn network(n: usize) -> Graph {
        road_network(&RoadNetworkConfig::new(n, 11))
    }

    #[test]
    fn identity_is_valid_and_trivial() {
        let r = Relabeling::identity(10);
        r.validate().unwrap();
        assert_eq!(r.to_local(7), 7);
        assert_eq!(r.to_external(7), 7);
    }

    #[test]
    fn bfs_and_hilbert_are_permutations() {
        let g = network(400);
        for r in [Relabeling::bfs(&g), Relabeling::hilbert(&g)] {
            r.validate().unwrap();
            assert_eq!(r.len(), g.num_vertices());
        }
    }

    #[test]
    fn apply_preserves_structure() {
        let g = network(300);
        let r = Relabeling::hilbert(&g);
        let h = r.apply(&g);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(h.coord(r.to_local(v)), g.coord(v));
            assert_eq!(h.degree(r.to_local(v)), g.degree(v));
        }
        for e in g.edges() {
            assert_eq!(
                h.edge_weight(r.to_local(e.u), r.to_local(e.v)),
                Some(e.weight)
            );
        }
    }

    #[test]
    fn bfs_order_starts_at_the_root() {
        let g = network(100);
        let r = Relabeling::bfs(&g);
        assert_eq!(r.to_local(0), 0);
    }

    #[test]
    fn hilbert_recovers_locality_from_a_scrambled_numbering() {
        // The whole point: on a graph whose numbering carries no locality
        // (a deterministic scramble of the generator's near-local order),
        // Hilbert renumbering must sharply shrink the mean |u − v| id gap
        // across edges.
        let g = network(2000);
        let n = g.num_vertices();
        // Deterministic scramble: multiply by an odd constant mod n via
        // a Fisher–Yates with an xorshift stream.
        let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for i in (1..n).rev() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let j = (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let scrambled = Relabeling::from_order(perm).apply(&g);
        let gap = |g: &Graph| -> u64 {
            g.edges().map(|e| u64::from(e.u.abs_diff(e.v))).sum::<u64>() / g.num_edges() as u64
        };
        let before = gap(&scrambled);
        let after = gap(&Relabeling::hilbert(&scrambled).apply(&scrambled));
        assert!(
            after * 4 < before,
            "hilbert layout left id gaps wide: {after} vs scrambled {before}"
        );
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_order_rejects_duplicates() {
        let _ = Relabeling::from_order(vec![0, 1, 1]);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut r = Relabeling::identity(4);
        r.forward[0] = 2; // now 0 and 2 both map to 2
        assert!(r.validate().is_err());
    }

    #[test]
    fn permute_table_relocates_rows() {
        let mut b = GraphBuilder::new(3);
        b.set_coord(0, Point::new(9, 9));
        b.set_coord(1, Point::new(0, 0));
        b.set_coord(2, Point::new(5, 5));
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let g = b.build();
        let r = Relabeling::hilbert(&g);
        let table = vec![10u32, 11, 12]; // table[external]
        let permuted = r.permute_table(&table);
        for ext in 0..3u32 {
            assert_eq!(permuted[r.to_local(ext) as usize], table[ext as usize]);
        }
    }
}
