//! Dijkstra searches over [`Graph`].
//!
//! A single [`Dijkstra`] instance owns its working arrays and reuses them
//! across searches via an epoch counter, so repeated queries (the dominant
//! pattern in every index builder and in the network-expansion baseline)
//! never pay an `O(|V|)` clear.

use crate::csr::Graph;
use crate::dheap::{DaryHeap, HeapCounters};
use crate::types::{VertexId, Weight, INFINITY};
use crate::weight::weight_add;

/// Sentinel for "no slot" in the one-to-many target chains.
const NO_SLOT: u32 = u32::MAX;

/// What the settle callback tells the search loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Relax the settled vertex's edges and continue.
    Continue,
    /// Do not relax this vertex's edges, but keep searching.
    Prune,
    /// Terminate the search immediately.
    Stop,
}

/// Reusable Dijkstra state for one graph size.
///
/// All query methods leave the search space readable through
/// [`Dijkstra::space`] until the next query starts.
pub struct Dijkstra {
    dist: Vec<Weight>,
    parent: Vec<VertexId>,
    epoch: Vec<u32>,
    settled: Vec<bool>,
    cur_epoch: u32,
    heap: DaryHeap,
    settled_order: Vec<VertexId>,
    /// One-to-many target bookkeeping ([`Dijkstra::one_to_many`]):
    /// per-vertex chain heads into `tgt_next`, epoch-stamped so repeated
    /// calls never clear or reallocate the per-vertex arrays.
    tgt_epoch: Vec<u32>,
    tgt_head: Vec<u32>,
    tgt_next: Vec<u32>,
    tgt_cur: u32,
}

impl Dijkstra {
    /// Creates search state for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        Dijkstra {
            dist: vec![INFINITY; n],
            parent: vec![VertexId::MAX; n],
            epoch: vec![0; n],
            settled: vec![false; n],
            cur_epoch: 0,
            heap: DaryHeap::new(n),
            // Pre-sized: each vertex settles at most once per search, so
            // len ≤ n and the push below never reallocates.
            settled_order: Vec::with_capacity(n),
            tgt_epoch: vec![0; n],
            tgt_head: vec![NO_SLOT; n],
            // Pre-sized to n: one slot per requested target. Target sets
            // are vertex subsets in every caller (candidate lists from the
            // renumbered graph), so len ≤ n and the pushes in
            // `one_to_many` never reallocate once warmed.
            tgt_next: Vec::with_capacity(n),
            tgt_cur: 0,
        }
    }

    /// Runs a multi-source search, invoking `on_settle(v, d)` exactly once
    /// per settled vertex in non-decreasing distance order.
    pub fn run<F>(&mut self, graph: &Graph, sources: &[(VertexId, Weight)], mut on_settle: F)
    where
        F: FnMut(VertexId, Weight) -> Control,
    {
        self.begin();
        for &(s, d0) in sources {
            if self.tentative(s) > d0 {
                self.relax(s, d0, VertexId::MAX);
            }
        }
        while let Some((d, v)) = self.heap.pop() {
            // The indexed heap holds each vertex once, at its best key:
            // every pop settles (no stale entries to skip).
            debug_assert!(!self.settled[v as usize] && d == self.dist[v as usize]);
            // PANIC-OK: every heap item is a vertex id < n; arrays sized n at new().
            self.settled[v as usize] = true;
            // ALLOC-OK: new() pre-sizes settled_order to n; each vertex
            // settles at most once per search, so len ≤ n — no realloc.
            self.settled_order.push(v);
            match on_settle(v, d) {
                Control::Continue => {
                    for (u, w) in graph.neighbors(v) {
                        let nd = weight_add(d, w);
                        if nd < self.tentative(u) {
                            self.relax(u, nd, v);
                        }
                    }
                }
                Control::Prune => {}
                Control::Stop => break,
            }
        }
    }

    /// Point-to-point distance; [`INFINITY`] when disconnected.
    pub fn one_to_one(&mut self, graph: &Graph, s: VertexId, t: VertexId) -> Weight {
        let mut answer = INFINITY;
        self.run(graph, &[(s, 0)], |v, d| {
            if v == t {
                answer = d;
                Control::Stop
            } else {
                Control::Continue
            }
        });
        answer
    }

    /// Full single-source shortest paths; read results via [`Dijkstra::space`].
    pub fn sssp(&mut self, graph: &Graph, s: VertexId) {
        self.run(graph, &[(s, 0)], |_, _| Control::Continue);
    }

    /// Distances from `s` to each of `targets`, stopping as soon as all are
    /// settled. Unreachable targets get [`INFINITY`].
    pub fn one_to_many(&mut self, graph: &Graph, s: VertexId, targets: &[VertexId]) -> Vec<Weight> {
        let mut out = vec![INFINITY; targets.len()];
        if targets.is_empty() {
            return out;
        }
        // Epoch-stamped target chains instead of a per-call HashMap:
        // `tgt_head[v]` points at the most recent slot asking for `v`, and
        // `tgt_next` chains duplicates. Only slots touched this call are
        // initialized, so the per-vertex arrays are never cleared.
        self.tgt_cur = self.tgt_cur.wrapping_add(1);
        if self.tgt_cur == 0 {
            self.tgt_epoch.iter_mut().for_each(|e| *e = 0);
            self.tgt_cur = 1;
        }
        self.tgt_next.clear();
        for (i, &t) in targets.iter().enumerate() {
            let ti = t as usize;
            if self.tgt_epoch[ti] != self.tgt_cur {
                self.tgt_epoch[ti] = self.tgt_cur;
                self.tgt_head[ti] = NO_SLOT;
            }
            self.tgt_next.push(self.tgt_head[ti]);
            self.tgt_head[ti] = i as u32;
        }
        // Move the chains out so the settle closure can read them while
        // `run` holds `&mut self`; restored below.
        let tgt_epoch = std::mem::take(&mut self.tgt_epoch);
        let tgt_head = std::mem::take(&mut self.tgt_head);
        let tgt_next = std::mem::take(&mut self.tgt_next);
        let cur = self.tgt_cur;
        let mut remaining = targets.len();
        self.run(graph, &[(s, 0)], |v, d| {
            let vi = v as usize;
            if tgt_epoch[vi] == cur {
                let mut slot = tgt_head[vi];
                while slot != NO_SLOT {
                    out[slot as usize] = d;
                    remaining -= 1;
                    slot = tgt_next[slot as usize];
                }
                if remaining == 0 {
                    return Control::Stop;
                }
            }
            Control::Continue
        });
        self.tgt_epoch = tgt_epoch;
        self.tgt_head = tgt_head;
        self.tgt_next = tgt_next;
        out
    }

    /// Expands outward from `s` collecting up to `k` vertices for which
    /// `is_object` holds, in distance order — the classic network-expansion
    /// kNN (INE) used as the sanity baseline in §7.1.
    pub fn k_nearest<F>(
        &mut self,
        graph: &Graph,
        s: VertexId,
        k: usize,
        mut is_object: F,
    ) -> Vec<(VertexId, Weight)>
    where
        F: FnMut(VertexId) -> bool,
    {
        let mut found = Vec::with_capacity(k);
        if k == 0 {
            return found;
        }
        self.run(graph, &[(s, 0)], |v, d| {
            if is_object(v) {
                found.push((v, d));
                if found.len() == k {
                    return Control::Stop;
                }
            }
            Control::Continue
        });
        found
    }

    /// Read-only view of the last search.
    pub fn space(&self) -> SearchSpace<'_> {
        SearchSpace { d: self }
    }

    /// Cumulative heap-kernel counters across every search this instance
    /// has run (`stale_skipped` is structurally zero on the indexed heap).
    pub fn heap_counters(&self) -> HeapCounters {
        self.heap.counters()
    }

    /// Fraction of the graph settled by the last search, in `[0, 1]`.
    ///
    /// The comparability metric between per-query searches and shared
    /// one-to-many sweeps: an early-stopping `one_to_many` settles only a
    /// fraction of the graph per call, while a PHAST-style sweep touches
    /// every vertex once for the whole batch. Benches accumulate this to
    /// report total settled work per kernel.
    pub fn settled_fraction(&self) -> f64 {
        if self.dist.is_empty() {
            0.0
        } else {
            self.settled_order.len() as f64 / self.dist.len() as f64
        }
    }

    fn begin(&mut self) {
        self.cur_epoch = self.cur_epoch.wrapping_add(1);
        if self.cur_epoch == 0 {
            // Extremely rare wrap: force-refresh every slot.
            self.epoch.iter_mut().for_each(|e| *e = u32::MAX);
            self.cur_epoch = 1;
        }
        self.heap.clear();
        self.settled_order.clear();
    }

    #[inline]
    fn tentative(&self, v: VertexId) -> Weight {
        // PANIC-OK: v is a vertex id < n from the CSR graph; arrays sized n.
        if self.epoch[v as usize] == self.cur_epoch {
            self.dist[v as usize] // PANIC-OK: same bound as the epoch read.
        } else {
            INFINITY
        }
    }

    #[inline]
    fn relax(&mut self, v: VertexId, d: Weight, from: VertexId) {
        let i = v as usize;
        // PANIC-OK: v is a vertex id < n from the CSR graph; arrays sized n.
        if self.epoch[i] != self.cur_epoch {
            self.epoch[i] = self.cur_epoch; // PANIC-OK: i < n as above.
            self.settled[i] = false; // PANIC-OK: i < n as above.
        }
        self.dist[i] = d; // PANIC-OK: i < n as above.
        self.parent[i] = from; // PANIC-OK: i < n as above.
        self.heap.insert_or_decrease(d, v);
    }
}

/// Read-only view of a completed (or stopped) search.
pub struct SearchSpace<'a> {
    d: &'a Dijkstra,
}

impl SearchSpace<'_> {
    /// Final distance of `v` if it was settled by the last search.
    pub fn distance(&self, v: VertexId) -> Option<Weight> {
        let i = v as usize;
        // PANIC-OK: v is a vertex id < n from the CSR graph; arrays sized n.
        if self.d.epoch[i] == self.d.cur_epoch && self.d.settled[i] {
            Some(self.d.dist[i]) // PANIC-OK: same bound as the epoch read.
        } else {
            None
        }
    }

    /// Vertices settled by the last search, in settle (distance) order.
    pub fn settled(&self) -> &[VertexId] {
        &self.d.settled_order
    }

    /// Shortest path from the source to `v` (inclusive), if `v` was settled.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        self.distance(v)?;
        let mut path = vec![v];
        let mut cur = v;
        while self.d.parent[cur as usize] != VertexId::MAX {
            cur = self.d.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    /// 0 -1- 1 -1- 2 -1- 3, plus shortcut 0 -5- 3 and isolated vertex 4.
    fn line_graph() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(0, 3, 5);
        b.build()
    }

    #[test]
    fn one_to_one_prefers_multi_hop_shortcut() {
        let g = line_graph();
        let mut d = Dijkstra::new(g.num_vertices());
        assert_eq!(d.one_to_one(&g, 0, 3), 3);
        assert_eq!(d.one_to_one(&g, 0, 0), 0);
    }

    #[test]
    fn unreachable_is_infinity() {
        let g = line_graph();
        let mut d = Dijkstra::new(g.num_vertices());
        assert_eq!(d.one_to_one(&g, 0, 4), INFINITY);
    }

    #[test]
    fn sssp_space_distances_and_paths() {
        let g = line_graph();
        let mut d = Dijkstra::new(g.num_vertices());
        d.sssp(&g, 0);
        let s = d.space();
        assert_eq!(s.distance(0), Some(0));
        assert_eq!(s.distance(2), Some(2));
        assert_eq!(s.distance(3), Some(3));
        assert_eq!(s.distance(4), None);
        assert_eq!(s.path_to(3), Some(vec![0, 1, 2, 3]));
        assert_eq!(s.path_to(4), None);
    }

    #[test]
    fn one_to_many_handles_duplicates_and_unreachable() {
        let g = line_graph();
        let mut d = Dijkstra::new(g.num_vertices());
        let out = d.one_to_many(&g, 1, &[3, 3, 0, 4]);
        assert_eq!(out, vec![2, 2, 1, INFINITY]);
    }

    #[test]
    fn k_nearest_returns_in_distance_order() {
        let g = line_graph();
        let mut d = Dijkstra::new(g.num_vertices());
        let objs = [false, true, false, true, true];
        let found = d.k_nearest(&g, 0, 2, |v| objs[v as usize]);
        assert_eq!(found, vec![(1, 1), (3, 3)]);
        // Asking for more than exist returns only the reachable ones.
        let found = d.k_nearest(&g, 0, 10, |v| objs[v as usize]);
        assert_eq!(found, vec![(1, 1), (3, 3)]);
    }

    #[test]
    fn state_reuse_across_queries_is_clean() {
        let g = line_graph();
        let mut d = Dijkstra::new(g.num_vertices());
        d.sssp(&g, 0);
        d.sssp(&g, 3);
        let s = d.space();
        assert_eq!(s.distance(0), Some(3));
        assert_eq!(s.distance(3), Some(0));
    }

    #[test]
    fn multi_source_takes_minimum_over_sources() {
        let g = line_graph();
        let mut d = Dijkstra::new(g.num_vertices());
        let mut settled = Vec::new();
        d.run(&g, &[(0, 0), (3, 0)], |v, dist| {
            settled.push((v, dist));
            Control::Continue
        });
        let s = d.space();
        assert_eq!(s.distance(1), Some(1));
        assert_eq!(s.distance(2), Some(1));
        // Settle order is non-decreasing in distance.
        for w in settled.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn heap_counters_report_decrease_keys_and_no_stales() {
        let g = line_graph();
        let mut d = Dijkstra::new(g.num_vertices());
        // Relaxing 0→3 first (weight 5) then improving via 0-1-2-3 makes
        // vertex 3 a decrease-key, not a duplicate push.
        d.sssp(&g, 0);
        let c = d.heap_counters();
        assert_eq!(c.stale_skipped, 0);
        assert!(c.decrease_keys >= 1, "shortcut graph must improve vertex 3");
        assert_eq!(c.pops, 4, "one pop per reachable vertex");
        assert_eq!(c.pushes, 4);
    }

    #[test]
    fn one_to_many_reuses_target_chains_across_calls() {
        let g = line_graph();
        let mut d = Dijkstra::new(g.num_vertices());
        assert_eq!(d.one_to_many(&g, 1, &[3, 3, 0, 4]), vec![2, 2, 1, INFINITY]);
        // A second call with different (and duplicate) targets must see
        // fresh chains, not leftovers from the first call.
        assert_eq!(d.one_to_many(&g, 0, &[2, 2, 2]), vec![2, 2, 2]);
        assert_eq!(d.one_to_many(&g, 3, &[]), Vec::<Weight>::new());
    }

    #[test]
    fn settled_fraction_tracks_early_stopping() {
        let g = line_graph();
        let mut d = Dijkstra::new(g.num_vertices());
        d.sssp(&g, 0);
        // Vertex 4 is isolated: 4 of 5 vertices settle.
        assert!((d.settled_fraction() - 0.8).abs() < 1e-9);
        d.one_to_one(&g, 0, 1);
        assert!(d.settled_fraction() <= 0.8);
    }

    #[test]
    fn prune_control_stops_relaxation_locally() {
        let g = line_graph();
        let mut d = Dijkstra::new(g.num_vertices());
        // Prune at vertex 1: vertex 2 only reachable via 0-3-2 = 5+1.
        let mut dist2 = None;
        d.run(&g, &[(0, 0)], |v, dist| {
            if v == 2 {
                dist2 = Some(dist);
            }
            if v == 1 {
                Control::Prune
            } else {
                Control::Continue
            }
        });
        assert_eq!(dist2, Some(6));
    }
}
