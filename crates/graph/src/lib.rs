//! Road-network graph substrate for the K-SPIN reproduction.
//!
//! This crate provides everything the upper layers need from a road network:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) representation of an
//!   undirected, positively-weighted road network with per-vertex coordinates.
//! * [`GraphBuilder`] — incremental construction with duplicate-edge handling.
//! * [`dijkstra`] — single-source, point-to-point, one-to-many and k-nearest
//!   searches used both directly (network-expansion baseline) and by every
//!   index builder in the workspace.
//! * [`dheap`] — the indexed 4-ary decrease-key heap kernel under every
//!   best-first search in the workspace (zero stale pops, O(1) reset,
//!   structural instrumentation counters).
//! * [`morton`] / [`relabel`] — space-filling-curve codes and the
//!   cache-conscious vertex renumbering ([`Relabeling`]) built on them:
//!   BFS or Hilbert orders that shrink the id gap across edges so the
//!   memory-bound kernels touch contiguous cache lines.
//! * [`connectivity`] — connected-component analysis and largest-component
//!   extraction (road networks must be connected for Voronoi diagrams to
//!   cover every vertex).
//! * [`dimacs`] — reader/writer for the 9th-DIMACS-Challenge `.gr`/`.co`
//!   text formats used by the paper's datasets.
//! * [`generate`] — synthetic road-network generator standing in for the
//!   DIMACS datasets (see DESIGN.md §3 for the substitution rationale).
//!
//! Distances are `u32` travel-time-like units; [`INFINITY`] marks
//! unreachable. All vertex identifiers are dense `u32` indices.

#![deny(missing_docs)]

pub mod bidijkstra;
pub mod connectivity;
pub mod csr;
pub mod dheap;
pub mod dijkstra;
pub mod dimacs;
pub mod generate;
pub mod morton;
pub mod relabel;
pub mod types;
pub mod weight;

pub use bidijkstra::BiDijkstra;
pub use csr::{Graph, GraphBuilder};
pub use dheap::{DaryHeap, HeapCounters};
pub use dijkstra::{Dijkstra, SearchSpace};
pub use relabel::Relabeling;
pub use types::{Edge, Point, VertexId, Weight, INFINITY};
pub use weight::{weight_add, OrderedWeight};
