//! Fundamental identifier, weight and coordinate types shared by the whole
//! workspace.

/// Dense vertex identifier. Road networks in this workspace always use
/// vertex ids `0..n` so indices can double as array offsets.
pub type VertexId = u32;

/// Edge weight / network distance in integer travel-time-like units.
///
/// The DIMACS travel-time graphs the paper evaluates on use integer weights;
/// integer arithmetic keeps distance computations exact and branch-cheap.
pub type Weight = u32;

/// Sentinel for "unreachable" / "not yet settled".
///
/// Kept below `u32::MAX` so `INFINITY + small_weight` cannot wrap in the
/// relaxation step even without a saturating add.
pub const INFINITY: Weight = u32::MAX / 2;

/// Planar vertex coordinate.
///
/// DIMACS `.co` files store integer micro-degrees; the synthetic generator
/// produces integer grid coordinates. Euclidean geometry over these feeds the
/// quadtrees, R-trees and geometric partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate (longitude in micro-degrees, or grid x).
    pub x: i32,
    /// Vertical coordinate (latitude in micro-degrees, or grid y).
    pub y: i32,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`. Computed in 128 bits so the
    /// full `i32` coordinate range cannot overflow.
    pub fn dist_sq(&self, other: &Point) -> u128 {
        let dx = (self.x as i64 - other.x as i64).unsigned_abs() as u128;
        let dy = (self.y as i64 - other.y as i64).unsigned_abs() as u128;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Point) -> f64 {
        (self.dist_sq(other) as f64).sqrt()
    }
}

/// An undirected edge as fed to [`crate::GraphBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// Positive travel cost.
    pub weight: Weight,
}

impl Edge {
    /// Creates an edge; callers must supply a strictly positive weight.
    pub const fn new(u: VertexId, v: VertexId, weight: Weight) -> Self {
        Edge { u, v, weight }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_headroom_survives_relaxation() {
        // A relaxation may compute INFINITY + w for a real edge weight
        // without wrapping.
        let w: Weight = 1_000_000;
        assert!(INFINITY.checked_add(w).is_some());
        assert!(INFINITY + w > INFINITY);
    }

    #[test]
    fn point_distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(3, -4);
        let b = Point::new(0, 0);
        assert_eq!(a.dist_sq(&b), 25);
        assert_eq!(b.dist_sq(&a), 25);
        assert_eq!(a.dist_sq(&a), 0);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn point_distance_handles_extreme_coordinates() {
        let a = Point::new(i32::MIN, i32::MIN);
        let b = Point::new(i32::MAX, i32::MAX);
        // Must not panic or overflow.
        let d = a.dist_sq(&b);
        assert!(d > 0);
    }
}
