//! Totally ordered floating-point weights for candidate heaps.
//!
//! Network distances in this workspace are integer [`Weight`](crate::Weight)s,
//! but *scores* — weighted distance `d/TR` (Eq. 1), weighted sums, ROAD's
//! spatio-textual ranks — are `f64`. Raw `f64` only implements `PartialOrd`,
//! which forces heap code into `partial_cmp(..).unwrap()` patterns that
//! panic (or, with `unwrap_or`, silently mis-order) the moment a NaN slips
//! in. [`OrderedWeight`] closes that hole once, centrally: it carries the
//! IEEE-754 `totalOrder` relation (`f64::total_cmp`), so every comparison is
//! total and every heap containing it is well-ordered *even if* a NaN is
//! produced upstream — and debug builds additionally reject NaN at
//! construction, pinpointing the producer instead of the consumer.
//!
//! The repo lint `L2/total-order-weights` (see `cargo xtask lint`) forbids
//! `partial_cmp` on floats everywhere outside this module, making this the
//! single sanctioned float-ordering site in the workspace.

use std::cmp::Ordering;

use crate::types::Weight;

/// Sums two network weights without wrapping: the single sanctioned `+`
/// for weight-typed values (lint `A1/checked-weight-arithmetic`).
///
/// [`crate::INFINITY`] is `u32::MAX / 2`, so one relaxation past an
/// unreachable tentative distance stays finite-representable — but a
/// plain `+` on sums of large real distances (or repeated additions past
/// ∞) wraps in release builds and turns an unreachable vertex into the
/// closest one. Saturating at `u32::MAX` keeps every sum `≥ INFINITY`
/// once either operand passes it, which is exactly the algebra the
/// relaxation step's `nd < tentative` comparison needs.
#[inline]
pub fn weight_add(a: Weight, b: Weight) -> Weight {
    a.saturating_add(b)
}

/// An `f64` score with a total order (IEEE-754 `totalOrder`).
///
/// Ordering places `-NaN < -∞ < … < +∞ < +NaN`; equal payloads compare
/// equal. Debug builds assert the payload is not NaN at construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrderedWeight(f64);

impl OrderedWeight {
    /// Positive infinity — the identity for minimization.
    pub const INFINITE: OrderedWeight = OrderedWeight(f64::INFINITY);

    /// Wraps a score. Debug builds reject NaN so the *producer* of a bad
    /// score fails, not some later heap operation.
    #[inline]
    pub fn new(value: f64) -> Self {
        debug_assert!(!value.is_nan(), "NaN score reached an ordered heap");
        OrderedWeight(value)
    }

    /// The wrapped score.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<f64> for OrderedWeight {
    #[inline]
    fn from(value: f64) -> Self {
        OrderedWeight::new(value)
    }
}

impl From<OrderedWeight> for f64 {
    #[inline]
    fn from(w: OrderedWeight) -> f64 {
        w.0
    }
}

impl PartialEq for OrderedWeight {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for OrderedWeight {}

impl PartialOrd for OrderedWeight {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedWeight {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_add_never_wraps_below_infinity() {
        use crate::types::INFINITY;
        assert_eq!(weight_add(3, 4), 7);
        assert_eq!(weight_add(0, 0), 0);
        // Sums past ∞ stay ≥ ∞ — an unreachable vertex can never look near.
        assert!(weight_add(INFINITY, 1) >= INFINITY);
        assert!(weight_add(INFINITY, INFINITY) >= INFINITY);
        assert_eq!(weight_add(u32::MAX, 1), u32::MAX);
        assert_eq!(weight_add(u32::MAX, u32::MAX), u32::MAX);
    }

    #[test]
    fn orders_totally_including_infinities() {
        let mut v = [
            OrderedWeight::new(3.5),
            OrderedWeight::new(0.1),
            OrderedWeight::INFINITE,
            OrderedWeight::new(2.0),
            OrderedWeight::new(f64::NEG_INFINITY),
        ];
        v.sort();
        assert_eq!(v[0].get(), f64::NEG_INFINITY);
        assert_eq!(v[1].get(), 0.1);
        assert_eq!(v[4], OrderedWeight::INFINITE);
    }

    #[test]
    fn equality_is_payload_equality() {
        assert_eq!(OrderedWeight::new(1.25), OrderedWeight::new(1.25));
        assert_ne!(OrderedWeight::new(1.25), OrderedWeight::new(1.75));
    }

    #[test]
    fn max_heap_of_scores_pops_largest() {
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        for s in [1.5, 0.25, 9.75, 3.0] {
            h.push(OrderedWeight::new(s));
        }
        assert_eq!(h.pop().map(OrderedWeight::get), Some(9.75));
        assert_eq!(h.pop().map(OrderedWeight::get), Some(3.0));
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn nan_cannot_poison_release_heaps() {
        // Release builds admit NaN but still order it consistently (above
        // +inf), so heap invariants hold and extraction terminates.
        let mut v = vec![
            OrderedWeight(f64::NAN),
            OrderedWeight(1.0),
            OrderedWeight(f64::INFINITY),
        ];
        v.sort();
        assert_eq!(v[0].get(), 1.0);
        assert!(v[2].get().is_nan());
    }

    #[test]
    #[should_panic(expected = "NaN score")]
    #[cfg(debug_assertions)]
    fn nan_is_rejected_in_debug_builds() {
        let _ = OrderedWeight::new(f64::NAN);
    }
}
