//! Bidirectional Dijkstra for point-to-point queries.
//!
//! Runs forward and backward searches alternately and stops when the sum
//! of the two frontiers' minimum keys reaches the best meeting distance —
//! on road networks this roughly halves the settled vertices vs. a
//! unidirectional search, making it the cheapest index-free upgrade for
//! the Network Distance Module.

use crate::csr::Graph;
use crate::dheap::{DaryHeap, HeapCounters};
use crate::types::{VertexId, Weight, INFINITY};
use crate::weight::weight_add;

/// Reusable bidirectional search state (epoch-reset, no per-query
/// allocation in the steady state).
pub struct BiDijkstra {
    dist: [Vec<Weight>; 2],
    epoch: [Vec<u32>; 2],
    cur: u32,
    heaps: [DaryHeap; 2],
}

impl BiDijkstra {
    /// Creates state for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BiDijkstra {
            dist: [vec![INFINITY; n], vec![INFINITY; n]],
            epoch: [vec![0; n], vec![0; n]],
            cur: 0,
            heaps: [DaryHeap::new(n), DaryHeap::new(n)],
        }
    }

    /// Exact distance between `s` and `t` ([`INFINITY`] when disconnected).
    pub fn distance(&mut self, graph: &Graph, s: VertexId, t: VertexId) -> Weight {
        if s == t {
            return 0;
        }
        self.cur = self.cur.wrapping_add(1);
        if self.cur == 0 {
            for side in &mut self.epoch {
                side.iter_mut().for_each(|e| *e = u32::MAX);
            }
            self.cur = 1;
        }
        for h in &mut self.heaps {
            h.clear();
        }
        self.relax(0, s, 0);
        self.relax(1, t, 0);
        let mut best = INFINITY;
        loop {
            // Pick the side with the smaller frontier key; stop when the
            // frontier sum can no longer improve the best meeting.
            let top = |h: &DaryHeap| h.peek().map(|(d, _)| d).unwrap_or(INFINITY);
            // PANIC-OK: constant indexes into the [DaryHeap; 2] pair.
            let (f, b) = (top(&self.heaps[0]), top(&self.heaps[1]));
            if f.saturating_add(b) >= best || (f == INFINITY && b == INFINITY) {
                break;
            }
            let side = if f <= b { 0 } else { 1 };
            // PANIC-OK: side is 0 or 1 by the line above; heaps is [_; 2].
            let Some((d, v)) = self.heaps[side].pop() else {
                break;
            };
            debug_assert!(d == self.get(side, v), "indexed heap pops are never stale");
            let other = self.get(1 - side, v);
            if other < INFINITY {
                let total = weight_add(d, other);
                if total < best {
                    best = total;
                }
            }
            for (u, w) in graph.neighbors(v) {
                let nd = weight_add(d, w);
                if nd < self.get(side, u) {
                    self.relax(side, u, nd);
                }
            }
        }
        best
    }

    #[inline]
    fn get(&self, side: usize, v: VertexId) -> Weight {
        // PANIC-OK: side is 0 or 1 (callers pass literals or 1 - side);
        // v is a vertex id < n from the CSR graph, inner arrays sized n.
        if self.epoch[side][v as usize] == self.cur {
            self.dist[side][v as usize] // PANIC-OK: same bounds as the epoch read.
        } else {
            INFINITY
        }
    }

    #[inline]
    fn relax(&mut self, side: usize, v: VertexId, d: Weight) {
        // PANIC-OK: side is 0 or 1; v < n from the CSR graph, arrays sized n.
        self.epoch[side][v as usize] = self.cur;
        self.dist[side][v as usize] = d; // PANIC-OK: same bounds as above.
        self.heaps[side].insert_or_decrease(d, v); // PANIC-OK: side is 0 or 1.
    }

    /// Cumulative heap-kernel counters summed over both search directions.
    pub fn heap_counters(&self) -> HeapCounters {
        // PANIC-OK: constant indexes into the [DaryHeap; 2] pair.
        let mut c = self.heaps[0].counters();
        c += self.heaps[1].counters(); // PANIC-OK: constant index into [_; 2].
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;
    use crate::dijkstra::Dijkstra;
    use crate::generate::{road_network, RoadNetworkConfig};

    #[test]
    fn agrees_with_unidirectional_everywhere() {
        let g = road_network(&RoadNetworkConfig::new(700, 87));
        let mut bi = BiDijkstra::new(g.num_vertices());
        let mut uni = Dijkstra::new(g.num_vertices());
        for s in [0u32, 45, 333] {
            uni.sssp(&g, s);
            for t in (0..g.num_vertices() as VertexId).step_by(31) {
                let want = uni.space().distance(t).unwrap();
                assert_eq!(bi.distance(&g, s, t), want, "({s},{t})");
            }
        }
    }

    #[test]
    fn self_distance_and_symmetry() {
        let g = road_network(&RoadNetworkConfig::new(300, 88));
        let mut bi = BiDijkstra::new(g.num_vertices());
        assert_eq!(bi.distance(&g, 17, 17), 0);
        assert_eq!(bi.distance(&g, 0, 250), bi.distance(&g, 250, 0));
    }

    #[test]
    fn disconnected_is_infinity() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2);
        b.add_edge(2, 3, 2);
        let g = b.build();
        let mut bi = BiDijkstra::new(g.num_vertices());
        assert_eq!(bi.distance(&g, 0, 3), INFINITY);
        assert_eq!(bi.distance(&g, 0, 1), 2);
    }

    #[test]
    fn state_reuse_is_clean() {
        let g = road_network(&RoadNetworkConfig::new(200, 89));
        let mut bi = BiDijkstra::new(g.num_vertices());
        let d1 = bi.distance(&g, 0, 150);
        let _ = bi.distance(&g, 10, 20);
        assert_eq!(bi.distance(&g, 0, 150), d1);
    }
}
