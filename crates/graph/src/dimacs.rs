//! Reader/writer for the 9th-DIMACS-Challenge road-network text formats.
//!
//! The paper's datasets (DE/ME/FL/E/US) are distributed as a `.gr` distance
//! graph (`a <u> <v> <w>` lines, 1-based ids) plus a `.co` coordinate file
//! (`v <id> <x> <y>`). This module parses both so the harness can run on the
//! real datasets when they are available, and writes them so generated
//! datasets can be persisted and inspected.

use std::fmt::Write as _;
use std::io::{BufRead, Write};

use crate::csr::{Graph, GraphBuilder};
use crate::types::{Point, VertexId, Weight};

/// Errors produced by the DIMACS parsers.
#[derive(Debug)]
pub enum DimacsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "i/o error: {e}"),
            DimacsError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

impl From<std::io::Error> for DimacsError {
    fn from(e: std::io::Error) -> Self {
        DimacsError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> DimacsError {
    DimacsError::Parse {
        line,
        message: message.into(),
    }
}

/// Parses a DIMACS `.gr` graph. Directed arc pairs collapse into undirected
/// edges (the challenge files list both directions).
pub fn read_gr<R: BufRead>(reader: R) -> Result<GraphBuilder, DimacsError> {
    let mut builder: Option<GraphBuilder> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            None | Some("c") => continue,
            Some("p") => {
                let kind = it
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing problem kind"))?;
                if kind != "sp" {
                    return Err(parse_err(
                        lineno,
                        format!("unsupported problem kind {kind:?}"),
                    ));
                }
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad vertex count"))?;
                builder = Some(GraphBuilder::new(n));
            }
            Some("a") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err(lineno, "arc before problem line"))?;
                let u: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad arc source"))?;
                let v: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad arc target"))?;
                let w: Weight = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad arc weight"))?;
                if u == 0
                    || v == 0
                    || u as usize > b.num_vertices()
                    || v as usize > b.num_vertices()
                {
                    return Err(parse_err(lineno, "arc endpoint out of range"));
                }
                if u != v {
                    b.add_edge((u - 1) as VertexId, (v - 1) as VertexId, w.max(1));
                }
            }
            Some(other) => {
                return Err(parse_err(lineno, format!("unknown record {other:?}")));
            }
        }
    }
    builder.ok_or_else(|| parse_err(0, "no problem line found"))
}

/// Parses a DIMACS `.co` coordinate file into an existing builder.
pub fn read_co<R: BufRead>(reader: R, builder: &mut GraphBuilder) -> Result<(), DimacsError> {
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            None | Some("c") | Some("p") => continue,
            Some("v") => {
                let id: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad vertex id"))?;
                let x: i32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad x coordinate"))?;
                let y: i32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad y coordinate"))?;
                if id == 0 || id as usize > builder.num_vertices() {
                    return Err(parse_err(lineno, "coordinate vertex id out of range"));
                }
                builder.set_coord((id - 1) as VertexId, Point::new(x, y));
            }
            Some(other) => {
                return Err(parse_err(lineno, format!("unknown record {other:?}")));
            }
        }
    }
    Ok(())
}

/// Serializes `graph` as a `.gr` file (both arc directions, 1-based ids).
pub fn write_gr<W: Write>(graph: &Graph, mut w: W) -> std::io::Result<()> {
    let mut buf = String::new();
    writeln!(
        buf,
        "c generated by kspin-graph\np sp {} {}",
        graph.num_vertices(),
        graph.num_arcs()
    )
    .expect("infallible");
    for e in graph.edges() {
        writeln!(buf, "a {} {} {}", e.u + 1, e.v + 1, e.weight).expect("infallible");
        writeln!(buf, "a {} {} {}", e.v + 1, e.u + 1, e.weight).expect("infallible");
    }
    w.write_all(buf.as_bytes())
}

/// Serializes coordinates as a `.co` file.
pub fn write_co<W: Write>(graph: &Graph, mut w: W) -> std::io::Result<()> {
    let mut buf = String::new();
    writeln!(
        buf,
        "c generated by kspin-graph\np aux sp co {}",
        graph.num_vertices()
    )
    .expect("infallible");
    for v in 0..graph.num_vertices() {
        let p = graph.coord(v as VertexId);
        writeln!(buf, "v {} {} {}", v + 1, p.x, p.y).expect("infallible");
    }
    w.write_all(buf.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_GR: &str = "c sample\n\
        p sp 3 4\n\
        a 1 2 10\n\
        a 2 1 10\n\
        a 2 3 5\n\
        a 3 2 5\n";

    const SAMPLE_CO: &str = "c coords\n\
        p aux sp co 3\n\
        v 1 100 200\n\
        v 2 -5 7\n\
        v 3 0 0\n";

    #[test]
    fn parses_gr_and_collapses_arc_pairs() {
        let b = read_gr(SAMPLE_GR.as_bytes()).unwrap();
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(10));
        assert_eq!(g.edge_weight(1, 2), Some(5));
    }

    #[test]
    fn parses_coordinates() {
        let mut b = read_gr(SAMPLE_GR.as_bytes()).unwrap();
        read_co(SAMPLE_CO.as_bytes(), &mut b).unwrap();
        let g = b.build();
        assert_eq!(g.coord(0), Point::new(100, 200));
        assert_eq!(g.coord(1), Point::new(-5, 7));
    }

    #[test]
    fn roundtrip_write_then_read() {
        let mut b = read_gr(SAMPLE_GR.as_bytes()).unwrap();
        read_co(SAMPLE_CO.as_bytes(), &mut b).unwrap();
        let g = b.build();
        let mut gr = Vec::new();
        let mut co = Vec::new();
        write_gr(&g, &mut gr).unwrap();
        write_co(&g, &mut co).unwrap();
        let mut b2 = read_gr(&gr[..]).unwrap();
        read_co(&co[..], &mut b2).unwrap();
        let g2 = b2.build();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.edge_weight(0, 1), g.edge_weight(0, 1));
        assert_eq!(g2.coord(1), g.coord(1));
    }

    #[test]
    fn rejects_arc_before_problem_line() {
        let err = read_gr("a 1 2 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DimacsError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let err = read_gr("p sp 2 1\na 1 5 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DimacsError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_unknown_records_and_kinds() {
        assert!(read_gr("p max 2 1\n".as_bytes()).is_err());
        assert!(read_gr("p sp 2 1\nz 1 2\n".as_bytes()).is_err());
    }
}
