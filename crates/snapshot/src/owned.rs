//! Typed copy-out and the owned index store.
//!
//! After [`SnapshotFile::validate`] succeeds, loading is a sequence of
//! typed copies: each accessor checks the section's element kind and
//! copies the payload into a pre-sized `Vec`. This is the `Owned` loading
//! strategy; the section layout (fixed offsets, 8-alignment) is designed
//! so a later `Mapped` variant of [`IndexStore`] can hand out `&[u8]`
//! views of an mmap instead.
//!
//! These methods allocate (they produce owned `Vec`s), so they live
//! outside the alloc-free validation path in `reader.rs`.

use crate::error::{FormatError, SectionLabel, SnapshotError};
use crate::format::{KIND_BYTES, KIND_F64, KIND_U32, KIND_U64};
use crate::reader::{SectionView, SnapshotFile};

fn le_u32(b: &[u8]) -> u32 {
    b.iter()
        .rev()
        .fold(0u32, |acc, &x| (acc << 8) | u32::from(x))
}

fn le_u64(b: &[u8]) -> u64 {
    b.iter()
        .rev()
        .fold(0u64, |acc, &x| (acc << 8) | u64::from(x))
}

impl<'a> SnapshotFile<'a> {
    fn typed(&self, id: u32, kind: u32) -> Result<SectionView<'a>, SnapshotError> {
        let s = self.section(id).ok_or(SnapshotError::format(
            SectionLabel::Section(id),
            FormatError::Missing,
        ))?;
        if s.kind != kind {
            return Err(SnapshotError::format(
                SectionLabel::Section(id),
                FormatError::WrongKind,
            ));
        }
        Ok(s)
    }

    /// Copies a `u32` section out into an owned, pre-sized `Vec`.
    ///
    /// # Errors
    /// [`FormatError::Missing`] / [`FormatError::WrongKind`] for `id`.
    pub fn u32s(&self, id: u32) -> Result<Vec<u32>, SnapshotError> {
        let s = self.typed(id, KIND_U32)?;
        Ok(s.payload.chunks_exact(4).map(le_u32).collect())
    }

    /// Copies a `u64` section out into an owned, pre-sized `Vec`.
    ///
    /// # Errors
    /// [`FormatError::Missing`] / [`FormatError::WrongKind`] for `id`.
    pub fn u64s(&self, id: u32) -> Result<Vec<u64>, SnapshotError> {
        let s = self.typed(id, KIND_U64)?;
        Ok(s.payload.chunks_exact(8).map(le_u64).collect())
    }

    /// Copies an `f64` section out into an owned, pre-sized `Vec`. Bit
    /// patterns are preserved exactly (no parsing, no rounding).
    ///
    /// # Errors
    /// [`FormatError::Missing`] / [`FormatError::WrongKind`] for `id`.
    pub fn f64s(&self, id: u32) -> Result<Vec<f64>, SnapshotError> {
        let s = self.typed(id, KIND_F64)?;
        Ok(s.payload
            .chunks_exact(8)
            .map(|b| f64::from_bits(le_u64(b)))
            .collect())
    }

    /// Borrows a byte section's payload.
    ///
    /// # Errors
    /// [`FormatError::Missing`] / [`FormatError::WrongKind`] for `id`.
    pub fn bytes(&self, id: u32) -> Result<&'a [u8], SnapshotError> {
        Ok(self.typed(id, KIND_BYTES)?.payload)
    }

    /// Like [`SnapshotFile::u32s`] but `Ok(None)` when the section is
    /// absent (for optional structures such as CH or the relabeling).
    ///
    /// # Errors
    /// [`FormatError::WrongKind`] when present with another kind.
    pub fn u32s_opt(&self, id: u32) -> Result<Option<Vec<u32>>, SnapshotError> {
        if self.has(id) {
            self.u32s(id).map(Some)
        } else {
            Ok(None)
        }
    }
}

/// Where a loaded snapshot's backing bytes live.
///
/// Today the only variant owns the buffer in memory; the format is laid
/// out so a `Mapped(Mmap)` variant can be added without changing a single
/// section codec (sections are offset-addressed and 8-aligned).
#[derive(Debug, Clone)]
pub enum IndexStore {
    /// The snapshot bytes, owned in memory.
    Owned(Vec<u8>),
}

impl IndexStore {
    /// The raw snapshot bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            IndexStore::Owned(b) => b,
        }
    }

    /// Validates the stored bytes and returns the section view.
    ///
    /// # Errors
    /// Whatever [`SnapshotFile::validate`] reports.
    pub fn file(&self) -> Result<SnapshotFile<'_>, SnapshotError> {
        SnapshotFile::validate(self.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::section;
    use crate::writer::SnapshotWriter;

    #[test]
    fn typed_copy_out_roundtrips_values() {
        let mut w = SnapshotWriter::new();
        w.put_u32s(section::GRAPH_OFFSETS, &[0, 3, 2_000_000_000]);
        w.put_f64s(section::CORPUS_DOC_IMPACTS, &[0.1, -0.0, f64::MAX]);
        w.put_u64s(section::INDEX_META, &[u64::MAX, 0]);
        w.put_bytes(section::INDEX_TERM_KINDS, &[2, 0, 1]);
        let store = IndexStore::Owned(w.finish());
        let f = store.file().unwrap();
        assert_eq!(
            f.u32s(section::GRAPH_OFFSETS).unwrap(),
            vec![0, 3, 2_000_000_000]
        );
        let impacts = f.f64s(section::CORPUS_DOC_IMPACTS).unwrap();
        assert_eq!(impacts[0], 0.1);
        assert!(impacts[1] == 0.0 && impacts[1].is_sign_negative());
        assert_eq!(impacts[2], f64::MAX);
        assert_eq!(f.u64s(section::INDEX_META).unwrap(), vec![u64::MAX, 0]);
        assert_eq!(f.bytes(section::INDEX_TERM_KINDS).unwrap(), &[2, 0, 1]);
    }

    #[test]
    fn missing_and_wrong_kind_are_structured_errors() {
        let mut w = SnapshotWriter::new();
        w.put_u32s(section::GRAPH_OFFSETS, &[0]);
        let bytes = w.finish();
        let f = SnapshotFile::validate(&bytes).unwrap();
        let missing = f.u32s(section::ALT_DIST).unwrap_err();
        assert!(missing.to_string().contains("alt.dist"), "{missing}");
        let wrong = f.u64s(section::GRAPH_OFFSETS).unwrap_err();
        assert!(wrong.to_string().contains("wrong element kind"), "{wrong}");
        assert_eq!(f.u32s_opt(section::ALT_DIST).unwrap(), None);
        assert_eq!(f.u32s_opt(section::GRAPH_OFFSETS).unwrap(), Some(vec![0]));
    }
}
