//! On-disk layout constants and the section-id registry.
//!
//! # File layout (all integers little-endian)
//!
//! | bytes          | field                                             |
//! |----------------|---------------------------------------------------|
//! | `0..8`         | magic `b"KSPINSNP"`                               |
//! | `8..12`        | format version (`u32`, currently 1)               |
//! | `12..16`       | endianness tag (`u32`, `0x0A0B0C0D`)              |
//! | `16..20`       | section count `k` (`u32`)                         |
//! | `20..24`       | reserved, must be 0                               |
//! | `24..32`       | total file length (`u64`)                         |
//! | `32..40`       | header+table checksum (`u64` xxHash64)            |
//! | `40..40+32k`   | section table, one 32-byte entry per section      |
//! | `40+32k..`     | section payloads, contiguous, 8-aligned           |
//!
//! Each table entry is `{ id: u32, kind: u32, offset: u64, count: u64,
//! checksum: u64 }`. `offset` is absolute from the start of the file;
//! `count` is in *elements* of the section's kind. Payloads are padded
//! with zero bytes to the next multiple of 8 and each section checksum
//! covers its whole padded range `[offset, next_offset)`, so together
//! with the header checksum (which covers bytes `0..32` plus the table)
//! **every byte of the file is covered by exactly one checksum**.
//!
//! # Versioning and compatibility
//!
//! The format version is bumped on any change to the header, table-entry
//! shape or the meaning of an existing section id; readers reject files
//! with an unknown version or endianness tag outright. New *section ids*
//! may be added without a version bump — sections are self-describing and
//! loaders ignore ids they do not request — which is how optional
//! structures (CH, G-tree hierarchy, relabeling) already work.
//!
//! # Canonical serialization
//!
//! A conforming writer emits sections in strictly ascending id order at
//! the smallest conforming offsets with zero padding. Two snapshots of
//! equal logical content are therefore byte-identical, and save → load →
//! save is the identity on bytes (test-enforced).

/// File magic, bytes `0..8`.
pub const MAGIC: [u8; 8] = *b"KSPINSNP";

/// Current format version, bytes `8..12`.
pub const FORMAT_VERSION: u32 = 1;

/// Endianness tag, bytes `12..16`: read back as this value only when the
/// file and host agree on little-endian layout of `u32`s.
pub const ENDIAN_TAG: u32 = 0x0A0B_0C0D;

/// Fixed header length in bytes (the section table starts here).
pub const HEADER_LEN: usize = 40;

/// Length of one section-table entry in bytes.
pub const TABLE_ENTRY_LEN: usize = 32;

/// Seed for the header+table checksum.
pub const HEADER_SEED: u64 = 0x4B53_5049_4E53_4E50; // "KSPINSNP"

/// Element kind: `u32` little-endian, 4 bytes per element.
pub const KIND_U32: u32 = 0;
/// Element kind: `u64` little-endian, 8 bytes per element.
pub const KIND_U64: u32 = 1;
/// Element kind: `f64` stored as its IEEE-754 bit pattern in a
/// little-endian `u64`, 8 bytes per element.
pub const KIND_F64: u32 = 2;
/// Element kind: raw bytes, 1 byte per element.
pub const KIND_BYTES: u32 = 3;

/// Bytes per element of `kind`, or `None` for an unknown kind.
#[inline]
pub fn elem_size(kind: u32) -> Option<u64> {
    match kind {
        KIND_U32 => Some(4),
        KIND_U64 | KIND_F64 => Some(8),
        KIND_BYTES => Some(1),
        _ => None,
    }
}

/// Section ids. The registry is append-only: ids are never reused or
/// renumbered (see the module docs on compatibility).
pub mod section {
    /// CSR adjacency offsets, `u32`, length `n + 1`.
    pub const GRAPH_OFFSETS: u32 = 1;
    /// CSR edge targets, `u32`.
    pub const GRAPH_TARGETS: u32 = 2;
    /// CSR edge weights, `u32`.
    pub const GRAPH_WEIGHTS: u32 = 3;
    /// Vertex coordinates interleaved `[x0, y0, x1, y1, ..]`, `i32` stored
    /// as `u32` bit patterns.
    pub const GRAPH_COORDS: u32 = 4;

    /// Corpus: vertex of each object, `u32`, length = number of objects.
    pub const CORPUS_VERTEX_OF: u32 = 10;
    /// Corpus: per-object document offsets into the posting columns,
    /// `u32`, length = objects + 1.
    pub const CORPUS_DOC_OFFSETS: u32 = 11;
    /// Corpus: posting term ids, `u32` (column of the flattened docs).
    pub const CORPUS_DOC_TERMS: u32 = 12;
    /// Corpus: posting frequencies, `u32`.
    pub const CORPUS_DOC_FREQS: u32 = 13;
    /// Corpus: posting impacts (Eq. 2/3), `f64` bit patterns.
    pub const CORPUS_DOC_IMPACTS: u32 = 14;

    /// Vocabulary: byte offsets of each term string, `u32`, length
    /// = terms + 1.
    pub const VOCAB_OFFSETS: u32 = 20;
    /// Vocabulary: concatenated UTF-8 term bytes.
    pub const VOCAB_BYTES: u32 = 21;

    /// Index scalars, `u64`: `[rho, term_slots, nvd_terms, small_terms,
    /// build_seconds_bits, cache_present, cache_shards,
    /// cache_shard_budget]`.
    pub const INDEX_META: u32 = 30;
    /// Per-term-slot kind byte: 0 = absent, 1 = small list, 2 = NVD.
    pub const INDEX_TERM_KINDS: u32 = 31;
    /// Small lists: per small term `[objects_len]`, `u32`.
    pub const SMALL_LENS: u32 = 32;
    /// Small lists: pooled object ids, `u32`.
    pub const SMALL_OBJECTS: u32 = 33;
    /// Small lists: pooled object vertices, `u32`.
    pub const SMALL_VERTICES: u32 = 34;
    /// Small lists: pooled liveness flags, bytes 0/1.
    pub const SMALL_ALIVE: u32 = 35;

    /// NVD scalars, `u64`, 6 per NVD term: `[rho, pending_updates,
    /// min_x (i32 bits), min_y (i32 bits), scale_x_bits, scale_y_bits]`.
    pub const NVD_SCALARS: u32 = 36;
    /// NVD pooled-array lengths, `u32`, 8 per NVD term: `[starts,
    /// cand_offsets, cands, generators, adjacency_nodes, adjacency_edges,
    /// attached_total, inserted]`.
    pub const NVD_LENS: u32 = 37;
    /// NVD pooled Morton-list leaf starts, `u32`.
    pub const NVD_STARTS: u32 = 38;
    /// NVD pooled per-leaf candidate offsets, `u32`.
    pub const NVD_CAND_OFFSETS: u32 = 39;
    /// NVD pooled leaf candidate generator indices, `u32`.
    pub const NVD_CANDS: u32 = 40;
    /// NVD pooled generator vertices, `u32`.
    pub const NVD_OBJECTS: u32 = 41;
    /// NVD pooled per-generator max cell radii, `u32`.
    pub const NVD_MAX_RADIUS: u32 = 42;
    /// NVD pooled adjacency CSR offsets (per term, rebased to 0), `u32`.
    pub const NVD_ADJ_OFFSETS: u32 = 43;
    /// NVD pooled adjacency CSR neighbor lists, `u32`.
    pub const NVD_ADJ_DATA: u32 = 44;
    /// NVD pooled deletion flags, bytes 0/1, one per overlay generator.
    pub const NVD_DELETED: u32 = 45;
    /// NVD pooled attached-overlay offsets (per term, rebased), `u32`.
    pub const NVD_ATT_OFFSETS: u32 = 46;
    /// NVD pooled attached-overlay generator indices, `u32`.
    pub const NVD_ATT_DATA: u32 = 47;
    /// NVD pooled inserted-generator vertices, `u32`.
    pub const NVD_INSERTED: u32 = 48;
    /// NVD pooled per-generator corpus object ids, `u32`.
    pub const NVD_CORPUS_IDS: u32 = 49;

    /// ALT landmark vertex ids, `u32`.
    pub const ALT_LANDMARKS: u32 = 60;
    /// ALT distance table, row-major `[landmark][vertex]`, `u32`.
    pub const ALT_DIST: u32 = 61;

    /// CH scalars, `u64`: `[num_shortcuts]`.
    pub const CH_META: u32 = 70;
    /// CH contraction ranks, `u32`, one per vertex.
    pub const CH_RANK: u32 = 71;
    /// CH upward-graph CSR offsets, `u32`, length `n + 1`.
    pub const CH_UP_OFFSETS: u32 = 72;
    /// CH upward-graph edge targets, `u32`.
    pub const CH_UP_TARGETS: u32 = 73;
    /// CH upward-graph edge weights, `u32`.
    pub const CH_UP_WEIGHTS: u32 = 74;

    /// G-tree hierarchy: parent of each node, `u32`.
    pub const HIER_PARENT: u32 = 80;
    /// G-tree hierarchy: child-list offsets, `u32`, length nodes + 1.
    pub const HIER_CHILD_OFFSETS: u32 = 81;
    /// G-tree hierarchy: pooled child node ids, `u32`.
    pub const HIER_CHILD_DATA: u32 = 82;
    /// G-tree hierarchy: depth of each node, `u32`.
    pub const HIER_DEPTH: u32 = 83;
    /// G-tree hierarchy: leaf vertex-list offsets, `u32`, length nodes + 1.
    pub const HIER_VERT_OFFSETS: u32 = 84;
    /// G-tree hierarchy: pooled leaf vertex ids, `u32`.
    pub const HIER_VERT_DATA: u32 = 85;
    /// G-tree hierarchy: leaf node of each vertex, `u32`.
    pub const HIER_LEAF_OF: u32 = 86;

    /// Active relabeling as a visit order (`order[local] = external`),
    /// `u32`, one per vertex.
    pub const RELABEL_ORDER: u32 = 90;
}

/// Human-readable name of a section id (for error messages and the CLI
/// metadata listing). Unknown ids render as `"unknown"`.
pub fn section_name(id: u32) -> &'static str {
    use section::*;
    match id {
        GRAPH_OFFSETS => "graph.offsets",
        GRAPH_TARGETS => "graph.targets",
        GRAPH_WEIGHTS => "graph.weights",
        GRAPH_COORDS => "graph.coords",
        CORPUS_VERTEX_OF => "corpus.vertex_of",
        CORPUS_DOC_OFFSETS => "corpus.doc_offsets",
        CORPUS_DOC_TERMS => "corpus.doc_terms",
        CORPUS_DOC_FREQS => "corpus.doc_freqs",
        CORPUS_DOC_IMPACTS => "corpus.doc_impacts",
        VOCAB_OFFSETS => "vocab.offsets",
        VOCAB_BYTES => "vocab.bytes",
        INDEX_META => "index.meta",
        INDEX_TERM_KINDS => "index.term_kinds",
        SMALL_LENS => "index.small_lens",
        SMALL_OBJECTS => "index.small_objects",
        SMALL_VERTICES => "index.small_vertices",
        SMALL_ALIVE => "index.small_alive",
        NVD_SCALARS => "nvd.scalars",
        NVD_LENS => "nvd.lens",
        NVD_STARTS => "nvd.starts",
        NVD_CAND_OFFSETS => "nvd.cand_offsets",
        NVD_CANDS => "nvd.cands",
        NVD_OBJECTS => "nvd.objects",
        NVD_MAX_RADIUS => "nvd.max_radius",
        NVD_ADJ_OFFSETS => "nvd.adj_offsets",
        NVD_ADJ_DATA => "nvd.adj_data",
        NVD_DELETED => "nvd.deleted",
        NVD_ATT_OFFSETS => "nvd.att_offsets",
        NVD_ATT_DATA => "nvd.att_data",
        NVD_INSERTED => "nvd.inserted",
        NVD_CORPUS_IDS => "nvd.corpus_ids",
        ALT_LANDMARKS => "alt.landmarks",
        ALT_DIST => "alt.dist",
        CH_META => "ch.meta",
        CH_RANK => "ch.rank",
        CH_UP_OFFSETS => "ch.up_offsets",
        CH_UP_TARGETS => "ch.up_targets",
        CH_UP_WEIGHTS => "ch.up_weights",
        HIER_PARENT => "gtree.parent",
        HIER_CHILD_OFFSETS => "gtree.child_offsets",
        HIER_CHILD_DATA => "gtree.child_data",
        HIER_DEPTH => "gtree.depth",
        HIER_VERT_OFFSETS => "gtree.vert_offsets",
        HIER_VERT_DATA => "gtree.vert_data",
        HIER_LEAF_OF => "gtree.leaf_of",
        RELABEL_ORDER => "relabel.order",
        _ => "unknown",
    }
}
