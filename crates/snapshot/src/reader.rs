//! Fail-closed snapshot validation and section access.
//!
//! [`SnapshotFile::validate`] is the single entry point through which
//! untrusted bytes become a readable snapshot. It is written to be
//! **panic-free and allocation-free** — only `get`-based slicing, checked
//! arithmetic and iterator folds; no indexing, no asserts, no unchecked
//! division — because it is a certified entry point of `cargo xtask
//! panics` and sits in the `cargo xtask allocs` steady-state perimeter:
//! a corrupt or adversarial file must yield a structured
//! [`SnapshotError`], never a panic, before any copying begins.

use crate::error::{FormatError, SectionLabel, SnapshotError};
use crate::format::{
    elem_size, ENDIAN_TAG, FORMAT_VERSION, HEADER_LEN, HEADER_SEED, MAGIC, TABLE_ENTRY_LEN,
};
use crate::hash::xxh64;

/// Little-endian `u32` at byte offset `off`, if in bounds.
#[inline]
fn read_u32(data: &[u8], off: usize) -> Option<u32> {
    let bytes = data.get(off..off.checked_add(4)?)?;
    Some(
        bytes
            .iter()
            .rev()
            .fold(0u32, |acc, &b| (acc << 8) | u32::from(b)),
    )
}

/// Little-endian `u64` at byte offset `off`, if in bounds.
#[inline]
fn read_u64(data: &[u8], off: usize) -> Option<u64> {
    let bytes = data.get(off..off.checked_add(8)?)?;
    Some(
        bytes
            .iter()
            .rev()
            .fold(0u64, |acc, &b| (acc << 8) | u64::from(b)),
    )
}

/// One parsed 32-byte section-table entry.
#[derive(Debug, Clone, Copy)]
struct RawEntry {
    id: u32,
    kind: u32,
    offset: u64,
    count: u64,
    checksum: u64,
}

fn entry(data: &[u8], i: u32) -> Option<RawEntry> {
    // lint:allow(no-as-cast-in-decode) — lossless u32 → usize widening
    let base = HEADER_LEN.checked_add((i as usize).checked_mul(TABLE_ENTRY_LEN)?)?;
    Some(RawEntry {
        id: read_u32(data, base)?,
        kind: read_u32(data, base.checked_add(4)?)?,
        offset: read_u64(data, base.checked_add(8)?)?,
        count: read_u64(data, base.checked_add(16)?)?,
        checksum: read_u64(data, base.checked_add(24)?)?,
    })
}

/// A borrowed view of one validated section.
#[derive(Debug, Clone, Copy)]
pub struct SectionView<'a> {
    /// Section id from the registry in [`crate::format::section`].
    pub id: u32,
    /// Element kind (`KIND_U32` / `KIND_U64` / `KIND_F64` / `KIND_BYTES`).
    pub kind: u32,
    /// Element count.
    pub count: u64,
    /// The raw payload bytes (padding excluded).
    pub payload: &'a [u8],
}

/// A fully validated snapshot buffer: every checksum verified, every
/// offset in bounds, the canonical layout confirmed. Section lookups
/// after validation cannot fail structurally.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotFile<'a> {
    data: &'a [u8],
    num_sections: u32,
}

impl<'a> SnapshotFile<'a> {
    /// Validates `data` as a snapshot: magic, version, endianness tag,
    /// stated length, header/table checksum, then — in file order — each
    /// section's id ordering, element kind, canonical offset, zero
    /// padding and payload checksum. Every byte of the file is covered by
    /// exactly one of these checks, so any single-byte corruption or
    /// truncation is rejected with the failing section named.
    ///
    /// # Errors
    /// A [`SnapshotError::Format`] naming the header, the table or the
    /// first failing section. Never panics, never allocates.
    pub fn validate(data: &'a [u8]) -> Result<SnapshotFile<'a>, SnapshotError> {
        const HDR: SectionLabel = SectionLabel::Header;
        const TBL: SectionLabel = SectionLabel::Table;
        if data.len() < HEADER_LEN {
            return Err(SnapshotError::format(HDR, FormatError::Truncated));
        }
        if data.get(..8) != Some(MAGIC.as_slice()) {
            return Err(SnapshotError::format(HDR, FormatError::BadMagic));
        }
        let truncated = || SnapshotError::format(HDR, FormatError::Truncated);
        let version = read_u32(data, 8).ok_or_else(truncated)?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::format(HDR, FormatError::BadVersion(version)));
        }
        let endian = read_u32(data, 12).ok_or_else(truncated)?;
        if endian != ENDIAN_TAG {
            return Err(SnapshotError::format(HDR, FormatError::BadEndian(endian)));
        }
        let num_sections = read_u32(data, 16).ok_or_else(truncated)?;
        if read_u32(data, 20).ok_or_else(truncated)? != 0 {
            return Err(SnapshotError::format(HDR, FormatError::BadReserved));
        }
        let file_len = read_u64(data, 24).ok_or_else(truncated)?;
        // lint:allow(no-as-cast-in-decode) — lossless usize → u64 widening
        if file_len != data.len() as u64 {
            return Err(SnapshotError::format(HDR, FormatError::LengthMismatch));
        }
        let stored_sum = read_u64(data, 32).ok_or_else(truncated)?;

        let overflow = || SnapshotError::format(TBL, FormatError::CountOverflow);
        let table_len = u64::from(num_sections)
            // lint:allow(no-as-cast-in-decode) — lossless widening of a
            // small layout constant
            .checked_mul(TABLE_ENTRY_LEN as u64)
            .ok_or_else(overflow)?;
        // lint:allow(no-as-cast-in-decode) — lossless widening of a small
        // layout constant
        let table_end = (HEADER_LEN as u64)
            .checked_add(table_len)
            .ok_or_else(overflow)?;
        if table_end > file_len {
            return Err(SnapshotError::format(TBL, FormatError::Truncated));
        }
        let head = data.get(..32).ok_or_else(truncated)?;
        let table = data
            // lint:allow(no-as-cast-in-decode) — table_end ≤ file_len ==
            // data.len(), which fits usize by construction
            .get(HEADER_LEN..table_end as usize)
            .ok_or_else(|| SnapshotError::format(TBL, FormatError::Truncated))?;
        if xxh64(table, xxh64(head, HEADER_SEED)) != stored_sum {
            return Err(SnapshotError::format(HDR, FormatError::HeaderChecksum));
        }

        let mut prev_id: Option<u32> = None;
        let mut cursor = table_end;
        let mut i = 0u32;
        while i < num_sections {
            let e =
                entry(data, i).ok_or_else(|| SnapshotError::format(TBL, FormatError::Truncated))?;
            let at = SectionLabel::Section(e.id);
            if prev_id.is_some_and(|p| e.id <= p) {
                return Err(SnapshotError::format(TBL, FormatError::UnsortedSections));
            }
            prev_id = Some(e.id);
            let elem =
                elem_size(e.kind).ok_or_else(|| SnapshotError::format(at, FormatError::BadKind))?;
            if e.offset != cursor {
                return Err(SnapshotError::format(at, FormatError::BadOffset));
            }
            let sec_overflow = || SnapshotError::format(at, FormatError::CountOverflow);
            let payload_len = e.count.checked_mul(elem).ok_or_else(sec_overflow)?;
            let padded = payload_len
                .checked_add(7)
                .map(|x| x & !7u64)
                .ok_or_else(sec_overflow)?;
            let end = e.offset.checked_add(padded).ok_or_else(sec_overflow)?;
            if end > file_len {
                return Err(SnapshotError::format(at, FormatError::Truncated));
            }
            let sec_truncated = || SnapshotError::format(at, FormatError::Truncated);
            let range = data
                // lint:allow(no-as-cast-in-decode) — offset == cursor and
                // end ≤ file_len == data.len() (checked above), both fit usize
                .get(e.offset as usize..end as usize)
                .ok_or_else(sec_truncated)?;
            let pad = range
                // lint:allow(no-as-cast-in-decode) — payload_len ≤ padded ==
                // range length, which fits usize
                .get(payload_len as usize..)
                .ok_or_else(sec_truncated)?;
            if pad.iter().any(|&b| b != 0) {
                return Err(SnapshotError::format(at, FormatError::NonZeroPadding));
            }
            if xxh64(range, u64::from(e.id)) != e.checksum {
                return Err(SnapshotError::format(at, FormatError::SectionChecksum));
            }
            cursor = end;
            i = i.wrapping_add(1);
        }
        if cursor != file_len {
            return Err(SnapshotError::format(HDR, FormatError::LengthMismatch));
        }
        Ok(SnapshotFile { data, num_sections })
    }

    /// Format version of the validated file.
    pub fn version(&self) -> u32 {
        read_u32(self.data, 8).unwrap_or(0)
    }

    /// Number of sections in the validated file.
    pub fn num_sections(&self) -> u32 {
        self.num_sections
    }

    /// Total file length in bytes.
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }

    /// The section at table position `i`, if any.
    pub fn section_at(&self, i: u32) -> Option<SectionView<'a>> {
        if i >= self.num_sections {
            return None;
        }
        let e = entry(self.data, i)?;
        let payload_len = e.count.checked_mul(elem_size(e.kind)?)?;
        let end = e.offset.checked_add(payload_len)?;
        Some(SectionView {
            id: e.id,
            kind: e.kind,
            count: e.count,
            // lint:allow(no-as-cast-in-decode) — validation proved every
            // section's offset..end ⊆ 0..data.len(), which fits usize; an
            // out-of-range cast would have failed validate()
            payload: self.data.get(e.offset as usize..end as usize)?,
        })
    }

    /// The section with registry id `id`, if present.
    pub fn section(&self, id: u32) -> Option<SectionView<'a>> {
        let mut i = 0u32;
        while i < self.num_sections {
            if let Some(e) = entry(self.data, i) {
                if e.id == id {
                    return self.section_at(i);
                }
            }
            i = i.wrapping_add(1);
        }
        None
    }

    /// Whether a section with registry id `id` is present.
    pub fn has(&self, id: u32) -> bool {
        self.section(id).is_some()
    }

    /// Iterates all sections in file order.
    pub fn sections(&self) -> impl Iterator<Item = SectionView<'a>> + '_ {
        (0..self.num_sections).filter_map(move |i| self.section_at(i))
    }
}
