//! The canonical snapshot writer.
//!
//! [`SnapshotWriter`] accumulates typed sections and emits the one
//! conforming byte layout for them: header, strictly-ascending section
//! table, contiguous 8-aligned payloads with zero padding, checksums over
//! exactly the ranges the validator re-hashes. There are no layout
//! degrees of freedom, which is what makes save → load → save
//! byte-identical.
//!
//! The writer is build/persist-time code, not a serving path: misuse
//! (non-ascending ids) is a programmer error and panics.

use crate::format::{
    ENDIAN_TAG, FORMAT_VERSION, HEADER_LEN, HEADER_SEED, KIND_BYTES, KIND_F64, KIND_U32, KIND_U64,
    MAGIC, TABLE_ENTRY_LEN,
};
use crate::hash::xxh64;

struct PendingSection {
    id: u32,
    kind: u32,
    count: u64,
    payload: Vec<u8>,
}

/// Accumulates sections and serializes them canonically.
#[derive(Default)]
pub struct SnapshotWriter {
    sections: Vec<PendingSection>,
}

impl std::fmt::Debug for SnapshotWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SnapshotWriter({} sections)", self.sections.len())
    }
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    fn push(&mut self, id: u32, kind: u32, count: u64, payload: Vec<u8>) {
        if let Some(last) = self.sections.last() {
            // PANIC-OK: write-time programmer-error guard; the writer is
            // build/persist code, never on the untrusted-input load path.
            assert!(
                id > last.id,
                "sections must be written in strictly ascending id order ({id} after {})",
                last.id
            );
        }
        self.sections.push(PendingSection {
            id,
            kind,
            count,
            payload,
        });
    }

    /// Appends a `u32` array section.
    pub fn put_u32s(&mut self, id: u32, values: &[u32]) {
        let mut payload = Vec::with_capacity(values.len() * 4);
        for v in values {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.push(id, KIND_U32, values.len() as u64, payload);
    }

    /// Appends a `u64` array section.
    pub fn put_u64s(&mut self, id: u32, values: &[u64]) {
        let mut payload = Vec::with_capacity(values.len() * 8);
        for v in values {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.push(id, KIND_U64, values.len() as u64, payload);
    }

    /// Appends an `f64` array section (IEEE-754 bit patterns).
    pub fn put_f64s(&mut self, id: u32, values: &[f64]) {
        let mut payload = Vec::with_capacity(values.len() * 8);
        for v in values {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.push(id, KIND_F64, values.len() as u64, payload);
    }

    /// Appends a raw byte section.
    pub fn put_bytes(&mut self, id: u32, values: &[u8]) {
        self.push(id, KIND_BYTES, values.len() as u64, values.to_vec());
    }

    /// Serializes all sections into the canonical snapshot byte layout.
    pub fn finish(self) -> Vec<u8> {
        let table_end = HEADER_LEN + self.sections.len() * TABLE_ENTRY_LEN;
        let mut out = Vec::new();

        // Header (checksum patched below).
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes()); // file length, patched
        out.extend_from_slice(&0u64.to_le_bytes()); // header checksum, patched

        // Table placeholder, then payloads with zero padding.
        out.resize(table_end, 0);
        let mut entries = Vec::with_capacity(self.sections.len());
        for s in &self.sections {
            let offset = out.len() as u64;
            out.extend_from_slice(&s.payload);
            let padded = out.len().next_multiple_of(8);
            out.resize(padded, 0);
            let checksum = xxh64(&out[offset as usize..], u64::from(s.id));
            entries.push((s.id, s.kind, offset, s.count, checksum));
        }

        // Patch the table and the file length, then the header checksum
        // over bytes 0..32 plus the table (the ranges the validator hashes).
        let file_len = out.len() as u64;
        out[24..32].copy_from_slice(&file_len.to_le_bytes());
        for (i, (id, kind, offset, count, checksum)) in entries.iter().enumerate() {
            let base = HEADER_LEN + i * TABLE_ENTRY_LEN;
            out[base..base + 4].copy_from_slice(&id.to_le_bytes());
            out[base + 4..base + 8].copy_from_slice(&kind.to_le_bytes());
            out[base + 8..base + 16].copy_from_slice(&offset.to_le_bytes());
            out[base + 16..base + 24].copy_from_slice(&count.to_le_bytes());
            out[base + 24..base + 32].copy_from_slice(&checksum.to_le_bytes());
        }
        let head_sum = xxh64(&out[40..table_end], xxh64(&out[..32], HEADER_SEED));
        out[32..40].copy_from_slice(&head_sum.to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{FormatError, SectionLabel, SnapshotError};
    use crate::format::section;
    use crate::reader::SnapshotFile;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_u32s(section::GRAPH_OFFSETS, &[0, 2, 5, 9]);
        w.put_u32s(section::GRAPH_TARGETS, &[1, 2, 3]);
        w.put_f64s(section::CORPUS_DOC_IMPACTS, &[0.5, 1.25, -3.0]);
        w.put_u64s(section::INDEX_META, &[7, 42]);
        w.put_bytes(section::INDEX_TERM_KINDS, &[0, 1, 2, 1, 0]);
        w.finish()
    }

    #[test]
    fn writer_output_validates_and_reads_back() {
        let bytes = sample();
        let f = SnapshotFile::validate(&bytes).expect("writer output must validate");
        assert_eq!(f.num_sections(), 5);
        let s = f.section(section::GRAPH_OFFSETS).unwrap();
        assert_eq!(s.count, 4);
        assert!(f.has(section::INDEX_META));
        assert!(!f.has(section::ALT_DIST));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let bytes = SnapshotWriter::new().finish();
        let f = SnapshotFile::validate(&bytes).expect("empty snapshot");
        assert_eq!(f.num_sections(), 0);
        assert_eq!(f.len_bytes(), HEADER_LEN);
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample(), sample());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn non_ascending_ids_are_rejected_at_write_time() {
        let mut w = SnapshotWriter::new();
        w.put_u32s(section::GRAPH_TARGETS, &[1]);
        w.put_u32s(section::GRAPH_OFFSETS, &[0]);
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let bytes = sample();
        for len in 0..bytes.len() {
            let e = SnapshotFile::validate(&bytes[..len]).expect_err("truncated file accepted");
            assert!(matches!(e, SnapshotError::Format { .. }));
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample();
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut b = bytes.clone();
                b[i] ^= flip;
                assert!(
                    SnapshotFile::validate(&b).is_err(),
                    "flip {flip:#04x} at byte {i} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn payload_corruption_names_the_section() {
        let bytes = sample();
        let f = SnapshotFile::validate(&bytes).unwrap();
        let s = f.section(section::GRAPH_TARGETS).unwrap();
        let off = s.payload.as_ptr() as usize - bytes.as_ptr() as usize;
        let mut b = bytes.clone();
        b[off] ^= 0xFF;
        let e = SnapshotFile::validate(&b).expect_err("corrupt payload accepted");
        assert_eq!(e.at(), SectionLabel::Section(section::GRAPH_TARGETS));
        assert!(matches!(
            e,
            SnapshotError::Format {
                kind: FormatError::SectionChecksum,
                ..
            }
        ));
    }

    #[test]
    fn bad_magic_version_and_endian_are_rejected() {
        let good = sample();
        let mut b = good.clone();
        b[0] = b'X';
        assert!(SnapshotFile::validate(&b).is_err());
        let mut b = good.clone();
        b[8] = 99; // version
        assert!(matches!(
            SnapshotFile::validate(&b).unwrap_err(),
            SnapshotError::Format {
                kind: FormatError::BadVersion(99),
                ..
            }
        ));
        let mut b = good;
        b[12] ^= 0xFF; // endian tag
        assert!(matches!(
            SnapshotFile::validate(&b).unwrap_err(),
            SnapshotError::Format {
                kind: FormatError::BadEndian(_),
                ..
            }
        ));
    }
}
