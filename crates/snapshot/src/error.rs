//! Structured snapshot errors that name the failing section.
//!
//! Two layers map onto the two loading phases:
//!
//! * [`SnapshotError::Format`] — the byte-level validator rejected the
//!   file (bad magic, checksum mismatch, truncation, …). Carries only
//!   `Copy` data so the panic-free validator constructs it without
//!   allocating.
//! * [`SnapshotError::Decode`] — the bytes were well-formed but a decoded
//!   structure violated a semantic invariant (non-monotone offsets, an id
//!   out of range, a failed permutation check). Constructed outside the
//!   certified hot path, so it may carry a detail string.

use crate::format::section_name;
use std::fmt;

/// Where in the file a failure was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionLabel {
    /// The fixed 40-byte header.
    Header,
    /// The section table.
    Table,
    /// A specific section, by registry id.
    Section(u32),
}

impl fmt::Display for SectionLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SectionLabel::Header => f.write_str("header"),
            SectionLabel::Table => f.write_str("section table"),
            SectionLabel::Section(id) => {
                write!(f, "section {} ({})", id, section_name(id))
            }
        }
    }
}

/// Byte-level reasons the validator rejects a file. `Copy`, so the
/// alloc-free validator can construct one on any exit path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatError {
    /// The file ends before the addressed range does.
    Truncated,
    /// The first 8 bytes are not the snapshot magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Endianness tag mismatch (file written on an incompatible layout).
    BadEndian(u32),
    /// The reserved header field is non-zero.
    BadReserved,
    /// The stored file length disagrees with the buffer length
    /// (truncation or trailing bytes).
    LengthMismatch,
    /// The header/table checksum did not match.
    HeaderChecksum,
    /// A table entry carries an unknown element kind.
    BadKind,
    /// Section ids are not strictly ascending.
    UnsortedSections,
    /// A section does not start where the previous one ended (the
    /// canonical layout admits no gaps or overlaps).
    BadOffset,
    /// `count × elem_size` overflows.
    CountOverflow,
    /// Padding bytes between sections are not zero.
    NonZeroPadding,
    /// A section checksum did not match.
    SectionChecksum,
    /// A section the decoder requires is absent.
    Missing,
    /// A section is present but with the wrong element kind.
    WrongKind,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FormatError::Truncated => f.write_str("truncated"),
            FormatError::BadMagic => f.write_str("bad magic"),
            FormatError::BadVersion(v) => write!(f, "unknown format version {v}"),
            FormatError::BadEndian(v) => write!(f, "endianness tag mismatch ({v:#010x})"),
            FormatError::BadReserved => f.write_str("reserved header field non-zero"),
            FormatError::LengthMismatch => f.write_str("stored length disagrees with file size"),
            FormatError::HeaderChecksum => f.write_str("header/table checksum mismatch"),
            FormatError::BadKind => f.write_str("unknown element kind"),
            FormatError::UnsortedSections => f.write_str("section ids not strictly ascending"),
            FormatError::BadOffset => f.write_str("section offset breaks the canonical layout"),
            FormatError::CountOverflow => f.write_str("element count overflows"),
            FormatError::NonZeroPadding => f.write_str("non-zero padding bytes"),
            FormatError::SectionChecksum => f.write_str("section checksum mismatch"),
            FormatError::Missing => f.write_str("required section missing"),
            FormatError::WrongKind => f.write_str("section has the wrong element kind"),
        }
    }
}

/// A structured snapshot-loading error naming the failing section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte-level validator rejected the file.
    Format {
        /// Where the failure was detected.
        at: SectionLabel,
        /// Why the bytes were rejected.
        kind: FormatError,
    },
    /// A decoded structure violated a semantic invariant.
    Decode {
        /// Where the failure was detected.
        at: SectionLabel,
        /// The violated invariant.
        detail: String,
    },
}

impl SnapshotError {
    /// A format-layer error at `at`.
    #[inline]
    pub fn format(at: SectionLabel, kind: FormatError) -> Self {
        SnapshotError::Format { at, kind }
    }

    /// A decode-layer error for section `id`.
    pub fn decode(id: u32, detail: impl Into<String>) -> Self {
        SnapshotError::Decode {
            at: SectionLabel::Section(id),
            detail: detail.into(),
        }
    }

    /// The location this error names.
    pub fn at(&self) -> SectionLabel {
        match *self {
            SnapshotError::Format { at, .. } => at,
            SnapshotError::Decode { at, .. } => at,
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Format { at, kind } => write!(f, "snapshot {at}: {kind}"),
            SnapshotError::Decode { at, detail } => write!(f, "snapshot {at}: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::section;

    #[test]
    fn errors_name_the_failing_section() {
        let e = SnapshotError::format(
            SectionLabel::Section(section::ALT_DIST),
            FormatError::SectionChecksum,
        );
        let msg = e.to_string();
        assert!(msg.contains("alt.dist"), "{msg}");
        assert!(msg.contains("checksum"), "{msg}");
    }

    #[test]
    fn decode_errors_carry_detail() {
        let e = SnapshotError::decode(section::GRAPH_OFFSETS, "offsets not monotone");
        let msg = e.to_string();
        assert!(msg.contains("graph.offsets"), "{msg}");
        assert!(msg.contains("monotone"), "{msg}");
        assert_eq!(e.at(), SectionLabel::Section(section::GRAPH_OFFSETS));
    }
}
