//! Versioned flat binary snapshot format for K-SPIN indexes.
//!
//! A snapshot is a single contiguous byte buffer holding every index
//! structure of a deployment — CSR graph, corpus postings, per-keyword
//! ρ-approximate NVDs, ALT landmark tables, CH upward graph, G-tree
//! hierarchy and the active relabeling — as *sections* of flat
//! little-endian `u32`/`u64`/`f64` arrays. Loading is validate-then-copy
//! into pre-sized `Vec`s: no per-element parsing, no pointer fix-ups, no
//! graph traversal. The layout is deliberately mmap-compatible (fixed
//! header, 8-aligned sections, explicit offsets) so a later `Mapped`
//! variant of [`IndexStore`] can serve straight from the page cache.
//!
//! Three guarantees define the format:
//!
//! * **Canonical serialization** — the writer enforces ascending section
//!   ids, contiguous 8-aligned offsets and zero padding, so save → load →
//!   save is byte-identical (test-enforced at the workspace level).
//! * **Fail-closed validation** — [`SnapshotFile::validate`] checks magic,
//!   version, endianness, length, the header/table checksum and one
//!   xxhash-style checksum per padded section range. Every byte of the
//!   file is covered by exactly one checksum, so any single-byte flip or
//!   truncation yields a structured [`SnapshotError`] naming the failing
//!   section.
//! * **Panic-free loading** — validation and section access never index,
//!   never divide, never assert: untrusted bytes cannot panic the loader.
//!   `SnapshotFile::validate` is certified by `cargo xtask panics`.
//!
//! This crate is the format layer only: it knows bytes, sections and
//! checksums. The codecs that map index structures onto sections live in
//! `kspin-core` (engine) and the root `kspin` crate (full system), which
//! re-export this crate.

pub mod error;
pub mod format;
pub mod hash;
pub mod owned;
pub mod reader;
pub mod writer;

pub use error::{FormatError, SectionLabel, SnapshotError};
pub use owned::IndexStore;
pub use reader::{SectionView, SnapshotFile};
pub use writer::SnapshotWriter;
