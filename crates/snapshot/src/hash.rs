//! Hand-rolled xxHash64: the per-section checksum function.
//!
//! The workspace is offline/vendored, so the snapshot format carries its
//! own hasher: the classic xxHash64 one-shot over a byte slice. The
//! implementation is pure wrapping integer arithmetic over iterator
//! chunks — no indexing, no slicing by computed ranges, no allocation —
//! because it runs inside the panic-free, alloc-free
//! [`crate::reader::SnapshotFile::validate`] perimeter.

const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME_5: u64 = 0x27D4_EB2F_1656_67C5;

/// Little-endian load of at most 8 bytes (shorter slices zero-extend).
#[inline]
fn le_bytes(b: &[u8]) -> u64 {
    b.iter()
        .rev()
        .fold(0u64, |acc, &x| (acc << 8) | u64::from(x))
}

#[inline]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(PRIME_2))
        .rotate_left(31)
        .wrapping_mul(PRIME_1)
}

#[inline]
fn merge_round(h: u64, acc: u64) -> u64 {
    (h ^ round(0, acc))
        .wrapping_mul(PRIME_1)
        .wrapping_add(PRIME_4)
}

/// One-shot xxHash64 of `data` under `seed`.
///
/// Deterministic, endian-independent (inputs are read little-endian on
/// every platform) and panic-free for every input length.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    // lint:allow(no-as-cast-in-decode) — lossless usize → u64 widening
    let len = data.len() as u64;
    let mut h: u64;
    let mut tail = data;
    if data.len() >= 32 {
        let mut v1 = seed.wrapping_add(PRIME_1).wrapping_add(PRIME_2);
        let mut v2 = seed.wrapping_add(PRIME_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME_1);
        let mut stripes = data.chunks_exact(32);
        for stripe in stripes.by_ref() {
            let mut lanes = stripe.chunks_exact(8).map(le_bytes);
            // A 32-byte stripe always yields exactly four 8-byte lanes.
            if let (Some(a), Some(b), Some(c), Some(d)) =
                (lanes.next(), lanes.next(), lanes.next(), lanes.next())
            {
                v1 = round(v1, a);
                v2 = round(v2, b);
                v3 = round(v3, c);
                v4 = round(v4, d);
            }
        }
        tail = stripes.remainder();
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME_5);
    }
    h = h.wrapping_add(len);

    let mut words = tail.chunks_exact(8);
    for w in words.by_ref() {
        h ^= round(0, le_bytes(w));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME_1)
            .wrapping_add(PRIME_4);
    }
    let mut halves = words.remainder().chunks_exact(4);
    for w in halves.by_ref() {
        h ^= le_bytes(w).wrapping_mul(PRIME_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME_2)
            .wrapping_add(PRIME_3);
    }
    for &b in halves.remainder() {
        h ^= u64::from(b).wrapping_mul(PRIME_5);
        h = h.rotate_left(11).wrapping_mul(PRIME_1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME_3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference xxHash64 value for the empty input under seed 0 —
    /// pins the implementation to the published algorithm.
    #[test]
    fn empty_input_matches_reference() {
        assert_eq!(xxh64(&[], 0), 0xEF46_DB37_51D8_E999);
    }

    #[test]
    fn every_single_byte_flip_changes_the_hash() {
        // The property the corruption tests lean on: a one-byte change
        // anywhere in a buffer changes its checksum.
        let base: Vec<u8> = (0..97u32)
            .map(|i| (i.wrapping_mul(37) % 251) as u8)
            .collect();
        let h0 = xxh64(&base, 7);
        for i in 0..base.len() {
            for flip in [1u8, 0x80] {
                let mut b = base.clone();
                b[i] ^= flip;
                assert_ne!(xxh64(&b, 7), h0, "flip at byte {i} went unnoticed");
            }
        }
    }

    #[test]
    fn seed_separates_identical_inputs() {
        let data = b"identical payload bytes";
        assert_ne!(xxh64(data, 1), xxh64(data, 2));
    }

    #[test]
    fn all_input_lengths_are_panic_free_and_distinct_from_prefixes() {
        let buf: Vec<u8> = (0..200u32).map(|i| (i * 13 % 256) as u8).collect();
        let mut prev = None;
        for len in 0..buf.len() {
            let h = xxh64(&buf[..len], 0);
            assert_ne!(Some(h), prev, "length {len} collided with its prefix");
            prev = Some(h);
        }
    }
}
