//! Hub labeling (2-hop labels) built from Contraction Hierarchies.
//!
//! This is the workspace's stand-in for Pruned Highway Labeling [11]
//! (DESIGN.md §3, substitution 2): a label-class distance oracle with
//! O(label size) queries — much faster than CH at a much larger index,
//! which is exactly the trade-off the paper's KS-PHL variant demonstrates.
//!
//! Every vertex `v` receives a label `L(v)`: a sorted list of `(hub, dist)`
//! pairs such that any shortest `s`–`t` path has a common hub in
//! `L(s) ∩ L(t)` (the 2-hop cover property). Labels are extracted from CH
//! upward search spaces in descending rank order with on-the-fly pruning,
//! the standard CHHL construction.
//!
//! The same labels serve FS-FBS [2], which additionally needs the *inverse*
//! mapping ([`BackwardLabels`]): for each hub, the vertices whose label
//! contains it.

use kspin_ch::ContractionHierarchy;
use kspin_graph::{VertexId, Weight, INFINITY};

/// Forward 2-hop labels for every vertex, stored in one flat arena.
#[derive(Debug, Clone)]
pub struct HubLabels {
    offsets: Vec<u32>,
    hubs: Vec<VertexId>,
    dists: Vec<Weight>,
}

impl HubLabels {
    /// Extracts pruned labels from a built hierarchy.
    pub fn build(ch: &ContractionHierarchy) -> Self {
        let n = ch.num_vertices();
        // Process vertices top-down (descending rank): when v is labeled,
        // the labels of all its upward neighbors are final.
        let mut by_rank: Vec<VertexId> = (0..n as VertexId).collect();
        by_rank.sort_unstable_by_key(|&v| std::cmp::Reverse(ch.rank(v)));

        // Temporary per-vertex labels, sorted by hub id.
        let mut labels: Vec<Vec<(VertexId, Weight)>> = vec![Vec::new(); n];
        let mut merged: Vec<(VertexId, Weight)> = Vec::new();

        for &v in &by_rank {
            merged.clear();
            merged.push((v, 0));
            // Min-merge the labels of all upward neighbors, shifted by the
            // connecting edge weight.
            for (u, w) in ch.upward(v) {
                for &(h, d) in &labels[u as usize] {
                    merged.push((h, d + w));
                }
            }
            merged.sort_unstable_by_key(|&(h, d)| (h, d));
            merged.dedup_by(|next, prev| next.0 == prev.0); // keep min dist per hub

            // Prune entries already certified by higher hubs: drop (h, d) if
            // some other common hub g of v and h yields dist ≤ d.
            let mut pruned: Vec<(VertexId, Weight)> = Vec::with_capacity(merged.len());
            for &(h, d) in merged.iter() {
                if h == v {
                    pruned.push((h, d));
                    continue;
                }
                let via = Self::merge_min_excluding(&pruned, &labels[h as usize], h);
                if via <= d {
                    continue;
                }
                pruned.push((h, d));
            }
            labels[v as usize] = pruned;
        }

        // Flatten into the arena.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let total: usize = labels.iter().map(Vec::len).sum();
        let mut hubs = Vec::with_capacity(total);
        let mut dists = Vec::with_capacity(total);
        for l in &labels {
            for &(h, d) in l {
                hubs.push(h);
                dists.push(d);
            }
            offsets.push(hubs.len() as u32);
        }
        HubLabels {
            offsets,
            hubs,
            dists,
        }
    }

    fn merge_min_excluding(
        a: &[(VertexId, Weight)],
        b: &[(VertexId, Weight)],
        exclude: VertexId,
    ) -> Weight {
        let mut best = INFINITY;
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if a[i].0 != exclude {
                        let d = a[i].1 + b[j].1;
                        if d < best {
                            best = d;
                        }
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Number of labeled vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The label of `v` as parallel `(hubs, dists)` slices, sorted by hub id.
    #[inline]
    pub fn label(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.hubs[lo..hi], &self.dists[lo..hi])
    }

    /// Exact distance via sorted-label intersection; [`INFINITY`] when the
    /// labels share no hub (disconnected).
    pub fn distance(&self, s: VertexId, t: VertexId) -> Weight {
        if s == t {
            return 0;
        }
        let (sh, sd) = self.label(s);
        let (th, td) = self.label(t);
        let mut best = INFINITY;
        let (mut i, mut j) = (0, 0);
        while i < sh.len() && j < th.len() {
            match sh[i].cmp(&th[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let d = sd[i] + td[j];
                    if d < best {
                        best = d;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Average label length — the constant behind query time.
    pub fn avg_label_len(&self) -> f64 {
        self.hubs.len() as f64 / self.num_vertices().max(1) as f64
    }

    /// Index size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.hubs.len() * 8
    }

    /// Builds the hub → vertices inverse used by FS-FBS backward search.
    pub fn invert(&self) -> BackwardLabels {
        let n = self.num_vertices();
        let mut deg = vec![0u32; n + 1];
        for &h in &self.hubs {
            deg[h as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let offsets = deg;
        let mut vertices = vec![0 as VertexId; self.hubs.len()];
        let mut dists = vec![0 as Weight; self.hubs.len()];
        let mut cursor = offsets.clone();
        for v in 0..n as VertexId {
            let (hs, ds) = self.label(v);
            for (&h, &d) in hs.iter().zip(ds) {
                let c = &mut cursor[h as usize];
                vertices[*c as usize] = v;
                dists[*c as usize] = d;
                *c += 1;
            }
        }
        // Sort each hub's list by distance — FS-FBS scans backward labels in
        // ascending distance order.
        let mut perm: Vec<u32> = Vec::new();
        for h in 0..n {
            let lo = offsets[h] as usize;
            let hi = offsets[h + 1] as usize;
            perm.clear();
            perm.extend(lo as u32..hi as u32);
            perm.sort_unstable_by_key(|&i| dists[i as usize]);
            let vs: Vec<VertexId> = perm.iter().map(|&i| vertices[i as usize]).collect();
            let ds: Vec<Weight> = perm.iter().map(|&i| dists[i as usize]).collect();
            vertices[lo..hi].copy_from_slice(&vs);
            dists[lo..hi].copy_from_slice(&ds);
        }
        BackwardLabels {
            offsets,
            vertices,
            dists,
        }
    }
}

/// For each hub `h`, the vertices whose forward label contains `h`, sorted
/// by ascending distance ("backward labels" in FS-FBS terminology).
#[derive(Debug, Clone)]
pub struct BackwardLabels {
    offsets: Vec<u32>,
    vertices: Vec<VertexId>,
    dists: Vec<Weight>,
}

impl BackwardLabels {
    /// The vertices having `h` in their label, with distances, sorted by
    /// ascending distance.
    #[inline]
    pub fn of(&self, h: VertexId) -> (&[VertexId], &[Weight]) {
        let lo = self.offsets[h as usize] as usize;
        let hi = self.offsets[h as usize + 1] as usize;
        (&self.vertices[lo..hi], &self.dists[lo..hi])
    }

    /// Index size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.vertices.len() * 8
    }

    /// Arena offset of hub `h`'s first entry — lets callers maintain
    /// parallel per-entry side tables (FS-FBS keeps keyword signatures
    /// aligned with backward entries this way).
    #[inline]
    pub fn entry_offset(&self, h: VertexId) -> usize {
        self.offsets[h as usize] as usize
    }

    /// Total number of backward entries across all hubs.
    pub fn num_entries(&self) -> usize {
        self.vertices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_ch::ChConfig;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::{Dijkstra, GraphBuilder};

    fn build_pair(n: usize, seed: u64) -> (kspin_graph::Graph, HubLabels) {
        let g = road_network(&RoadNetworkConfig::new(n, seed));
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        (g, hl)
    }

    #[test]
    fn exact_on_random_road_network() {
        let (g, hl) = build_pair(600, 31);
        let mut dij = Dijkstra::new(g.num_vertices());
        for s in [0u32, 42, 300, 550] {
            let s = s.min(g.num_vertices() as u32 - 1);
            dij.sssp(&g, s);
            let space = dij.space();
            for t in (0..g.num_vertices() as VertexId).step_by(29) {
                assert_eq!(hl.distance(s, t), space.distance(t).unwrap(), "({s},{t})");
            }
        }
    }

    #[test]
    fn self_distance_zero_and_symmetry() {
        let (_, hl) = build_pair(300, 12);
        assert_eq!(hl.distance(17, 17), 0);
        assert_eq!(hl.distance(3, 200), hl.distance(200, 3));
    }

    #[test]
    fn every_label_contains_self_with_zero() {
        let (_, hl) = build_pair(200, 9);
        for v in 0..hl.num_vertices() as VertexId {
            let (hs, ds) = hl.label(v);
            let pos = hs.binary_search(&v).expect("label must contain self hub");
            assert_eq!(ds[pos], 0);
        }
    }

    #[test]
    fn labels_are_sorted_by_hub() {
        let (_, hl) = build_pair(200, 9);
        for v in 0..hl.num_vertices() as VertexId {
            let (hs, _) = hl.label(v);
            assert!(hs.windows(2).all(|w| w[0] < w[1]), "label of {v} unsorted");
        }
    }

    #[test]
    fn disconnected_pairs_are_infinite() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2);
        b.add_edge(2, 3, 2);
        let g = b.build();
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let hl = HubLabels::build(&ch);
        assert_eq!(hl.distance(0, 3), INFINITY);
        assert_eq!(hl.distance(0, 1), 2);
    }

    #[test]
    fn labels_are_much_smaller_than_n() {
        let (g, hl) = build_pair(2000, 77);
        // Pruning must keep labels sublinear; generous cap for CI noise.
        assert!(
            hl.avg_label_len() < (g.num_vertices() as f64).sqrt() * 3.0,
            "avg label length {} too large",
            hl.avg_label_len()
        );
    }

    #[test]
    fn backward_labels_invert_forward_labels() {
        let (_, hl) = build_pair(300, 4);
        let bw = hl.invert();
        // Every forward entry appears in the inverse, with the same distance.
        for v in 0..hl.num_vertices() as VertexId {
            let (hs, ds) = hl.label(v);
            for (&h, &d) in hs.iter().zip(ds) {
                let (vs, bds) = bw.of(h);
                let found = vs.iter().zip(bds).any(|(&bv, &bd)| bv == v && bd == d);
                assert!(found, "missing inverse entry ({v}, {h}, {d})");
            }
        }
    }

    #[test]
    fn backward_labels_sorted_by_distance() {
        let (_, hl) = build_pair(300, 4);
        let bw = hl.invert();
        for h in 0..hl.num_vertices() as VertexId {
            let (_, ds) = bw.of(h);
            assert!(ds.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
