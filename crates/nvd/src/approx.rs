//! The ρ-Approximate Network Voronoi Diagram (§6.1).
//!
//! Definition 1: a structure returning, for **every** vertex `v`, up to ρ
//! candidate objects among which is the true 1NN of `v`. We build the exact
//! NVD once, color vertices by owner, then build a quadtree that subdivides
//! until every cell holds at most ρ distinct colors — stored as a *Morton
//! list*: leaves sorted by Z-order start code, located by binary search.
//! The exact NVD (and its `O(|V|)` owner table) is then discarded; only the
//! leaves, the adjacency graph and `MaxRadius` (for updates) are kept.

use kspin_graph::{Graph, Point, VertexId, Weight};

use crate::adjacency::AdjacencyGraph;
use crate::exact::ExactNvd;
use crate::morton::{MortonSpace, BITS};

/// A built ρ-approximate NVD for one generator (object) set, with the §6.2
/// lazy-update overlay.
///
/// Object ids `0..num_original()` are the build-time generators; ids beyond
/// that are lazily inserted objects (see [`crate::update`]).
#[derive(Debug, Clone)]
pub struct ApproxNvd {
    rho: usize,
    space: MortonSpace,
    /// Leaf start codes, ascending. Leaf `i` covers `[starts[i], starts[i+1])`.
    starts: Vec<u32>,
    cand_offsets: Vec<u32>,
    cands: Vec<u32>,
    /// Build-time generator vertices.
    objects: Vec<VertexId>,
    max_radius: Vec<Weight>,
    pub(crate) adjacency: AdjacencyGraph,
    // ---- §6.2 lazy-update overlay ----
    pub(crate) deleted: Vec<bool>,
    /// Inserted objects attached to each *original* generator's node.
    pub(crate) attached: Vec<Vec<u32>>,
    pub(crate) inserted_vertices: Vec<VertexId>,
    pub(crate) pending_updates: usize,
}

/// Borrowed flat views of every array an [`ApproxNvd`] owns, as handed
/// out by [`ApproxNvd::snapshot_parts`] for serialization.
#[derive(Debug, Clone, Copy)]
pub struct ApproxNvdParts<'a> {
    /// The ρ the index was built with.
    pub rho: usize,
    /// The Morton space normalizing coordinates onto the quadtree grid.
    pub space: MortonSpace,
    /// Leaf start codes, ascending.
    pub starts: &'a [u32],
    /// Per-leaf candidate offsets (length `starts.len() + 1`).
    pub cand_offsets: &'a [u32],
    /// Pooled leaf candidate generator indices.
    pub cands: &'a [u32],
    /// Build-time generator vertices.
    pub objects: &'a [VertexId],
    /// Per-generator `MaxRadius` values.
    pub max_radius: &'a [Weight],
    /// The generator adjacency graph (originals + inserted overlay).
    pub adjacency: &'a AdjacencyGraph,
    /// §6.2 overlay: deletion flags, one per overlay generator.
    pub deleted: &'a [bool],
    /// §6.2 overlay: inserted ids attached to each original generator.
    pub attached: &'a [Vec<u32>],
    /// §6.2 overlay: vertices of lazily inserted objects.
    pub inserted_vertices: &'a [VertexId],
    /// §6.2 overlay: pending lazy updates.
    pub pending_updates: usize,
}

impl ApproxNvd {
    /// Builds the index: exact NVD sweep, then quadtree compression.
    pub fn build(graph: &Graph, generators: &[VertexId], rho: usize) -> Self {
        let exact = ExactNvd::build(graph, generators);
        Self::from_exact(graph, exact, rho)
    }

    /// Compresses an already-built exact NVD. The exact owner table is
    /// consumed and dropped.
    pub fn from_exact(graph: &Graph, exact: ExactNvd, rho: usize) -> Self {
        assert!(rho >= 1, "rho must be at least 1");
        let (objects, owner, max_radius, adjacency) = exact.into_parts();
        let (min, max) = graph.bounding_box();
        let space = MortonSpace::new(min, max);

        // Color table: (morton code, owner) for every owned vertex.
        let mut pairs: Vec<(u32, u32)> = (0..graph.num_vertices())
            .filter(|&v| owner[v] != u32::MAX)
            .map(|v| (space.code(graph.coord(v as VertexId)), owner[v]))
            .collect();
        pairs.sort_unstable();

        let mut builder = LeafBuilder {
            rho,
            starts: Vec::new(),
            cand_offsets: vec![0],
            cands: Vec::new(),
        };
        builder.subdivide(&pairs, 0, 0);

        let num_objects = objects.len();
        ApproxNvd {
            rho,
            space,
            starts: builder.starts,
            cand_offsets: builder.cand_offsets,
            cands: builder.cands,
            objects,
            max_radius,
            adjacency,
            deleted: vec![false; num_objects],
            attached: vec![Vec::new(); num_objects],
            inserted_vertices: Vec::new(),
            pending_updates: 0,
        }
    }

    /// The ρ the index was built with.
    pub fn rho(&self) -> usize {
        self.rho
    }

    /// Number of build-time generators.
    pub fn num_original(&self) -> usize {
        self.objects.len()
    }

    /// Total objects including lazily inserted ones.
    pub fn num_total(&self) -> usize {
        self.objects.len() + self.inserted_vertices.len()
    }

    /// Translates stored vertex ids onto a renumbered graph.
    ///
    /// A pure relabeling: the quadtree (Morton leaves), candidate sets and
    /// generator adjacency are all keyed on coordinates or object-local
    /// ids, both invariant under vertex renumbering — only the
    /// object→vertex maps carry raw `VertexId`s. Query results are
    /// bit-identical afterwards. Build-time only.
    pub fn relabel(&mut self, r: &kspin_graph::Relabeling) {
        for v in &mut self.objects {
            *v = r.to_local(*v);
        }
        for v in &mut self.inserted_vertices {
            *v = r.to_local(*v);
        }
    }

    /// The road-network vertex of object `id` (original or inserted).
    #[inline]
    pub fn object_vertex(&self, id: u32) -> VertexId {
        let i = id as usize;
        if i < self.objects.len() {
            self.objects[i] // PANIC-OK: bound checked on the line above.
        } else {
            // PANIC-OK: object ids are < num_total = objects + inserted.
            self.inserted_vertices[i - self.objects.len()]
        }
    }

    /// Whether object `id` is marked deleted.
    #[inline]
    pub fn is_deleted(&self, id: u32) -> bool {
        // PANIC-OK: deleted is kept sized num_total by insert/delete.
        self.deleted[id as usize]
    }

    /// Objects adjacent to `id` in the (update-extended) adjacency graph.
    #[inline]
    pub fn adjacent(&self, id: u32) -> &[u32] {
        self.adjacency.adjacent(id)
    }

    /// `MaxRadius` of original generator `p`.
    #[inline]
    pub fn max_radius(&self, p: u32) -> Weight {
        self.max_radius[p as usize]
    }

    /// The quadtree's point-location as a stable *cell id*: the index of
    /// the Morton-list leaf covering `p`. Two query vertices in the same
    /// leaf share candidates (Definition 1), which is what makes the leaf
    /// id a valid cache key for seed memoization — it only changes when the
    /// quadtree itself is rebuilt.
    pub fn leaf_index(&self, p: Point) -> u32 {
        let code = self.space.code(p);
        self.starts
            .partition_point(|&s| s <= code)
            .saturating_sub(1) as u32
    }

    /// The quadtree's point-location: candidate *original* generators for a
    /// query at `p` (at most ρ, except where the tree bottomed out at max
    /// depth). The true 1NN of any indexed vertex at `p` is among them.
    pub fn leaf_candidates(&self, p: Point) -> &[u32] {
        self.leaf_candidates_of(self.leaf_index(p))
    }

    /// Candidate original generators of leaf `leaf` (see
    /// [`ApproxNvd::leaf_index`] / [`ApproxNvd::leaf_candidates`]).
    pub fn leaf_candidates_of(&self, leaf: u32) -> &[u32] {
        // PANIC-OK: leaf ids come from leaf_index, which partition-points
        // into starts (same length as the leaf count); cand_offsets has
        // leaves + 1 slots and bounds cands by construction.
        let lo = self.cand_offsets[leaf as usize] as usize;
        let hi = self.cand_offsets[leaf as usize + 1] as usize; // PANIC-OK: leaf + 1 <= leaves.
        &self.cands[lo..hi] // PANIC-OK: offsets bound cands by construction.
    }

    /// Heap-initialization candidates at `p`: the leaf's original
    /// generators plus any objects lazily attached to them (§6.2 — the heap
    /// is initialized "with the 1NN of q and all the objects stored in the
    /// node"). Deleted objects are *included*: the Heap Generator must still
    /// expand their adjacency, it just never reports them.
    pub fn init_candidates(&self, p: Point) -> Vec<u32> {
        self.init_candidates_of_leaf(self.leaf_index(p))
    }

    /// [`ApproxNvd::init_candidates`] keyed by leaf id instead of
    /// coordinate: the query-independent seed set of one source cell
    /// (Theorem 1's initialization, §6.2's attached inserts included),
    /// sorted ascending and duplicate-free. This is the exact value the
    /// cross-query heap-seed cache memoizes per (keyword, leaf).
    pub fn init_candidates_of_leaf(&self, leaf: u32) -> Vec<u32> {
        let base = self.leaf_candidates_of(leaf);
        let mut out: Vec<u32> = base.to_vec();
        for &c in base {
            // PANIC-OK: candidates are original generator ids; attached is
            // sized objects.len().
            out.extend_from_slice(&self.attached[c as usize]);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of quadtree leaves.
    pub fn num_leaves(&self) -> usize {
        self.starts.len()
    }

    /// Updates applied since the last (re)build.
    pub fn pending_updates(&self) -> usize {
        self.pending_updates
    }

    /// The vertices of all live (non-deleted) objects — the generator set a
    /// rebuild would use.
    pub fn live_vertices(&self) -> Vec<VertexId> {
        (0..self.num_total() as u32)
            .filter(|&id| !self.is_deleted(id))
            .map(|id| self.object_vertex(id))
            .collect()
    }

    /// Invariant audit over the whole structure (the NVD half of the
    /// debug-mode invariant auditor; `KspinIndex::validate` calls this per
    /// NVD-indexed keyword). Checks:
    ///
    /// * overlay tables (`deleted`, `attached`, adjacency) sized to the
    ///   object set;
    /// * adjacency symmetry, range, and simplicity (Observation 2a — the
    ///   generator graph is undirected, so LazyReheap reaches every
    ///   neighbor from either side);
    /// * every quadtree leaf holds at least one *original* generator
    ///   candidate, sorted and duplicate-free (Definition 1: point location
    ///   must always produce a non-empty candidate set containing the 1NN);
    /// * attached (lazily inserted) ids are inserted-range ids hanging off
    ///   original generators only.
    ///
    /// Returns every violation found, as human-readable strings.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut errs = Vec::new();
        let originals = self.num_original();
        let total = self.num_total();
        if self.adjacency.num_nodes() != total {
            errs.push(format!(
                "adjacency covers {} nodes, object set has {total}",
                self.adjacency.num_nodes()
            ));
        }
        if self.deleted.len() != total {
            errs.push(format!(
                "deleted table has {} slots, expected {total}",
                self.deleted.len()
            ));
        }
        if self.attached.len() != originals {
            errs.push(format!(
                "attached table has {} slots, expected {originals} originals",
                self.attached.len()
            ));
        }
        if let Err(adj_errs) = self.adjacency.validate_symmetric() {
            errs.extend(adj_errs);
        }
        if self.cand_offsets.len() != self.starts.len() + 1 {
            errs.push(format!(
                "{} leaf starts but {} candidate offsets",
                self.starts.len(),
                self.cand_offsets.len()
            ));
        } else {
            for leaf in 0..self.starts.len() {
                if leaf > 0 && self.starts[leaf] <= self.starts[leaf - 1] {
                    errs.push(format!("leaf starts not strictly ascending at leaf {leaf}"));
                }
                let lo = self.cand_offsets[leaf] as usize;
                let hi = self.cand_offsets[leaf + 1] as usize;
                if lo >= hi {
                    errs.push(format!("leaf {leaf} has no candidates"));
                    continue;
                }
                let cands = &self.cands[lo..hi];
                if !cands.windows(2).all(|w| w[0] < w[1]) {
                    errs.push(format!(
                        "leaf {leaf} candidates not sorted/unique: {cands:?}"
                    ));
                }
                if let Some(&bad) = cands.iter().find(|&&c| c as usize >= originals) {
                    errs.push(format!(
                        "leaf {leaf} candidate {bad} is not an original generator (originals={originals})"
                    ));
                }
            }
        }
        for (p, ids) in self.attached.iter().enumerate() {
            for &id in ids {
                if (id as usize) < originals || id as usize >= total {
                    errs.push(format!(
                        "attached id {id} at generator {p} outside inserted range {originals}..{total}"
                    ));
                }
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Borrowed views of every array the index owns — the snapshot
    /// serialization boundary.
    pub fn snapshot_parts(&self) -> ApproxNvdParts<'_> {
        ApproxNvdParts {
            rho: self.rho,
            space: self.space,
            starts: &self.starts,
            cand_offsets: &self.cand_offsets,
            cands: &self.cands,
            objects: &self.objects,
            max_radius: &self.max_radius,
            adjacency: &self.adjacency,
            deleted: &self.deleted,
            attached: &self.attached,
            inserted_vertices: &self.inserted_vertices,
            pending_updates: self.pending_updates,
        }
    }

    /// Reassembles an index from decoded snapshot arrays, verbatim (no
    /// rebuild, so serving is bit-identical), then runs the full
    /// structural audit of [`ApproxNvd::validate`] before returning it.
    ///
    /// # Errors
    /// A description of every violated invariant, joined with `"; "`.
    pub fn from_snapshot_parts(
        rho: usize,
        space: MortonSpace,
        starts: Vec<u32>,
        cand_offsets: Vec<u32>,
        cands: Vec<u32>,
        objects: Vec<VertexId>,
        max_radius: Vec<Weight>,
        adjacency: AdjacencyGraph,
        deleted: Vec<bool>,
        attached: Vec<Vec<u32>>,
        inserted_vertices: Vec<VertexId>,
        pending_updates: usize,
    ) -> Result<Self, String> {
        if rho == 0 {
            return Err("rho must be at least 1".into());
        }
        if max_radius.len() != objects.len() {
            return Err(format!(
                "max_radius has {} entries for {} generators",
                max_radius.len(),
                objects.len()
            ));
        }
        // validate() slices cands through cand_offsets, so bound those
        // first — the audit must not be able to panic on decoded input.
        if u32::try_from(cands.len()).is_err() {
            return Err(format!("candidate count {} exceeds u32", cands.len()));
        }
        if cand_offsets.first() != Some(&0) || cand_offsets.last() != Some(&(cands.len() as u32)) {
            return Err("cand_offsets must start at 0 and end at the candidate count".into());
        }
        if cand_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("cand_offsets must be monotone non-decreasing".into());
        }
        let nvd = ApproxNvd {
            rho,
            space,
            starts,
            cand_offsets,
            cands,
            objects,
            max_radius,
            adjacency,
            deleted,
            attached,
            inserted_vertices,
            pending_updates,
        };
        nvd.validate().map_err(|v| v.join("; "))?;
        Ok(nvd)
    }

    /// Index size in bytes: Morton list + candidate lists + adjacency +
    /// MaxRadius + object table. Compare with [`ExactNvd::size_bytes`].
    pub fn size_bytes(&self) -> usize {
        self.starts.len() * 4
            + self.cand_offsets.len() * 4
            + self.cands.len() * 4
            + self.objects.len() * 8 // vertex + max_radius
            + self.adjacency.size_bytes()
            + self.inserted_vertices.len() * 4
            + self.attached.iter().map(|a| a.len() * 4).sum::<usize>()
    }
}

struct LeafBuilder {
    rho: usize,
    starts: Vec<u32>,
    cand_offsets: Vec<u32>,
    cands: Vec<u32>,
}

impl LeafBuilder {
    /// Recursively subdivides `pairs` (sorted by code, all sharing the
    /// `2·depth`-bit prefix of `prefix_start`).
    fn subdivide(&mut self, pairs: &[(u32, u32)], depth: u32, prefix_start: u32) {
        if pairs.is_empty() {
            return;
        }
        let colors = distinct_colors(pairs, self.rho);
        if colors.len() <= self.rho || depth >= BITS {
            self.starts.push(prefix_start);
            // At max depth the cell may exceed ρ colors (co-located
            // vertices); store them all — Definition 1's "up to ρ" becomes
            // "up to the co-location bound", still containing the 1NN.
            let all = if colors.len() <= self.rho {
                colors
            } else {
                distinct_colors(pairs, usize::MAX)
            };
            self.cands.extend(all);
            self.cand_offsets.push(self.cands.len() as u32);
            return;
        }
        let shift = 32 - 2 * (depth + 1);
        let mut lo = 0usize;
        for child in 0..4u32 {
            let child_start = prefix_start | (child << shift);
            let child_end_excl = child_start.wrapping_add(1 << shift);
            let hi = if child == 3 {
                pairs.len()
            } else {
                lo + pairs[lo..].partition_point(|&(c, _)| c < child_end_excl)
            };
            self.subdivide(&pairs[lo..hi], depth + 1, child_start);
            lo = hi;
        }
    }
}

/// Collects distinct owners in `pairs`, early-exiting once more than
/// `limit` are found (returns `limit + 1` entries in that case).
fn distinct_colors(pairs: &[(u32, u32)], limit: usize) -> Vec<u32> {
    let mut colors: Vec<u32> = Vec::with_capacity(limit.clamp(4, 16));
    for &(_, o) in pairs {
        if !colors.contains(&o) {
            colors.push(o);
            if colors.len() > limit {
                break;
            }
        }
    }
    colors.sort_unstable();
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::Dijkstra;

    fn setup(n: usize, gens: usize, rho: usize, seed: u64) -> (Graph, Vec<VertexId>, ApproxNvd) {
        let g = road_network(&RoadNetworkConfig::new(n, seed));
        let step = (g.num_vertices() / gens).max(1);
        let generators: Vec<VertexId> = (0..gens.min(g.num_vertices()))
            .map(|i| (i * step) as VertexId)
            .collect();
        let apx = ApproxNvd::build(&g, &generators, rho);
        (g, generators, apx)
    }

    #[test]
    fn definition1_one_nn_is_among_candidates() {
        let (g, gens, apx) = setup(800, 25, 4, 3);
        let mut dij = Dijkstra::new(g.num_vertices());
        for v in (0..g.num_vertices() as VertexId).step_by(7) {
            let dists = dij.one_to_many(&g, v, &gens);
            let best = *dists.iter().min().unwrap();
            let cands = apx.leaf_candidates(g.coord(v));
            let has_1nn = cands.iter().any(|&c| dists[c as usize] == best);
            assert!(has_1nn, "vertex {v}: 1NN missing from candidates {cands:?}");
        }
    }

    #[test]
    fn candidate_lists_respect_rho() {
        let (g, _, apx) = setup(800, 25, 4, 3);
        for v in (0..g.num_vertices() as VertexId).step_by(13) {
            let cands = apx.leaf_candidates(g.coord(v));
            assert!(cands.len() <= 4, "leaf has {} candidates", cands.len());
            assert!(!cands.is_empty());
        }
    }

    #[test]
    fn rho_one_equals_exact_owner() {
        let (g, gens, apx) = setup(500, 12, 1, 5);
        let exact = ExactNvd::build(&g, &gens);
        for v in (0..g.num_vertices() as VertexId).step_by(11) {
            let cands = apx.leaf_candidates(g.coord(v));
            if cands.len() == 1 {
                // Tie vertices may legitimately differ; owners must at least
                // be equidistant.
                let mut dij = Dijkstra::new(g.num_vertices());
                let dv = dij.one_to_many(&g, v, &gens);
                assert_eq!(dv[cands[0] as usize], dv[exact.owner(v).unwrap() as usize]);
            }
        }
    }

    #[test]
    fn larger_rho_means_smaller_index() {
        let (_, gens, apx1) = setup(2000, 80, 1, 9);
        let (g5, _, apx5) = setup(2000, 80, 5, 9);
        assert_eq!(gens.len(), 80);
        assert!(
            apx5.size_bytes() < apx1.size_bytes(),
            "rho=5 ({}) not smaller than rho=1 ({})",
            apx5.size_bytes(),
            apx1.size_bytes()
        );
        assert!(apx5.num_leaves() < apx1.num_leaves());
        // Approximate index is far smaller than the exact NVD it came from.
        let exact = ExactNvd::build(&g5, &(0..80).map(|i| (i * 25) as u32).collect::<Vec<_>>());
        assert!(apx5.size_bytes() < exact.size_bytes());
    }

    #[test]
    fn every_leaf_candidate_is_a_real_generator() {
        let (g, gens, apx) = setup(600, 20, 3, 7);
        for v in (0..g.num_vertices() as VertexId).step_by(5) {
            for &c in apx.leaf_candidates(g.coord(v)) {
                assert!((c as usize) < gens.len());
            }
        }
    }

    #[test]
    fn single_generator_single_leaf() {
        let (g, _, apx) = setup(300, 1, 5, 2);
        assert_eq!(apx.num_leaves(), 1);
        assert_eq!(apx.leaf_candidates(g.coord(42)), &[0]);
    }

    #[test]
    fn leaf_index_is_consistent_with_point_location() {
        let (g, _, apx) = setup(400, 10, 3, 4);
        for v in (0..g.num_vertices() as VertexId).step_by(17) {
            let leaf = apx.leaf_index(g.coord(v));
            assert!((leaf as usize) < apx.num_leaves());
            assert_eq!(
                apx.leaf_candidates(g.coord(v)),
                apx.leaf_candidates_of(leaf)
            );
            assert_eq!(
                apx.init_candidates(g.coord(v)),
                apx.init_candidates_of_leaf(leaf)
            );
        }
    }

    #[test]
    fn init_candidates_match_leaf_before_updates() {
        let (g, _, apx) = setup(400, 10, 3, 4);
        for v in (0..g.num_vertices() as VertexId).step_by(17) {
            let a = apx.init_candidates(g.coord(v));
            let mut b = apx.leaf_candidates(g.coord(v)).to_vec();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}
