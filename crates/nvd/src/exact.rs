//! Exact NVD construction (Erwig–Hagen graph Voronoi [19]).
//!
//! One multi-source Dijkstra started simultaneously from all generators
//! computes, in `O(|V| log |V|)`:
//!
//! * `owner[v]` — the nearest generator of every vertex (the Voronoi
//!   partition),
//! * the generator [`AdjacencyGraph`] (from road edges crossing cell
//!   boundaries),
//! * `MaxRadius` per generator — free during construction, needed by the
//!   Theorem-2 update rule (§6.2).

use kspin_graph::dheap::{DaryHeap, HeapCounters};
use kspin_graph::{Graph, VertexId, Weight, INFINITY};

use crate::adjacency::AdjacencyGraph;

/// An exact Network Voronoi Diagram over a set of generator vertices.
#[derive(Debug, Clone)]
pub struct ExactNvd {
    generators: Vec<VertexId>,
    owner: Vec<u32>,
    dist_to_owner: Vec<Weight>,
    max_radius: Vec<Weight>,
    adjacency: AdjacencyGraph,
    build_counters: HeapCounters,
}

impl ExactNvd {
    /// Builds the NVD for `generators` (distinct vertices, at least one).
    ///
    /// # Panics
    /// If `generators` is empty or contains duplicates.
    pub fn build(graph: &Graph, generators: &[VertexId]) -> Self {
        assert!(
            !generators.is_empty(),
            "an NVD needs at least one generator"
        );
        let n = graph.num_vertices();
        let m = generators.len();
        let mut owner = vec![u32::MAX; n];
        let mut dist = vec![INFINITY; n];
        let mut heap = DaryHeap::new(n);

        for (i, &g) in generators.iter().enumerate() {
            assert!(
                owner[g as usize] == u32::MAX,
                "duplicate generator vertex {g}"
            );
            owner[g as usize] = i as u32;
            dist[g as usize] = 0;
            heap.push(0, g);
        }

        let mut max_radius = vec![0 as Weight; m];
        while let Some((d, v)) = heap.pop() {
            // The indexed heap holds each vertex once at its best key, so
            // every pop settles (no stale-entry or settled-vertex skips).
            debug_assert!(d == dist[v as usize]);
            let o = owner[v as usize];
            if d > max_radius[o as usize] {
                max_radius[o as usize] = d;
            }
            for (u, w) in graph.neighbors(v) {
                let nd = d + w;
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    owner[u as usize] = o;
                    heap.insert_or_decrease(nd, u);
                }
            }
        }

        // Cell adjacency: a road edge whose endpoints have different owners
        // connects the two cells.
        let mut adjacency = AdjacencyGraph::new(m);
        for e in graph.edges() {
            let (ou, ov) = (owner[e.u as usize], owner[e.v as usize]);
            if ou != ov && ou != u32::MAX && ov != u32::MAX {
                adjacency.add(ou, ov);
            }
        }

        ExactNvd {
            generators: generators.to_vec(),
            owner,
            dist_to_owner: dist,
            max_radius,
            adjacency,
            build_counters: heap.counters(),
        }
    }

    /// Heap-kernel counters of the construction sweep (`stale_skipped` is
    /// structurally zero on the indexed heap).
    pub fn build_counters(&self) -> HeapCounters {
        self.build_counters
    }

    /// Generator vertices, indexed by generator id.
    pub fn generators(&self) -> &[VertexId] {
        &self.generators
    }

    /// The nearest generator (by id) of vertex `v`; `None` if `v` is
    /// disconnected from all generators.
    #[inline]
    pub fn owner(&self, v: VertexId) -> Option<u32> {
        let o = self.owner[v as usize];
        (o != u32::MAX).then_some(o)
    }

    /// Distance from `v` to its owning generator.
    #[inline]
    pub fn dist_to_owner(&self, v: VertexId) -> Weight {
        self.dist_to_owner[v as usize]
    }

    /// The full owner table (u32::MAX for unreachable vertices).
    pub fn owner_table(&self) -> &[u32] {
        &self.owner
    }

    /// `MaxRadius(p)` — the farthest distance from generator `p` to a vertex
    /// in its cell (Theorem 2).
    #[inline]
    pub fn max_radius(&self, p: u32) -> Weight {
        self.max_radius[p as usize]
    }

    /// All max radii.
    pub fn max_radii(&self) -> &[Weight] {
        &self.max_radius
    }

    /// The generator adjacency graph.
    pub fn adjacency(&self) -> &AdjacencyGraph {
        &self.adjacency
    }

    /// Consumes the NVD, yielding the parts the approximate index keeps.
    pub fn into_parts(self) -> (Vec<VertexId>, Vec<u32>, Vec<Weight>, AdjacencyGraph) {
        (self.generators, self.owner, self.max_radius, self.adjacency)
    }

    /// Size of the full exact NVD in bytes — `O(|V|)`, dominated by the
    /// owner and distance tables. This is the §5 "Limitations" cost that
    /// the ρ-approximate representation eliminates.
    pub fn size_bytes(&self) -> usize {
        self.owner.len() * 8 + self.max_radius.len() * 4 + self.adjacency.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::{Dijkstra, GraphBuilder};

    fn network(n: usize, seed: u64) -> Graph {
        road_network(&RoadNetworkConfig::new(n, seed))
    }

    fn spread_generators(g: &Graph, count: usize) -> Vec<VertexId> {
        let step = (g.num_vertices() / count).max(1);
        (0..count).map(|i| (i * step) as VertexId).collect()
    }

    #[test]
    fn owner_is_true_nearest_generator() {
        let g = network(400, 51);
        let gens = spread_generators(&g, 8);
        let nvd = ExactNvd::build(&g, &gens);
        let mut dij = Dijkstra::new(g.num_vertices());
        for v in (0..g.num_vertices() as VertexId).step_by(17) {
            let dists = dij.one_to_many(&g, v, &gens);
            let (best, &best_d) = dists.iter().enumerate().min_by_key(|&(_, d)| *d).unwrap();
            let got = nvd.owner(v).unwrap();
            // Ties may resolve to another equally-near generator.
            assert_eq!(
                dists[got as usize], best_d,
                "vertex {v}: owner {got} vs best {best}"
            );
            assert_eq!(nvd.dist_to_owner(v), best_d);
        }
    }

    #[test]
    fn generators_own_themselves() {
        let g = network(200, 3);
        let gens = spread_generators(&g, 5);
        let nvd = ExactNvd::build(&g, &gens);
        for (i, &gv) in gens.iter().enumerate() {
            assert_eq!(nvd.owner(gv), Some(i as u32));
            assert_eq!(nvd.dist_to_owner(gv), 0);
        }
    }

    #[test]
    fn max_radius_bounds_every_cell_member() {
        let g = network(300, 8);
        let gens = spread_generators(&g, 6);
        let nvd = ExactNvd::build(&g, &gens);
        let mut observed = vec![0 as Weight; gens.len()];
        for v in 0..g.num_vertices() as VertexId {
            let o = nvd.owner(v).unwrap();
            assert!(nvd.dist_to_owner(v) <= nvd.max_radius(o));
            observed[o as usize] = observed[o as usize].max(nvd.dist_to_owner(v));
        }
        // And it is tight: some vertex attains it.
        for (p, &r) in observed.iter().enumerate() {
            assert_eq!(r, nvd.max_radius(p as u32));
        }
    }

    #[test]
    fn adjacency_comes_from_boundary_edges() {
        let g = network(300, 8);
        let gens = spread_generators(&g, 6);
        let nvd = ExactNvd::build(&g, &gens);
        for e in g.edges() {
            let (a, b) = (nvd.owner(e.u).unwrap(), nvd.owner(e.v).unwrap());
            if a != b {
                assert!(
                    nvd.adjacency().adjacent(a).contains(&b),
                    "cells {a} and {b} share edge but not adjacency"
                );
            }
        }
    }

    #[test]
    fn single_generator_owns_everything() {
        let g = network(150, 2);
        let nvd = ExactNvd::build(&g, &[7]);
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(nvd.owner(v), Some(0));
        }
        assert_eq!(nvd.adjacency().num_edges(), 0);
    }

    #[test]
    fn adjacency_degree_is_small_constant() {
        // Observation 2a: average degree of NVD adjacency graphs is a small
        // constant (~6 in [18]).
        let g = network(3000, 14);
        let gens = spread_generators(&g, 100);
        let nvd = ExactNvd::build(&g, &gens);
        let avg = nvd.adjacency().avg_degree();
        assert!((2.0..10.0).contains(&avg), "avg adjacency degree {avg}");
    }

    #[test]
    fn disconnected_vertices_have_no_owner() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        // vertex 2 isolated
        let g = b.build();
        let nvd = ExactNvd::build(&g, &[0]);
        assert_eq!(nvd.owner(2), None);
        assert_eq!(nvd.owner(1), Some(0));
    }

    #[test]
    #[should_panic(expected = "duplicate generator")]
    fn duplicate_generators_rejected() {
        let g = network(50, 1);
        ExactNvd::build(&g, &[3, 3]);
    }

    #[test]
    fn voronoi_property_on_kolahdouzan_shahabi_example() {
        // Property 2 sanity: the 2nd NN of any vertex is adjacent to its
        // 1NN in the NVD (verified exhaustively on a small network).
        let g = network(250, 33);
        let gens = spread_generators(&g, 10);
        let nvd = ExactNvd::build(&g, &gens);
        let mut dij = Dijkstra::new(g.num_vertices());
        for v in (0..g.num_vertices() as VertexId).step_by(11) {
            let dists = dij.one_to_many(&g, v, &gens);
            let mut order: Vec<usize> = (0..gens.len()).collect();
            order.sort_by_key(|&i| dists[i]);
            let first = order[0] as u32;
            let second = order[1] as u32;
            if dists[order[0]] == dists[order[1]] {
                continue; // ties make "the" 2nd NN ambiguous
            }
            let adj = nvd.adjacency().adjacent(first);
            assert!(
                adj.contains(&second) || dists[order[1]] == dists[order[0]],
                "vertex {v}: 2nd NN {second} not adjacent to 1NN {first}"
            );
        }
    }
}
