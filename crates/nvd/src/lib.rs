//! Network Voronoi Diagrams for the Keyword Separated Index (§5–§6).
//!
//! * [`exact`] — exact NVD construction by multi-source Dijkstra
//!   (Erwig–Hagen [19]): per-vertex nearest generator, generator adjacency,
//!   and `MaxRadius` per cell (needed by Theorem 2 updates) — all from one
//!   `O(|V| log |V|)` sweep.
//! * [`adjacency`] — the generator adjacency graph (Observation 2a: its
//!   size is `O(|inv(t)|)`, independent of `|V|`).
//! * [`approx`] — the ρ-Approximate NVD (§6.1): a Morton-list quadtree that
//!   subdivides until each cell holds at most ρ distinct Voronoi colors.
//! * [`rtree`] — the R-tree alternative of §6.1 ("Space Complexity Theory
//!   vs. Practice"): MBRs per Voronoi cell, worst-case linear space but no
//!   ρ guarantee on candidate counts.
//! * [`update`] — §6.2 lazy updates: deletion marking, insertion with the
//!   Theorem-2 affected set, and rebuild.
//!
//! The per-keyword index the K-SPIN core actually stores is
//! [`ApproxNvd`]: quadtree leaves + adjacency graph + `MaxRadius` — the
//! exact NVD's `O(|V|)` owner array is discarded after construction, which
//! is where the order-of-magnitude space saving comes from.

#![deny(missing_docs)]

pub mod adjacency;
pub mod approx;
pub mod exact;
pub mod knn;
pub mod morton;
pub mod rtree;
pub mod update;

pub use adjacency::AdjacencyGraph;
pub use approx::{ApproxNvd, ApproxNvdParts};
pub use exact::ExactNvd;
pub use rtree::RTreeNvd;
