//! R-tree storage of an approximate NVD (§6.1, "Space Complexity Theory vs.
//! Practice").
//!
//! Leaf entries are the minimum bounding rectangles of each generator's
//! Voronoi node set, bulk-loaded with the Sort-Tile-Recursive (STR)
//! algorithm. Space is provably `O(|inv(t)|)` — one MBR per generator — but
//! a point-location query may return more than ρ candidates (overlapping
//! MBRs give no candidate-count guarantee), which is why the paper prefers
//! quadtrees. This implementation exists to reproduce the Fig. 6(c)
//! comparison and the trade-off discussion.

use kspin_graph::{Graph, Point, VertexId};

use crate::exact::ExactNvd;

/// Axis-aligned rectangle (inclusive bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mbr {
    /// Smallest covered x coordinate.
    pub min_x: i32,
    /// Smallest covered y coordinate.
    pub min_y: i32,
    /// Largest covered x coordinate.
    pub max_x: i32,
    /// Largest covered y coordinate.
    pub max_y: i32,
}

impl Mbr {
    /// The empty rectangle (absorbing under union).
    pub const EMPTY: Mbr = Mbr {
        min_x: i32::MAX,
        min_y: i32::MAX,
        max_x: i32::MIN,
        max_y: i32::MIN,
    };

    /// Grows to cover `p`.
    pub fn extend(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Grows to cover `other`.
    pub fn union(&mut self, other: &Mbr) {
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
    }

    /// Whether `p` lies inside (inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }
}

const NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
struct Node {
    mbr: Mbr,
    /// Child node indices for internal nodes; generator ids for leaves.
    children: Vec<u32>,
    is_leaf: bool,
}

/// An STR-bulk-loaded R-tree over Voronoi cell MBRs.
#[derive(Debug, Clone)]
pub struct RTreeNvd {
    nodes: Vec<Node>,
    root: u32,
    cell_mbrs: Vec<Mbr>,
}

impl RTreeNvd {
    /// Builds the R-tree from an exact NVD (one MBR per generator cell).
    pub fn build(graph: &Graph, nvd: &ExactNvd) -> Self {
        let m = nvd.generators().len();
        let mut cell_mbrs = vec![Mbr::EMPTY; m];
        for v in 0..graph.num_vertices() as VertexId {
            if let Some(o) = nvd.owner(v) {
                cell_mbrs[o as usize].extend(graph.coord(v));
            }
        }

        // STR: sort by center x, tile into vertical slabs, sort each slab by
        // center y, pack runs of NODE_CAPACITY.
        let mut entries: Vec<u32> = (0..m as u32).collect();
        let center = |mbr: &Mbr| {
            (
                (mbr.min_x as i64 + mbr.max_x as i64) / 2,
                (mbr.min_y as i64 + mbr.max_y as i64) / 2,
            )
        };
        entries.sort_unstable_by_key(|&i| center(&cell_mbrs[i as usize]).0);
        let slices = ((m as f64 / NODE_CAPACITY as f64).sqrt().ceil() as usize).max(1);
        let slab = m.div_ceil(slices).max(1);

        let mut nodes: Vec<Node> = Vec::new();
        let mut level: Vec<u32> = Vec::new();
        for chunk in entries.chunks(slab) {
            let mut by_y = chunk.to_vec();
            by_y.sort_unstable_by_key(|&i| center(&cell_mbrs[i as usize]).1);
            for pack in by_y.chunks(NODE_CAPACITY) {
                let mut mbr = Mbr::EMPTY;
                for &g in pack {
                    mbr.union(&cell_mbrs[g as usize]);
                }
                nodes.push(Node {
                    mbr,
                    children: pack.to_vec(),
                    is_leaf: true,
                });
                level.push(nodes.len() as u32 - 1);
            }
        }

        // Pack upper levels until a single root remains.
        while level.len() > 1 {
            let mut next = Vec::new();
            for pack in level.chunks(NODE_CAPACITY) {
                let mut mbr = Mbr::EMPTY;
                for &c in pack {
                    mbr.union(&nodes[c as usize].mbr);
                }
                nodes.push(Node {
                    mbr,
                    children: pack.to_vec(),
                    is_leaf: false,
                });
                next.push(nodes.len() as u32 - 1);
            }
            level = next;
        }
        let root = level[0];
        RTreeNvd {
            nodes,
            root,
            cell_mbrs,
        }
    }

    /// All generators whose cell MBR contains `p` — the 1NN of any vertex
    /// at `p` is guaranteed among them (its cell contains the vertex, hence
    /// its MBR contains the point), but the count is *not* bounded by ρ.
    pub fn candidates(&self, p: Point) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n as usize];
            if !node.mbr.contains(p) {
                continue;
            }
            if node.is_leaf {
                for &g in &node.children {
                    if self.cell_mbrs[g as usize].contains(p) {
                        out.push(g);
                    }
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        out
    }

    /// Index size in bytes (nodes + per-cell MBRs).
    pub fn size_bytes(&self) -> usize {
        self.cell_mbrs.len() * std::mem::size_of::<Mbr>()
            + self
                .nodes
                .iter()
                .map(|n| std::mem::size_of::<Mbr>() + n.children.len() * 4 + 8)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::Dijkstra;

    fn setup(n: usize, gens: usize, seed: u64) -> (Graph, Vec<VertexId>, RTreeNvd) {
        let g = road_network(&RoadNetworkConfig::new(n, seed));
        let step = (g.num_vertices() / gens).max(1);
        let generators: Vec<VertexId> = (0..gens).map(|i| (i * step) as VertexId).collect();
        let nvd = ExactNvd::build(&g, &generators);
        let rt = RTreeNvd::build(&g, &nvd);
        (g, generators, rt)
    }

    #[test]
    fn one_nn_is_always_among_candidates() {
        let (g, gens, rt) = setup(700, 20, 61);
        let mut dij = Dijkstra::new(g.num_vertices());
        for v in (0..g.num_vertices() as VertexId).step_by(9) {
            let dists = dij.one_to_many(&g, v, &gens);
            let best = *dists.iter().min().unwrap();
            let cands = rt.candidates(g.coord(v));
            assert!(
                cands.iter().any(|&c| dists[c as usize] == best),
                "vertex {v}: 1NN missing"
            );
        }
    }

    #[test]
    fn candidates_can_exceed_small_rho() {
        // The R-tree trade-off: no ρ guarantee. With many generators, some
        // point sees several overlapping MBRs.
        let (g, _, rt) = setup(1500, 60, 62);
        let max_c = (0..g.num_vertices() as VertexId)
            .step_by(3)
            .map(|v| rt.candidates(g.coord(v)).len())
            .max()
            .unwrap();
        assert!(max_c >= 2, "MBRs never overlap — suspicious");
    }

    #[test]
    fn mbr_contains_and_union() {
        let mut m = Mbr::EMPTY;
        m.extend(Point::new(0, 0));
        m.extend(Point::new(10, 5));
        assert!(m.contains(Point::new(5, 3)));
        assert!(!m.contains(Point::new(11, 3)));
        let mut m2 = Mbr::EMPTY;
        m2.extend(Point::new(-5, -5));
        m.union(&m2);
        assert!(m.contains(Point::new(-5, -5)));
    }

    #[test]
    fn single_generator_tree() {
        let (g, _, rt) = setup(200, 1, 63);
        for v in (0..g.num_vertices() as VertexId).step_by(19) {
            assert_eq!(rt.candidates(g.coord(v)), vec![0]);
        }
    }

    #[test]
    fn size_scales_with_generators_not_vertices() {
        let (_, _, rt_small) = setup(2000, 20, 64);
        let (_, _, rt_big) = setup(2000, 200, 64);
        // 10× the generators ≈ order-of-magnitude larger index, independent
        // of |V|.
        assert!(rt_big.size_bytes() > rt_small.size_bytes() * 4);
    }
}
