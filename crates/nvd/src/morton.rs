//! Morton (Z-order) codes over normalized coordinates.
//!
//! The implementation lives in [`kspin_graph::morton`] so the locality
//! renumbering in `kspin_graph::relabel` can share the same curves without
//! inverting the crate dependency. This module re-exports it under the
//! historical `kspin_nvd::morton` path used by the quadtree code (§6.1).

pub use kspin_graph::morton::{deinterleave, hilbert_d, interleave, MortonSpace, BITS};
