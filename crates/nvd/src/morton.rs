//! Morton (Z-order) codes over normalized coordinates.
//!
//! The ρ-Approximate NVD stores its quadtree as a *Morton list* (§6.1, after
//! Samet [22]): leaves sorted by the Z-order code of their lower corner,
//! located by binary search. Codes interleave 16 bits per axis after
//! normalizing the graph's bounding box to a 65536 × 65536 grid.

use kspin_graph::Point;

/// Bits per axis; quadtree depth is at most this.
pub const BITS: u32 = 16;

/// Maps points in a fixed bounding box onto Morton codes.
#[derive(Debug, Clone, Copy)]
pub struct MortonSpace {
    min: Point,
    scale_x: f64,
    scale_y: f64,
}

impl MortonSpace {
    /// Creates a space covering `min..=max` (degenerate boxes allowed).
    pub fn new(min: Point, max: Point) -> Self {
        let extent = |lo: i32, hi: i32| -> f64 {
            let e = (hi as i64 - lo as i64) as f64;
            if e <= 0.0 {
                1.0
            } else {
                e
            }
        };
        let grid = ((1u64 << BITS) - 1) as f64;
        MortonSpace {
            min,
            // PANIC-OK: float division — grid and extent(..) are both f64.
            scale_x: grid / extent(min.x, max.x),
            scale_y: grid / extent(min.y, max.y), // PANIC-OK: float division.
        }
    }

    /// The Morton code of `p`. Points outside the box clamp to its border.
    pub fn code(&self, p: Point) -> u32 {
        let gx = (((p.x as i64 - self.min.x as i64) as f64 * self.scale_x) as i64)
            .clamp(0, (1 << BITS) - 1) as u32;
        let gy = (((p.y as i64 - self.min.y as i64) as f64 * self.scale_y) as i64)
            .clamp(0, (1 << BITS) - 1) as u32;
        interleave(gx) | (interleave(gy) << 1)
    }
}

/// Spreads the low 16 bits of `x` into the even bit positions.
#[inline]
pub fn interleave(x: u32) -> u32 {
    let mut x = x & 0xFFFF;
    x = (x | (x << 8)) & 0x00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

/// Inverse of [`interleave`].
#[inline]
pub fn deinterleave(x: u32) -> u32 {
    let mut x = x & 0x5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_roundtrip() {
        for x in [0u32, 1, 2, 0xFFFF, 0x1234, 0xABCD] {
            assert_eq!(deinterleave(interleave(x)), x);
        }
    }

    #[test]
    fn codes_preserve_quadrant_order() {
        let s = MortonSpace::new(Point::new(0, 0), Point::new(100, 100));
        // The four quadrant corners must map to the four Morton quadrants in
        // Z order: (lo,lo) < (hi,lo) < (lo,hi) < (hi,hi) by top 2 bits.
        let c00 = s.code(Point::new(10, 10)) >> 30;
        let c10 = s.code(Point::new(90, 10)) >> 30;
        let c01 = s.code(Point::new(10, 90)) >> 30;
        let c11 = s.code(Point::new(90, 90)) >> 30;
        assert_eq!((c00, c10, c01, c11), (0, 1, 2, 3));
    }

    #[test]
    fn out_of_box_points_clamp() {
        let s = MortonSpace::new(Point::new(0, 0), Point::new(10, 10));
        assert_eq!(s.code(Point::new(-5, -5)), s.code(Point::new(0, 0)));
        assert_eq!(s.code(Point::new(50, 50)), s.code(Point::new(10, 10)));
    }

    #[test]
    fn degenerate_box_is_safe() {
        let s = MortonSpace::new(Point::new(5, 5), Point::new(5, 5));
        // No panic, and the box's own corner maps to the origin code.
        assert_eq!(s.code(Point::new(5, 5)), 0);
        // Points beyond the degenerate box clamp without overflow.
        let _ = s.code(Point::new(i32::MAX, i32::MIN));
    }

    #[test]
    fn nearby_points_share_prefixes() {
        let s = MortonSpace::new(Point::new(0, 0), Point::new(1 << 20, 1 << 20));
        let a = s.code(Point::new(1000, 1000));
        let b = s.code(Point::new(1010, 1010));
        let far = s.code(Point::new(1_000_000, 1_000_000));
        let shared_ab = (a ^ b).leading_zeros();
        let shared_af = (a ^ far).leading_zeros();
        assert!(shared_ab > shared_af);
    }
}
