//! The generator adjacency graph of an NVD.
//!
//! Nodes are Voronoi generators (objects); an edge connects two generators
//! whose Voronoi node sets touch via a road-network edge. Observation 2a:
//! this graph has `O(|inv(t)|)` size with small constant average degree, and
//! it is *all* that LazyReheap (Algorithm 4) needs — the `O(|V|)` owner
//! table can be discarded.

/// Adjacency lists over generator indices `0..m`.
#[derive(Debug, Clone, Default)]
pub struct AdjacencyGraph {
    lists: Vec<Vec<u32>>,
}

impl AdjacencyGraph {
    /// Creates an adjacency graph over `m` generators with no edges.
    pub fn new(m: usize) -> Self {
        AdjacencyGraph {
            lists: vec![Vec::new(); m],
        }
    }

    /// Number of generators.
    pub fn num_nodes(&self) -> usize {
        self.lists.len()
    }

    /// Number of undirected adjacency edges.
    pub fn num_edges(&self) -> usize {
        self.lists.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Adds an undirected adjacency unless already present.
    pub fn add(&mut self, a: u32, b: u32) {
        if a == b {
            return;
        }
        if !self.lists[a as usize].contains(&b) {
            self.lists[a as usize].push(b);
            self.lists[b as usize].push(a);
        }
    }

    /// Appends a fresh isolated node (used when lazily inserting objects)
    /// and returns its index.
    pub fn push_node(&mut self) -> u32 {
        self.lists.push(Vec::new());
        (self.lists.len() - 1) as u32
    }

    /// Generators adjacent to `a`.
    #[inline]
    pub fn adjacent(&self, a: u32) -> &[u32] {
        // PANIC-OK: a is a generator id < lists.len() — ids are only minted
        // by the builder and push_node, both of which size the list first.
        &self.lists[a as usize]
    }

    /// Degree of `a`.
    pub fn degree(&self, a: u32) -> usize {
        self.lists[a as usize].len()
    }

    /// Average degree — the Δ constant of the §5.1 complexity analysis.
    pub fn avg_degree(&self) -> f64 {
        if self.lists.is_empty() {
            0.0
        } else {
            self.lists.iter().map(Vec::len).sum::<usize>() as f64 / self.lists.len() as f64
        }
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.lists.iter().map(|l| l.len() * 4 + 24).sum()
    }

    /// Flattens the lists into `(offsets, data)` CSR form — the snapshot
    /// serialization boundary. Neighbor order is preserved verbatim so a
    /// flatten → rebuild round trip is the identity.
    pub fn flat_parts(&self) -> (Vec<u32>, Vec<u32>) {
        let mut offsets = Vec::with_capacity(self.lists.len() + 1);
        offsets.push(0u32);
        let mut data = Vec::new();
        for l in &self.lists {
            data.extend_from_slice(l);
            offsets.push(data.len() as u32);
        }
        (offsets, data)
    }

    /// Rebuilds the nested lists from flattened CSR form, preserving
    /// neighbor order exactly, then audits ranges and symmetry.
    ///
    /// # Errors
    /// Malformed offsets, or any violation [`Self::validate_symmetric`]
    /// reports.
    pub fn from_flat(offsets: &[u32], data: &[u32]) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("adjacency offsets must hold m + 1 entries, got 0".into());
        }
        if u32::try_from(data.len()).is_err() {
            return Err(format!("adjacency edge count {} exceeds u32", data.len()));
        }
        if offsets.first() != Some(&0) || offsets.last() != Some(&(data.len() as u32)) {
            return Err("adjacency offsets must start at 0 and end at the edge count".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("adjacency offsets must be monotone non-decreasing".into());
        }
        let lists = offsets
            .windows(2)
            .map(|w| data[w[0] as usize..w[1] as usize].to_vec())
            .collect();
        let g = AdjacencyGraph { lists };
        g.validate_symmetric().map_err(|v| v.join("; "))?;
        Ok(g)
    }

    /// Invariant audit: every list entry is in range, no self-loops, no
    /// duplicates, and every edge has its reverse (the graph is undirected
    /// by construction — Observation 2a relies on it). Returns each
    /// violation as a human-readable string.
    pub fn validate_symmetric(&self) -> Result<(), Vec<String>> {
        let mut errs = Vec::new();
        let n = self.lists.len();
        for (a, list) in self.lists.iter().enumerate() {
            let a = a as u32;
            for (i, &b) in list.iter().enumerate() {
                if b as usize >= n {
                    errs.push(format!("adjacency {a}→{b}: node {b} out of range (n={n})"));
                    continue;
                }
                if b == a {
                    errs.push(format!("adjacency self-loop at node {a}"));
                }
                if list[..i].contains(&b) {
                    errs.push(format!("duplicate adjacency {a}→{b}"));
                }
                if !self.lists[b as usize].contains(&a) {
                    errs.push(format!("asymmetric adjacency: {a}→{b} has no reverse edge"));
                }
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_symmetric_and_idempotent() {
        let mut a = AdjacencyGraph::new(3);
        a.add(0, 1);
        a.add(1, 0);
        a.add(0, 1);
        assert_eq!(a.num_edges(), 1);
        assert_eq!(a.adjacent(0), &[1]);
        assert_eq!(a.adjacent(1), &[0]);
        assert_eq!(a.degree(2), 0);
    }

    #[test]
    fn self_loops_ignored() {
        let mut a = AdjacencyGraph::new(2);
        a.add(1, 1);
        assert_eq!(a.num_edges(), 0);
    }

    #[test]
    fn push_node_grows_graph() {
        let mut a = AdjacencyGraph::new(1);
        let n = a.push_node();
        assert_eq!(n, 1);
        a.add(0, n);
        assert_eq!(a.adjacent(n), &[0]);
        assert_eq!(a.num_nodes(), 2);
    }

    #[test]
    fn average_degree() {
        let mut a = AdjacencyGraph::new(4);
        a.add(0, 1);
        a.add(1, 2);
        a.add(2, 3);
        assert!((a.avg_degree() - 1.5).abs() < 1e-12);
    }
}
