//! Voronoi-based kNN over a single object set (Kolahdouzan–Shahabi VN3
//! [18], with the ρ-approximate twist).
//!
//! This is the keyword-free ancestor of K-SPIN's heap generation: find the
//! k nearest *objects* of one generator set, consuming exact distances
//! instead of lower bounds. Property 2 — the i-th NN is adjacent (in the
//! NVD) to one of the first i−1 — drives the expansion; the ρ-approximate
//! leaf candidates seed it (Theorem 1 applies with lower bound = exact
//! distance).
//!
//! Useful on its own (category kNN: "5 nearest fuel stations") and as a
//! differential oracle for the Heap Generator in tests.

use kspin_graph::{Point, VertexId, Weight};

use crate::approx::ApproxNvd;

impl ApproxNvd {
    /// The `k` nearest live objects to a query at `coord`, by exact network
    /// distance. `dist(vertex)` must return the exact distance from the
    /// query to `vertex`. Results are sorted ascending; fewer than `k` are
    /// returned only if fewer live objects exist.
    pub fn knn<F>(&self, coord: Point, k: usize, mut dist: F) -> Vec<(u32, Weight)>
    where
        F: FnMut(VertexId) -> Weight,
    {
        if k == 0 {
            return Vec::new();
        }
        // The indexed heap's epoch stamps double as the "already inserted"
        // side table the lazy kernel kept in a separate Vec<bool>.
        let mut heap = kspin_graph::DaryHeap::new(self.num_total());
        for id in self.init_candidates(coord) {
            if !heap.was_inserted(id) {
                heap.push(dist(self.object_vertex(id)), id);
            }
        }
        let mut out = Vec::with_capacity(k);
        while let Some((d, id)) = heap.pop() {
            // Property 2: expand adjacency regardless of deletion state so
            // the frontier keeps moving outward.
            for &a in self.adjacent(id) {
                if !heap.was_inserted(a) {
                    heap.push(dist(self.object_vertex(a)), a);
                }
            }
            if !self.is_deleted(id) {
                out.push((id, d));
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::{Dijkstra, Graph};

    fn setup(n: usize, gens: usize, seed: u64) -> (Graph, Vec<VertexId>, ApproxNvd) {
        let g = road_network(&RoadNetworkConfig::new(n, seed));
        let step = (g.num_vertices() / gens).max(1);
        let generators: Vec<VertexId> = (0..gens).map(|i| (i * step) as VertexId).collect();
        let apx = ApproxNvd::build(&g, &generators, 4);
        (g, generators, apx)
    }

    #[test]
    fn knn_matches_network_expansion() {
        let (g, gens, apx) = setup(800, 30, 401);
        let mut dij = Dijkstra::new(g.num_vertices());
        for q in [0u32, 350, 777] {
            let q = q.min(g.num_vertices() as u32 - 1);
            let gens2 = gens.clone();
            dij.sssp(&g, q);
            let all: Vec<Weight> = gens2
                .iter()
                .map(|&v| dij.space().distance(v).unwrap())
                .collect();
            let mut want = all.clone();
            want.sort_unstable();
            want.truncate(5);
            let mut dd = Dijkstra::new(g.num_vertices());
            let got = apx.knn(g.coord(q), 5, |v| dd.one_to_one(&g, q, v));
            let gd: Vec<Weight> = got.iter().map(|&(_, d)| d).collect();
            assert_eq!(gd, want, "q={q}");
        }
    }

    #[test]
    fn knn_skips_deleted_objects() {
        let (g, _, mut apx) = setup(500, 15, 403);
        let q = 77u32.min(g.num_vertices() as u32 - 1);
        let mut dd = Dijkstra::new(g.num_vertices());
        let first = apx.knn(g.coord(q), 1, |v| dd.one_to_one(&g, q, v))[0].0;
        apx.delete_object(first);
        let got = apx.knn(g.coord(q), 3, |v| dd.one_to_one(&g, q, v));
        assert!(got.iter().all(|&(id, _)| id != first));
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn knn_finds_lazily_inserted_objects() {
        let (g, gens, mut apx) = setup(600, 12, 405);
        let new_vertex = (0..g.num_vertices() as u32)
            .find(|v| !gens.contains(v))
            .expect("some non-generator vertex exists");
        let mut dd = Dijkstra::new(g.num_vertices());
        let mut dist2 = |a: VertexId, b: VertexId| dd.one_to_one(&g, a, b);
        let id = apx.insert_object(new_vertex, g.coord(new_vertex), &mut dist2);
        // Querying from the inserted object's own vertex must return it at
        // distance 0.
        let mut dd2 = Dijkstra::new(g.num_vertices());
        let got = apx.knn(g.coord(new_vertex), 1, |v| {
            dd2.one_to_one(&g, new_vertex, v)
        });
        assert_eq!(got[0], (id, 0));
    }

    #[test]
    fn asking_beyond_population_returns_all() {
        let (g, gens, apx) = setup(300, 6, 407);
        let mut dd = Dijkstra::new(g.num_vertices());
        let got = apx.knn(g.coord(0), 100, |v| dd.one_to_one(&g, 0, v));
        assert_eq!(got.len(), gens.len());
        // Sorted ascending.
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn zero_k_is_empty() {
        let (g, _, apx) = setup(200, 4, 409);
        let mut dd = Dijkstra::new(g.num_vertices());
        assert!(apx
            .knn(g.coord(0), 0, |v| dd.one_to_one(&g, 0, v))
            .is_empty());
    }
}
