//! §6.2 lazy updates on a [`ApproxNvd`].
//!
//! * **Deletion** — mark-only; the Heap Generator skips deleted objects but
//!   still expands their adjacency.
//! * **Insertion** — compute the *affected set* `A(o)` via a BFS over the
//!   adjacency graph from the 1NN of the new object, pruned by Theorem 2
//!   (`p ∉ A(o)` if `d(o,p) ≥ 2·MaxRadius(p)`), then attach the new object
//!   to every affected node. The quadtree itself is untouched — that is the
//!   "lazy" part; a rebuild folds everything back in.
//!
//! The paper notes that the earlier claim in [18] — that only the 1NN and
//! its adjacent objects are affected — is *incorrect* (Fig. 7); the
//! Theorem-2 BFS is the fix, and `affected_set` reproduces it.

use kspin_graph::{Graph, Point, VertexId, Weight};

use crate::approx::ApproxNvd;

impl ApproxNvd {
    /// Marks object `id` deleted (original or inserted).
    ///
    /// # Panics
    /// If `id` is out of range or already deleted.
    pub fn delete_object(&mut self, id: u32) {
        assert!((id as usize) < self.num_total(), "object id out of range");
        assert!(!self.deleted[id as usize], "object {id} already deleted");
        self.deleted[id as usize] = true;
        self.pending_updates += 1;
    }

    /// Un-deletes an object (supports "add keyword back" flows cheaply).
    pub fn undelete_object(&mut self, id: u32) {
        assert!((id as usize) < self.num_total(), "object id out of range");
        self.deleted[id as usize] = false;
        self.pending_updates += 1;
    }

    /// Computes the Theorem-2 affected set of a new object at `vertex`.
    ///
    /// `dist` must return the exact network distance between two vertices
    /// (the framework wires in its Network Distance Module here). `coord`
    /// is the new object's coordinate, used for quadtree point location.
    pub fn affected_set<F>(&self, vertex: VertexId, coord: Point, dist: &mut F) -> Vec<u32>
    where
        F: FnMut(VertexId, VertexId) -> Weight,
    {
        // 1NN among the original generators: guaranteed to be among the leaf
        // candidates by Definition 1 (deleted originals keep their stale
        // cells until rebuild, so they stay eligible here).
        let cands = self.leaf_candidates(coord);
        let p = cands
            .iter()
            .copied()
            .min_by_key(|&c| dist(vertex, self.object_vertex(c)))
            // lint:allow(no-unwrap) — every quadtree leaf is seeded with at
            // least one generator candidate at build time (Definition 1),
            // so `leaf_candidates` can never return an empty set.
            .expect("leaf candidates are never empty");

        let originals = self.num_original() as u32;
        let mut affected = vec![p];
        let mut visited = vec![false; originals as usize];
        visited[p as usize] = true;
        let mut frontier = vec![p];
        while let Some(e) = frontier.pop() {
            for &a in self.adjacent(e) {
                if a >= originals || visited[a as usize] {
                    continue; // inserted objects have no cells to affect
                }
                visited[a as usize] = true;
                let d = dist(vertex, self.object_vertex(a));
                // Theorem 2: beyond twice the cell radius the cell cannot
                // gain the new object as 1NN; prune the BFS there.
                if d >= 2 * self.max_radius(a).max(1) {
                    continue;
                }
                affected.push(a);
                frontier.push(a);
            }
        }
        affected
    }

    /// Lazily inserts a new object at `vertex`, returning its object id.
    ///
    /// The object is attached to every node of its affected set (so heap
    /// initialization finds it) and linked into the adjacency graph (so
    /// LazyReheap finds it).
    pub fn insert_object<F>(&mut self, vertex: VertexId, coord: Point, dist: &mut F) -> u32
    where
        F: FnMut(VertexId, VertexId) -> Weight,
    {
        let affected = self.affected_set(vertex, coord, dist);
        let new_id = self.num_total() as u32;
        self.inserted_vertices.push(vertex);
        self.deleted.push(false);
        let node = self.adjacency.push_node();
        debug_assert_eq!(node, new_id);
        for &a in &affected {
            self.attached[a as usize].push(new_id);
            self.adjacency.add(new_id, a);
        }
        self.pending_updates += 1;
        new_id
    }

    /// Rebuilds from the live object set, folding lazy updates into a fresh
    /// quadtree/adjacency/MaxRadius — the amortized operation of Fig. 8(b).
    ///
    /// Returns the rebuilt index and the mapping `new_id → old_id`.
    pub fn rebuild(&self, graph: &Graph) -> (ApproxNvd, Vec<u32>) {
        let mut mapping = Vec::new();
        let mut vertices = Vec::new();
        for id in 0..self.num_total() as u32 {
            if !self.is_deleted(id) {
                mapping.push(id);
                vertices.push(self.object_vertex(id));
            }
        }
        (ApproxNvd::build(graph, &vertices, self.rho()), mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::{Dijkstra, Graph};

    fn setup(n: usize, gens: usize, seed: u64) -> (Graph, Vec<VertexId>, ApproxNvd) {
        let g = road_network(&RoadNetworkConfig::new(n, seed));
        let step = (g.num_vertices() / gens).max(1);
        let generators: Vec<VertexId> = (0..gens).map(|i| (i * step) as VertexId).collect();
        let apx = ApproxNvd::build(&g, &generators, 4);
        (g, generators, apx)
    }

    /// True affected set by brute force: owners whose cell contains a
    /// vertex for which the new object becomes strictly nearer.
    fn brute_affected(
        g: &Graph,
        gens: &[VertexId],
        new_vertex: VertexId,
    ) -> std::collections::HashSet<u32> {
        let mut dij = Dijkstra::new(g.num_vertices());
        let exact = crate::exact::ExactNvd::build(g, gens);
        dij.sssp(g, new_vertex);
        let space = dij.space();
        let mut affected = std::collections::HashSet::new();
        for v in 0..g.num_vertices() as VertexId {
            let dn = space.distance(v).unwrap();
            if dn < exact.dist_to_owner(v) {
                affected.insert(exact.owner(v).unwrap());
            }
        }
        affected
    }

    #[test]
    fn affected_set_is_a_superset_of_the_truth() {
        let (g, gens, apx) = setup(600, 15, 41);
        let mut dij = Dijkstra::new(g.num_vertices());
        for &new_vertex in &[3u32, 77, 301, 555] {
            let new_vertex = new_vertex.min(g.num_vertices() as u32 - 1);
            if gens.contains(&new_vertex) {
                continue;
            }
            let mut dist = |a: VertexId, b: VertexId| dij.one_to_one(&g, a, b);
            let ours: std::collections::HashSet<u32> = apx
                .affected_set(new_vertex, g.coord(new_vertex), &mut dist)
                .into_iter()
                .collect();
            let truth = brute_affected(&g, &gens, new_vertex);
            for t in &truth {
                assert!(
                    ours.contains(t),
                    "vertex {new_vertex}: missing affected generator {t} (ours: {ours:?})"
                );
            }
        }
    }

    #[test]
    fn inserted_object_appears_in_init_candidates_where_it_wins() {
        let (g, gens, mut apx) = setup(600, 15, 42);
        let mut dij = Dijkstra::new(g.num_vertices());
        let new_vertex = 123u32.min(g.num_vertices() as u32 - 1);
        assert!(!gens.contains(&new_vertex));
        let mut dist = |a: VertexId, b: VertexId| dij.one_to_one(&g, a, b);
        let new_id = apx.insert_object(new_vertex, g.coord(new_vertex), &mut dist);

        // Every vertex whose new 1NN is the inserted object must see it in
        // its heap-initialization candidates.
        let truth = brute_affected(&g, &gens, new_vertex);
        assert!(
            !truth.is_empty(),
            "test vertex affects nothing; pick another"
        );
        let mut dij2 = Dijkstra::new(g.num_vertices());
        dij2.sssp(&g, new_vertex);
        let space = dij2.space();
        let exact = crate::exact::ExactNvd::build(&g, &gens);
        for v in 0..g.num_vertices() as VertexId {
            if space.distance(v).unwrap() < exact.dist_to_owner(v) {
                let init = apx.init_candidates(g.coord(v));
                assert!(
                    init.contains(&new_id),
                    "vertex {v}: new 1NN {new_id} missing from init candidates {init:?}"
                );
            }
        }
    }

    #[test]
    fn inserted_object_is_linked_into_adjacency() {
        let (g, _, mut apx) = setup(400, 10, 43);
        let mut dij = Dijkstra::new(g.num_vertices());
        let mut dist = |a: VertexId, b: VertexId| dij.one_to_one(&g, a, b);
        let v = 200u32.min(g.num_vertices() as u32 - 1);
        let id = apx.insert_object(v, g.coord(v), &mut dist);
        assert!(!apx.adjacent(id).is_empty());
        for &a in apx.adjacent(id) {
            assert!(apx.adjacent(a).contains(&id));
        }
        assert_eq!(apx.object_vertex(id), v);
        assert_eq!(apx.pending_updates(), 1);
    }

    #[test]
    fn delete_marks_without_removing() {
        let (_, _, mut apx) = setup(300, 8, 44);
        apx.delete_object(3);
        assert!(apx.is_deleted(3));
        assert_eq!(apx.num_total(), 8);
        assert_eq!(apx.live_vertices().len(), 7);
        apx.undelete_object(3);
        assert!(!apx.is_deleted(3));
    }

    #[test]
    #[should_panic(expected = "already deleted")]
    fn double_delete_panics() {
        let (_, _, mut apx) = setup(300, 8, 44);
        apx.delete_object(3);
        apx.delete_object(3);
    }

    #[test]
    fn rebuild_folds_updates_in() {
        let (g, _, mut apx) = setup(500, 12, 45);
        let mut dij = Dijkstra::new(g.num_vertices());
        let mut dist = |a: VertexId, b: VertexId| dij.one_to_one(&g, a, b);
        let v = 251u32.min(g.num_vertices() as u32 - 1);
        apx.insert_object(v, g.coord(v), &mut dist);
        apx.delete_object(0);
        let (fresh, mapping) = apx.rebuild(&g);
        assert_eq!(fresh.num_total(), 12); // 12 - 1 deleted + 1 inserted
        assert_eq!(fresh.pending_updates(), 0);
        assert_eq!(mapping.len(), 12);
        assert!(!mapping.contains(&0));
        // The inserted object is now a first-class generator.
        assert!(fresh.live_vertices().contains(&v));
    }
}
