//! Figure 16: matrix operations (lookup+add during distance assembly) per
//! top-k query for KS-GT vs Gtree-Opt vs G-tree — the machine-independent
//! false-positive measurement of §7.4.2.
//!
//! Expected shape: G-tree and Gtree-Opt perform **identical** matrix
//! operations (occurrence-list separation cannot undo the aggregation's
//! information loss), while KS-GT does far fewer — direct evidence that
//! keyword separation eliminates false positives rather than just shaving
//! constant factors.

use kspin::adapters::GtreeNetworkDistance;
use kspin_bench::{build_dataset, build_oracles, default_scale, header, row, std_queries};
use kspin_core::QueryEngine;
use kspin_gtree::{GtreeSpatialKeyword, OccurrenceMode};

fn main() {
    let (name, vertices) = default_scale();
    println!("dataset: {name}-scale ({vertices} vertices); 2 terms; matrix ops per query");
    let ds = build_dataset(name, vertices);
    let o = build_oracles(&ds);
    let sk = GtreeSpatialKeyword::build(&o.gt, &ds.graph, &ds.corpus);

    header(
        "Fig 16: matrix operations per top-k query on the shared G-tree index",
        &[
            "k",
            "KS-GT",
            "Gtree-Opt",
            "G-tree",
            "pseudo-doc lookups: Opt",
            "G-tree",
        ],
    );
    for k in [1usize, 5, 10, 25, 50] {
        let qs = std_queries(&ds, 2);
        let mut ops_ksgt = 0u64;
        for q in &qs {
            let mut dist = GtreeNetworkDistance::new(&o.gt, &ds.graph);
            let mut e = QueryEngine::new(&ds.graph, &ds.corpus, &o.index, &o.alt, dist);
            let _ = e.top_k(q.vertex, k, &q.terms);
            dist = e.into_distance();
            ops_ksgt += dist.total_ops();
        }
        let mut ops_opt = 0u64;
        let mut lookups_opt = 0u64;
        for q in &qs {
            ops_opt += sk
                .top_k(q.vertex, k, &q.terms, OccurrenceMode::PerKeyword)
                .1;
            lookups_opt += sk.last_pseudo_lookups();
        }
        let mut ops_agg = 0u64;
        let mut lookups_agg = 0u64;
        for q in &qs {
            ops_agg += sk
                .top_k(q.vertex, k, &q.terms, OccurrenceMode::Aggregated)
                .1;
            lookups_agg += sk.last_pseudo_lookups();
        }
        let n = qs.len() as f64;
        row(
            k,
            &[
                ops_ksgt as f64 / n,
                ops_opt as f64 / n,
                ops_agg as f64 / n,
                lookups_opt as f64 / n,
                lookups_agg as f64 / n,
            ],
        );
    }
}
