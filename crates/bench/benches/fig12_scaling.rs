//! Figure 12: query time vs road network size — top-k (a) and disjunctive
//! BkNN (b) across the scale ladder (k = 10, 2 terms).
//!
//! Expected shape: every method slows with |V|, but the aggregated methods
//! degrade faster (higher hierarchy levels aggregate more keywords, losing
//! pruning power), so K-SPIN's relative advantage *grows* with scale.

use kspin::adapters::{ChDistance, HlDistance};
use kspin_bench::{
    build_dataset, build_oracles, full_scale, header, row, std_queries, time_per_query, SCALES,
};
use kspin_core::{Op, QueryEngine};
use kspin_gtree::{GtreeSpatialKeyword, OccurrenceMode};
use kspin_road::RoadIndex;

fn main() {
    let max_vertices = if full_scale() {
        usize::MAX
    } else {
        SCALES[2].1
    };
    let mut topk_rows = Vec::new();
    let mut bknn_rows = Vec::new();

    for (name, vertices) in SCALES {
        if vertices > max_vertices {
            continue;
        }
        eprintln!("building {name} ({vertices} vertices)…");
        let ds = build_dataset(name, vertices);
        let o = build_oracles(&ds);
        let sk = GtreeSpatialKeyword::build(&o.gt, &ds.graph, &ds.corpus);
        let road = RoadIndex::build(&o.gt, &ds.graph, &ds.corpus);
        let qs = std_queries(&ds, 2);

        let mut e_hl = QueryEngine::new(
            &ds.graph,
            &ds.corpus,
            &o.index,
            &o.alt,
            HlDistance::new(&o.hl),
        );
        let mut e_ch = QueryEngine::new(
            &ds.graph,
            &ds.corpus,
            &o.index,
            &o.alt,
            ChDistance::new(&o.ch),
        );
        let topk = vec![
            time_per_query(&qs, |q| {
                e_hl.top_k(q.vertex, 10, &q.terms);
            }),
            time_per_query(&qs, |q| {
                e_ch.top_k(q.vertex, 10, &q.terms);
            }),
            time_per_query(&qs, |q| {
                sk.top_k(q.vertex, 10, &q.terms, OccurrenceMode::Aggregated);
            }),
            time_per_query(&qs, |q| {
                road.top_k(q.vertex, 10, &q.terms);
            }),
        ];
        let bknn = vec![
            time_per_query(&qs, |q| {
                e_hl.bknn(q.vertex, 10, &q.terms, Op::Or);
            }),
            time_per_query(&qs, |q| {
                e_ch.bknn(q.vertex, 10, &q.terms, Op::Or);
            }),
            time_per_query(&qs, |q| {
                sk.bknn(q.vertex, 10, &q.terms, false, OccurrenceMode::Aggregated);
            }),
        ];
        topk_rows.push((name, topk));
        bknn_rows.push((name, bknn));
    }

    header(
        "Fig 12(a): top-k query time vs network size (us; k=10, 2 terms)",
        &["dataset", "KS-HL", "KS-CH", "G-tree", "ROAD"],
    );
    for (name, values) in topk_rows {
        row(name, &values);
    }

    header(
        "Fig 12(b): disjunctive BkNN query time vs network size (us)",
        &["dataset", "KS-HL", "KS-CH", "G-tree"],
    );
    for (name, values) in bknn_rows {
        row(name, &values);
    }
}
