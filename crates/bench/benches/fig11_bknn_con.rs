//! Figure 11: conjunctive Boolean kNN query time, varying k (a) and the
//! number of query keywords (b).
//!
//! Expected shape (§7.2): K-SPIN's advantage is *larger* than in the
//! disjunctive case — aggregation produces pseudo-documents that appear to
//! contain all keywords while no single object does, so G-tree descends
//! deep before discovering the false positive. And K-SPIN *improves* with
//! more keywords: the least frequent keyword gets rarer, shrinking the
//! candidate stream.

use kspin::adapters::{ChDistance, HlDistance};
use kspin_bench::{
    build_dataset, build_oracles, default_scale, header, row, std_queries, time_per_query,
};
use kspin_core::{Op, QueryEngine};
use kspin_fsfbs::{FsFbs, FsFbsConfig};
use kspin_gtree::{GtreeSpatialKeyword, OccurrenceMode};

fn main() {
    let (name, vertices) = default_scale();
    println!("dataset: {name}-scale ({vertices} vertices); all query times in microseconds");
    let ds = build_dataset(name, vertices);
    let o = build_oracles(&ds);
    let sk = GtreeSpatialKeyword::build(&o.gt, &ds.graph, &ds.corpus);
    let fsfbs = FsFbs::build(&ds.graph, &ds.corpus, &o.hl, FsFbsConfig::default());

    let run = |k: usize, num_terms: usize| -> Vec<f64> {
        let qs = std_queries(&ds, num_terms);
        let mut e_hl = QueryEngine::new(
            &ds.graph,
            &ds.corpus,
            &o.index,
            &o.alt,
            HlDistance::new(&o.hl),
        );
        let t_hl = time_per_query(&qs, |q| {
            e_hl.bknn(q.vertex, k, &q.terms, Op::And);
        });
        let mut e_ch = QueryEngine::new(
            &ds.graph,
            &ds.corpus,
            &o.index,
            &o.alt,
            ChDistance::new(&o.ch),
        );
        let t_ch = time_per_query(&qs, |q| {
            e_ch.bknn(q.vertex, k, &q.terms, Op::And);
        });
        let t_gtree = time_per_query(&qs, |q| {
            sk.bknn(q.vertex, k, &q.terms, true, OccurrenceMode::Aggregated);
        });
        let t_fs = time_per_query(&qs, |q| {
            fsfbs.bknn(q.vertex, k, &q.terms, true);
        });
        vec![t_hl, t_ch, t_gtree, t_fs]
    };

    header(
        "Fig 11(a): conjunctive BkNN query time vs k (2 terms)",
        &["k", "KS-HL", "KS-CH", "G-tree", "FS-FBS"],
    );
    for k in [1usize, 5, 10, 25, 50] {
        row(k, &run(k, 2));
    }

    header(
        "Fig 11(b): conjunctive BkNN query time vs #terms (k=10)",
        &["#terms", "KS-HL", "KS-CH", "G-tree", "FS-FBS"],
    );
    for terms in 1..=6usize {
        row(terms, &run(10, terms));
    }
}
