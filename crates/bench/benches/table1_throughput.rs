//! Table 1: index size and query throughput (queries/second) on the
//! largest in-budget dataset (default workload: k = 10, 2 terms).
//!
//! Expected shape (vs the paper's Table 1): KS-HL (the PHL stand-in) has
//! the highest throughput at the largest index; KS-CH is several times
//! faster than G-tree at a smaller footprint; ROAD trails on top-k and
//! does not support BkNN; FS-FBS is slowest and its label-based index is
//! the largest — the paper could not build it at the US scale at all.

use kspin::adapters::{ChDistance, HlDistance};
use kspin_bench::{
    build_dataset, build_oracles, default_scale, mib, qps, std_queries, time_per_query,
};
use kspin_core::{Op, QueryEngine};
use kspin_fsfbs::{FsFbs, FsFbsConfig};
use kspin_gtree::{GtreeSpatialKeyword, OccurrenceMode};
use kspin_road::RoadIndex;

fn main() {
    let (name, vertices) = default_scale();
    println!("dataset: {name}-scale ({vertices} vertices); workload: k=10, 2 terms");
    let ds = build_dataset(name, vertices);
    let o = build_oracles(&ds);
    let sk = GtreeSpatialKeyword::build(&o.gt, &ds.graph, &ds.corpus);
    let road = RoadIndex::build(&o.gt, &ds.graph, &ds.corpus);
    let fsfbs = FsFbs::build(&ds.graph, &ds.corpus, &o.hl, FsFbsConfig::default());
    let qs = std_queries(&ds, 2);

    let kspin_size = mib(o.index.size_bytes() + o.alt.size_bytes());

    println!(
        "\n=== Table 1: index size and throughput ===\n{:<24} {:>16} {:>12} {:>12}",
        "Technique", "Index size (MiB)", "Top-k q/s", "BkNN q/s"
    );
    let print = |name: &str, size: f64, topk: f64, bknn: f64| {
        let fmt = |v: f64| {
            if v < 0.0 {
                "x".to_string()
            } else {
                format!("{v:.0}")
            }
        };
        println!(
            "{name:<24} {size:>16.1} {:>12} {:>12}",
            fmt(topk),
            fmt(bknn)
        );
    };

    {
        let mut e = QueryEngine::new(
            &ds.graph,
            &ds.corpus,
            &o.index,
            &o.alt,
            ChDistance::new(&o.ch),
        );
        let topk = qps(time_per_query(&qs, |q| {
            e.top_k(q.vertex, 10, &q.terms);
        }));
        let bknn = qps(time_per_query(&qs, |q| {
            e.bknn(q.vertex, 10, &q.terms, Op::Or);
        }));
        print(
            "K-SPIN + CH",
            kspin_size + mib(o.ch.size_bytes()),
            topk,
            bknn,
        );
    }
    {
        let mut e = QueryEngine::new(
            &ds.graph,
            &ds.corpus,
            &o.index,
            &o.alt,
            HlDistance::new(&o.hl),
        );
        let topk = qps(time_per_query(&qs, |q| {
            e.top_k(q.vertex, 10, &q.terms);
        }));
        let bknn = qps(time_per_query(&qs, |q| {
            e.bknn(q.vertex, 10, &q.terms, Op::Or);
        }));
        print(
            "K-SPIN + HL (for PHL)",
            kspin_size + mib(o.hl.size_bytes()),
            topk,
            bknn,
        );
    }
    {
        let topk = qps(time_per_query(&qs, |q| {
            sk.top_k(q.vertex, 10, &q.terms, OccurrenceMode::Aggregated);
        }));
        let bknn = qps(time_per_query(&qs, |q| {
            sk.bknn(q.vertex, 10, &q.terms, false, OccurrenceMode::Aggregated);
        }));
        print(
            "Spatial Keyword G-tree",
            mib(o.gt.size_bytes() + sk.size_bytes()),
            topk,
            bknn,
        );
    }
    {
        let topk = qps(time_per_query(&qs, |q| {
            road.top_k(q.vertex, 10, &q.terms);
        }));
        print(
            "ROAD",
            mib(o.gt.size_bytes() + road.size_bytes()),
            topk,
            -1.0, // the paper's Table 1 marks ROAD BkNN unsupported
        );
    }
    {
        let bknn = qps(time_per_query(&qs, |q| {
            fsfbs.bknn(q.vertex, 10, &q.terms, false);
        }));
        print(
            "FS-FBS",
            mib(o.hl.size_bytes() + fsfbs.size_bytes()),
            -1.0,
            bknn,
        );
    }
    println!("\n(x = query type not supported by the technique, as in the paper's Table 1;");
    println!(" the paper additionally reports FS-FBS as unbuildable at US scale — its");
    println!(" label-based index is already the largest here and scales superlinearly.)");
}
