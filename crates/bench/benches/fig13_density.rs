//! Figure 13: single-keyword BkNN query time vs keyword object density
//! `|inv(t)| / |V|` (k = 10).
//!
//! Keywords are bucketed by density decade; single-keyword queries isolate
//! frequency effects from multi-keyword interactions. Expected shape:
//! K-SPIN stays ahead of G-tree across every bucket, with the smallest gap
//! here (single keywords are aggregation's best case, §7.2).

use kspin::adapters::{ChDistance, HlDistance};
use kspin_bench::{build_dataset, build_oracles, default_scale, header, row};
use kspin_core::{Op, QueryEngine};
use kspin_gtree::{GtreeSpatialKeyword, OccurrenceMode};
use kspin_text::workload::query_vertices;
use kspin_text::TermId;

fn main() {
    let (name, vertices) = default_scale();
    println!("dataset: {name}-scale ({vertices} vertices); all query times in microseconds");
    let ds = build_dataset(name, vertices);
    let o = build_oracles(&ds);
    let sk = GtreeSpatialKeyword::build(&o.gt, &ds.graph, &ds.corpus);

    // Density buckets: [lo, hi) over |inv(t)| / |V|. The last bucket is
    // open-ended, as in the paper.
    let buckets: [(f64, f64); 4] = [
        (1e-5, 1e-4),
        (1e-4, 1e-3),
        (1e-3, 1e-2),
        (1e-2, f64::INFINITY),
    ];
    let nv = ds.graph.num_vertices() as f64;
    let qvs = query_vertices(ds.graph.num_vertices(), 40, 0x1357);

    header(
        "Fig 13: single-keyword BkNN query time vs keyword density (k=10)",
        &["density>=", "#keywords", "KS-HL", "KS-CH", "G-tree"],
    );
    for (lo, hi) in buckets {
        let terms: Vec<TermId> = (0..ds.corpus.num_terms() as TermId)
            .filter(|&t| {
                let d = ds.corpus.inv_len(t) as f64 / nv;
                d >= lo && d < hi
            })
            .take(10)
            .collect();
        if terms.is_empty() {
            row(format!("{lo:.0e}"), &[0.0, -1.0, -1.0, -1.0]);
            continue;
        }
        let mut e_hl = QueryEngine::new(
            &ds.graph,
            &ds.corpus,
            &o.index,
            &o.alt,
            HlDistance::new(&o.hl),
        );
        let mut e_ch = QueryEngine::new(
            &ds.graph,
            &ds.corpus,
            &o.index,
            &o.alt,
            ChDistance::new(&o.ch),
        );
        let time = |f: &mut dyn FnMut(TermId, u32)| -> f64 {
            let t0 = std::time::Instant::now();
            for &t in &terms {
                for &q in &qvs {
                    f(t, q);
                }
            }
            t0.elapsed().as_secs_f64() / (terms.len() * qvs.len()) as f64 * 1e6
        };
        let t_hl = time(&mut |t, q| {
            e_hl.bknn(q, 10, &[t], Op::Or);
        });
        let t_ch = time(&mut |t, q| {
            e_ch.bknn(q, 10, &[t], Op::Or);
        });
        let t_gtree = time(&mut |t, q| {
            sk.bknn(q, 10, &[t], false, OccurrenceMode::Aggregated);
        });
        row(
            format!("{lo:.0e}"),
            &[terms.len() as f64, t_hl, t_ch, t_gtree],
        );
    }
}
