//! Figure 6: ρ-Approximate NVD performance.
//!
//! * (a) index size (bars) and construction time (line) vs ρ on the
//!   FL-scale network — expect ~an order of magnitude size reduction from
//!   ρ = 1 (exact region quadtree) to ρ = 5+, and falling build time as
//!   Observation 1 skips ever more keywords.
//! * (b) BkNN / top-k query time vs ρ (k = 10, 2 terms) — expect a flat
//!   line: the ≤ ρ−1 extra heap-init candidates are cheap lower bounds.
//! * (c) index size, quadtree vs R-tree storage, across dataset scales —
//!   both ≈ linear in keyword occurrences.
//! * (d) parallel NVD construction speedup over 1–16 threads
//!   (Observation 3) — efficiency should stay high.

use std::time::Instant;

use kspin::adapters::ChDistance;
use kspin_alt::{AltIndex, LandmarkStrategy};
use kspin_bench::{
    build_dataset, default_scale, header, mib, row, std_queries, time_per_query, SCALES,
};
use kspin_ch::{ChConfig, ContractionHierarchy};
use kspin_core::{KspinConfig, KspinIndex, Op, QueryEngine};
use kspin_nvd::{ApproxNvd, ExactNvd, RTreeNvd};
use kspin_text::{ObjectId, TermId};

fn main() {
    let (name, vertices) = default_scale();
    println!("dataset: {name}-scale ({vertices} vertices)");
    let ds = build_dataset(name, vertices);
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());

    // ---- (a) size + build time vs rho --------------------------------
    header(
        "Fig 6(a): APX-NVD index size and construction time vs rho",
        &["rho", "size (MiB)", "build (s)", "NVD kws", "small kws"],
    );
    let mut indexes = Vec::new();
    for rho in [1usize, 3, 5, 7, 9, 11] {
        let cfg = KspinConfig {
            rho,
            num_threads: threads,
            ..KspinConfig::default()
        };
        let index = KspinIndex::build(&ds.graph, &ds.corpus, &cfg);
        row(
            rho,
            &[
                mib(index.size_bytes()),
                index.stats().build_seconds,
                index.stats().nvd_terms as f64,
                index.stats().small_terms as f64,
            ],
        );
        indexes.push((rho, index));
    }

    // ---- (b) query time vs rho ----------------------------------------
    header(
        "Fig 6(b): query time vs rho (k=10, 2 terms, microseconds)",
        &["rho", "BkNN-dis (us)", "BkNN-con (us)", "top-k (us)"],
    );
    let alt = AltIndex::build(&ds.graph, 16, LandmarkStrategy::Farthest, 0);
    let ch = ContractionHierarchy::build(&ds.graph, &ChConfig::default());
    let qs = std_queries(&ds, 2);
    for (rho, index) in &indexes {
        let mut e = QueryEngine::new(&ds.graph, &ds.corpus, index, &alt, ChDistance::new(&ch));
        let dis = time_per_query(&qs, |q| {
            e.bknn(q.vertex, 10, &q.terms, Op::Or);
        });
        let con = time_per_query(&qs, |q| {
            e.bknn(q.vertex, 10, &q.terms, Op::And);
        });
        let topk = time_per_query(&qs, |q| {
            e.top_k(q.vertex, 10, &q.terms);
        });
        row(rho, &[dis, con, topk]);
    }
    drop(indexes);

    // ---- (c) quadtree vs R-tree size across datasets -------------------
    header(
        "Fig 6(c): index size by storage, across datasets (MiB)",
        &["dataset", "occurrences", "quadtree", "R-tree"],
    );
    for (sname, sv) in SCALES {
        if sv > vertices {
            continue; // stay within the chosen budget
        }
        let sds = build_dataset(sname, sv);
        let rho = 5;
        let mut quad = 0usize;
        let mut rtree = 0usize;
        for t in 0..sds.corpus.num_terms() as TermId {
            let postings = sds.corpus.inverted(t);
            if postings.len() <= rho {
                quad += postings.len() * 9;
                rtree += postings.len() * 9;
                continue;
            }
            let gens: Vec<u32> = postings
                .iter()
                .map(|p| sds.corpus.vertex_of(p.object))
                .collect();
            let exact = ExactNvd::build(&sds.graph, &gens);
            rtree += RTreeNvd::build(&sds.graph, &exact).size_bytes();
            quad += ApproxNvd::from_exact(&sds.graph, exact, rho).size_bytes();
        }
        row(
            sname,
            &[sds.corpus.total_occurrences() as f64, mib(quad), mib(rtree)],
        );
    }

    // ---- (d) parallel construction speedup -----------------------------
    header(
        "Fig 6(d): parallel NVD construction (rho=5)",
        &["threads", "build (s)", "speedup", "efficiency"],
    );
    let mut t1 = 0.0f64;
    for p in [1usize, 2, 4, 8, 16] {
        if p > threads * 2 {
            break;
        }
        let cfg = KspinConfig {
            rho: 5,
            num_threads: p,
            ..KspinConfig::default()
        };
        let t0 = Instant::now();
        let index = KspinIndex::build(&ds.graph, &ds.corpus, &cfg);
        let dt = t0.elapsed().as_secs_f64();
        if p == 1 {
            t1 = dt;
        }
        row(p, &[dt, t1 / dt, t1 / (p as f64 * dt)]);
        drop(index);
    }

    // Silence unused warning paths on tiny runs.
    let _ = ObjectId::MAX;
}
