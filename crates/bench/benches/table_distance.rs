//! Distance-kernel sweep over three axes: module × memory layout × heap
//! kernel, on generated road networks at |V| ∈ {10k, 30k, 100k}.
//!
//! **Modules** — the four heap-driven searches (Dijkstra, BiDijkstra,
//! ALT-A*, the exact-NVD construction sweep) plus `one_to_many`, the
//! batched distance-table shape the serving pre-pass runs per keyword
//! group (many sources against one shared target set).
//!
//! **Layouts** — each network is renumbered with [`Relabeling`] before
//! measuring: `original` (generator order), `bfs` (frontier locality) and
//! `hilbert` (space-filling-curve locality). Queries are translated
//! through the permutation, so every layout answers the *same* external
//! queries and returns bit-identical distances (the relabel property
//! tests prove it). Heap counters may drift by a hair across layouts —
//! equal-key ties expand in vertex-id order, and ids are permuted — so
//! the counter invariants below are checked per layout, never across.
//!
//! **Kernels** —
//! * `dary`   — the shared indexed 4-ary decrease-key kernel
//!   (`kspin_graph::dheap`), i.e. the production code paths;
//! * `binary` — bench-local lazy-deletion reference implementations that
//!   mirror the pre-port code exactly (std `BinaryHeap` + epoch arrays +
//!   stale-entry skipping), instrumented on the same counter schema;
//! * for `one_to_many`: `per_query_dijkstra` (one early-stopping search
//!   per source) vs `phast` (upward search + full linear downward sweep)
//!   vs `rphast` (sweep restricted to the targets' upward closure).
//!
//! The host's wall clock is single-core and noisy, so the heap counters
//! are the primary signal (the EXPERIMENTS.md convention): the d-ary legs
//! must report `stale_skipped == 0` structurally and strictly fewer pops
//! than their lazy twins — every lazy stale pop is a d-ary decrease-key —
//! and the restricted sweep must settle strictly fewer vertices than the
//! per-query searches it replaces. QPS rides along as best-of-3. Results
//! go to `BENCH_distance.json` at the workspace root (CI uploads it as an
//! artifact).
//!
//! `KSPIN_BENCH_SCALE=small` drops the 100k size and halves the query
//! pairs for CI smoke runs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::time::Instant;

use kspin_alt::{AltAstar, AltIndex, LandmarkStrategy};
use kspin_bench::{header, row};
use kspin_ch::{ChConfig, ContractionHierarchy, OneToManySweep, RestrictedTargets};
use kspin_graph::generate::{road_network, RoadNetworkConfig};
use kspin_graph::{
    BiDijkstra, Dijkstra, Graph, HeapCounters, Relabeling, VertexId, Weight, INFINITY,
};
use kspin_nvd::{AdjacencyGraph, ExactNvd};

/// One (module, kernel) leg's measurement.
struct Leg {
    qps: f64,
    counters: HeapCounters,
}

fn sizes() -> Vec<usize> {
    if std::env::var("KSPIN_BENCH_SCALE").as_deref() == Ok("small") {
        vec![10_000, 30_000]
    } else {
        vec![10_000, 30_000, 100_000]
    }
}

/// Deterministic point-to-point query pairs, spread across the network.
fn query_pairs(n: usize) -> Vec<(VertexId, VertexId)> {
    let mut pairs = match n {
        0..=15_000 => 48,
        15_001..=50_000 => 24,
        _ => 10,
    };
    if std::env::var("KSPIN_BENCH_SCALE").as_deref() == Ok("small") {
        pairs /= 2;
    }
    (0..pairs)
        .map(|i| {
            (
                ((i * 7919) % n) as VertexId,
                ((i * 104_729 + n / 2) % n) as VertexId,
            )
        })
        .collect()
}

/// Every 64th vertex generates a Voronoi cell (road-network POI density).
fn generators(n: usize) -> Vec<VertexId> {
    (0..n as VertexId).step_by(64).collect()
}

/// Up to 8 distinct sources for the one-to-many legs, drawn from the
/// point-to-point pair sources (the serving batch shape: a handful of
/// query locations against one shared keyword target set).
fn sweep_sources(pairs: &[(VertexId, VertexId)]) -> Vec<VertexId> {
    let mut src: Vec<VertexId> = Vec::new();
    for &(s, _) in pairs {
        if !src.contains(&s) {
            src.push(s);
        }
        if src.len() == 8 {
            break;
        }
    }
    src
}

/// Extra JSON fields for one-to-many rows: total vertices settled/relaxed
/// over the counted run, target-set size, and settled work per source as
/// a fraction of |V|.
fn sweep_extra(settled: u64, targets: usize, fraction: f64) -> String {
    format!(", \"settled\": {settled}, \"targets\": {targets}, \"settled_fraction\": {fraction:.4}")
}

/// Best-of-5 wall clock around `pass`, counters from a final counted run
/// via the `snapshot`/`delta` pair (cumulative-counter structs diff; the
/// lazy kernels below reset per pass and report directly). Five passes
/// because the host is a shared single hardware thread: any one pass can
/// eat a multi-hundred-ms scheduler stall, and min-of-N is the estimator
/// that discards those.
fn measure<F: FnMut()>(work_items: usize, mut pass: F) -> f64 {
    let mut best = f64::INFINITY;
    pass(); // warmup (first-touch page faults, branch history)
    for _ in 0..5 {
        let t0 = Instant::now();
        pass();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    work_items as f64 / best
}

// ---------------------------------------------------------------------------
// Lazy-deletion reference kernels: the pre-port implementations, verbatim in
// structure, counting pushes/pops/stales on the shared HeapCounters schema.
// ---------------------------------------------------------------------------

/// Pre-port `Dijkstra::one_to_one`: epoch arrays + duplicate pushes.
struct LazyDijkstra {
    dist: Vec<Weight>,
    epoch: Vec<u32>,
    settled: Vec<bool>,
    cur: u32,
    heap: BinaryHeap<(Reverse<Weight>, VertexId)>,
    c: HeapCounters,
}

impl LazyDijkstra {
    fn new(n: usize) -> Self {
        LazyDijkstra {
            dist: vec![INFINITY; n],
            epoch: vec![0; n],
            settled: vec![false; n],
            cur: 0,
            heap: BinaryHeap::new(),
            c: HeapCounters::default(),
        }
    }

    fn one_to_one(&mut self, g: &Graph, s: VertexId, t: VertexId) -> Weight {
        self.cur += 1;
        self.heap.clear();
        self.relax(s, 0);
        while let Some((Reverse(d), v)) = self.heap.pop() {
            self.c.pops += 1;
            if self.settled[v as usize] || d > self.dist[v as usize] {
                self.c.stale_skipped += 1;
                continue;
            }
            self.settled[v as usize] = true;
            if v == t {
                return d;
            }
            for (u, w) in g.neighbors(v) {
                let nd = d + w;
                if nd < self.tentative(u) {
                    self.relax(u, nd);
                }
            }
        }
        INFINITY
    }

    fn tentative(&self, v: VertexId) -> Weight {
        if self.epoch[v as usize] == self.cur {
            self.dist[v as usize]
        } else {
            INFINITY
        }
    }

    fn relax(&mut self, v: VertexId, d: Weight) {
        let i = v as usize;
        if self.epoch[i] != self.cur {
            self.epoch[i] = self.cur;
            self.settled[i] = false;
        }
        self.dist[i] = d;
        self.c.pushes += 1;
        self.heap.push((Reverse(d), v));
    }
}

/// Pre-port `BiDijkstra::distance`.
struct LazyBiDijkstra {
    dist: [Vec<Weight>; 2],
    epoch: [Vec<u32>; 2],
    cur: u32,
    heaps: [BinaryHeap<(Reverse<Weight>, VertexId)>; 2],
    c: HeapCounters,
}

impl LazyBiDijkstra {
    fn new(n: usize) -> Self {
        LazyBiDijkstra {
            dist: [vec![INFINITY; n], vec![INFINITY; n]],
            epoch: [vec![0; n], vec![0; n]],
            cur: 0,
            heaps: [BinaryHeap::new(), BinaryHeap::new()],
            c: HeapCounters::default(),
        }
    }

    fn distance(&mut self, g: &Graph, s: VertexId, t: VertexId) -> Weight {
        if s == t {
            return 0;
        }
        self.cur += 1;
        for h in &mut self.heaps {
            h.clear();
        }
        self.relax(0, s, 0);
        self.relax(1, t, 0);
        let mut best = INFINITY;
        loop {
            let top = |h: &BinaryHeap<(Reverse<Weight>, VertexId)>| {
                h.peek().map(|&(Reverse(d), _)| d).unwrap_or(INFINITY)
            };
            let (f, b) = (top(&self.heaps[0]), top(&self.heaps[1]));
            if f.saturating_add(b) >= best || (f == INFINITY && b == INFINITY) {
                break;
            }
            let side = if f <= b { 0 } else { 1 };
            let Some((Reverse(d), v)) = self.heaps[side].pop() else {
                break;
            };
            self.c.pops += 1;
            if d > self.get(side, v) {
                self.c.stale_skipped += 1;
                continue;
            }
            let other = self.get(1 - side, v);
            if other < INFINITY && d + other < best {
                best = d + other;
            }
            for (u, w) in g.neighbors(v) {
                let nd = d + w;
                if nd < self.get(side, u) {
                    self.relax(side, u, nd);
                }
            }
        }
        best
    }

    fn get(&self, side: usize, v: VertexId) -> Weight {
        if self.epoch[side][v as usize] == self.cur {
            self.dist[side][v as usize]
        } else {
            INFINITY
        }
    }

    fn relax(&mut self, side: usize, v: VertexId, d: Weight) {
        self.epoch[side][v as usize] = self.cur;
        self.dist[side][v as usize] = d;
        self.c.pushes += 1;
        self.heaps[side].push((Reverse(d), v));
    }
}

/// Pre-port `AltAstar::distance` (closed-set skip = lazy stale pop).
struct LazyAstar {
    dist: Vec<Weight>,
    epoch: Vec<u32>,
    closed: Vec<u32>,
    cur: u32,
    heap: BinaryHeap<(Reverse<Weight>, VertexId)>,
    c: HeapCounters,
}

impl LazyAstar {
    fn new(n: usize) -> Self {
        LazyAstar {
            dist: vec![INFINITY; n],
            epoch: vec![0; n],
            closed: vec![0; n],
            cur: 0,
            heap: BinaryHeap::new(),
            c: HeapCounters::default(),
        }
    }

    fn distance(&mut self, g: &Graph, alt: &AltIndex, s: VertexId, t: VertexId) -> Weight {
        if s == t {
            return 0;
        }
        self.cur += 1;
        self.heap.clear();
        self.set(s, 0);
        self.c.pushes += 1;
        self.heap.push((Reverse(alt.lower_bound(s, t)), s));
        while let Some((Reverse(_), v)) = self.heap.pop() {
            self.c.pops += 1;
            if self.closed[v as usize] == self.cur {
                self.c.stale_skipped += 1;
                continue;
            }
            self.closed[v as usize] = self.cur;
            let gv = self.get(v);
            if v == t {
                return gv;
            }
            for (u, w) in g.neighbors(v) {
                let ng = gv + w;
                if ng < self.get(u) {
                    self.set(u, ng);
                    self.c.pushes += 1;
                    self.heap.push((Reverse(ng + alt.lower_bound(u, t)), u));
                }
            }
        }
        INFINITY
    }

    fn get(&self, v: VertexId) -> Weight {
        if self.epoch[v as usize] == self.cur {
            self.dist[v as usize]
        } else {
            INFINITY
        }
    }

    fn set(&mut self, v: VertexId, d: Weight) {
        self.epoch[v as usize] = self.cur;
        self.dist[v as usize] = d;
    }
}

/// Pre-port `ExactNvd::build` sweep (ownership + max radius + adjacency),
/// returning its counters.
fn lazy_nvd_build(g: &Graph, gens: &[VertexId]) -> HeapCounters {
    let n = g.num_vertices();
    let mut owner = vec![u32::MAX; n];
    let mut dist = vec![INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<(Reverse<Weight>, VertexId)> = BinaryHeap::new();
    let mut c = HeapCounters::default();
    for (i, &gv) in gens.iter().enumerate() {
        owner[gv as usize] = i as u32;
        dist[gv as usize] = 0;
        c.pushes += 1;
        heap.push((Reverse(0), gv));
    }
    let mut max_radius = vec![0 as Weight; gens.len()];
    while let Some((Reverse(d), v)) = heap.pop() {
        c.pops += 1;
        if settled[v as usize] || d > dist[v as usize] {
            c.stale_skipped += 1;
            continue;
        }
        settled[v as usize] = true;
        let o = owner[v as usize];
        if d > max_radius[o as usize] {
            max_radius[o as usize] = d;
        }
        for (u, w) in g.neighbors(v) {
            let nd = d + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                owner[u as usize] = o;
                c.pushes += 1;
                heap.push((Reverse(nd), u));
            }
        }
    }
    let mut adjacency = AdjacencyGraph::new(gens.len());
    for e in g.edges() {
        let (ou, ov) = (owner[e.u as usize], owner[e.v as usize]);
        if ou != ov && ou != u32::MAX && ov != u32::MAX {
            adjacency.add(ou, ov);
        }
    }
    std::hint::black_box(&adjacency);
    std::hint::black_box(&max_radius);
    c
}

// ---------------------------------------------------------------------------

fn main() {
    let sizes = sizes();
    header(
        "Distance kernels: module × |V| × layout × heap kernel",
        &["leg", "q/s", "pushes", "pops", "dec-keys", "stale"],
    );
    let mut json_rows = String::new();
    for &n in &sizes {
        let g0 = road_network(&RoadNetworkConfig::new(n, 0x5eed ^ n as u64));
        let pairs0 = query_pairs(g0.num_vertices());
        let gens0 = generators(g0.num_vertices());
        let sources0 = sweep_sources(&pairs0);
        let nv = g0.num_vertices();
        let t0 = Instant::now();
        let alt0 = AltIndex::build(&g0, 8, LandmarkStrategy::Farthest, 0);
        let alt_secs = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let ch0 = ContractionHierarchy::build(&g0, &ChConfig::default());
        eprintln!(
            "|V|={n}: ALT (8 landmarks) {alt_secs:.1}s, CH {:.1}s; {} query pairs, \
             {} NVD generators, {} sweep sources",
            t0.elapsed().as_secs_f64(),
            pairs0.len(),
            gens0.len(),
            sources0.len(),
        );

        // The layout axis: one permutation per memory layout, applied to
        // the graph and every id-holding index; queries translate through
        // the same permutation so all layouts answer identical workloads.
        let layouts = [
            ("original", Relabeling::identity(nv)),
            ("bfs", Relabeling::bfs(&g0)),
            ("hilbert", Relabeling::hilbert(&g0)),
        ];
        for (layout, r) in &layouts {
            let g = r.apply(&g0);
            let alt = alt0.relabel(r);
            let ch = ch0.relabel(r);
            let pairs: Vec<(VertexId, VertexId)> = pairs0
                .iter()
                .map(|&(s, t)| (r.to_local(s), r.to_local(t)))
                .collect();
            let gens: Vec<VertexId> = gens0.iter().map(|&v| r.to_local(v)).collect();
            let sources: Vec<VertexId> = sources0.iter().map(|&v| r.to_local(v)).collect();

            let mut emit = |module: &str, kernel: &str, leg: Leg, extra: String| {
                let c = leg.counters;
                row(
                    format!("{module}/{n}/{layout}/{kernel}"),
                    &[
                        leg.qps,
                        c.pushes as f64,
                        c.pops as f64,
                        c.decrease_keys as f64,
                        c.stale_skipped as f64,
                    ],
                );
                let comma = if json_rows.is_empty() { "" } else { ",\n" };
                write!(
                    json_rows,
                    "{comma}    {{\"module\": \"{module}\", \"vertices\": {n}, \
                     \"layout\": \"{layout}\", \"kernel\": \"{kernel}\", \
                     \"qps\": {:.2}, \"pushes\": {}, \"pops\": {}, \
                     \"decrease_keys\": {}, \"stale_skipped\": {}{extra}}}",
                    leg.qps, c.pushes, c.pops, c.decrease_keys, c.stale_skipped,
                )
                .expect("write to String cannot fail");
            };

            // Dijkstra
            {
                let mut d = Dijkstra::new(g.num_vertices());
                let qps = measure(pairs.len(), || {
                    for &(s, t) in &pairs {
                        std::hint::black_box(d.one_to_one(&g, s, t));
                    }
                });
                let base = d.heap_counters();
                for &(s, t) in &pairs {
                    std::hint::black_box(d.one_to_one(&g, s, t));
                }
                let counters = d.heap_counters().since(base);
                emit("dijkstra", "dary", Leg { qps, counters }, String::new());

                let mut l = LazyDijkstra::new(g.num_vertices());
                let qps = measure(pairs.len(), || {
                    for &(s, t) in &pairs {
                        std::hint::black_box(l.one_to_one(&g, s, t));
                    }
                });
                l.c = HeapCounters::default();
                for &(s, t) in &pairs {
                    std::hint::black_box(l.one_to_one(&g, s, t));
                }
                emit(
                    "dijkstra",
                    "binary",
                    Leg { qps, counters: l.c },
                    String::new(),
                );
            }

            // BiDijkstra
            {
                let mut d = BiDijkstra::new(g.num_vertices());
                let qps = measure(pairs.len(), || {
                    for &(s, t) in &pairs {
                        std::hint::black_box(d.distance(&g, s, t));
                    }
                });
                let base = d.heap_counters();
                for &(s, t) in &pairs {
                    std::hint::black_box(d.distance(&g, s, t));
                }
                let counters = d.heap_counters().since(base);
                emit("bidijkstra", "dary", Leg { qps, counters }, String::new());

                let mut l = LazyBiDijkstra::new(g.num_vertices());
                let qps = measure(pairs.len(), || {
                    for &(s, t) in &pairs {
                        std::hint::black_box(l.distance(&g, s, t));
                    }
                });
                l.c = HeapCounters::default();
                for &(s, t) in &pairs {
                    std::hint::black_box(l.distance(&g, s, t));
                }
                emit(
                    "bidijkstra",
                    "binary",
                    Leg { qps, counters: l.c },
                    String::new(),
                );
            }

            // ALT-A*
            {
                let mut d = AltAstar::new(g.num_vertices());
                let qps = measure(pairs.len(), || {
                    for &(s, t) in &pairs {
                        std::hint::black_box(d.distance(&g, &alt, s, t));
                    }
                });
                let base = d.heap_counters();
                for &(s, t) in &pairs {
                    std::hint::black_box(d.distance(&g, &alt, s, t));
                }
                let counters = d.heap_counters().since(base);
                emit("alt_astar", "dary", Leg { qps, counters }, String::new());

                let mut l = LazyAstar::new(g.num_vertices());
                let qps = measure(pairs.len(), || {
                    for &(s, t) in &pairs {
                        std::hint::black_box(l.distance(&g, &alt, s, t));
                    }
                });
                l.c = HeapCounters::default();
                for &(s, t) in &pairs {
                    std::hint::black_box(l.distance(&g, &alt, s, t));
                }
                emit(
                    "alt_astar",
                    "binary",
                    Leg { qps, counters: l.c },
                    String::new(),
                );
            }

            // Exact-NVD construction (one build = one work item)
            {
                let qps = measure(1, || {
                    std::hint::black_box(ExactNvd::build(&g, &gens));
                });
                let counters = ExactNvd::build(&g, &gens).build_counters();
                emit("nvd_build", "dary", Leg { qps, counters }, String::new());

                let qps = measure(1, || {
                    std::hint::black_box(lazy_nvd_build(&g, &gens));
                });
                let counters = lazy_nvd_build(&g, &gens);
                emit("nvd_build", "binary", Leg { qps, counters }, String::new());
            }

            // One-to-many: per-query Dijkstra vs PHAST/RPHAST sweeps
            // against the generator set (the serving pre-pass shape).
            {
                let mut d = Dijkstra::new(g.num_vertices());
                let qps = measure(sources.len(), || {
                    for &s in &sources {
                        std::hint::black_box(d.one_to_many(&g, s, &gens));
                    }
                });
                let base = d.heap_counters();
                let mut frac = 0.0;
                for &s in &sources {
                    std::hint::black_box(d.one_to_many(&g, s, &gens));
                    frac += d.settled_fraction();
                }
                let counters = d.heap_counters().since(base);
                // The indexed heap never pops stale entries: pops == settled.
                let settled = counters.pops;
                emit(
                    "one_to_many",
                    "per_query_dijkstra",
                    Leg { qps, counters },
                    sweep_extra(settled, gens.len(), frac / sources.len() as f64),
                );

                let mut sw = OneToManySweep::new(&ch);
                let mut out = Vec::new();
                let qps = measure(sources.len(), || {
                    for &s in &sources {
                        sw.one_to_many(s, &gens, &mut out);
                        std::hint::black_box(&out);
                    }
                });
                let h0 = sw.heap_counters();
                let c0 = sw.counters();
                for &s in &sources {
                    sw.one_to_many(s, &gens, &mut out);
                    std::hint::black_box(&out);
                }
                let counters = sw.heap_counters().since(h0);
                let settled = sw.counters().total_settled() - c0.total_settled();
                emit(
                    "one_to_many",
                    "phast",
                    Leg { qps, counters },
                    sweep_extra(
                        settled,
                        gens.len(),
                        settled as f64 / (sources.len() * nv) as f64,
                    ),
                );

                let restricted = RestrictedTargets::new(&ch, &gens);
                let qps = measure(sources.len(), || {
                    for &s in &sources {
                        sw.one_to_many_restricted(s, &restricted, &mut out);
                        std::hint::black_box(&out);
                    }
                });
                let h0 = sw.heap_counters();
                let c0 = sw.counters();
                for &s in &sources {
                    sw.one_to_many_restricted(s, &restricted, &mut out);
                    std::hint::black_box(&out);
                }
                let counters = sw.heap_counters().since(h0);
                let settled = sw.counters().total_settled() - c0.total_settled();
                emit(
                    "one_to_many",
                    "rphast",
                    Leg { qps, counters },
                    sweep_extra(
                        settled,
                        gens.len(),
                        settled as f64 / (sources.len() * nv) as f64,
                    ),
                );
            }
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"table_distance\",\n  \"sizes\": {sizes:?},\n  \
         \"layouts\": [\"original\", \"bfs\", \"hilbert\"],\n  \
         \"hardware_threads\": {},\n  \"rows\": [\n{json_rows}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_distance.json");
    std::fs::write(out_path, &json).expect("failed to write BENCH_distance.json");
    println!("\nwrote {out_path}");
}
