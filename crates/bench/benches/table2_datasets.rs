//! Table 2: road network graphs and keyword dataset statistics.
//!
//! Prints |V|, |E|, |O|, |doc(V)|, |W| for every synthetic scale, plus the
//! Observation-1 diagnostics (predicted vs actual 80th-percentile keyword
//! frequency) that justify the ρ threshold.

use kspin_bench::{build_dataset, SCALES};
use kspin_text::TermId;

fn main() {
    println!("=== Table 2: Road Network Graphs and Keyword Datasets (synthetic stand-ins) ===");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>10} {:>9} {:>16} {:>14}",
        "Region", "|V|", "|E|", "|O|", "|doc(V)|", "|W|", "80th-pct |inv|", "frac |inv|<=5"
    );
    for (name, vertices) in SCALES {
        let ds = build_dataset(name, vertices);
        let mut sizes: Vec<usize> = (0..ds.corpus.num_terms() as TermId)
            .map(|t| ds.corpus.inv_len(t))
            .filter(|&s| s > 0)
            .collect();
        sizes.sort_unstable();
        let p80 = sizes[(sizes.len() as f64 * 0.8) as usize];
        let small = sizes.iter().filter(|&&s| s <= 5).count() as f64 / sizes.len() as f64;
        println!(
            "{:<8} {:>12} {:>12} {:>10} {:>10} {:>9} {:>16} {:>13.1}%",
            ds.name,
            ds.graph.num_vertices(),
            ds.graph.num_edges(),
            ds.corpus.num_objects(),
            ds.corpus.total_occurrences(),
            sizes.len(),
            p80,
            small * 100.0
        );
    }
    println!("\nZipf check (Observation 1): the 80th-percentile inverted list stays tiny and");
    println!("the overwhelming majority of keywords have |inv(t)| <= rho = 5 — exactly the");
    println!("long tail K-SPIN exploits to skip NVD construction.");
}
