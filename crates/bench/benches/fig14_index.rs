//! Figure 14: index size (a) and construction time (b) per technique
//! across dataset scales.
//!
//! Expected shape: "Input" < K-SPIN keyword index < CH < G-tree < ROAD ≪
//! HL/FS-FBS (label-based indexes trade memory for speed); K-SPIN's build
//! parallelizes while the baselines' builds do not.

use std::time::Instant;

use kspin_bench::{build_dataset, full_scale, header, mib, row, SCALES};
use kspin_fsfbs::{FsFbs, FsFbsConfig};
use kspin_gtree::GtreeSpatialKeyword;
use kspin_road::RoadIndex;

fn main() {
    let max_vertices = if full_scale() {
        usize::MAX
    } else {
        SCALES[2].1
    };
    let mut size_rows = Vec::new();
    let mut time_rows = Vec::new();

    for (name, vertices) in SCALES {
        if vertices > max_vertices {
            continue;
        }
        eprintln!("building {name} ({vertices} vertices)…");
        let ds = build_dataset(name, vertices);

        let t0 = Instant::now();
        let alt =
            kspin_alt::AltIndex::build(&ds.graph, 16, kspin_alt::LandmarkStrategy::Farthest, 0);
        let t_alt = t0.elapsed().as_secs_f64();
        let index = kspin_core::KspinIndex::build(
            &ds.graph,
            &ds.corpus,
            &kspin_core::KspinConfig::default(),
        );
        let t_kspin = index.stats().build_seconds + t_alt;

        let t0 = Instant::now();
        let ch = kspin_ch::ContractionHierarchy::build(&ds.graph, &kspin_ch::ChConfig::default());
        let t_ch = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let hl = kspin_hl::HubLabels::build(&ch);
        let t_hl = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let gt = kspin_gtree::GTree::build(&ds.graph, &kspin_gtree::tree::GtreeConfig::default());
        let sk = GtreeSpatialKeyword::build(&gt, &ds.graph, &ds.corpus);
        let t_gt = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let road = RoadIndex::build(&gt, &ds.graph, &ds.corpus);
        let t_road = t0.elapsed().as_secs_f64() + t_gt; // shares the hierarchy build

        let t0 = Instant::now();
        let fsfbs = FsFbs::build(&ds.graph, &ds.corpus, &hl, FsFbsConfig::default());
        let t_fs = t0.elapsed().as_secs_f64() + t_ch + t_hl; // needs the labels

        let input = ds.graph.size_bytes() + ds.corpus.size_bytes();
        size_rows.push((
            name,
            vec![
                mib(input),
                mib(index.size_bytes() + alt.size_bytes()),
                mib(ch.size_bytes()),
                mib(hl.size_bytes()),
                mib(gt.size_bytes() + sk.size_bytes()),
                mib(gt.size_bytes() + road.size_bytes()),
                mib(hl.size_bytes() + fsfbs.size_bytes()),
            ],
        ));
        time_rows.push((name, vec![t_kspin, t_ch, t_ch + t_hl, t_gt, t_road, t_fs]));
    }

    header(
        "Fig 14(a): index sizes (MiB)",
        &[
            "dataset",
            "Input",
            "K-SPIN+ALT",
            "CH",
            "HL",
            "G-tree",
            "ROAD",
            "FS-FBS",
        ],
    );
    for (name, values) in size_rows {
        row(name, &values);
    }

    header(
        "Fig 14(b): construction time (s)",
        &[
            "dataset",
            "K-SPIN+ALT",
            "CH",
            "HL",
            "G-tree",
            "ROAD",
            "FS-FBS",
        ],
    );
    for (name, values) in time_rows {
        row(name, &values);
    }
}
