//! Figure 8: handling updates (§6.2) on the FL-scale network.
//!
//! Three keywords are drawn from the lower / middle / upper thirds of the
//! frequency distribution ("small", "medium", "large" NVDs). For each we:
//!
//! * (a) build the keyword's index over (100−x)% of its objects, lazily
//!   insert the remaining x% ∈ {1, 2, 5}%, and measure single-keyword
//!   BkNN query time — expect a modest rise with x;
//! * (b) measure the average lazy-insertion time and the full rebuild
//!   time — lazy insertion must be orders of magnitude cheaper.

use std::time::Instant;

use kspin::adapters::HlDistance;
use kspin_alt::{AltIndex, LandmarkStrategy};
use kspin_bench::{build_dataset, default_scale, header, row};
use kspin_ch::{ChConfig, ContractionHierarchy};
use kspin_core::{KspinConfig, KspinIndex, NetworkDistance, Op, QueryEngine};
use kspin_hl::HubLabels;
use kspin_text::workload::query_vertices;
use kspin_text::{ObjectId, TermId};

/// Picks a keyword whose inverted list size is closest to `target`.
fn pick_term(ds: &kspin_bench::Dataset, target: usize) -> TermId {
    (0..ds.corpus.num_terms() as TermId)
        .filter(|&t| ds.corpus.inv_len(t) > 8)
        .min_by_key(|&t| ds.corpus.inv_len(t).abs_diff(target))
        .expect("no indexable keyword")
}

fn main() {
    let (name, vertices) = default_scale();
    println!("dataset: {name}-scale ({vertices} vertices)");
    let ds = build_dataset(name, vertices);
    let alt = AltIndex::build(&ds.graph, 16, LandmarkStrategy::Farthest, 0);
    // Updates consult the framework's Network Distance Module (§6.2: d(o,p)
    // "can be conveniently computed using the Network Distance Module
    // already available"); use the fast label oracle as a real deployment
    // would.
    let ch = ContractionHierarchy::build(&ds.graph, &ChConfig::default());
    let hl = HubLabels::build(&ch);
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());

    // Frequency thirds (by the largest inverted list).
    let max_inv = (0..ds.corpus.num_terms() as TermId)
        .map(|t| ds.corpus.inv_len(t))
        .max()
        .unwrap();
    let picks = [
        ("small", pick_term(&ds, max_inv / 20)),
        ("medium", pick_term(&ds, max_inv / 4)),
        ("large", pick_term(&ds, max_inv)),
    ];
    for (label, t) in picks {
        println!("  {label} NVD keyword: |inv| = {}", ds.corpus.inv_len(t));
    }

    let qvs = query_vertices(ds.graph.num_vertices(), 200, 0xfeed);

    header(
        "Fig 8(a): single-keyword BkNN query time after x% lazy insertions (us)",
        &["x%", "small", "medium", "large"],
    );
    let mut rows: Vec<(usize, Vec<f64>)> =
        [0usize, 1, 2, 5].iter().map(|&x| (x, Vec::new())).collect();
    let mut insert_times: Vec<(String, f64, f64)> = Vec::new();

    for (label, t) in picks {
        let inv: Vec<ObjectId> = ds.corpus.inverted(t).iter().map(|p| p.object).collect();
        for (x, series) in rows.iter_mut() {
            let cut = inv.len() * *x / 100;
            let late: std::collections::HashSet<ObjectId> =
                inv[inv.len() - cut..].iter().copied().collect();
            let mut index = KspinIndex::build_filtered(
                &ds.graph,
                &ds.corpus,
                |o| !late.contains(&o),
                &KspinConfig {
                    rho: 5,
                    num_threads: threads,
                    ..KspinConfig::default()
                },
            );
            let mut dist = HlDistance::new(&hl);
            let t0 = Instant::now();
            for &o in &late {
                index.insert_object(
                    &ds.graph,
                    &ds.corpus,
                    o,
                    &mut dist as &mut dyn NetworkDistance,
                );
            }
            let insert_total = t0.elapsed().as_secs_f64();
            if *x == 5 {
                // (b): per-insert cost and rebuild cost at the largest x.
                let t0 = Instant::now();
                index.rebuild_term(&ds.graph, &ds.corpus, t);
                let rebuild = t0.elapsed().as_secs_f64();
                insert_times.push((
                    label.to_string(),
                    insert_total / late.len().max(1) as f64 * 1e3,
                    rebuild * 1e3,
                ));
                // Re-apply lazy state for the query measurement: rebuild is
                // exact too, so measuring post-rebuild would hide the lazy
                // overhead — rebuild again from scratch with lazy inserts.
                index = KspinIndex::build_filtered(
                    &ds.graph,
                    &ds.corpus,
                    |o| !late.contains(&o),
                    &KspinConfig {
                        rho: 5,
                        num_threads: threads,
                        ..KspinConfig::default()
                    },
                );
                let mut dist = HlDistance::new(&hl);
                for &o in &late {
                    index.insert_object(
                        &ds.graph,
                        &ds.corpus,
                        o,
                        &mut dist as &mut dyn NetworkDistance,
                    );
                }
            }
            let mut e = QueryEngine::new(&ds.graph, &ds.corpus, &index, &alt, HlDistance::new(&hl));
            let t0 = Instant::now();
            for &q in &qvs {
                e.bknn(q, 10, &[t], Op::Or);
            }
            series.push(t0.elapsed().as_secs_f64() / qvs.len() as f64 * 1e6);
        }
    }
    for (x, series) in rows {
        row(format!("{x}%"), &series);
    }

    header(
        "Fig 8(b): lazy insertion vs rebuild cost (ms, at x = 5%)",
        &["NVD", "per-insert", "rebuild"],
    );
    for (label, per_insert, rebuild) in insert_times {
        row(label, &[per_insert, rebuild]);
    }
}
