//! Criterion micro-benchmarks of the framework's hot primitives:
//! ALT lower bounds, CH / HL / G-tree point-to-point distances, NVD point
//! location, on-demand heap creation + drain, and the pseudo-lower-bound
//! computation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use kspin_alt::{AltIndex, LandmarkStrategy};
use kspin_ch::{ChConfig, ChQuery, ContractionHierarchy};
use kspin_core::heap::{HeapContext, InvertedHeap};
use kspin_core::{KspinConfig, KspinIndex};
use kspin_graph::generate::{road_network, RoadNetworkConfig};
use kspin_graph::Graph;
use kspin_gtree::tree::GtreeConfig;
use kspin_gtree::{GTree, GtreeDistance};
use kspin_hl::HubLabels;
use kspin_text::generate::{corpus, CorpusConfig};
use kspin_text::{Corpus, TermId};

struct World {
    graph: Graph,
    corpus: Corpus,
    alt: AltIndex,
    index: KspinIndex,
    ch: ContractionHierarchy,
    hl: HubLabels,
    gt: GTree,
    frequent: TermId,
}

fn world() -> World {
    let graph = road_network(&RoadNetworkConfig::new(20_000, 7));
    let (corpus, _) = corpus(&CorpusConfig::new(graph.num_vertices(), 7));
    let alt = AltIndex::build(&graph, 16, LandmarkStrategy::Farthest, 0);
    let index = KspinIndex::build(&graph, &corpus, &KspinConfig::default());
    let ch = ContractionHierarchy::build(&graph, &ChConfig::default());
    let hl = HubLabels::build(&ch);
    let gt = GTree::build(&graph, &GtreeConfig::default());
    let frequent = (0..corpus.num_terms() as TermId)
        .max_by_key(|&t| corpus.inv_len(t))
        .unwrap();
    World {
        graph,
        corpus,
        alt,
        index,
        ch,
        hl,
        gt,
        frequent,
    }
}

fn benches(c: &mut Criterion) {
    let w = world();
    let n = w.graph.num_vertices() as u32;

    c.bench_function("alt_lower_bound", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(2654435761)) % n;
            black_box(w.alt.lower_bound(i, (i * 7 + 13) % n))
        })
    });

    c.bench_function("ch_distance", |b| {
        let mut q = ChQuery::new(&w.ch);
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(2654435761)) % n;
            black_box(q.distance(i, (i * 31 + 7) % n))
        })
    });

    c.bench_function("hl_distance", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(2654435761)) % n;
            black_box(w.hl.distance(i, (i * 31 + 7) % n))
        })
    });

    c.bench_function("gtree_distance_cold", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(2654435761)) % n;
            let mut d = GtreeDistance::new(&w.gt, &w.graph, i);
            black_box(d.distance((i * 31 + 7) % n))
        })
    });

    c.bench_function("gtree_distance_materialized", |b| {
        let mut d = GtreeDistance::new(&w.gt, &w.graph, 11);
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(2654435761)) % n;
            black_box(d.distance(i))
        })
    });

    c.bench_function("heap_create_frequent_keyword", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(2654435761)) % n;
            let ctx = HeapContext::new(&w.graph, &w.corpus, &w.alt, i);
            black_box(InvertedHeap::create(&w.index, w.frequent, &ctx).map(|h| h.len()))
        })
    });

    c.bench_function("heap_extract_ten", |b| {
        let ctx = HeapContext::new(&w.graph, &w.corpus, &w.alt, 1234 % n);
        b.iter(|| {
            let mut h = InvertedHeap::create(&w.index, w.frequent, &ctx).unwrap();
            let mut sum = 0u64;
            for _ in 0..10 {
                match h.extract(&ctx) {
                    Some(c) => sum += c.lower_bound as u64,
                    None => break,
                }
            }
            black_box(sum)
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = benches
}
criterion_main!(micro);
