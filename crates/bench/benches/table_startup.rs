//! Startup table: cold index construction vs flat-binary snapshot load
//! at three scales, reporting wall clock, snapshot size, bytes/vertex
//! and per-section byte breakdown.
//!
//! The cold path is what every process start pays without persistence:
//! ALT landmark sweeps plus the full Keyword Separated Index build
//! (per-keyword NVD sweeps). The snapshot path validates checksums and
//! copies flat arrays into pre-sized `Vec`s — no rebuild, and the
//! reloaded system serves bit-identically (enforced by
//! `tests/snapshot_roundtrip.rs`; this bench re-asserts canonical
//! re-serialization as a cheap proxy).
//!
//! Results go to `BENCH_startup.json` at the workspace root. CI
//! validates the ratchet: snapshot load must be ≥ 20× faster than cold
//! build at every size. `KSPIN_BENCH_SCALE=small` runs the 10k size
//! only (smoke runs).

use std::fmt::Write as _;
use std::time::Instant;

use kspin::prelude::*;
use kspin::snapshot::SnapshotExtras;
use kspin_bench::{build_dataset, header, row};
use kspin_core::snapshot::{format, SnapshotFile};

fn sizes() -> &'static [usize] {
    if std::env::var("KSPIN_BENCH_SCALE").as_deref() == Ok("small") {
        &[10_000]
    } else {
        &[10_000, 30_000, 100_000]
    }
}

fn main() {
    header(
        "Startup: cold build vs snapshot load",
        &[
            "vertices", "build s", "load ms", "speedup", "MiB", "B/vertex",
        ],
    );
    let mut json_rows = String::new();
    for &n in sizes() {
        let ds = build_dataset("startup", n);
        let vertices = ds.graph.num_vertices();
        let config = KspinConfig {
            seed_cache: SeedCacheConfig::enabled(),
            ..KspinConfig::default()
        };

        // Cold path: everything a process start pays without persistence.
        let t0 = Instant::now();
        let system = KspinSystem::build(ds.graph, ds.corpus, ds.vocab, &config);
        let build_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let bytes = system.save_snapshot(&SnapshotExtras::default());
        let save_s = t0.elapsed().as_secs_f64();

        // Warm path: validate-then-copy, best of five passes.
        let mut load_s = f64::INFINITY;
        let mut reloaded = None;
        for _rep in 0..5 {
            let t0 = Instant::now();
            let (sys, extras) = KspinSystem::load_snapshot(&bytes).expect("snapshot loads");
            load_s = load_s.min(t0.elapsed().as_secs_f64());
            reloaded = Some((sys, extras));
        }
        let (reloaded, extras) = reloaded.expect("at least one load pass ran");
        assert_eq!(
            reloaded.save_snapshot(&extras),
            bytes,
            "save -> load -> save must be byte-identical"
        );

        let speedup = build_s / load_s;
        let bytes_per_vertex = bytes.len() as f64 / vertices as f64;
        row(
            format!("{vertices}"),
            &[
                build_s,
                load_s * 1e3,
                speedup,
                bytes.len() as f64 / (1024.0 * 1024.0),
                bytes_per_vertex,
            ],
        );

        let f = SnapshotFile::validate(&bytes).expect("fresh snapshot validates");
        let mut sections = String::new();
        for i in 0..f.num_sections() {
            let s = f.section_at(i).expect("table index in range");
            let comma = if sections.is_empty() { "" } else { ", " };
            write!(
                sections,
                "{comma}{{\"id\": {}, \"name\": \"{}\", \"elems\": {}, \"bytes\": {}}}",
                s.id,
                format::section_name(s.id),
                s.count,
                s.payload.len()
            )
            .expect("write to String cannot fail");
        }
        let comma = if json_rows.is_empty() { "" } else { ",\n" };
        write!(
            json_rows,
            "{comma}    {{\"vertices\": {vertices}, \"objects\": {}, \
             \"build_s\": {build_s:.4}, \"save_s\": {save_s:.4}, \
             \"load_s\": {load_s:.6}, \"speedup\": {speedup:.1}, \
             \"snapshot_bytes\": {}, \"bytes_per_vertex\": {bytes_per_vertex:.1}, \
             \"sections\": [{sections}]}}",
            reloaded.corpus.num_objects(),
            bytes.len(),
        )
        .expect("write to String cannot fail");
    }

    let json = format!(
        "{{\n  \"bench\": \"table_startup\",\n  \"ratchet_min_speedup\": 20.0,\n  \
         \"hardware_threads\": {},\n  \"rows\": [\n{json_rows}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_startup.json");
    std::fs::write(out_path, &json).expect("failed to write BENCH_startup.json");
    println!("\nwrote {out_path}");
}
