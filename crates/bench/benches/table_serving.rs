//! Serving-layer sweep: `BatchExecutor` threads ∈ {1,2,4,8} × heap-seed
//! cache {off,on} on a Zipf-skewed hot-keyword workload (§6 Obs. 1's
//! traffic shape), reporting q/s and cache hit rate per leg.
//!
//! Besides the printed table, the sweep is emitted as machine-readable
//! JSON to `BENCH_serving.json` at the workspace root (CI uploads it as
//! an artifact). Throughput scaling with threads is hardware-bound: on a
//! single-core runner every leg measures the same core and only the cache
//! axis moves.
//!
//! Each leg runs one unmeasured warmup pass (so cache-on legs are measured
//! at their steady-state hit rate, the serving-relevant regime) followed by
//! five measured passes; the best pass is reported to suppress host noise.
//! Cache on/off legs are interleaved per thread count so slow phases of a
//! shared host cannot bias one cache class wholesale.

use std::fmt::Write as _;
use std::time::Instant;

use kspin::adapters::HlDistance;
use kspin_bench::{build_dataset, default_scale, header, row};
use kspin_core::{BatchExecutor, KspinConfig, KspinIndex, Op, SeedCacheConfig, ServingQuery};
use kspin_text::workload::{zipf_queries, ZipfWorkloadConfig};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let (name, vertices) = default_scale();
    let num_queries = if vertices <= 30_000 { 4_000 } else { 8_000 };
    println!(
        "dataset: {name}-scale ({vertices} vertices); Zipf serving workload: \
         {num_queries} queries, k=10, 2 terms, exponent 1.2"
    );
    let ds = build_dataset(name, vertices);
    let t0 = Instant::now();
    let alt = kspin_alt::AltIndex::build(&ds.graph, 16, kspin_alt::LandmarkStrategy::Farthest, 0);
    eprintln!("  ALT built in {:.1}s", t0.elapsed().as_secs_f64());
    // Serving wants the fastest distance module (the paper's point is that
    // it's pluggable): KS-HL, the Table 1 throughput winner.
    let t0 = Instant::now();
    let ch = kspin_ch::ContractionHierarchy::build(&ds.graph, &kspin_ch::ChConfig::default());
    let hl = kspin_hl::HubLabels::build(&ch);
    eprintln!("  CH+HL built in {:.1}s", t0.elapsed().as_secs_f64());
    let index = KspinIndex::build(
        &ds.graph,
        &ds.corpus,
        &KspinConfig {
            seed_cache: SeedCacheConfig::enabled(),
            ..KspinConfig::default()
        },
    );
    eprintln!(
        "  K-SPIN index built in {:.1}s",
        index.stats().build_seconds
    );

    let zipf = zipf_queries(
        &ds.corpus,
        &ZipfWorkloadConfig {
            num_queries,
            terms_per_query: 2,
            zipf_exponent: 1.2,
            hot_vertex_pool: 48,
            seed: 0xbead,
        },
        ds.graph.num_vertices(),
    );
    let queries: Vec<ServingQuery> = zipf
        .iter()
        .enumerate()
        .map(|(i, q)| match i % 2 {
            0 => ServingQuery::Bknn {
                vertex: q.vertex,
                k: 10,
                terms: q.terms.clone(),
                op: Op::Or,
            },
            _ => ServingQuery::TopK {
                vertex: q.vertex,
                k: 10,
                terms: q.terms.clone(),
            },
        })
        .collect();

    header(
        "Serving: threads × seed cache",
        &["threads", "cache", "q/s", "hit rate %", "speedup"],
    );
    let mut json_rows = String::new();
    let mut baseline_qps = [0.0f64; 2];
    for threads in THREADS {
        for (ci, cache_on) in [false, true].into_iter().enumerate() {
            if let Some(cache) = index.seed_cache() {
                cache.clear();
            }
            // `with_exact_threads`: the sweep deliberately measures
            // oversubscription past the hardware clamp of `new`.
            let exec = BatchExecutor::new(&ds.graph, &ds.corpus, &index, &alt, 1)
                .with_exact_threads(threads)
                .with_seed_cache(cache_on);
            // Warmup pass (unmeasured): populates the seed cache so the
            // measured passes see the steady-state hit rate.
            let _ = exec.execute(&queries, || HlDistance::new(&hl));
            let mut qps = 0.0f64;
            let mut out = None;
            for _rep in 0..5 {
                let t0 = Instant::now();
                let rep_out = exec.execute(&queries, || HlDistance::new(&hl));
                let rep_qps = queries.len() as f64 / t0.elapsed().as_secs_f64();
                if rep_qps > qps {
                    qps = rep_qps;
                    out = Some(rep_out);
                }
            }
            let out = out.expect("at least one measured pass ran");
            if threads == 1 {
                baseline_qps[ci] = qps;
            }
            let hit_pct = 100.0 * out.stats.cache_hit_rate();
            row(
                format!("{threads}t/{}", if cache_on { "on" } else { "off" }),
                &[threads as f64, qps, hit_pct, qps / baseline_qps[ci]],
            );
            eprintln!("    stats: {}", out.stats);
            let _comma = if json_rows.is_empty() { "" } else { ",\n" };
            write!(
                json_rows,
                "{_comma}    {{\"threads\": {threads}, \"cache\": {cache_on}, \
                 \"qps\": {qps:.1}, \"hit_rate\": {:.4}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \"seed_reuse\": {}, \
                 \"heap_pushes\": {}, \"heap_pops\": {}, \
                 \"heap_decrease_keys\": {}, \"heap_stale_skipped\": {}, \
                 \"heap_grows\": {}, \"grows_per_query\": {:.4}, \
                 \"speedup_vs_1t\": {:.3}}}",
                out.stats.cache_hit_rate(),
                out.stats.cache_hits,
                out.stats.cache_misses,
                out.stats.seed_reuse,
                out.stats.heap_pushes,
                out.stats.heap_pops,
                out.stats.heap_decrease_keys,
                out.stats.heap_stale_skipped,
                out.stats.heap_grows,
                out.stats.heap_grows as f64 / queries.len() as f64,
                qps / baseline_qps[ci],
            )
            .expect("write to String cannot fail");
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"table_serving\",\n  \"dataset\": \"{name}\",\n  \
         \"vertices\": {vertices},\n  \"num_queries\": {},\n  \
         \"hardware_threads\": {},\n  \"rows\": [\n{json_rows}\n  ]\n}}\n",
        queries.len(),
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(out_path, &json).expect("failed to write BENCH_serving.json");
    println!("\nwrote {out_path}");
}
