//! Figure 15: the §7.4 apples-to-apples deep dive — top-k query time of
//! KS-GT (K-SPIN using G-tree's index as its distance module), Gtree-Opt
//! (per-keyword occurrence lists) and the original G-tree algorithm, all on
//! the *same* G-tree index, varying k.
//!
//! Expected shape: Gtree-Opt improves marginally over G-tree (it only saves
//! pseudo-document lookups); KS-GT wins by a wide margin despite paying for
//! lower bounds and heap maintenance on top.

use kspin::adapters::GtreeNetworkDistance;
use kspin_bench::{
    build_dataset, build_oracles, default_scale, header, row, std_queries, time_per_query,
};
use kspin_core::QueryEngine;
use kspin_gtree::{GtreeSpatialKeyword, OccurrenceMode};

fn main() {
    let (name, vertices) = default_scale();
    println!("dataset: {name}-scale ({vertices} vertices); 2 terms; times in microseconds");
    let ds = build_dataset(name, vertices);
    let o = build_oracles(&ds);
    let sk = GtreeSpatialKeyword::build(&o.gt, &ds.graph, &ds.corpus);

    header(
        "Fig 15: top-k query time on the shared G-tree index",
        &["k", "KS-GT", "Gtree-Opt", "G-tree"],
    );
    for k in [1usize, 5, 10, 25, 50] {
        let qs = std_queries(&ds, 2);
        let mut e = QueryEngine::new(
            &ds.graph,
            &ds.corpus,
            &o.index,
            &o.alt,
            GtreeNetworkDistance::new(&o.gt, &ds.graph),
        );
        let t_ksgt = time_per_query(&qs, |q| {
            e.top_k(q.vertex, k, &q.terms);
        });
        let t_opt = time_per_query(&qs, |q| {
            sk.top_k(q.vertex, k, &q.terms, OccurrenceMode::PerKeyword);
        });
        let t_gtree = time_per_query(&qs, |q| {
            sk.top_k(q.vertex, k, &q.terms, OccurrenceMode::Aggregated);
        });
        row(k, &[t_ksgt, t_opt, t_gtree]);
    }
}
