//! Figure 9: top-k query time, varying k (a) and the number of query
//! keywords (b), on the largest in-budget dataset.
//!
//! Methods: KS-CH, KS-HL (stands in for KS-PHL), KS-GT, G-tree, ROAD.
//! Expected shape: KS-HL ≪ KS-CH < KS-GT ≤ G-tree < ROAD, with the gap to
//! the aggregated methods growing as k shrinks relevance of far groups.

use kspin::adapters::{ChDistance, GtreeNetworkDistance, HlDistance};
use kspin_bench::{
    build_dataset, build_oracles, default_scale, header, row, std_queries, time_per_query,
};
use kspin_core::QueryEngine;
use kspin_gtree::{GtreeSpatialKeyword, OccurrenceMode};
use kspin_road::RoadIndex;

fn main() {
    let (name, vertices) = default_scale();
    println!("dataset: {name}-scale ({vertices} vertices); all query times in microseconds");
    let ds = build_dataset(name, vertices);
    let o = build_oracles(&ds);
    let sk = GtreeSpatialKeyword::build(&o.gt, &ds.graph, &ds.corpus);
    let road = RoadIndex::build(&o.gt, &ds.graph, &ds.corpus);

    let run = |k: usize, num_terms: usize| -> Vec<f64> {
        let qs = std_queries(&ds, num_terms);
        let mut e_ch = QueryEngine::new(
            &ds.graph,
            &ds.corpus,
            &o.index,
            &o.alt,
            ChDistance::new(&o.ch),
        );
        let t_ch = time_per_query(&qs, |q| {
            e_ch.top_k(q.vertex, k, &q.terms);
        });
        let mut e_hl = QueryEngine::new(
            &ds.graph,
            &ds.corpus,
            &o.index,
            &o.alt,
            HlDistance::new(&o.hl),
        );
        let t_hl = time_per_query(&qs, |q| {
            e_hl.top_k(q.vertex, k, &q.terms);
        });
        let mut e_gt = QueryEngine::new(
            &ds.graph,
            &ds.corpus,
            &o.index,
            &o.alt,
            GtreeNetworkDistance::new(&o.gt, &ds.graph),
        );
        let t_ksgt = time_per_query(&qs, |q| {
            e_gt.top_k(q.vertex, k, &q.terms);
        });
        let t_gtree = time_per_query(&qs, |q| {
            sk.top_k(q.vertex, k, &q.terms, OccurrenceMode::Aggregated);
        });
        let t_road = time_per_query(&qs, |q| {
            road.top_k(q.vertex, k, &q.terms);
        });
        vec![t_hl, t_ch, t_ksgt, t_gtree, t_road]
    };

    header(
        "Fig 9(a): top-k query time vs k (2 terms)",
        &["k", "KS-HL", "KS-CH", "KS-GT", "G-tree", "ROAD"],
    );
    for k in [1usize, 5, 10, 25, 50] {
        row(k, &run(k, 2));
    }

    header(
        "Fig 9(b): top-k query time vs #terms (k=10)",
        &["#terms", "KS-HL", "KS-CH", "KS-GT", "G-tree", "ROAD"],
    );
    for terms in 1..=6usize {
        row(terms, &run(10, terms));
    }
}
