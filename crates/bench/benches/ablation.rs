//! Ablation study of K-SPIN's design choices (DESIGN.md §1):
//!
//! 1. **Lower-bound oracle** — ALT with 16 farthest landmarks (the paper's
//!    choice) vs 4 landmarks vs random landmarks vs the trivial zero bound.
//!    Looser bounds keep results exact but cost extra network distances.
//! 2. **Lazy NVD-backed heaps vs eager full-list heaps** — `ρ = ∞` makes
//!    every keyword a plain list, i.e. the "simple approach" §5 dismisses
//!    (populate the whole inverted heap per query). Expect eager to pay
//!    with keyword frequency.

use kspin::adapters::ChDistance;
use kspin_alt::{AltIndex, LandmarkStrategy};
use kspin_bench::{build_dataset, default_scale, header, row, std_queries, time_per_query};
use kspin_ch::{ChConfig, ContractionHierarchy};
use kspin_core::modules::ZeroLowerBound;
use kspin_core::{KspinConfig, KspinIndex, LowerBound, Op, QueryEngine};

fn main() {
    let (name, vertices) = default_scale();
    println!("dataset: {name}-scale ({vertices} vertices); k=10, 2 terms");
    let ds = build_dataset(name, vertices);
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let index = KspinIndex::build(
        &ds.graph,
        &ds.corpus,
        &KspinConfig {
            rho: 5,
            num_threads: threads,
            ..KspinConfig::default()
        },
    );
    let qs = std_queries(&ds, 2);
    let ch = ContractionHierarchy::build(&ds.graph, &ChConfig::default());

    // ---- 1. lower-bound oracle -----------------------------------------
    header(
        "Ablation 1: lower-bound oracle (k=10, 2 terms)",
        &[
            "oracle",
            "top-k (us)",
            "BkNN (us)",
            "dists/query",
            "LBs/query",
        ],
    );
    let alt16 = AltIndex::build(&ds.graph, 16, LandmarkStrategy::Farthest, 0);
    let alt4 = AltIndex::build(&ds.graph, 4, LandmarkStrategy::Farthest, 0);
    let rand16 = AltIndex::build(&ds.graph, 16, LandmarkStrategy::Random, 0);
    let zero = ZeroLowerBound;
    let oracles: [(&str, &dyn LowerBound); 4] = [
        ("ALT-16 farthest", &alt16),
        ("ALT-4 farthest", &alt4),
        ("ALT-16 random", &rand16),
        ("zero bound", &zero),
    ];
    for (label, lb) in oracles {
        let mut e = QueryEngine::new(&ds.graph, &ds.corpus, &index, lb, ChDistance::new(&ch));
        e.reset_stats();
        let t_topk = time_per_query(&qs, |q| {
            e.top_k(q.vertex, 10, &q.terms);
        });
        let t_bknn = time_per_query(&qs, |q| {
            e.bknn(q.vertex, 10, &q.terms, Op::Or);
        });
        let s = e.stats();
        let per = (2 * qs.len()) as f64;
        row(
            label,
            &[
                t_topk,
                t_bknn,
                s.dist_computations as f64 / per,
                s.lb_computations as f64 / per,
            ],
        );
    }

    // ---- 2. lazy vs eager heaps -----------------------------------------
    header(
        "Ablation 2: lazy NVD heaps (rho=5) vs eager full-list heaps (rho=inf)",
        &["variant", "top-k (us)", "BkNN (us)", "LBs/query"],
    );
    let eager = KspinIndex::build(
        &ds.graph,
        &ds.corpus,
        &KspinConfig {
            rho: usize::MAX,
            num_threads: threads,
            ..KspinConfig::default()
        },
    );
    for (label, idx) in [("lazy (NVD)", &index), ("eager (lists)", &eager)] {
        let mut e = QueryEngine::new(&ds.graph, &ds.corpus, idx, &alt16, ChDistance::new(&ch));
        e.reset_stats();
        let t_topk = time_per_query(&qs, |q| {
            e.top_k(q.vertex, 10, &q.terms);
        });
        let t_bknn = time_per_query(&qs, |q| {
            e.bknn(q.vertex, 10, &q.terms, Op::Or);
        });
        let s = e.stats();
        row(
            label,
            &[
                t_topk,
                t_bknn,
                s.lb_computations as f64 / (2 * qs.len()) as f64,
            ],
        );
    }
}
