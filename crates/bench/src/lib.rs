//! Shared scaffolding for the table/figure benches.
//!
//! Every bench target regenerates one table or figure of the paper's
//! evaluation (§7): it builds the synthetic stand-ins for the paper's
//! datasets (Table 2 ratios; see DESIGN.md §3), runs the §7.1 workload, and
//! prints the same rows/series the paper reports. Absolute numbers differ
//! from the paper's AWS testbed; the *shape* is what EXPERIMENTS.md checks.
//!
//! Scales default to CI-friendly sizes; set `KSPIN_BENCH_SCALE=full` for
//! the larger sweep.

use std::time::Instant;

use kspin_graph::generate::{road_network, RoadNetworkConfig};
use kspin_graph::Graph;
use kspin_text::generate::{corpus, CorpusConfig};
use kspin_text::workload::{queries, Query, WorkloadConfig};
use kspin_text::{Corpus, Vocabulary};

/// One synthetic dataset standing in for a Table 2 road network.
pub struct Dataset {
    pub name: &'static str,
    pub graph: Graph,
    pub corpus: Corpus,
    pub vocab: Vocabulary,
}

/// The scale ladder standing in for DE / ME / FL / E (Table 2). The US
/// scale (24M vertices) is out of wall-clock scope — see DESIGN.md §3.
pub const SCALES: [(&str, usize); 4] = [
    ("DE", 10_000),
    ("ME", 30_000),
    ("FL", 80_000),
    ("E", 160_000),
];

/// Whether the full-size sweep was requested via `KSPIN_BENCH_SCALE=full`.
pub fn full_scale() -> bool {
    std::env::var("KSPIN_BENCH_SCALE").is_ok_and(|v| v == "full")
}

/// The scale used by single-dataset benches: FL-like normally ("the
/// largest dataset" stand-in that keeps `cargo bench` under control),
/// E-like under `KSPIN_BENCH_SCALE=full`, ME-like under
/// `KSPIN_BENCH_SCALE=small` (smoke runs).
pub fn default_scale() -> (&'static str, usize) {
    match std::env::var("KSPIN_BENCH_SCALE").as_deref() {
        Ok("full") => SCALES[3],
        Ok("small") => SCALES[1],
        _ => SCALES[2],
    }
}

/// Builds a dataset at `vertices` scale with Table 2-like keyword ratios.
pub fn build_dataset(name: &'static str, vertices: usize) -> Dataset {
    let graph = road_network(&RoadNetworkConfig::new(vertices, 0x5eed ^ vertices as u64));
    let (corpus, vocab) = corpus(&CorpusConfig::new(
        graph.num_vertices(),
        0xc0de ^ vertices as u64,
    ));
    Dataset {
        name,
        graph,
        corpus,
        vocab,
    }
}

/// The §7.1 workload: correlated keyword vectors from the five seed terms,
/// crossed with uniform query vertices. Scaled-down counts keep each bench
/// in seconds; the structure matches the paper exactly.
pub fn std_queries(ds: &Dataset, num_terms: usize) -> Vec<Query> {
    let cfg = WorkloadConfig {
        seed_terms: vec![0, 1, 2, 3, 4],
        objects_per_term: 4,
        vertices_per_vector: 5,
        seed: 0xbead,
    };
    queries(&ds.corpus, &cfg, ds.graph.num_vertices(), num_terms)
}

/// Times `f` over all queries; returns average microseconds per query.
pub fn time_per_query<F: FnMut(&Query)>(qs: &[Query], mut f: F) -> f64 {
    let t0 = Instant::now();
    for q in qs {
        f(q);
    }
    t0.elapsed().as_secs_f64() / qs.len() as f64 * 1e6
}

/// Queries per second from a per-query microsecond figure.
pub fn qps(us_per_query: f64) -> f64 {
    1e6 / us_per_query
}

/// Prints a figure/table header in a uniform style.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    print!("{:<14}", cols[0]);
    for c in &cols[1..] {
        print!(" {c:>14}");
    }
    println!();
}

/// Prints one row: a label and a series of values.
pub fn row(label: impl std::fmt::Display, values: &[f64]) {
    print!("{label:<14}");
    for v in values {
        if *v < 0.0 {
            print!(" {:>14}", "x"); // "not supported / not built"
        } else if *v >= 1000.0 {
            print!(" {v:>14.0}");
        } else {
            print!(" {v:>14.2}");
        }
    }
    println!();
}

/// Formats bytes as MiB.
pub fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// All owned index structures a comparison bench needs (the borrowing
/// layers — `GtreeSpatialKeyword`, `RoadIndex`, `FsFbs`, engines — are
/// created per bench on top of these).
pub struct Oracles {
    pub alt: kspin_alt::AltIndex,
    pub index: kspin_core::KspinIndex,
    pub ch: kspin_ch::ContractionHierarchy,
    pub hl: kspin_hl::HubLabels,
    pub gt: kspin_gtree::GTree,
}

/// Builds every distance oracle and the K-SPIN index for `ds`, printing
/// per-structure build times.
pub fn build_oracles(ds: &Dataset) -> Oracles {
    let t0 = Instant::now();
    let alt = kspin_alt::AltIndex::build(&ds.graph, 16, kspin_alt::LandmarkStrategy::Farthest, 0);
    eprintln!("  ALT built in {:.1}s", t0.elapsed().as_secs_f64());
    let index =
        kspin_core::KspinIndex::build(&ds.graph, &ds.corpus, &kspin_core::KspinConfig::default());
    eprintln!(
        "  K-SPIN index built in {:.1}s",
        index.stats().build_seconds
    );
    let t0 = Instant::now();
    let ch = kspin_ch::ContractionHierarchy::build(&ds.graph, &kspin_ch::ChConfig::default());
    eprintln!("  CH built in {:.1}s", t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let hl = kspin_hl::HubLabels::build(&ch);
    eprintln!("  HL built in {:.1}s", t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let gt = kspin_gtree::GTree::build(&ds.graph, &kspin_gtree::tree::GtreeConfig::default());
    eprintln!("  G-tree built in {:.1}s", t0.elapsed().as_secs_f64());
    Oracles {
        alt,
        index,
        ch,
        hl,
        gt,
    }
}
