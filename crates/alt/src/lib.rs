//! ALT landmark index (Goldberg & Harrelson [15]).
//!
//! K-SPIN's Lower Bounding Module (§3, module 1) needs a cheap, admissible
//! lower bound on network distance between arbitrary vertex pairs. ALT
//! pre-computes exact distances from a small set of *landmark* vertices to
//! every vertex; the triangle inequality then gives
//! `|d(L,u) − d(L,v)| ≤ d(u,v)` for every landmark `L`, and the maximum over
//! landmarks is the reported bound. The paper uses m = 16 landmarks (§5.1),
//! chosen by farthest selection as in [16].

#![deny(missing_docs)]

pub mod astar;

pub use astar::AltAstar;

use kspin_graph::{Dijkstra, Graph, VertexId, Weight, INFINITY};

/// Landmark selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkStrategy {
    /// Greedy farthest-point selection: each landmark maximizes the minimum
    /// network distance to those already chosen. The road-network default.
    Farthest,
    /// Uniformly random vertices — cheaper to select, looser bounds. Used
    /// by the ablation bench.
    Random,
}

/// The ALT index: `m` landmarks with full distance vectors.
///
/// The distance table is one flat row-major array (`m × n`, stride `n`):
/// one allocation, cache-dense row scans, and the exact layout the
/// snapshot format serializes verbatim.
#[derive(Debug, Clone)]
pub struct AltIndex {
    landmarks: Vec<VertexId>,
    num_vertices: usize,
    /// `dist[l * n + v]` = network distance from landmark `l` to vertex
    /// `v` (symmetric on undirected graphs).
    dist: Vec<Weight>,
}

impl AltIndex {
    /// Builds an index with `num_landmarks` landmarks.
    ///
    /// Farthest selection seeds from a deterministic function of `seed`, so
    /// builds are reproducible.
    ///
    /// # Panics
    /// If the graph is empty or `num_landmarks` is zero.
    pub fn build(
        graph: &Graph,
        num_landmarks: usize,
        strategy: LandmarkStrategy,
        seed: u64,
    ) -> Self {
        let n = graph.num_vertices();
        assert!(n > 0, "cannot build ALT over an empty graph");
        assert!(num_landmarks > 0, "need at least one landmark");
        let m = num_landmarks.min(n);
        let mut dijkstra = Dijkstra::new(n);
        let mut landmarks = Vec::with_capacity(m);
        let mut dist = Vec::with_capacity(m * n);

        match strategy {
            LandmarkStrategy::Farthest => {
                // min_dist[v] = distance from v to the nearest chosen landmark.
                let mut min_dist = vec![INFINITY; n];
                let mut next = (seed % n as u64) as VertexId;
                for _ in 0..m {
                    landmarks.push(next);
                    let d = Self::distances_from(graph, &mut dijkstra, next);
                    let mut best = next;
                    let mut best_d = 0;
                    for v in 0..n {
                        let dv = d[v].min(min_dist[v]);
                        min_dist[v] = dv;
                        // Ignore unreachable vertices when picking the next
                        // landmark (they would otherwise absorb every pick).
                        if dv > best_d && dv < INFINITY {
                            best_d = dv;
                            best = v as VertexId;
                        }
                    }
                    dist.extend_from_slice(&d);
                    next = best;
                }
            }
            LandmarkStrategy::Random => {
                let mut state = seed | 1;
                let mut chosen = std::collections::HashSet::new();
                while landmarks.len() < m {
                    // xorshift64* — avoids a rand dependency in the hot path.
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    let v =
                        ((state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) % n as u64) as VertexId;
                    if chosen.insert(v) {
                        landmarks.push(v);
                        dist.extend_from_slice(&Self::distances_from(graph, &mut dijkstra, v));
                    }
                }
            }
        }
        AltIndex {
            landmarks,
            num_vertices: n,
            dist,
        }
    }

    fn distances_from(graph: &Graph, dijkstra: &mut Dijkstra, l: VertexId) -> Vec<Weight> {
        dijkstra.sssp(graph, l);
        let space = dijkstra.space();
        (0..graph.num_vertices() as VertexId)
            .map(|v| space.distance(v).unwrap_or(INFINITY))
            .collect()
    }

    /// The chosen landmark vertices.
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// Translates the index onto a renumbered graph: landmark ids map
    /// through `r` and every per-landmark distance row is permuted to the
    /// new vertex indexing. Since distances are label-independent, every
    /// lower bound — and therefore every query that consumes them — is
    /// bitwise identical to the unpermuted index. Build-time only.
    pub fn relabel(&self, r: &kspin_graph::Relabeling) -> AltIndex {
        let n = self.num_vertices;
        let mut dist = Vec::with_capacity(self.dist.len());
        for row in self.dist.chunks_exact(n.max(1)) {
            dist.extend_from_slice(&r.permute_table(row));
        }
        AltIndex {
            landmarks: self.landmarks.iter().map(|&l| r.to_local(l)).collect(),
            num_vertices: n,
            dist,
        }
    }

    /// Admissible lower bound on `d(u, v)`:
    /// `max_L |d(L,u) − d(L,v)|`. O(m) with m a small constant (§5.1).
    #[inline]
    pub fn lower_bound(&self, u: VertexId, v: VertexId) -> Weight {
        if u == v || self.num_vertices == 0 {
            return 0;
        }
        let mut best: Weight = 0;
        for d in self.dist.chunks_exact(self.num_vertices) {
            // PANIC-OK: each landmark row is sized n; u, v are vertex ids < n.
            let (du, dv) = (d[u as usize], d[v as usize]);
            // A landmark that cannot reach either endpoint tells us nothing.
            if du >= INFINITY || dv >= INFINITY {
                continue;
            }
            let bound = du.abs_diff(dv);
            if bound > best {
                best = bound;
            }
        }
        best
    }

    /// Index size in bytes (the m × n distance table dominates).
    pub fn size_bytes(&self) -> usize {
        self.dist.len() * 4 + self.landmarks.len() * 4
    }

    /// Borrowed views of the flat storage — `(landmarks, num_vertices,
    /// dist)` with `dist` row-major at stride `num_vertices` — the
    /// snapshot serialization boundary.
    pub fn flat_parts(&self) -> (&[VertexId], usize, &[Weight]) {
        (&self.landmarks, self.num_vertices, &self.dist)
    }

    /// Reassembles an index from its flat arrays, verbatim.
    ///
    /// # Errors
    /// When the table shape is inconsistent (`dist` is not
    /// `landmarks × num_vertices`) or a landmark id is out of range.
    pub fn from_flat_parts(
        landmarks: Vec<VertexId>,
        num_vertices: usize,
        dist: Vec<Weight>,
    ) -> Result<AltIndex, String> {
        let expect = landmarks.len().checked_mul(num_vertices);
        if expect != Some(dist.len()) {
            return Err(format!(
                "distance table holds {} entries for {} landmarks × {num_vertices} vertices",
                dist.len(),
                landmarks.len()
            ));
        }
        if let Some(&bad) = landmarks.iter().find(|&&l| l as usize >= num_vertices) {
            return Err(format!("landmark {bad} out of range {num_vertices}"));
        }
        Ok(AltIndex {
            landmarks,
            num_vertices,
            dist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::GraphBuilder;

    fn small_network() -> Graph {
        road_network(&RoadNetworkConfig::new(500, 17))
    }

    #[test]
    fn lower_bound_is_admissible_everywhere() {
        let g = small_network();
        let alt = AltIndex::build(&g, 8, LandmarkStrategy::Farthest, 3);
        let mut d = Dijkstra::new(g.num_vertices());
        for s in [0u32, 13, 99, 250] {
            d.sssp(&g, s);
            let space = d.space();
            for v in 0..g.num_vertices() as VertexId {
                let exact = space.distance(v).unwrap();
                let lb = alt.lower_bound(s, v);
                assert!(lb <= exact, "lb {lb} > exact {exact} for ({s}, {v})");
            }
        }
    }

    #[test]
    fn bound_is_exact_to_a_landmark() {
        // For u = L, |d(L,L) − d(L,v)| = d(L,v), so the bound to a landmark
        // itself is exact.
        let g = small_network();
        let alt = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 3);
        let l = alt.landmarks()[0];
        let mut d = Dijkstra::new(g.num_vertices());
        d.sssp(&g, l);
        let space = d.space();
        for v in (0..g.num_vertices() as VertexId).step_by(37) {
            assert_eq!(alt.lower_bound(l, v), space.distance(v).unwrap());
        }
    }

    #[test]
    fn zero_on_identical_vertices_and_symmetric() {
        let g = small_network();
        let alt = AltIndex::build(&g, 6, LandmarkStrategy::Farthest, 9);
        assert_eq!(alt.lower_bound(42, 42), 0);
        for (u, v) in [(0u32, 100u32), (5, 250), (33, 34)] {
            assert_eq!(alt.lower_bound(u, v), alt.lower_bound(v, u));
        }
    }

    #[test]
    fn farthest_is_competitive_with_random() {
        let g = small_network();
        let far = AltIndex::build(&g, 8, LandmarkStrategy::Farthest, 3);
        let rnd = AltIndex::build(&g, 8, LandmarkStrategy::Random, 3);
        let mut sum_far = 0u64;
        let mut sum_rnd = 0u64;
        for u in (0..g.num_vertices() as VertexId).step_by(29) {
            for v in (0..g.num_vertices() as VertexId).step_by(41) {
                sum_far += far.lower_bound(u, v) as u64;
                sum_rnd += rnd.lower_bound(u, v) as u64;
            }
        }
        assert!(
            sum_far * 10 >= sum_rnd * 9,
            "farthest bounds unexpectedly loose: {sum_far} vs {sum_rnd}"
        );
    }

    #[test]
    fn landmark_count_is_clamped_to_graph_size() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let g = b.build();
        let alt = AltIndex::build(&g, 16, LandmarkStrategy::Farthest, 0);
        assert_eq!(alt.landmarks().len(), 3);
        assert_eq!(alt.lower_bound(0, 2), 2);
    }

    #[test]
    fn disconnected_components_dont_poison_bounds() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 5);
        b.add_edge(2, 3, 7);
        let g = b.build();
        let alt = AltIndex::build(&g, 2, LandmarkStrategy::Farthest, 0);
        // Bound between components must not be a wild wrapped value; any
        // finite value is admissible because the true distance is infinite.
        let lb = alt.lower_bound(0, 2);
        assert!(lb < INFINITY);
        // Within-component bounds still work.
        assert!(alt.lower_bound(0, 1) <= 5);
    }

    #[test]
    fn size_accounts_for_distance_tables() {
        let g = small_network();
        let alt = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 1);
        assert!(alt.size_bytes() >= 4 * g.num_vertices() * 4);
    }

    #[test]
    fn relabel_preserves_bounds_bitwise() {
        let g = small_network();
        let alt = AltIndex::build(&g, 6, LandmarkStrategy::Farthest, 3);
        let r = kspin_graph::Relabeling::hilbert(&g);
        let relabeled = alt.relabel(&r);
        for u in (0..g.num_vertices() as VertexId).step_by(13) {
            for v in (0..g.num_vertices() as VertexId).step_by(17) {
                assert_eq!(
                    alt.lower_bound(u, v),
                    relabeled.lower_bound(r.to_local(u), r.to_local(v)),
                    "bound changed under relabeling for ({u}, {v})"
                );
            }
        }
        for (&old, &new) in alt.landmarks().iter().zip(relabeled.landmarks()) {
            assert_eq!(r.to_local(old), new);
        }
    }

    #[test]
    fn builds_reproducibly() {
        let g = small_network();
        let a = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 5);
        let b = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 5);
        assert_eq!(a.landmarks(), b.landmarks());
    }
}
