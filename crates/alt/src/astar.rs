//! A* point-to-point search guided by ALT lower bounds — the search
//! algorithm the ALT index was originally designed for [15].
//!
//! The potential `π(v) = lower_bound(v, t)` is *consistent* (it derives
//! from the triangle inequality over landmark distances), so A* with
//! reduced costs `w(u,v) − π(u) + π(v)` settles each vertex once and
//! returns exact distances while exploring a cone toward the target
//! instead of a full Dijkstra ball.

use kspin_graph::dheap::{DaryHeap, HeapCounters};
use kspin_graph::{Graph, VertexId, Weight, INFINITY};

use crate::AltIndex;

/// Reusable ALT-A* search state.
pub struct AltAstar {
    dist: Vec<Weight>,
    epoch: Vec<u32>,
    closed: Vec<u32>,
    cur: u32,
    heap: DaryHeap,
    /// Vertices settled by the last query (exploration-effort metric).
    settled: usize,
}

impl AltAstar {
    /// Creates state for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        AltAstar {
            dist: vec![INFINITY; n],
            epoch: vec![0; n],
            closed: vec![0; n],
            cur: 0,
            heap: DaryHeap::new(n),
            settled: 0,
        }
    }

    /// Exact distance from `s` to `t`, guided by `alt`'s potentials.
    pub fn distance(&mut self, graph: &Graph, alt: &AltIndex, s: VertexId, t: VertexId) -> Weight {
        if s == t {
            return 0;
        }
        self.cur = self.cur.wrapping_add(1);
        if self.cur == 0 {
            self.epoch.iter_mut().for_each(|e| *e = u32::MAX);
            self.closed.iter_mut().for_each(|e| *e = u32::MAX);
            self.cur = 1;
        }
        self.heap.clear();
        self.settled = 0;
        // Heap keys are f = g + π(v); g values live in `dist`.
        self.set(s, 0);
        self.heap.push(alt.lower_bound(s, t), s);
        while let Some((_, v)) = self.heap.pop() {
            // The potential is consistent, so the first (and only) pop of
            // a vertex carries its final g: improvements to an open vertex
            // are decrease-keys, never duplicate (stale) entries.
            debug_assert!(self.closed[v as usize] != self.cur);
            // PANIC-OK: every heap item is a vertex id < n; arrays sized n at new().
            self.closed[v as usize] = self.cur;
            let g = self.get(v);
            self.settled += 1;
            if v == t {
                return g;
            }
            for (u, w) in graph.neighbors(v) {
                let ng = g + w;
                if ng < self.get(u) {
                    self.set(u, ng);
                    self.heap.insert_or_decrease(ng + alt.lower_bound(u, t), u);
                }
            }
        }
        INFINITY
    }

    /// Vertices settled by the last query.
    pub fn last_settled(&self) -> usize {
        self.settled
    }

    /// Cumulative heap-kernel counters across every query this instance
    /// has run.
    pub fn heap_counters(&self) -> HeapCounters {
        self.heap.counters()
    }

    #[inline]
    fn get(&self, v: VertexId) -> Weight {
        // PANIC-OK: v is a vertex id < n from the CSR graph; arrays sized n.
        if self.epoch[v as usize] == self.cur {
            self.dist[v as usize] // PANIC-OK: same bound as the epoch read.
        } else {
            INFINITY
        }
    }

    #[inline]
    fn set(&mut self, v: VertexId, d: Weight) {
        // PANIC-OK: v is a vertex id < n from the CSR graph; arrays sized n.
        self.epoch[v as usize] = self.cur;
        self.dist[v as usize] = d; // PANIC-OK: same bound as above.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LandmarkStrategy;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::Dijkstra;

    #[test]
    fn exact_on_road_network() {
        let g = road_network(&RoadNetworkConfig::new(600, 91));
        let alt = AltIndex::build(&g, 8, LandmarkStrategy::Farthest, 1);
        let mut astar = AltAstar::new(g.num_vertices());
        let mut dij = Dijkstra::new(g.num_vertices());
        for s in [0u32, 99, 444] {
            dij.sssp(&g, s);
            for t in (0..g.num_vertices() as VertexId).step_by(41) {
                let want = dij.space().distance(t).unwrap();
                assert_eq!(astar.distance(&g, &alt, s, t), want, "({s},{t})");
            }
        }
    }

    #[test]
    fn explores_less_than_dijkstra() {
        let g = road_network(&RoadNetworkConfig::new(3000, 92));
        let alt = AltIndex::build(&g, 16, LandmarkStrategy::Farthest, 1);
        let mut astar = AltAstar::new(g.num_vertices());
        // A long query: A* should settle well under the full vertex count.
        let t = g.num_vertices() as VertexId - 1;
        let _ = astar.distance(&g, &alt, 0, t);
        assert!(
            astar.last_settled() * 2 < g.num_vertices(),
            "A* settled {} of {} vertices",
            astar.last_settled(),
            g.num_vertices()
        );
    }

    #[test]
    fn self_distance_zero() {
        let g = road_network(&RoadNetworkConfig::new(200, 93));
        let alt = AltIndex::build(&g, 4, LandmarkStrategy::Farthest, 1);
        let mut astar = AltAstar::new(g.num_vertices());
        assert_eq!(astar.distance(&g, &alt, 5, 5), 0);
    }
}
