//! The pluggable module traits of the K-SPIN framework (§3).
//!
//! Decoupling keyword indexes from the distance oracle is the paper's
//! "Flexibility" contribution: any [`NetworkDistance`] technique — CH, hub
//! labels, G-tree, even plain Dijkstra — plugs in unchanged, and any
//! admissible [`LowerBound`] heuristic serves the Heap Generator.

use kspin_alt::AltIndex;
use kspin_graph::{Dijkstra, Graph, HeapCounters, VertexId, Weight};

/// Module 2: exact network distance between two vertices.
///
/// Implementations may keep mutable per-query state (search arrays, heaps),
/// hence `&mut self`. This is "the bottleneck … the most expensive operation
/// performed for an object" (§3), which is why the query processors count
/// calls to it (see [`crate::QueryStats`]).
pub trait NetworkDistance {
    /// Exact `d(s, t)`; `INFINITY` when disconnected.
    fn distance(&mut self, s: VertexId, t: VertexId) -> Weight;

    /// Human-readable technique name ("CH", "HL", "G-tree", "Dijkstra").
    fn name(&self) -> &'static str;

    /// Cumulative heap-kernel counters of this oracle's internal searches
    /// (zero for oracles that answer from precomputed tables, the
    /// default). [`crate::QueryEngine`] snapshots and diffs these to
    /// attribute per-query heap traffic in [`crate::QueryStats`].
    fn heap_counters(&self) -> HeapCounters {
        HeapCounters::default()
    }
}

impl<T: NetworkDistance + ?Sized> NetworkDistance for &mut T {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Weight {
        (**self).distance(s, t)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn heap_counters(&self) -> HeapCounters {
        (**self).heap_counters()
    }
}

/// Module 1: admissible lower bound on network distance.
///
/// Must satisfy `lower_bound(s, t) ≤ d(s, t)` for all pairs; tighter is
/// faster but never required for correctness.
pub trait LowerBound {
    /// A lower bound on `d(s, t)`.
    fn lower_bound(&self, s: VertexId, t: VertexId) -> Weight;

    /// Whether this bound is *exact*: `lower_bound(s, t) == d(s, t)` for
    /// every pair. Exactness unlocks the strict Property-1 extraction-order
    /// audit in the Heap Generator (keys must come out nondecreasing —
    /// see [`crate::heap::InvertedHeap`]); merely admissible bounds like
    /// ALT may legally insert a smaller key after a larger one was
    /// extracted, so the audit stays off for them.
    fn is_exact(&self) -> bool {
        false
    }
}

impl LowerBound for AltIndex {
    fn lower_bound(&self, s: VertexId, t: VertexId) -> Weight {
        AltIndex::lower_bound(self, s, t)
    }
}

/// The trivial bound `0` — always admissible, never informative. Exists for
/// the lower-bound ablation bench (how much of K-SPIN's win comes from ALT?).
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroLowerBound;

impl LowerBound for ZeroLowerBound {
    fn lower_bound(&self, _: VertexId, _: VertexId) -> Weight {
        0
    }
}

/// Module 1 taken to its limit: the exact network distance used as its own
/// lower bound. The tightest admissible bound possible — and, because it is
/// exact, the one that arms the strict Property-1 extraction-order audit
/// ([`LowerBound::is_exact`] returns `true`).
///
/// Heap generation always bounds from the one query vertex, so a single
/// cached SSSP per source answers every probe; the cache refreshes whenever
/// the source changes. Intended for the invariant-audit tests and small
/// ablation runs, not production queries — each fresh source costs a full
/// Dijkstra.
pub struct ExactLowerBound<'a> {
    graph: &'a Graph,
    cache: std::cell::RefCell<ExactCache>,
}

struct ExactCache {
    source: Option<VertexId>,
    dist: Vec<Weight>,
    search: Dijkstra,
}

impl<'a> ExactLowerBound<'a> {
    /// Creates the oracle over `graph` with an empty SSSP cache.
    pub fn new(graph: &'a Graph) -> Self {
        ExactLowerBound {
            graph,
            cache: std::cell::RefCell::new(ExactCache {
                source: None,
                dist: Vec::new(),
                search: Dijkstra::new(graph.num_vertices()),
            }),
        }
    }
}

impl std::fmt::Debug for ExactLowerBound<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactLowerBound").finish_non_exhaustive()
    }
}

impl LowerBound for ExactLowerBound<'_> {
    fn lower_bound(&self, s: VertexId, t: VertexId) -> Weight {
        let mut cache = self.cache.borrow_mut();
        if cache.source != Some(s) {
            let ExactCache {
                dist,
                search,
                source,
            } = &mut *cache;
            search.sssp(self.graph, s);
            let space = search.space();
            dist.clear();
            // ALLOC-OK: audit-oracle table refresh, once per distinct
            // source — reaches |V| capacity on the first refresh and the
            // clear-then-extend refill never exceeds it.
            dist.extend((0..self.graph.num_vertices()).map(|v| {
                space
                    .distance(v as VertexId)
                    .unwrap_or(kspin_graph::INFINITY)
            }));
            *source = Some(s);
        }
        // Checked: a target outside the cached table (can't happen for ids
        // the engine mints, but cheap to tolerate) reads as unreachable.
        cache
            .dist
            .get(t as usize)
            .copied()
            .unwrap_or(kspin_graph::INFINITY)
    }

    fn is_exact(&self) -> bool {
        true
    }
}

/// A [`NetworkDistance`] backed by plain point-to-point Dijkstra on the
/// input graph — the index-free oracle (and the network-expansion
/// baseline's engine).
pub struct DijkstraDistance<'a> {
    graph: &'a Graph,
    search: Dijkstra,
}

impl<'a> DijkstraDistance<'a> {
    /// Creates an oracle over `graph`.
    pub fn new(graph: &'a Graph) -> Self {
        DijkstraDistance {
            graph,
            search: Dijkstra::new(graph.num_vertices()),
        }
    }
}

impl NetworkDistance for DijkstraDistance<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Weight {
        self.search.one_to_one(self.graph, s, t)
    }

    fn name(&self) -> &'static str {
        "Dijkstra"
    }

    fn heap_counters(&self) -> HeapCounters {
        self.search.heap_counters()
    }
}

/// A [`NetworkDistance`] backed by bidirectional Dijkstra — still
/// index-free, roughly half the search space of [`DijkstraDistance`].
pub struct BiDijkstraDistance<'a> {
    graph: &'a Graph,
    search: kspin_graph::BiDijkstra,
}

impl<'a> BiDijkstraDistance<'a> {
    /// Creates an oracle over `graph`.
    pub fn new(graph: &'a Graph) -> Self {
        BiDijkstraDistance {
            graph,
            search: kspin_graph::BiDijkstra::new(graph.num_vertices()),
        }
    }
}

impl NetworkDistance for BiDijkstraDistance<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Weight {
        self.search.distance(self.graph, s, t)
    }

    fn name(&self) -> &'static str {
        "BiDijkstra"
    }

    fn heap_counters(&self) -> HeapCounters {
        self.search.heap_counters()
    }
}

/// A [`NetworkDistance`] backed by ALT-guided A* — reuses the Lower
/// Bounding Module's landmarks as goal-directed potentials, so the only
/// extra index is the one K-SPIN already carries.
pub struct AltAstarDistance<'a> {
    graph: &'a Graph,
    alt: &'a AltIndex,
    search: kspin_alt::AltAstar,
}

impl<'a> AltAstarDistance<'a> {
    /// Creates an oracle over `graph` guided by `alt`.
    pub fn new(graph: &'a Graph, alt: &'a AltIndex) -> Self {
        AltAstarDistance {
            graph,
            alt,
            search: kspin_alt::AltAstar::new(graph.num_vertices()),
        }
    }
}

impl NetworkDistance for AltAstarDistance<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Weight {
        self.search.distance(self.graph, self.alt, s, t)
    }

    fn name(&self) -> &'static str {
        "ALT-A*"
    }

    fn heap_counters(&self) -> HeapCounters {
        self.search.heap_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_alt::LandmarkStrategy;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};

    #[test]
    fn dijkstra_distance_oracle_works() {
        let g = road_network(&RoadNetworkConfig::new(200, 1));
        let mut d = DijkstraDistance::new(&g);
        assert_eq!(d.distance(5, 5), 0);
        assert_eq!(d.distance(0, 10), d.distance(10, 0));
        assert_eq!(d.name(), "Dijkstra");
    }

    #[test]
    fn alt_satisfies_the_trait_admissibly() {
        let g = road_network(&RoadNetworkConfig::new(300, 2));
        let alt = AltIndex::build(&g, 8, LandmarkStrategy::Farthest, 0);
        let mut d = DijkstraDistance::new(&g);
        let oracle: &dyn LowerBound = &alt;
        for (s, t) in [(0u32, 99u32), (10, 200), (3, 3)] {
            assert!(oracle.lower_bound(s, t) <= d.distance(s, t));
        }
    }

    #[test]
    fn zero_bound_is_trivially_admissible() {
        assert_eq!(ZeroLowerBound.lower_bound(1, 2), 0);
    }

    #[test]
    fn all_index_free_oracles_agree() {
        let g = road_network(&RoadNetworkConfig::new(400, 3));
        let alt = AltIndex::build(&g, 8, LandmarkStrategy::Farthest, 0);
        let mut dij = DijkstraDistance::new(&g);
        let mut bi = BiDijkstraDistance::new(&g);
        let mut astar = AltAstarDistance::new(&g, &alt);
        for (s, t) in [(0u32, 399u32), (5, 200), (77, 78), (9, 9)] {
            let t = t.min(g.num_vertices() as u32 - 1);
            let want = dij.distance(s, t);
            assert_eq!(bi.distance(s, t), want, "bidijkstra ({s},{t})");
            assert_eq!(astar.distance(s, t), want, "astar ({s},{t})");
        }
    }
}
