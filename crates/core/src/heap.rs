//! The Heap Generator (§3 module 3, §5): on-demand inverted heaps.
//!
//! An [`InvertedHeap`] for keyword `t` maintains **Property 1**: at any
//! time, every object containing `t` not yet extracted has network distance
//! from `q` at least the lower bound of the current top. That lets query
//! processors consume candidates in lower-bound order while the heap is
//! populated *lazily*:
//!
//! * **Initialization** — Observation 2b / Theorem 1: seed with the ρ
//!   quadtree candidates (one of which is the 1NN of `q`) plus any lazily
//!   attached objects; Zipf-tail keywords seed with their whole (≤ ρ) list.
//! * **`LazyReheap`** (Algorithm 4) — after each extraction, insert the
//!   extracted object's NVD-adjacent objects that were never inserted.
//!
//! Deleted objects (§6.2) are never *returned*, but their adjacencies are
//! still expanded, so the frontier keeps growing past them.

use kspin_graph::dheap::{DaryHeap, HeapCounters};
use kspin_graph::{Graph, VertexId, Weight};
use kspin_text::{Corpus, ObjectId, TermId};

use crate::cache::SeedCandidate;
use crate::index::{KeywordIndex, KspinIndex};
use crate::modules::LowerBound;

/// Everything a heap needs to compute lower bounds for one query.
pub struct HeapContext<'a> {
    /// The road network.
    pub graph: &'a Graph,
    /// The object corpus.
    pub corpus: &'a Corpus,
    /// The pluggable lower-bounding oracle (§3's first module).
    pub lower_bound: &'a dyn LowerBound,
    /// The query vertex.
    pub q: VertexId,
}

impl<'a> HeapContext<'a> {
    /// Creates a context for query vertex `q`.
    pub fn new(
        graph: &'a Graph,
        corpus: &'a Corpus,
        lower_bound: &'a dyn LowerBound,
        q: VertexId,
    ) -> Self {
        HeapContext {
            graph,
            corpus,
            lower_bound,
            q,
        }
    }
}

/// An extracted candidate: corpus object plus the lower bound it carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The extracted object.
    pub object: ObjectId,
    /// The MINKEY it was extracted under (Property 1's bound).
    pub lower_bound: Weight,
}

/// An on-demand inverted heap for one query keyword.
///
/// `None` is returned from constructors when the keyword has no live
/// objects at all (query processors treat such heaps as exhausted).
pub struct InvertedHeap<'a> {
    entry: &'a KeywordIndex,
    /// The indexed d-ary kernel. Its epoch stamps double as the "already
    /// inserted" side table (Algorithm 4 line 3): `was_inserted` covers
    /// both buffered and extracted locals, so LazyReheap inserts each
    /// object at most once without a separate `Vec<bool>`.
    heap: DaryHeap,
    /// Lower-bound computations performed (for the §5.1 cost accounting).
    lb_computed: usize,
    /// Successful [`InvertedHeap::extract`] calls — the κ of §5.1, counted
    /// structurally here (once per extraction, never per candidate touched)
    /// so no query-loop call site can drift the accounting.
    extractions: usize,
    /// Key of the last extraction, for the Property-1 audit (debug builds
    /// and the `audit` feature only).
    #[cfg(any(debug_assertions, feature = "audit"))]
    last_extracted_lb: Option<Weight>,
}

impl<'a> InvertedHeap<'a> {
    /// Creates the heap for keyword `t` of `index`, or `None` if the
    /// keyword indexes no objects.
    pub fn create(index: &'a KspinIndex, t: TermId, ctx: &HeapContext<'_>) -> Option<Self> {
        let entry = index.entry(t)?;
        let mut lb_computed = 0;
        let heap = match entry {
            KeywordIndex::Small(s) => {
                // Observation 1: the whole inverted list fits; seeding it
                // entirely trivially satisfies Property 1.
                let mut heap = DaryHeap::new(s.objects.len());
                for (i, &v) in s.vertices.iter().enumerate() {
                    lb_computed += 1;
                    heap.push(ctx.lower_bound.lower_bound(ctx.q, v), i as u32);
                }
                heap
            }
            KeywordIndex::Nvd(n) => {
                // Theorem 1: seeding with the quadtree leaf's candidates
                // (which contain the 1NN of q) plus attached lazy inserts
                // satisfies Property 1.
                let mut heap = DaryHeap::new(n.apx.num_total());
                for local in n.apx.init_candidates(ctx.graph.coord(ctx.q)) {
                    if !heap.was_inserted(local) {
                        let v = n.apx.object_vertex(local);
                        lb_computed += 1;
                        heap.push(ctx.lower_bound.lower_bound(ctx.q, v), local);
                    }
                }
                heap
            }
        };
        Self::finish(entry, heap, lb_computed, ctx)
    }

    /// Creates the heap for keyword `t` seeding from a memoized candidate
    /// set (the [`crate::cache::HeapSeedCache`] fast path). `seeds` must be
    /// the cached value of `t`'s NVD source cell for `ctx.q` — exactly what
    /// a cold [`InvertedHeap::create`] would have gathered (Theorem 1's
    /// seed set, §6.2 attachments included), in the same sorted order, so
    /// seeded and cold heaps behave bit-identically. Lower-bound keys are
    /// still computed fresh per query: Property 1 is untouched.
    ///
    /// Falls back to [`InvertedHeap::create`] for Small entries (Zipf-tail
    /// keywords are never cached).
    pub fn create_seeded(
        index: &'a KspinIndex,
        t: TermId,
        ctx: &HeapContext<'_>,
        seeds: &[SeedCandidate],
    ) -> Option<Self> {
        let entry = index.entry(t)?;
        let KeywordIndex::Nvd(n) = entry else {
            return Self::create(index, t, ctx);
        };
        let mut heap = DaryHeap::new(n.apx.num_total());
        let mut lb_computed = 0;
        for s in seeds {
            if !heap.was_inserted(s.local) {
                lb_computed += 1;
                heap.push(ctx.lower_bound.lower_bound(ctx.q, s.vertex), s.local);
            }
        }
        Self::finish(entry, heap, lb_computed, ctx)
    }

    fn finish(
        entry: &'a KeywordIndex,
        heap: DaryHeap,
        lb_computed: usize,
        ctx: &HeapContext<'_>,
    ) -> Option<Self> {
        let mut h = InvertedHeap {
            entry,
            heap,
            lb_computed,
            extractions: 0,
            #[cfg(any(debug_assertions, feature = "audit"))]
            last_extracted_lb: None,
        };
        h.skip_deleted(ctx);
        if h.heap.is_empty() {
            return None;
        }
        Some(h)
    }

    /// `MINKEY(H)` — the lower bound of the current top (a live object).
    /// `None` once exhausted.
    pub fn min_key(&self) -> Option<Weight> {
        self.heap.peek().map(|(d, _)| d)
    }

    /// Extracts the top candidate and runs `LazyReheap` so Property 1 keeps
    /// holding for the remainder.
    pub fn extract(&mut self, ctx: &HeapContext<'_>) -> Option<Candidate> {
        let (lb, local) = self.heap.pop()?;
        self.extractions += 1;
        #[cfg(any(debug_assertions, feature = "audit"))]
        self.audit_extraction_order(lb, ctx);
        self.reheap(local, ctx);
        self.skip_deleted(ctx);
        Some(Candidate {
            object: self.corpus_id(local),
            lower_bound: lb,
        })
    }

    /// The Property-1 audit: with an **exact** lower bound, every key the
    /// heap hands out must be ≥ the previous one. Property 1 promises that
    /// all not-yet-extracted objects (inserted or not) lie at true distance
    /// ≥ MINKEY; an exact bound makes each later key equal that true
    /// distance, so a decrease can only mean lazy seeding or `LazyReheap`
    /// skipped a reachable object (e.g. a missing adjacency edge). Merely
    /// admissible bounds may legally produce decreasing keys, so the audit
    /// disarms for them ([`LowerBound::is_exact`]).
    #[cfg(any(debug_assertions, feature = "audit"))]
    fn audit_extraction_order(&mut self, lb: Weight, ctx: &HeapContext<'_>) {
        if !ctx.lower_bound.is_exact() {
            return;
        }
        if let Some(prev) = self.last_extracted_lb {
            assert!(
                lb >= prev,
                "Property 1 violated: extracted key {lb} after {prev} — \
                 an unseen object was closer than a previous MINKEY"
            );
        }
        self.last_extracted_lb = Some(lb);
    }

    /// Algorithm 4: push never-inserted neighbors of `local` in the NVD
    /// adjacency graph. Small keyword lists were fully seeded, so there is
    /// nothing to do for them.
    fn reheap(&mut self, local: u32, ctx: &HeapContext<'_>) {
        let KeywordIndex::Nvd(n) = self.entry else {
            return;
        };
        for &a in n.apx.adjacent(local) {
            if !self.heap.was_inserted(a) {
                let v = n.apx.object_vertex(a);
                self.lb_computed += 1;
                self.heap.push(ctx.lower_bound.lower_bound(ctx.q, v), a);
            }
        }
    }

    /// Pops (and expands) deleted objects until the top is live. Keeps
    /// `min_key` meaningful and guarantees `extract` returns live objects.
    fn skip_deleted(&mut self, ctx: &HeapContext<'_>) {
        while let Some((_, local)) = self.heap.peek() {
            if self.is_live(local) {
                break;
            }
            self.heap.pop();
            self.reheap(local, ctx);
        }
    }

    fn is_live(&self, local: u32) -> bool {
        match self.entry {
            // PANIC-OK: heap items are local object ids < the keyword's
            // object count; the per-keyword arrays share that length.
            KeywordIndex::Small(s) => s.alive[local as usize],
            KeywordIndex::Nvd(n) => !n.apx.is_deleted(local),
        }
    }

    fn corpus_id(&self, local: u32) -> ObjectId {
        match self.entry {
            // PANIC-OK: heap items are local object ids < the keyword's
            // object count; the per-keyword arrays share that length.
            KeywordIndex::Small(s) => s.objects[local as usize],
            KeywordIndex::Nvd(n) => n.corpus_ids[local as usize], // PANIC-OK: same bound.
        }
    }

    /// Lower-bound computations this heap performed so far.
    pub fn lb_computed(&self) -> usize {
        self.lb_computed
    }

    /// Candidates extracted from this heap so far (the κ of §5.1) —
    /// incremented exactly once per successful [`InvertedHeap::extract`].
    pub fn extractions(&self) -> usize {
        self.extractions
    }

    /// Current number of buffered (not yet extracted) entries — small by
    /// design ("the heap only contains a small number of objects due to
    /// being lazily populated", §4.2 implementation notes).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no live candidates remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Heap-kernel counters of this heap (pushes/pops/decrease-keys;
    /// `stale_skipped` is structurally zero on the indexed kernel).
    pub fn heap_counters(&self) -> HeapCounters {
        self.heap.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::KspinConfig;
    use crate::modules::DijkstraDistance;
    use crate::modules::NetworkDistance;
    use kspin_alt::{AltIndex, LandmarkStrategy};
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::Dijkstra;
    use kspin_text::generate::{corpus as gen_corpus, CorpusConfig};

    struct Fixture {
        graph: Graph,
        corpus: Corpus,
        alt: AltIndex,
        index: KspinIndex,
    }

    fn fixture(n: usize, seed: u64) -> Fixture {
        let graph = road_network(&RoadNetworkConfig::new(n, seed));
        let mut cc = CorpusConfig::new(graph.num_vertices(), seed ^ 1);
        cc.object_fraction = 0.08;
        let (corpus, _) = gen_corpus(&cc);
        let alt = AltIndex::build(&graph, 8, LandmarkStrategy::Farthest, seed);
        let index = KspinIndex::build(
            &graph,
            &corpus,
            &KspinConfig {
                rho: 4,
                num_threads: 2,
                ..KspinConfig::default()
            },
        );
        Fixture {
            graph,
            corpus,
            alt,
            index,
        }
    }

    /// A frequent term (NVD-backed) and a rare term (Small) of the corpus.
    fn pick_terms(f: &Fixture) -> (TermId, TermId) {
        let mut frequent = None;
        let mut rare = None;
        for t in 0..f.corpus.num_terms() as TermId {
            let l = f.corpus.inv_len(t);
            if l > 8 && frequent.is_none() {
                frequent = Some(t);
            }
            if (1..=3).contains(&l) && rare.is_none() {
                rare = Some(t);
            }
        }
        (
            frequent.expect("no frequent term"),
            rare.expect("no rare term"),
        )
    }

    #[test]
    fn property1_holds_throughout_drain() {
        // Drain an NVD-backed heap completely; every extraction's lower
        // bound must under-approximate the true distance of all *later*
        // extractions (Property 1 restated over the extraction sequence).
        let f = fixture(900, 101);
        let (t, _) = pick_terms(&f);
        let ctx = HeapContext::new(&f.graph, &f.corpus, &f.alt, 17);
        let mut heap = InvertedHeap::create(&f.index, t, &ctx).unwrap();
        let mut dij = Dijkstra::new(f.graph.num_vertices());
        let mut extracted = Vec::new();
        while let Some(c) = heap.extract(&ctx) {
            extracted.push(c);
        }
        assert_eq!(
            extracted.len(),
            f.corpus.inv_len(t),
            "heap must drain the whole inverted list"
        );
        let dists: Vec<Weight> = extracted
            .iter()
            .map(|c| dij.one_to_one(&f.graph, 17, f.corpus.vertex_of(c.object)))
            .collect();
        for i in 0..extracted.len() {
            for (j, &dj) in dists.iter().enumerate().skip(i) {
                assert!(
                    extracted[i].lower_bound <= dj,
                    "LB of extraction {i} ({}) exceeds distance of later object {j} ({dj})",
                    extracted[i].lower_bound
                );
            }
        }
    }

    #[test]
    fn extraction_lower_bounds_are_non_decreasing_enough_for_1nn() {
        // The first extraction must identify an object whose distance is
        // minimal among the keyword's objects when its LB equals its
        // distance (1NN guarantee check in aggregate: the minimum true
        // distance over the inverted list equals the minimum over the first
        // extractions up to that distance).
        let f = fixture(900, 103);
        let (t, _) = pick_terms(&f);
        let q = 42;
        let ctx = HeapContext::new(&f.graph, &f.corpus, &f.alt, q);
        let mut heap = InvertedHeap::create(&f.index, t, &ctx).unwrap();
        let mut dij = Dijkstra::new(f.graph.num_vertices());
        // True 1NN distance over the inverted list.
        let best = f
            .corpus
            .inverted(t)
            .iter()
            .map(|p| dij.one_to_one(&f.graph, q, f.corpus.vertex_of(p.object)))
            .min()
            .unwrap();
        // Drain until we see an object at distance `best`; Property 1 says
        // no extraction before it may have LB above `best`.
        loop {
            let c = heap
                .extract(&ctx)
                .expect("1NN must be extracted eventually");
            assert!(c.lower_bound <= best);
            if dij.one_to_one(&f.graph, q, f.corpus.vertex_of(c.object)) == best {
                break;
            }
        }
    }

    #[test]
    fn small_keyword_heap_is_fully_seeded() {
        let f = fixture(600, 105);
        let (_, t) = pick_terms(&f);
        let ctx = HeapContext::new(&f.graph, &f.corpus, &f.alt, 3);
        let heap = InvertedHeap::create(&f.index, t, &ctx).unwrap();
        assert_eq!(heap.len(), f.corpus.inv_len(t));
    }

    #[test]
    fn nvd_heap_is_lazily_seeded() {
        let f = fixture(900, 101);
        let (t, _) = pick_terms(&f);
        let ctx = HeapContext::new(&f.graph, &f.corpus, &f.alt, 11);
        let heap = InvertedHeap::create(&f.index, t, &ctx).unwrap();
        assert!(
            heap.len() <= f.index.rho(),
            "NVD heap seeded {} > rho {}",
            heap.len(),
            f.index.rho()
        );
        assert!(heap.len() < f.corpus.inv_len(t));
    }

    #[test]
    fn unused_keyword_yields_no_heap() {
        let f = fixture(600, 105);
        // Find a term id with empty inverted list.
        let unused = (0..f.corpus.num_terms() as TermId)
            .find(|&t| f.corpus.inv_len(t) == 0)
            .expect("corpus has no unused term");
        let ctx = HeapContext::new(&f.graph, &f.corpus, &f.alt, 0);
        assert!(InvertedHeap::create(&f.index, unused, &ctx).is_none());
    }

    #[test]
    fn deleted_objects_are_skipped_but_expansion_continues() {
        let mut f = fixture(900, 107);
        let (t, _) = pick_terms(&f);
        // Delete the object nearest to q for keyword t.
        let q = 5;
        let mut dij = Dijkstra::new(f.graph.num_vertices());
        let nearest = f
            .corpus
            .inverted(t)
            .iter()
            .map(|p| p.object)
            .min_by_key(|&o| dij.one_to_one(&f.graph, q, f.corpus.vertex_of(o)))
            .unwrap();
        f.index.delete_from_term(nearest, t);

        let ctx = HeapContext::new(&f.graph, &f.corpus, &f.alt, q);
        let mut heap = InvertedHeap::create(&f.index, t, &ctx).unwrap();
        let mut seen = Vec::new();
        while let Some(c) = heap.extract(&ctx) {
            assert_ne!(c.object, nearest, "deleted object escaped the heap");
            seen.push(c.object);
        }
        assert_eq!(seen.len(), f.corpus.inv_len(t) - 1);
    }

    #[test]
    fn lazily_inserted_object_is_discoverable() {
        let mut f = fixture(900, 109);
        let (t, _) = pick_terms(&f);
        // Simulate insertion: rebuild the index without one object of t,
        // then lazily insert it back.
        let victim = f.corpus.inverted(t)[0].object;
        let index = KspinIndex::build_filtered(
            &f.graph,
            &f.corpus,
            |o| o != victim,
            &KspinConfig {
                rho: 4,
                num_threads: 1,
                ..KspinConfig::default()
            },
        );
        f.index = index;
        let mut dist = DijkstraDistance::new(&f.graph);
        f.index.insert_into_term(
            &f.graph,
            &f.corpus,
            victim,
            t,
            &mut dist as &mut dyn NetworkDistance,
        );

        let ctx = HeapContext::new(&f.graph, &f.corpus, &f.alt, 29);
        let mut heap = InvertedHeap::create(&f.index, t, &ctx).unwrap();
        let mut found = false;
        while let Some(c) = heap.extract(&ctx) {
            if c.object == victim {
                found = true;
            }
        }
        assert!(found, "lazily inserted object never extracted");
    }
}
