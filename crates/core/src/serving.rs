//! The serving layer: batch query execution over worker threads.
//!
//! The ROADMAP north star is a system serving heavy traffic, and the
//! related experimental literature is unambiguous that *throughput*, not
//! single-query latency, is the deciding metric at scale. K-SPIN's query
//! side is read-only — [`crate::KspinIndex`], the corpus, the graph and
//! the lower-bound oracle are all shared immutably — so queries
//! parallelize embarrassingly, exactly like index construction does
//! (Observation 3). The [`BatchExecutor`] fans a slice of
//! [`ServingQuery`]s out over N crossbeam-scoped worker threads; each
//! worker owns a private [`QueryEngine`] (its own scratch buffers and
//! distance oracle — the two mutable pieces), and per-worker
//! [`QueryStats`] merge into one aggregate via `AddAssign`.
//!
//! Determinism: workers claim disjoint chunks of the query slice and
//! write results into per-query slots, so the output order is the input
//! order and every query's result is bit-identical to a sequential run —
//! only the *assignment* of queries to threads varies. The cross-query
//! heap-seed cache keeps this property because cached seeds equal cold
//! seeds exactly (see [`crate::cache`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use kspin_ch::{ContractionHierarchy, OneToManySweep, RestrictedTargets};
use kspin_graph::{Graph, HeapCounters, VertexId, Weight};
use kspin_text::{Corpus, ObjectId, TermId};

use crate::engine::{QueryEngine, QueryStats};
use crate::index::KspinIndex;
use crate::modules::{LowerBound, NetworkDistance};
use crate::query::boolean::BoolExpr;
use crate::query::Op;

/// Queries claimed per fetch: large enough to amortize the atomic, small
/// enough that a straggler query cannot strand much work on one thread.
const CHUNK: usize = 8;

/// Minimum keyword-group size before the batch pre-pass spends a shared
/// RPHAST sweep on it: a single query gains nothing from amortizing the
/// restricted-domain construction.
const MIN_SWEEP_GROUP: usize = 2;

/// One query of a serving batch — the three query families of §2 in
/// self-contained (engine-independent) form.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingQuery {
    /// Boolean kNN (§4.1): `k` nearest objects matching all/any `terms`.
    Bknn {
        /// The query vertex.
        vertex: VertexId,
        /// Result size.
        k: usize,
        /// Query keywords.
        terms: Vec<TermId>,
        /// Conjunctive or disjunctive semantics.
        op: Op,
    },
    /// Top-k by weighted distance (§4.2, Eq. 1).
    TopK {
        /// The query vertex.
        vertex: VertexId,
        /// Result size.
        k: usize,
        /// Query keywords.
        terms: Vec<TermId>,
    },
    /// Mixed ∧/∨ Boolean kNN (§2's remark).
    Boolean {
        /// The query vertex.
        vertex: VertexId,
        /// Result size.
        k: usize,
        /// The Boolean criterion.
        expr: BoolExpr,
    },
}

impl ServingQuery {
    /// Runs this query on `engine` — the single dispatch point shared by
    /// the sequential baseline and every [`BatchExecutor`] worker, so both
    /// paths execute literally the same code per query.
    pub fn run<D: NetworkDistance>(&self, engine: &mut QueryEngine<'_, D>) -> ServingResult {
        match self {
            ServingQuery::Bknn {
                vertex,
                k,
                terms,
                op,
            } => ServingResult::Distances(engine.bknn(*vertex, *k, terms, *op)),
            ServingQuery::TopK { vertex, k, terms } => {
                ServingResult::Scores(engine.top_k(*vertex, *k, terms))
            }
            ServingQuery::Boolean { vertex, k, expr } => {
                ServingResult::Distances(engine.bknn_expr(*vertex, *k, expr))
            }
        }
    }
}

/// The result of one [`ServingQuery`], in the result shape of its family.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingResult {
    /// BkNN family: objects with network distances, ascending.
    Distances(Vec<(ObjectId, Weight)>),
    /// Top-k family: objects with spatio-textual scores, ascending.
    Scores(Vec<(ObjectId, f64)>),
}

/// Precomputed candidate distances for one query, produced by a shared
/// RPHAST sweep over its keyword group (see [`BatchExecutor::with_sweep`]).
///
/// `targets` is the sorted union of the group's posting vertices, shared
/// (`Arc`) by every member; `dists[i]` is the exact network distance from
/// `source` to `targets[i]` — CH distances equal Dijkstra distances, so
/// serving a lookup from here instead of a graph search is invisible in
/// results.
struct DistTable {
    source: VertexId,
    targets: Arc<[VertexId]>,
    dists: Vec<Weight>,
}

/// A [`NetworkDistance`] wrapper that answers from the current query's
/// sweep table when possible and falls back to the wrapped oracle
/// otherwise. Every worker engine gets one; the batch loop points it at
/// the right table before running each query.
struct SweptOracle<'t, D> {
    inner: D,
    table: Option<&'t DistTable>,
    hits: usize,
}

impl<D: NetworkDistance> NetworkDistance for SweptOracle<'_, D> {
    #[inline]
    fn distance(&mut self, s: VertexId, t: VertexId) -> Weight {
        if let Some(table) = self.table {
            if table.source == s {
                if let Ok(i) = table.targets.binary_search(&t) {
                    self.hits += 1;
                    return table.dists[i]; // PANIC-OK: dists is index-parallel to targets.
                }
            }
        }
        self.inner.distance(s, t)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn heap_counters(&self) -> HeapCounters {
        self.inner.heap_counters()
    }
}

/// A completed batch: one result per input query (same order) plus the
/// merged statistics of every worker.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutput {
    /// `results[i]` answers `queries[i]`.
    pub results: Vec<ServingResult>,
    /// Sum of all workers' [`QueryStats`].
    pub stats: QueryStats,
}

/// Fans batches of queries out over worker threads, each owning a private
/// [`QueryEngine`] over the same shared read-only modules.
///
/// ```no_run
/// # use kspin_core::{BatchExecutor, DijkstraDistance, ServingQuery, Op};
/// # let graph: kspin_graph::Graph = unimplemented!();
/// # let corpus: kspin_text::Corpus = unimplemented!();
/// # let index: kspin_core::KspinIndex = unimplemented!();
/// # let alt: kspin_alt::AltIndex = unimplemented!();
/// let exec = BatchExecutor::new(&graph, &corpus, &index, &alt, 8);
/// let queries = vec![ServingQuery::Bknn { vertex: 3, k: 10, terms: vec![0, 1], op: Op::And }];
/// let out = exec.execute(&queries, || DijkstraDistance::new(&graph));
/// ```
pub struct BatchExecutor<'a> {
    graph: &'a Graph,
    corpus: &'a Corpus,
    index: &'a KspinIndex,
    /// `Sync` on top of [`LowerBound`] because every worker shares it.
    /// (`ExactLowerBound` is deliberately not `Sync` — its `RefCell` SSSP
    /// cache is single-threaded; audits run on a sequential engine.)
    lower_bound: &'a (dyn LowerBound + Sync),
    num_threads: usize,
    use_cache: bool,
    /// When set, the batch pre-pass resolves candidate distances for
    /// queries sharing hot keywords via shared RPHAST sweeps over this
    /// hierarchy instead of per-query graph searches.
    sweep: Option<&'a ContractionHierarchy>,
}

impl<'a> BatchExecutor<'a> {
    /// Assembles an executor over the shared framework modules with
    /// `num_threads` workers, clamped to `[1, available_parallelism()]`.
    /// Oversubscribing a host buys nothing here — workers are pure CPU
    /// with no blocking I/O, so extra threads only add scheduler churn
    /// (BENCH_serving.json measured 0.77× QPS at 8 workers on a
    /// 1-hardware-thread host). Configurations that really want an exact
    /// count (benches sweeping the thread axis) override with
    /// [`BatchExecutor::with_exact_threads`].
    pub fn new(
        graph: &'a Graph,
        corpus: &'a Corpus,
        index: &'a KspinIndex,
        lower_bound: &'a (dyn LowerBound + Sync),
        num_threads: usize,
    ) -> Self {
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        BatchExecutor {
            graph,
            corpus,
            index,
            lower_bound,
            num_threads: num_threads.clamp(1, hw),
            use_cache: true,
            sweep: None,
        }
    }

    /// Enables the batched one-to-many sweep path: queries sharing a
    /// keyword signature resolve their candidate-set distances through one
    /// shared [`RestrictedTargets`] domain and per-source RPHAST sweeps
    /// over `ch`, served to the workers as lookup tables. Distances are
    /// exact (CH preserves shortest paths), so results are bit-identical
    /// to the unswept path — only `QueryStats`'s sweep counters change.
    pub fn with_sweep(mut self, ch: &'a ContractionHierarchy) -> Self {
        self.sweep = Some(ch);
        self
    }

    /// Enables/disables the heap-seed cache on every worker engine (the
    /// bench sweep's cache on/off axis). No-op on cacheless indexes.
    pub fn with_seed_cache(mut self, on: bool) -> Self {
        self.use_cache = on;
        self
    }

    /// Overrides the worker count exactly, bypassing the hardware clamp of
    /// [`BatchExecutor::new`] (still at least 1). For benches and tests
    /// that sweep the thread axis past the host's parallelism on purpose.
    pub fn with_exact_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads.max(1);
        self
    }

    /// The worker count this executor fans out to.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Executes `queries`, constructing each worker's distance oracle with
    /// `make_dist` (a factory rather than `Clone` so oracles with
    /// per-instance mutable state — every [`NetworkDistance`] impl — get a
    /// fresh instance per thread).
    ///
    /// Results come back in input order regardless of which worker served
    /// which query. Workers claim chunks from a shared atomic cursor, so
    /// load balances dynamically across skewed query costs.
    ///
    /// # Panics
    /// Re-raises the first worker panic (a query panicking on worker `w`
    /// surfaces exactly as it would sequentially).
    pub fn execute<D, F>(&self, queries: &[ServingQuery], make_dist: F) -> BatchOutput
    where
        D: NetworkDistance,
        F: Fn() -> D + Sync,
    {
        let n = queries.len();
        let (tables, sweep_stats) = self.sweep_tables(queries);
        let next = AtomicUsize::new(0);
        // ALLOC-OK: per-batch bookkeeping — O(num_threads) slots filled
        // once per execute() call, amortized over the whole batch.
        let mut shards: Vec<(Vec<(usize, ServingResult)>, QueryStats)> = Vec::new();
        let scope_result = crossbeam::thread::scope(|scope| {
            // ALLOC-OK: per-batch handle list, ≤ num_threads entries.
            let mut handles = Vec::new();
            for _ in 0..self.num_threads {
                let next = &next;
                let make_dist = &make_dist;
                let tables = &tables;
                // ALLOC-OK: ≤ num_threads pushes per batch (spawn loop).
                handles.push(scope.spawn(move |_| {
                    let mut engine = QueryEngine::new(
                        self.graph,
                        self.corpus,
                        self.index,
                        self.lower_bound,
                        SweptOracle {
                            inner: make_dist(),
                            table: None,
                            hits: 0,
                        },
                    );
                    engine.set_seed_cache(self.use_cache);
                    // lint:allow(no-alloc-in-hot-loop) — per-worker result
                    // buffer created once per batch (the enclosing loop is
                    // the spawn loop, not a query loop); grows to this
                    // worker's share of the batch, amortized over it.
                    let mut out = Vec::new();
                    loop {
                        let base = next.fetch_add(CHUNK, Ordering::Relaxed);
                        if base >= n {
                            break;
                        }
                        let end = (base + CHUNK).min(n);
                        for (i, q) in queries.iter().enumerate().skip(base).take(end - base) {
                            // Point the oracle at this query's sweep table
                            // (None when the pre-pass didn't cover it).
                            engine.dist.table = tables.get(i).and_then(Option::as_ref);
                            // ALLOC-OK: amortized — out grows to this
                            // worker's batch share, one slot per query.
                            out.push((i, q.run(&mut engine)));
                        }
                    }
                    let mut stats = engine.stats();
                    stats.sweep_hits = engine.dist.hits;
                    (out, stats)
                }));
            }
            shards = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(shard) => shard,
                    // Re-raise the worker's own panic payload (same
                    // pattern as index construction).
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                // ALLOC-OK: O(num_threads) shard list, once per batch.
                .collect();
        });
        if let Err(payload) = scope_result {
            // Unreachable: every handle is joined above; re-raise to
            // preserve the payload if it somehow triggers.
            std::panic::resume_unwind(payload);
        }

        // ALLOC-OK: the batch's n result slots, allocated once per batch.
        let mut slots: Vec<Option<ServingResult>> = (0..n).map(|_| None).collect();
        let mut stats = sweep_stats;
        for (shard, worker_stats) in shards {
            stats += worker_stats;
            for (i, r) in shard {
                // PANIC-OK: workers only emit indexes of `queries`, and
                // slots was built with one slot per query.
                slots[i] = Some(r);
            }
        }
        let results = slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| match r {
                Some(r) => r,
                // Unreachable: the cursor hands every index to exactly one
                // worker and all workers were joined. Losing a result
                // silently would corrupt the batch ↔ result pairing, so
                // this stays a loud panic rather than a default answer.
                // PANIC-OK: chunk cursor covers 0..n exactly once (see above).
                None => panic!("query {i} was claimed by no worker"),
            })
            // ALLOC-OK: the n-element output the batch API returns.
            .collect();
        BatchOutput { results, stats }
    }

    /// The batched one-to-many pre-pass: groups queries by keyword
    /// signature (a `BTreeMap`, so group order is deterministic — no
    /// hash-order iteration), builds one shared [`RestrictedTargets`]
    /// domain per qualifying group, and runs a restricted sweep per member
    /// query to produce its candidate-distance table. Empty when the
    /// executor has no hierarchy ([`BatchExecutor::with_sweep`]).
    fn sweep_tables(&self, queries: &[ServingQuery]) -> (Vec<Option<DistTable>>, QueryStats) {
        let mut stats = QueryStats::default();
        // ALLOC-OK: per-batch table list, one slot per query.
        let mut tables: Vec<Option<DistTable>> = Vec::new();
        let Some(ch) = self.sweep else {
            return (tables, stats);
        };
        // ALLOC-OK: fills the per-batch slots allocated above, once.
        tables.resize_with(queries.len(), || None);
        // ALLOC-OK: per-batch grouping map, ≤ one entry per distinct
        // keyword signature in the batch.
        let mut groups: BTreeMap<Vec<TermId>, Vec<usize>> = BTreeMap::new();
        for (i, q) in queries.iter().enumerate() {
            let terms = match q {
                ServingQuery::Bknn { terms, .. } | ServingQuery::TopK { terms, .. } => terms,
                // Boolean trees mix ∧/∨ scopes; their candidate unions
                // don't reduce to a flat signature, so they keep the
                // per-query oracle path (results are unaffected either way).
                ServingQuery::Boolean { .. } => continue,
            };
            // ALLOC-OK: per-query signature key, O(|terms|), once per query.
            // lint:allow(no-alloc-in-hot-loop) — batch pre-pass, once per query.
            let mut key = terms.clone();
            key.sort_unstable();
            key.dedup();
            // ALLOC-OK: group member lists sum to ≤ n pushes per batch.
            groups.entry(key).or_default().push(i);
        }
        let mut sweep = OneToManySweep::new(ch);
        // ALLOC-OK: per-batch distance buffer, reused across every sweep
        // below (grows to the largest candidate set once).
        let mut buf: Vec<Weight> = Vec::new();
        for (terms, members) in &groups {
            if members.len() < MIN_SWEEP_GROUP {
                continue;
            }
            // The group's candidate vertices: the sorted union of its
            // keywords' posting vertices — exactly the vertices the query
            // processors will ask distances for.
            // ALLOC-OK: per-group candidate list, ≤ total postings.
            // lint:allow(no-alloc-in-hot-loop) — batch pre-pass, once per
            // keyword group, bounded by the corpus posting count.
            let mut cands: Vec<VertexId> = terms
                .iter()
                .flat_map(|&t| {
                    self.corpus
                        .inverted(t)
                        .iter()
                        .map(|p| self.corpus.vertex_of(p.object))
                })
                // lint:allow(no-alloc-in-hot-loop) — once per keyword group.
                .collect();
            cands.sort_unstable();
            cands.dedup();
            if cands.is_empty() {
                continue;
            }
            let targets: Arc<[VertexId]> = cands.into();
            let restricted = RestrictedTargets::new(ch, &targets);
            for &i in members {
                // PANIC-OK: members holds indexes enumerated from this very
                // queries slice during grouping; tables is sized queries.len().
                let source = match &queries[i] {
                    ServingQuery::Bknn { vertex, .. } | ServingQuery::TopK { vertex, .. } => {
                        *vertex
                    }
                    // PANIC-OK: Boolean queries were skipped when grouping.
                    ServingQuery::Boolean { .. } => unreachable!("boolean in sweep group"),
                };
                sweep.one_to_many_restricted(source, &restricted, &mut buf);
                // PANIC-OK: tables is sized queries.len(); i < queries.len().
                tables[i] = Some(DistTable {
                    source,
                    targets: Arc::clone(&targets),
                    // ALLOC-OK: the query's table payload, once per query.
                    // lint:allow(no-alloc-in-hot-loop) — the table IS the
                    // product of the pre-pass; one buffer copy per query.
                    dists: buf.clone(),
                });
            }
        }
        let c = sweep.counters();
        stats.sweeps = c.restricted_sweeps as usize;
        stats.sweep_settled = c.total_settled() as usize;
        (tables, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::KspinConfig;
    use crate::modules::DijkstraDistance;
    use kspin_alt::{AltIndex, LandmarkStrategy};
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_text::generate::{corpus as gen_corpus, CorpusConfig};

    fn fixture() -> (Graph, Corpus, AltIndex, KspinIndex) {
        let graph = road_network(&RoadNetworkConfig::new(700, 77));
        let mut cc = CorpusConfig::new(graph.num_vertices(), 78);
        cc.object_fraction = 0.1;
        let (corpus, _) = gen_corpus(&cc);
        let alt = AltIndex::build(&graph, 8, LandmarkStrategy::Farthest, 77);
        let index = KspinIndex::build(
            &graph,
            &corpus,
            &KspinConfig {
                rho: 4,
                num_threads: 2,
                ..KspinConfig::default()
            },
        );
        (graph, corpus, alt, index)
    }

    fn workload(corpus: &Corpus, num_vertices: usize) -> Vec<ServingQuery> {
        let frequent: Vec<TermId> = (0..corpus.num_terms() as TermId)
            .filter(|&t| corpus.inv_len(t) >= 2)
            .take(6)
            .collect();
        assert!(frequent.len() >= 3, "fixture corpus too sparse");
        (0..60)
            .map(|i| {
                let v = (i * 37) % num_vertices as VertexId;
                let t0 = frequent[i as usize % frequent.len()];
                let t1 = frequent[(i as usize + 1) % frequent.len()];
                match i % 3 {
                    0 => ServingQuery::Bknn {
                        vertex: v,
                        k: 5,
                        terms: vec![t0, t1],
                        op: Op::Or,
                    },
                    1 => ServingQuery::TopK {
                        vertex: v,
                        k: 5,
                        terms: vec![t0, t1],
                    },
                    _ => ServingQuery::Boolean {
                        vertex: v,
                        k: 5,
                        expr: BoolExpr::any(&[t0, t1]),
                    },
                }
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_at_any_thread_count() {
        let (graph, corpus, alt, index) = fixture();
        let queries = workload(&corpus, graph.num_vertices());
        let mut engine =
            QueryEngine::new(&graph, &corpus, &index, &alt, DijkstraDistance::new(&graph));
        let sequential: Vec<ServingResult> = queries.iter().map(|q| q.run(&mut engine)).collect();
        for threads in [1, 2, 8] {
            let exec =
                BatchExecutor::new(&graph, &corpus, &index, &alt, 1).with_exact_threads(threads);
            let out = exec.execute(&queries, || DijkstraDistance::new(&graph));
            assert_eq!(out.results, sequential, "{threads} threads diverged");
        }
    }

    #[test]
    fn worker_count_is_clamped_to_hardware_but_overridable() {
        let (graph, corpus, alt, index) = fixture();
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        let exec = BatchExecutor::new(&graph, &corpus, &index, &alt, 64);
        assert!(
            exec.num_threads() <= hw,
            "{} workers on {hw} threads",
            exec.num_threads()
        );
        assert_eq!(
            BatchExecutor::new(&graph, &corpus, &index, &alt, 0).num_threads(),
            1
        );
        let exact = BatchExecutor::new(&graph, &corpus, &index, &alt, 1).with_exact_threads(64);
        assert_eq!(exact.num_threads(), 64);
    }

    #[test]
    fn batch_stats_match_sequential_totals() {
        let (graph, corpus, alt, index) = fixture();
        let queries = workload(&corpus, graph.num_vertices());
        let mut engine =
            QueryEngine::new(&graph, &corpus, &index, &alt, DijkstraDistance::new(&graph));
        for q in &queries {
            q.run(&mut engine);
        }
        let exec = BatchExecutor::new(&graph, &corpus, &index, &alt, 4);
        let out = exec.execute(&queries, || DijkstraDistance::new(&graph));
        // Cacheless index: every counter is query-deterministic, so the
        // merged worker stats must equal the sequential totals exactly.
        assert_eq!(out.stats, engine.stats());
        assert!(out.stats.heap_extractions > 0);
    }

    #[test]
    fn sweep_path_is_bit_identical_and_counted() {
        let (graph, corpus, alt, index) = fixture();
        let queries = workload(&corpus, graph.num_vertices());
        let ch = ContractionHierarchy::build(&graph, &kspin_ch::ChConfig::default());
        let plain = BatchExecutor::new(&graph, &corpus, &index, &alt, 2)
            .execute(&queries, || DijkstraDistance::new(&graph));
        let swept = BatchExecutor::new(&graph, &corpus, &index, &alt, 2)
            .with_sweep(&ch)
            .execute(&queries, || DijkstraDistance::new(&graph));
        // CH distances are exact, so the sweep path must be invisible in
        // results — the whole point of the batched one-to-many wiring.
        assert_eq!(swept.results, plain.results);
        assert_eq!(plain.stats.sweeps, 0);
        assert!(swept.stats.sweeps > 0, "no keyword group qualified");
        assert!(swept.stats.sweep_settled > 0);
        assert!(swept.stats.sweep_hits > 0, "no oracle call hit a table");
        // Sweep tables absorb candidate distance computations that would
        // otherwise run per-query Dijkstra searches on the oracle.
        assert!(
            swept.stats.heap_pops < plain.stats.heap_pops,
            "sweep tables saved no oracle work: {} vs {}",
            swept.stats.heap_pops,
            plain.stats.heap_pops
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let (graph, corpus, alt, index) = fixture();
        let exec = BatchExecutor::new(&graph, &corpus, &index, &alt, 4);
        let out = exec.execute(&[], || DijkstraDistance::new(&graph));
        assert!(out.results.is_empty());
        assert_eq!(out.stats, QueryStats::default());
    }
}
