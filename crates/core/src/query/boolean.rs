//! Mixed ∧/∨ Boolean kNN queries.
//!
//! §2 remarks that the framework handles combinations of conjunctions and
//! disjunctions, e.g. *k closest POIs containing "Thai" and ("takeaway" or
//! "restaurant")*. The processor generates candidates from a *driving set*
//! of keywords — a set such that every matching object contains at least
//! one of them — and filters each candidate against the full expression
//! before computing its network distance.
//!
//! Driving-set choice mirrors §4.1.2's least-frequent-keyword idea:
//! a conjunction may be driven by any single operand (every match contains
//! it), so we pick the operand with the cheapest driving set; a disjunction
//! must be driven by the union of its operands' driving sets.

use std::collections::BinaryHeap;

use kspin_graph::{VertexId, Weight};
use kspin_text::{Corpus, ObjectId, TermId};

use crate::engine::QueryEngine;
use crate::heap::{HeapContext, InvertedHeap};
use crate::modules::NetworkDistance;

/// A boolean keyword criterion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolExpr {
    /// The object must contain this keyword.
    Term(TermId),
    /// All sub-expressions must hold.
    And(Vec<BoolExpr>),
    /// At least one sub-expression must hold.
    Or(Vec<BoolExpr>),
}

impl BoolExpr {
    /// Convenience: conjunction of plain keywords (§2's conjunctive BkNN
    /// criterion as an expression tree).
    pub fn all(terms: &[TermId]) -> Self {
        // ALLOC-OK: |ψ|-bounded expression-tree construction, once per query.
        BoolExpr::And(terms.iter().map(|&t| BoolExpr::Term(t)).collect())
    }

    /// Convenience: disjunction of plain keywords (§2's disjunctive BkNN
    /// criterion as an expression tree).
    pub fn any(terms: &[TermId]) -> Self {
        // ALLOC-OK: |ψ|-bounded expression-tree construction, once per query.
        BoolExpr::Or(terms.iter().map(|&t| BoolExpr::Term(t)).collect())
    }

    /// Whether object `o` satisfies the criterion (the §2 Boolean filter
    /// applied to `o`'s document).
    ///
    /// Empty `And` is vacuously true; empty `Or` is unsatisfiable.
    pub fn matches(&self, corpus: &Corpus, o: ObjectId) -> bool {
        match self {
            BoolExpr::Term(t) => corpus.contains(o, *t),
            BoolExpr::And(children) => children.iter().all(|c| c.matches(corpus, o)),
            BoolExpr::Or(children) => children.iter().any(|c| c.matches(corpus, o)),
        }
    }

    /// All keywords mentioned anywhere in the expression — the query's
    /// keyword set ψ in §2's notation.
    pub fn terms(&self) -> Vec<TermId> {
        // ALLOC-OK: grows to the expression's keyword count |ψ|, once per
        // query — expression trees are a handful of terms by construction.
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_terms(&self, out: &mut Vec<TermId>) {
        match self {
            // ALLOC-OK: appends into the |ψ|-bounded buffer `terms` owns.
            BoolExpr::Term(t) => out.push(*t),
            BoolExpr::And(children) | BoolExpr::Or(children) => {
                for c in children {
                    c.collect_terms(out);
                }
            }
        }
    }

    /// A driving set: keywords such that every object satisfying `self`
    /// contains at least one of them. `None` when the expression is
    /// unsatisfiable (empty `Or`). Chooses greedily by total inverted-list
    /// length, generalizing §4.1.2's least-frequent-keyword choice.
    pub fn driving_set(&self, corpus: &Corpus) -> Option<Vec<TermId>> {
        match self {
            // ALLOC-OK: one-element driving set, once per query planning.
            BoolExpr::Term(t) => Some(vec![*t]),
            BoolExpr::Or(children) => {
                if children.is_empty() {
                    return None;
                }
                // ALLOC-OK: |ψ|-bounded union built once per query planning.
                let mut union = Vec::new();
                for c in children {
                    // ALLOC-OK: still the |ψ|-bounded planning union above.
                    union.extend(c.driving_set(corpus)?);
                }
                union.sort_unstable();
                union.dedup();
                Some(union)
            }
            BoolExpr::And(children) => {
                // Any child's driving set drives the conjunction; pick the
                // cheapest. An empty And matches everything and cannot be
                // driven by keywords; treat as unsupported (no sensible
                // spatial keyword query is keyword-free).
                children
                    .iter()
                    .filter_map(|c| c.driving_set(corpus))
                    .min_by_key(|set| set.iter().map(|&t| corpus.inv_len(t)).sum::<usize>())
            }
        }
    }
}

impl<D: NetworkDistance> QueryEngine<'_, D> {
    /// Boolean kNN with an arbitrary ∧/∨ criterion (the mixed-operator
    /// queries of §2's remark), built on Algorithm 1's candidate generation.
    /// Exact; sorted by ascending distance.
    ///
    /// # Panics
    /// If the expression has no driving set (an empty `And`).
    pub fn bknn_expr(&mut self, q: VertexId, k: usize, expr: &BoolExpr) -> Vec<(ObjectId, Weight)> {
        if k == 0 {
            // ALLOC-OK: an empty Vec::new never touches the allocator.
            return Vec::new();
        }
        let Some(driving) = expr.driving_set(self.corpus) else {
            // ALLOC-OK: an empty Vec::new never touches the allocator.
            return Vec::new(); // unsatisfiable
        };
        // PANIC-OK: documented API precondition (see `# Panics`): soundness
        // needs a driving keyword per conjunct, so a keyword-free query must
        // not fail silently in release serving either.
        assert!(
            !driving.is_empty(),
            "expression has an empty driving set (keyword-free query)"
        );
        let ctx = HeapContext::new(self.graph, self.corpus, self.lower_bound, q);
        let mut heaps: Vec<InvertedHeap<'_>> = driving
            .iter()
            .copied()
            .filter_map(|t| self.make_heap(t, &ctx))
            // ALLOC-OK: heap generation — one |ψ|-bounded Vec per query;
            // the extraction loop below never grows it.
            .collect();
        // Engine-lifetime epoch-stamped dedup set (lint H1 + determinism):
        // clear() bumps the epoch in O(1); no hashing, no iteration order.
        let mut evaluated = std::mem::take(&mut self.scratch.evaluated);
        evaluated.clear();
        // lint:allow(no-binary-heap) — bounded k-best result max-heap for
        // boolean-expression answers; not a search frontier.
        // ALLOC-OK: len ≤ k always (pop before push at capacity), so at
        // most ⌈log₂ k⌉ growth doublings per query.
        let mut best: BinaryHeap<(Weight, ObjectId)> = BinaryHeap::new();

        loop {
            let d_k = match best.peek() {
                Some(&(d, _)) if best.len() == k => d,
                _ => Weight::MAX,
            };
            let Some((i, min_lb)) = heaps
                .iter()
                .enumerate()
                .filter_map(|(i, h)| h.min_key().map(|m| (i, m)))
                .min_by_key(|&(_, m)| m)
            else {
                break;
            };
            if min_lb >= d_k {
                break;
            }
            // PANIC-OK: i came from enumerate() over this very vec.
            let Some(c) = heaps[i].extract(&ctx) else {
                // Unreachable: heap `i` just reported a finite MINKEY.
                debug_assert!(false, "heap {i} reported MINKEY but was empty");
                break;
            };
            // ALLOC-OK: epoch-stamped SeenSet insert — a plain array
            // write into storage sized once at engine construction.
            if !evaluated.insert(c.object) || !expr.matches(self.corpus, c.object) {
                self.stats.pruned_candidates += 1;
                continue;
            }
            let d = self.dist.distance(q, self.corpus.vertex_of(c.object));
            self.stats.dist_computations += 1;
            if best.len() < k {
                // ALLOC-OK: grows the k-best heap toward its ≤ k cap.
                best.push((d, c.object));
            } else if d < d_k {
                best.pop();
                // ALLOC-OK: pop above freed a slot; len stays ≤ k.
                best.push((d, c.object));
            }
        }
        self.finish_heap_stats(&heaps);
        self.scratch.evaluated = evaluated;
        // ALLOC-OK: the ≤ k-element result Vec the API contract returns.
        let mut out: Vec<(ObjectId, Weight)> = best.into_iter().map(|(d, o)| (o, d)).collect();
        out.sort_unstable_by_key(|&(o, d)| (d, o));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_text::CorpusBuilder;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        b.add_object(1, &[(0, 1), (1, 1)]); // thai restaurant
        b.add_object(2, &[(0, 1), (2, 1)]); // thai takeaway
        b.add_object(3, &[(1, 1)]); // restaurant
        b.build()
    }

    #[test]
    fn matches_mixed_expression() {
        let c = corpus();
        // thai AND (takeaway OR restaurant)
        let e = BoolExpr::And(vec![BoolExpr::Term(0), BoolExpr::any(&[2, 1])]);
        assert!(e.matches(&c, 0));
        assert!(e.matches(&c, 1));
        assert!(!e.matches(&c, 2));
    }

    #[test]
    fn empty_and_is_true_empty_or_is_false() {
        let c = corpus();
        assert!(BoolExpr::And(vec![]).matches(&c, 0));
        assert!(!BoolExpr::Or(vec![]).matches(&c, 0));
    }

    #[test]
    fn driving_set_prefers_cheapest_conjunct() {
        let c = corpus();
        // term 0 appears in 2 objects, term 2 in 1 — And picks {2}.
        let e = BoolExpr::all(&[0, 2]);
        assert_eq!(e.driving_set(&c), Some(vec![2]));
    }

    #[test]
    fn driving_set_unions_disjuncts() {
        let c = corpus();
        let e = BoolExpr::any(&[0, 1]);
        assert_eq!(e.driving_set(&c), Some(vec![0, 1]));
    }

    #[test]
    fn driving_set_of_nested_expression_is_sound() {
        let c = corpus();
        let e = BoolExpr::And(vec![BoolExpr::Term(0), BoolExpr::any(&[1, 2])]);
        let driving = e.driving_set(&c).unwrap();
        // Soundness: every matching object contains a driving term.
        for o in 0..c.num_objects() as ObjectId {
            if e.matches(&c, o) {
                assert!(driving.iter().any(|&t| c.contains(o, t)));
            }
        }
    }

    #[test]
    fn unsatisfiable_expression_has_no_driving_set() {
        let c = corpus();
        assert_eq!(BoolExpr::Or(vec![]).driving_set(&c), None);
        // And containing an unsatisfiable Or: still driven by the other leg.
        let e = BoolExpr::And(vec![BoolExpr::Term(0), BoolExpr::Or(vec![])]);
        assert_eq!(e.driving_set(&c), Some(vec![0]));
    }

    #[test]
    fn terms_are_collected_and_deduped() {
        let e = BoolExpr::And(vec![BoolExpr::Term(3), BoolExpr::any(&[1, 3])]);
        assert_eq!(e.terms(), vec![1, 3]);
    }
}
