//! Network-expansion (INE) baselines.
//!
//! The paper excludes network-expansion methods from its main comparison
//! because past results showed them orders of magnitude slower (§7.1) — but
//! they are the natural correctness oracle: a plain Dijkstra expansion that
//! inspects every settled vertex. Every integration test in this workspace
//! checks K-SPIN's exact results against these functions.

use kspin_graph::{Dijkstra, Graph, OrderedWeight, VertexId, Weight};
use kspin_text::{score, Corpus, ObjectId, QueryTerms, TermId};

use crate::query::Op;

/// Exact BkNN by incremental network expansion — the INE family the paper
/// excludes from its main comparison as uncompetitive (§7.1), kept here as
/// the correctness oracle for Algorithm 1.
pub fn ine_bknn(
    graph: &Graph,
    corpus: &Corpus,
    q: VertexId,
    k: usize,
    terms: &[TermId],
    op: Op,
) -> Vec<(ObjectId, Weight)> {
    let mut uniq = terms.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    if k == 0 || uniq.is_empty() {
        return Vec::new();
    }
    let mut dij = Dijkstra::new(graph.num_vertices());
    let mut found = Vec::with_capacity(k);
    dij.run(graph, &[(q, 0)], |v, d| {
        if let Some(o) = corpus.object_at(v) {
            let ok = match op {
                Op::And => corpus.contains_all(o, &uniq),
                Op::Or => corpus.contains_any(o, &uniq),
            };
            if ok {
                found.push((o, d));
                if found.len() == k {
                    return kspin_graph::dijkstra::Control::Stop;
                }
            }
        }
        kspin_graph::dijkstra::Control::Continue
    });
    found.sort_unstable_by_key(|&(o, d)| (d, o));
    found
}

/// Exact top-k (scores per Eq. 1) by network expansion with the standard
/// early-termination bound: once `d_settled / TR_max ≥ D_k`, no farther
/// object can win. Oracle for Algorithms 2–3 (§4.2).
pub fn ine_topk(
    graph: &Graph,
    corpus: &Corpus,
    q: VertexId,
    k: usize,
    terms: &[TermId],
) -> Vec<(ObjectId, f64)> {
    let query = QueryTerms::new(corpus, terms);
    if k == 0 || query.is_empty() {
        return Vec::new();
    }
    let tr_max = query.max_relevance(corpus);
    if tr_max <= 0.0 {
        return Vec::new();
    }
    let mut dij = Dijkstra::new(graph.num_vertices());
    // lint:allow(no-binary-heap) — bounded k-best result max-heap (evicts
    // the worst of <= k entries); not a search frontier, no decrease-key.
    let mut best = std::collections::BinaryHeap::<(OrderedWeight, ObjectId)>::new();
    dij.run(graph, &[(q, 0)], |v, d| {
        let d_k = match best.peek() {
            Some(&(s, _)) if best.len() == k => s.get(),
            _ => f64::INFINITY,
        };
        if d as f64 / tr_max >= d_k {
            return kspin_graph::dijkstra::Control::Stop;
        }
        if let Some(o) = corpus.object_at(v) {
            let tr = query.relevance(corpus, o);
            if tr > 0.0 {
                let st = score(d, tr);
                if best.len() < k {
                    best.push((OrderedWeight::new(st), o));
                } else if st < d_k {
                    best.pop();
                    best.push((OrderedWeight::new(st), o));
                }
            }
        }
        kspin_graph::dijkstra::Control::Continue
    });
    let mut out: Vec<(ObjectId, f64)> = best.into_iter().map(|(s, o)| (o, s.get())).collect();
    out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    out
}

/// Brute-force top-k: score every object by Eq. 1 against a full SSSP. The
/// slowest possible oracle, used to validate `ine_topk` itself in tests.
pub fn brute_topk(
    graph: &Graph,
    corpus: &Corpus,
    q: VertexId,
    k: usize,
    terms: &[TermId],
) -> Vec<(ObjectId, f64)> {
    let query = QueryTerms::new(corpus, terms);
    let mut dij = Dijkstra::new(graph.num_vertices());
    dij.sssp(graph, q);
    let space = dij.space();
    let mut scored: Vec<(ObjectId, f64)> = (0..corpus.num_objects() as ObjectId)
        .filter_map(|o| {
            let tr = query.relevance(corpus, o);
            if tr <= 0.0 {
                return None;
            }
            let d = space.distance(corpus.vertex_of(o))?;
            Some((o, score(d, tr)))
        })
        .collect();
    scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

/// Brute-force BkNN (§2's Boolean kNN semantics) over the full object set
/// (oracle for `ine_bknn`).
pub fn brute_bknn(
    graph: &Graph,
    corpus: &Corpus,
    q: VertexId,
    k: usize,
    terms: &[TermId],
    op: Op,
) -> Vec<(ObjectId, Weight)> {
    let mut uniq = terms.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    if uniq.is_empty() {
        return Vec::new();
    }
    let mut dij = Dijkstra::new(graph.num_vertices());
    dij.sssp(graph, q);
    let space = dij.space();
    let mut found: Vec<(ObjectId, Weight)> = (0..corpus.num_objects() as ObjectId)
        .filter(|&o| match op {
            Op::And => corpus.contains_all(o, &uniq),
            Op::Or => corpus.contains_any(o, &uniq),
        })
        .filter_map(|o| space.distance(corpus.vertex_of(o)).map(|d| (o, d)))
        .collect();
    found.sort_unstable_by_key(|&(o, d)| (d, o));
    found.truncate(k);
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_text::generate::{corpus as gen_corpus, CorpusConfig};

    fn fixture() -> (Graph, Corpus) {
        let graph = road_network(&RoadNetworkConfig::new(700, 201));
        let mut cc = CorpusConfig::new(graph.num_vertices(), 202);
        cc.object_fraction = 0.1;
        let (corpus, _) = gen_corpus(&cc);
        (graph, corpus)
    }

    #[test]
    fn ine_bknn_matches_brute_force() {
        let (g, c) = fixture();
        for q in [0u32, 100, 333] {
            for op in [Op::And, Op::Or] {
                let a = ine_bknn(&g, &c, q, 5, &[0, 1], op);
                let b = brute_bknn(&g, &c, q, 5, &[0, 1], op);
                let da: Vec<Weight> = a.iter().map(|&(_, d)| d).collect();
                let db: Vec<Weight> = b.iter().map(|&(_, d)| d).collect();
                assert_eq!(da, db, "q={q} op={op:?}");
            }
        }
    }

    #[test]
    fn ine_topk_matches_brute_force() {
        let (g, c) = fixture();
        for q in [0u32, 50, 500] {
            let a = ine_topk(&g, &c, q, 5, &[0, 1]);
            let b = brute_topk(&g, &c, q, 5, &[0, 1]);
            let sa: Vec<f64> = a.iter().map(|&(_, s)| s).collect();
            let sb: Vec<f64> = b.iter().map(|&(_, s)| s).collect();
            assert_eq!(sa.len(), sb.len());
            for (x, y) in sa.iter().zip(&sb) {
                assert!((x - y).abs() < 1e-9, "q={q}: {sa:?} vs {sb:?}");
            }
        }
    }

    #[test]
    fn fewer_matches_than_k_returns_all() {
        let (g, c) = fixture();
        // A rare term: find one with small inverted list.
        let rare = (0..c.num_terms() as TermId)
            .find(|&t| (1..=2).contains(&c.inv_len(t)))
            .expect("no rare term");
        let got = ine_bknn(&g, &c, 0, 50, &[rare], Op::Or);
        assert_eq!(got.len(), c.inv_len(rare));
    }

    #[test]
    fn empty_terms_and_zero_k() {
        let (g, c) = fixture();
        assert!(ine_bknn(&g, &c, 0, 5, &[], Op::Or).is_empty());
        assert!(ine_bknn(&g, &c, 0, 0, &[0], Op::Or).is_empty());
        assert!(ine_topk(&g, &c, 0, 0, &[0]).is_empty());
    }
}
