//! Boolean kNN query processing (§4.1).
//!
//! * Disjunctive (Algorithm 1): one inverted heap per query keyword,
//!   consumed in global lower-bound order.
//! * Conjunctive (§4.1.2): drive from the least frequent keyword's heap
//!   only; filter candidates lacking any other keyword *before* paying for
//!   a network distance.
//!
//! Both terminate when the smallest heap lower bound reaches `D_k`, the
//! distance of the current k-th best.

use std::collections::BinaryHeap;

use kspin_graph::{VertexId, Weight};
use kspin_text::{ObjectId, TermId};

use crate::engine::QueryEngine;
use crate::heap::{HeapContext, InvertedHeap};
use crate::index::KeywordIndex;
use crate::modules::NetworkDistance;
use crate::query::Op;

impl<D: NetworkDistance> QueryEngine<'_, D> {
    /// Boolean kNN (§2): the `k` nearest objects to `q` containing all
    /// (`Op::And`) or any (`Op::Or`) of `terms`. Results are sorted by
    /// ascending network distance (ties by object id) and are exact.
    pub fn bknn(
        &mut self,
        q: VertexId,
        k: usize,
        terms: &[TermId],
        op: Op,
    ) -> Vec<(ObjectId, Weight)> {
        // ALLOC-OK: one |ψ|-sized copy per query (|ψ| ≤ a handful of
        // keywords) so sort/dedup never mutates the caller's slice.
        let mut uniq = terms.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        if k == 0 || uniq.is_empty() {
            // ALLOC-OK: an empty Vec::new never touches the allocator.
            return Vec::new();
        }
        let ctx = HeapContext::new(self.graph, self.corpus, self.lower_bound, q);
        let mut results = match op {
            Op::Or => self.bknn_disjunctive(&ctx, k, &uniq),
            Op::And => self.bknn_conjunctive(&ctx, k, &uniq),
        };
        results.sort_unstable_by_key(|&(o, d)| (d, o));
        results
    }

    /// Algorithm 1. The paper drives heap selection through a priority
    /// queue re-primed after each extraction; with at most a handful of
    /// query keywords a fresh linear scan over the heaps is the same
    /// selection with none of the staleness bookkeeping.
    fn bknn_disjunctive(
        &mut self,
        ctx: &HeapContext<'_>,
        k: usize,
        terms: &[TermId],
    ) -> Vec<(ObjectId, Weight)> {
        let mut heaps: Vec<InvertedHeap<'_>> = terms
            .iter()
            .copied()
            .filter_map(|t| self.make_heap(t, ctx))
            // ALLOC-OK: heap generation — one |ψ|-bounded Vec per query;
            // the extraction loop below never grows it.
            .collect();
        // Engine-lifetime epoch-stamped dedup set (lint H1 + determinism):
        // clear() bumps the epoch in O(1); no hashing, no iteration order.
        let mut evaluated = std::mem::take(&mut self.scratch.evaluated);
        evaluated.clear();
        // Max-heap of the best k so far; top = current D_k.
        // lint:allow(no-binary-heap) — bounded k-best result max-heap over
        // ObjectIds; top-k eviction wants a max-heap, not decrease-key.
        // ALLOC-OK: len ≤ k always (pop before push at capacity), so at
        // most ⌈log₂ k⌉ growth doublings per query.
        let mut best: BinaryHeap<(Weight, ObjectId)> = BinaryHeap::new();

        loop {
            let d_k = match best.peek() {
                Some(&(d, _)) if best.len() == k => d,
                _ => Weight::MAX,
            };
            // Heap with the globally smallest lower bound (line 6).
            let Some((i, min_lb)) = heaps
                .iter()
                .enumerate()
                .filter_map(|(i, h)| h.min_key().map(|m| (i, m)))
                .min_by_key(|&(_, m)| m)
            else {
                break;
            };
            if min_lb >= d_k {
                break; // line 5: no unseen object can beat the k-th best
            }
            // PANIC-OK: i came from enumerate() over this very vec.
            let Some(c) = heaps[i].extract(ctx) else {
                // Unreachable: heap `i` just reported a finite MINKEY.
                debug_assert!(false, "heap {i} reported MINKEY but was empty");
                break;
            };
            // Any object in this heap contains its keyword, so only
            // duplicates across heaps are filtered (line 10).
            // ALLOC-OK: epoch-stamped SeenSet insert — a plain array
            // write into storage sized once at engine construction.
            if !evaluated.insert(c.object) {
                self.stats.pruned_candidates += 1;
                continue;
            }
            let d = self.dist.distance(ctx.q, self.corpus.vertex_of(c.object));
            self.stats.dist_computations += 1;
            if best.len() < k {
                // ALLOC-OK: grows the k-best heap toward its ≤ k cap.
                best.push((d, c.object));
            } else if d < d_k {
                best.pop();
                // ALLOC-OK: pop above freed a slot; len stays ≤ k.
                best.push((d, c.object));
            }
        }
        self.finish_heap_stats(&heaps);
        self.scratch.evaluated = evaluated;
        // ALLOC-OK: the ≤ k-element result Vec the API contract returns.
        best.into_iter().map(|(d, o)| (o, d)).collect()
    }

    /// §4.1.2: drive from the least frequent keyword, filter on the cheap
    /// containment check before any distance computation.
    fn bknn_conjunctive(
        &mut self,
        ctx: &HeapContext<'_>,
        k: usize,
        terms: &[TermId],
    ) -> Vec<(ObjectId, Weight)> {
        // An empty keyword index means no object can satisfy the
        // conjunction at all.
        let driver = terms
            .iter()
            .copied()
            .min_by_key(|&t| self.index.live_count(t));
        let Some(driver) = driver else {
            // ALLOC-OK: an empty Vec::new never touches the allocator.
            return Vec::new();
        };
        if terms.iter().any(|&t| self.index.live_count(t) == 0) {
            // ALLOC-OK: an empty Vec::new never touches the allocator.
            return Vec::new();
        }
        let Some(mut heap) = self.make_heap(driver, ctx) else {
            // ALLOC-OK: an empty Vec::new never touches the allocator.
            return Vec::new();
        };
        // lint:allow(no-binary-heap) — bounded k-best result max-heap
        // (conjunctive path); same shape as the disjunctive one above.
        // ALLOC-OK: len ≤ k always (pop before push at capacity), so at
        // most ⌈log₂ k⌉ growth doublings per query.
        let mut best: BinaryHeap<(Weight, ObjectId)> = BinaryHeap::new();
        loop {
            let d_k = match best.peek() {
                Some(&(d, _)) if best.len() == k => d,
                _ => Weight::MAX,
            };
            let Some(min_lb) = heap.min_key() else { break };
            if min_lb >= d_k {
                break;
            }
            let Some(c) = heap.extract(ctx) else {
                // Unreachable: the heap just reported a finite MINKEY.
                debug_assert!(false, "driver heap reported MINKEY but was empty");
                break;
            };
            // Filter before distance: the whole point of keyword
            // separation — false keyword matches never cost a graph
            // operation.
            if !self.satisfies_conjunction(c.object, terms) {
                self.stats.pruned_candidates += 1;
                continue;
            }
            let d = self.dist.distance(ctx.q, self.corpus.vertex_of(c.object));
            self.stats.dist_computations += 1;
            if best.len() < k {
                // ALLOC-OK: grows the k-best heap toward its ≤ k cap.
                best.push((d, c.object));
            } else if d < d_k {
                best.pop();
                // ALLOC-OK: pop above freed a slot; len stays ≤ k.
                best.push((d, c.object));
            }
        }
        self.stats.absorb_heap(&heap);
        // ALLOC-OK: the ≤ k-element result Vec the API contract returns.
        best.into_iter().map(|(d, o)| (o, d)).collect()
    }

    /// Containment across all terms, honoring per-keyword index updates:
    /// an object whose keyword was removed from the index no longer
    /// satisfies conjunctions mentioning it.
    pub(crate) fn satisfies_conjunction(&self, o: ObjectId, terms: &[TermId]) -> bool {
        terms
            .iter()
            .all(|&t| self.corpus.contains(o, t) && self.index_live(o, t))
    }

    /// Whether object `o` is live in keyword `t`'s index.
    pub(crate) fn index_live(&self, o: ObjectId, t: TermId) -> bool {
        match self.index.entry(t) {
            None => false,
            Some(KeywordIndex::Small(s)) => s
                .objects
                .iter()
                .position(|&x| x == o)
                // PANIC-OK: i < objects.len() from position(); alive is parallel.
                .is_some_and(|i| s.alive[i]),
            Some(KeywordIndex::Nvd(n)) => n.local_of.get(&o).is_some_and(|&l| !n.apx.is_deleted(l)),
        }
    }

    /// Folds per-heap counters into the engine stats. `heap_extractions`
    /// is owned by [`InvertedHeap`] (incremented once per `extract`, §5.1's
    /// κ) and only *merged* here, so no query loop can miscount it; the
    /// kernel traffic counters ride along the same way.
    pub(crate) fn finish_heap_stats(&mut self, heaps: &[InvertedHeap<'_>]) {
        for h in heaps {
            self.stats.absorb_heap(h);
        }
    }
}
