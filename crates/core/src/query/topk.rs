//! Top-k spatial keyword query processing (§4.2, Algorithms 2–3).
//!
//! The score is weighted distance (Eq. 1): `ST(q,o) = d(q,o) / TR(ψ,o)` —
//! smaller is better. The processor consumes inverted heaps in order of
//! their *pseudo lower-bound scores*: for heap `H_i`, unseen objects are
//! assumed to contain keyword `t_j` only if `MINKEY(H_i) ≥ MINKEY(H_j)`
//! (the §4.2 key insight — an unseen object with a smaller bound would
//! already have surfaced in `H_j`). Lemma 1 shows this bound is never looser
//! than the valid all-unseen bound; Lemma 2 shows termination is still
//! exact.

use std::collections::BinaryHeap;

use kspin_graph::{OrderedWeight, VertexId, Weight};
use kspin_text::{ObjectId, QueryTerms, TermId, TextModel};

use crate::engine::QueryEngine;
use crate::heap::{HeapContext, InvertedHeap};
use crate::modules::NetworkDistance;

/// How network distance and textual relevance combine into the
/// spatio-textual score (§2: the framework is "orthogonal to the scoring
/// method").
///
/// Every variant must be monotone: non-decreasing in distance and
/// non-increasing in relevance — that is all the pseudo-lower-bound
/// correctness argument (Lemmas 1–2) needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreModel {
    /// `ST = d / TR` (Eq. 1) — the paper's default.
    WeightedDistance,
    /// `ST = α·d/max_dist + (1−α)·(1−min(TR,1))` — the weighted-sum
    /// alternative of [8]. `max_dist` normalizes distances into `[0, 1]`
    /// (distances above it clamp).
    WeightedSum {
        /// Spatial/textual balance in `[0, 1]`; higher favors proximity.
        alpha: f64,
        /// Distance normalizer; distances above it clamp to 1.
        max_dist: Weight,
    },
}

impl ScoreModel {
    /// Combines a distance and a relevance into a score, lower = better
    /// (Eq. 1, or the weighted sum of [8]).
    #[inline]
    pub fn combine(&self, d: Weight, tr: f64) -> f64 {
        match *self {
            ScoreModel::WeightedDistance => {
                if tr <= 0.0 {
                    f64::INFINITY
                } else {
                    d as f64 / tr
                }
            }
            ScoreModel::WeightedSum { alpha, max_dist } => {
                let dn = (d as f64 / max_dist.max(1) as f64).min(1.0);
                alpha * dn + (1.0 - alpha) * (1.0 - tr.min(1.0))
            }
        }
    }
}

impl<D: NetworkDistance> QueryEngine<'_, D> {
    /// Top-k spatial keyword query (§2): the `k` objects minimizing
    /// `d(q,o) / TR(ψ,o)` under cosine relevance. Results sorted by
    /// ascending score (ties by object id); exact.
    pub fn top_k(&mut self, q: VertexId, k: usize, terms: &[TermId]) -> Vec<(ObjectId, f64)> {
        self.top_k_with(q, k, terms, TextModel::Cosine, ScoreModel::WeightedDistance)
    }

    /// Top-k (Algorithms 2–3, §4.2) under any per-keyword-decomposable
    /// text model and any monotone score model. As in the paper, candidates
    /// must share at least one keyword with the query (under weighted sum,
    /// keyword-free objects would otherwise all qualify with `TR = 0`).
    pub fn top_k_with(
        &mut self,
        q: VertexId,
        k: usize,
        terms: &[TermId],
        text: TextModel,
        score_model: ScoreModel,
    ) -> Vec<(ObjectId, f64)> {
        let query = QueryTerms::with_model(self.corpus, terms, text);
        if k == 0 || query.is_empty() {
            // ALLOC-OK: an empty Vec::new never touches the allocator.
            return Vec::new();
        }
        let ctx = HeapContext::new(self.graph, self.corpus, self.lower_bound, q);
        // One heap per distinct query keyword, aligned with `query.terms()`.
        // Exhausted/absent heaps stay as None (MINKEY = ∞ per the paper).
        let mut heaps: Vec<Option<InvertedHeap<'_>>> = query
            .terms()
            .iter()
            .map(|&t| self.make_heap(t, &ctx))
            // ALLOC-OK: heap generation — one |ψ|-bounded Vec per query;
            // the extraction loop below never grows it.
            .collect();
        // λ_{t_j,ψ} · λ_{t_j,max} per keyword — Algorithm 2's summands,
        // generalized per text model by QueryTerms.
        let max_contrib: Vec<f64> = (0..query.len())
            .map(|j| query.max_term_contribution(j))
            // ALLOC-OK: |ψ|-bounded per-query summand table, built once.
            .collect();

        // Engine-lifetime scratch (lint H1 + determinism): the epoch-stamped
        // dedup set clears in O(1); the MINKEY snapshot reaches high-water
        // capacity on the first query and is never reallocated afterwards.
        let mut processed = std::mem::take(&mut self.scratch.evaluated);
        processed.clear();
        let mut min_keys = std::mem::take(&mut self.scratch.min_keys);
        // lint:allow(no-binary-heap) — bounded k-best result max-heap over
        // OrderedWeight scores; top-k eviction, not a vertex frontier.
        // ALLOC-OK: len ≤ k always (pop before push at capacity), so at
        // most ⌈log₂ k⌉ growth doublings per query.
        let mut best: BinaryHeap<(OrderedWeight, ObjectId)> = BinaryHeap::new();

        loop {
            let d_k = match best.peek() {
                Some(&(s, _)) if best.len() == k => s.get(),
                _ => f64::INFINITY,
            };
            // Algorithm 3 line 5/6 with Algorithm 2 inlined: select the heap
            // with the smallest pseudo lower-bound score. The paper caches
            // pseudo scores in a priority queue; recomputing them fresh each
            // round (O(|ψ|²), |ψ| ≤ 6) keeps the bound tight even when other
            // heaps' MINKEYs move, and performs the identical selection.
            min_keys.clear();
            // ALLOC-OK: engine-lifetime scratch refilled to |ψ| entries
            // after the clear above — at high-water capacity, no realloc.
            min_keys.extend(heaps.iter().map(|h| {
                h.as_ref()
                    .and_then(InvertedHeap::min_key)
                    .unwrap_or(Weight::MAX)
            }));
            let mut chosen: Option<(usize, f64)> = None;
            for (i, &mk) in min_keys.iter().enumerate() {
                if mk == Weight::MAX {
                    continue;
                }
                let plb = score_model.combine(mk, pseudo_relevance(i, &min_keys, &max_contrib));
                if chosen.is_none_or(|(_, s)| plb < s) {
                    chosen = Some((i, plb));
                }
            }
            let Some((i, plb)) = chosen else { break };
            if plb >= d_k {
                break; // Lemma 2: nothing unseen can beat the k-th score.
            }

            // PANIC-OK: i was chosen by the scan over 0..heaps.len() above.
            let Some(c) = heaps[i].as_mut().and_then(|h| h.extract(&ctx)) else {
                // Unreachable: heap `i` was chosen because MINKEY(H_i) < ∞,
                // which only live, non-empty heaps report.
                debug_assert!(false, "chosen heap {i} must exist and be non-empty");
                break;
            };
            // Keep counters before dropping an exhausted heap
            // (`heap_extractions` lives in the heap itself — once per
            // `extract` — and is merged here and at drain-out below).
            // PANIC-OK: same in-range i as the extract above.
            if let Some(h) = heaps[i].take_if(|h| h.is_empty()) {
                self.stats.absorb_heap(&h);
            }
            // ALLOC-OK: epoch-stamped SeenSet insert — a plain array
            // write into storage sized once at engine construction.
            if !processed.insert(c.object) {
                self.stats.pruned_candidates += 1;
                continue;
            }
            // Line 10: cheap lower-bound score from the object's *actual*
            // textual relevance before paying for a network distance.
            let tr = query.relevance(self.corpus, c.object);
            debug_assert!(tr > 0.0, "heap candidates share a keyword with the query");
            let lb_score = score_model.combine(c.lower_bound, tr);
            if lb_score > d_k {
                self.stats.pruned_candidates += 1;
                continue;
            }
            let d = self.dist.distance(q, self.corpus.vertex_of(c.object));
            self.stats.dist_computations += 1;
            let st = score_model.combine(d, tr);
            if best.len() < k {
                // ALLOC-OK: grows the k-best heap toward its ≤ k cap.
                best.push((OrderedWeight::new(st), c.object));
            } else if st < d_k {
                best.pop();
                // ALLOC-OK: pop above freed a slot; len stays ≤ k.
                best.push((OrderedWeight::new(st), c.object));
            }
        }
        for h in heaps.into_iter().flatten() {
            self.stats.absorb_heap(&h);
        }
        self.scratch.min_keys = min_keys;
        self.scratch.evaluated = processed;
        // ALLOC-OK: the ≤ k-element result Vec the API contract returns.
        let mut out: Vec<(ObjectId, f64)> = best.into_iter().map(|(s, o)| (o, s.get())).collect();
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// Algorithm 2's pseudo textual relevance for heap `i`:
/// `TR_p(ψ, H_i) = Σ_j [MINKEY(H_i) ≥ MINKEY(H_j)] · λ_{t_j,ψ} · λ_{t_j,max}`.
/// Exhausted heaps carry `MINKEY = ∞` and therefore contribute to nobody.
pub(crate) fn pseudo_relevance(i: usize, min_keys: &[Weight], max_contrib: &[f64]) -> f64 {
    // PANIC-OK: callers pass a heap index i < min_keys.len(); max_contrib
    // is built parallel to min_keys (one slot per query keyword).
    let mk = min_keys[i];
    let mut tr_p = 0.0;
    for (j, &other) in min_keys.iter().enumerate() {
        if mk >= other {
            tr_p += max_contrib[j]; // PANIC-OK: j < len of the parallel arrays.
        }
    }
    tr_p
}

/// Algorithm 2: `ST_pLB(H_i) = MINKEY(H_i) / TR_p(ψ, H_i)` under weighted
/// distance (exercised directly by the unit tests below; the query loop
/// uses the `pseudo_relevance` + `combine` split so any score model fits).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn pseudo_lower_bound(i: usize, min_keys: &[Weight], max_contrib: &[f64]) -> f64 {
    ScoreModel::WeightedDistance.combine(min_keys[i], pseudo_relevance(i, min_keys, max_contrib))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_bound_matches_paper_example2() {
        // Fig. 3: MINKEYs 2.7, 2.4, 1.8 with unit impacts and
        // TR = number-of-keywords semantics. Scale to integers ×10.
        let min_keys = [27, 24, 18];
        let contrib = [1.0, 1.0, 1.0];
        // H_1 (index 0) counts all three keywords: 2.7 / 3 = 0.9 → 9.0.
        assert!((pseudo_lower_bound(0, &min_keys, &contrib) - 9.0).abs() < 1e-9);
        // H_2 counts itself and H_3: 2.4 / 2 = 1.2 → 12.0.
        assert!((pseudo_lower_bound(1, &min_keys, &contrib) - 12.0).abs() < 1e-9);
        // H_3 counts only itself: 1.8 / 1 = 1.8 → 18.0.
        assert!((pseudo_lower_bound(2, &min_keys, &contrib) - 18.0).abs() < 1e-9);
    }

    #[test]
    fn lemma1_pseudo_bound_dominates_valid_bound() {
        // The valid all-unseen bound divides by the full Σ contributions;
        // the pseudo bound divides by a subset — hence is ≥.
        let min_keys = [50, 10, 30];
        let contrib = [0.5, 0.7, 0.3];
        let total: f64 = contrib.iter().sum();
        for i in 0..3 {
            let valid = min_keys[i] as f64 / total;
            assert!(pseudo_lower_bound(i, &min_keys, &contrib) + 1e-12 >= valid);
        }
    }

    #[test]
    fn exhausted_heaps_are_excluded() {
        let min_keys = [20, Weight::MAX];
        let contrib = [1.0, 1.0];
        // Heap 0 must not count the exhausted heap 1's keyword.
        assert!((pseudo_lower_bound(0, &min_keys, &contrib) - 20.0).abs() < 1e-9);
    }
}
