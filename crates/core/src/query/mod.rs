//! Query algorithms of the Query Processor (§4).

pub mod baseline;
pub mod bknn;
pub mod boolean;
pub mod topk;

/// The boolean operator of a BkNN query (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Conjunctive: results contain *all* query keywords.
    And,
    /// Disjunctive: results contain *at least one* query keyword.
    Or,
}

// Result heaps order `f64` scores through `kspin_graph::OrderedWeight`,
// the workspace's single sanctioned float-ordering site (lint
// L2/total-order-weights).
