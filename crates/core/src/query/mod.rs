//! Query algorithms of the Query Processor (§4).

pub mod baseline;
pub mod bknn;
pub mod boolean;
pub mod topk;

/// The boolean operator of a BkNN query (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Conjunctive: results contain *all* query keywords.
    And,
    /// Disjunctive: results contain *at least one* query keyword.
    Or,
}

/// Total order over `f64` scores for result heaps (scores are never NaN:
/// relevance is positive for every candidate that reaches scoring).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdScore(pub f64);

impl Eq for OrdScore {}

impl PartialOrd for OrdScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ord_score_orders_totally() {
        let mut v = vec![OrdScore(3.5), OrdScore(0.1), OrdScore(f64::INFINITY), OrdScore(2.0)];
        v.sort();
        assert_eq!(v[0], OrdScore(0.1));
        assert_eq!(v[3], OrdScore(f64::INFINITY));
    }
}
