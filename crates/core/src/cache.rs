//! The cross-query heap-seed cache (serving-layer optimization).
//!
//! §6 Observation 1: keyword frequencies are Zipf-distributed, so a small
//! set of hot keywords dominates any realistic query load. Yet every
//! [`crate::heap::InvertedHeap::create`] recomputes the same
//! query-*independent* work for such keywords: locate the quadtree source
//! cell of the query vertex, gather the cell's generator candidates plus
//! the §6.2 lazily-attached inserts, sort and deduplicate them (Theorem 1's
//! seed set). This module memoizes exactly that value — the seed candidates
//! per `(keyword, source cell)` — across queries and across the
//! [`crate::serving::BatchExecutor`]'s worker threads.
//!
//! What is *not* cached: the `MINKEY` lower-bound keys. Those depend on the
//! query vertex and are recomputed per query, so Property 1 (§5) is
//! preserved verbatim — a cached seeding pushes the identical candidate set
//! in the identical order as a cold seeding, and `LazyReheap` proceeds
//! unchanged. The `ExactLowerBound`-armed extraction-order audit therefore
//! holds with the cache enabled (see `tests/property_invariants.rs`).
//!
//! Admission policy: only NVD-backed keywords — exactly those with
//! `|inv(t)| > ρ` (Observation 1's split) — are admitted. Zipf-tail
//! keywords seed from their whole (≤ ρ) list with no cell lookup, so there
//! is nothing worth memoizing for them.
//!
//! Consistency: index updates (§6.2 lazy insert/delete and `rebuild_term`)
//! invalidate every cached cell of the touched keyword, synchronously,
//! under the index's `&mut self` — queries hold `&KspinIndex`, so Rust's
//! aliasing rules make an update racing a lookup impossible.
//!
//! Concurrency: the cache is sharded; each shard is an independent
//! `Mutex`-guarded LRU map with a byte budget. This file is a sanctioned
//! concurrency site of the `sanctioned-concurrency` lint (see
//! `xtask/src/rules/l3_concurrency.rs`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use kspin_graph::VertexId;
use kspin_text::TermId;

use crate::index::NvdIndex;

/// Configuration of the heap-seed cache (part of
/// [`crate::KspinConfig`]).
#[derive(Debug, Clone)]
pub struct SeedCacheConfig {
    /// Whether the index carries a seed cache at all.
    pub enabled: bool,
    /// Total capacity budget in bytes across all shards; least-recently
    /// used entries are evicted once a shard exceeds its share.
    pub capacity_bytes: usize,
    /// Number of independent shards (clamped to at least 1).
    pub shards: usize,
}

impl Default for SeedCacheConfig {
    fn default() -> Self {
        SeedCacheConfig {
            enabled: false,
            capacity_bytes: 4 * 1024 * 1024,
            shards: 8,
        }
    }
}

impl SeedCacheConfig {
    /// An enabled cache with the default budget — convenience for tests
    /// and benches.
    pub fn enabled() -> Self {
        SeedCacheConfig {
            enabled: true,
            ..SeedCacheConfig::default()
        }
    }
}

/// One memoized seed candidate: the NVD-local object id plus its road
/// vertex (denormalized so a cached seeding performs no per-candidate
/// `object_vertex` lookups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedCandidate {
    /// NVD-local object id (original generator or attached insert).
    pub local: u32,
    /// The object's road-network vertex.
    pub vertex: VertexId,
}

/// Fixed per-entry overhead charged against the byte budget (key, map
/// slot, `Arc` header) on top of the seed payload itself.
const ENTRY_OVERHEAD_BYTES: usize = 64;

fn entry_bytes(seeds: &[SeedCandidate]) -> usize {
    std::mem::size_of_val(seeds) + ENTRY_OVERHEAD_BYTES
}

#[derive(Debug)]
struct Entry {
    seeds: Arc<[SeedCandidate]>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    /// Keyed by `(keyword, quadtree leaf)`. A `BTreeMap` rather than a
    /// `HashMap` so every scan over the shard — the LRU victim search in
    /// [`Shard::evict_to`], the invalidation `retain` — visits entries in
    /// key order, independent of any hash seed (`cargo xtask determinism`
    /// flags `RandomState` iteration on serving paths). Ties in
    /// `last_used` therefore evict the same victim on every replica.
    map: BTreeMap<(TermId, u32), Entry>,
    /// Monotone recency clock; bumped per touch.
    tick: u64,
    /// Bytes currently charged to this shard.
    bytes: usize,
}

impl Shard {
    /// Evicts least-recently-used entries until the shard fits `budget`.
    /// Linear-scan LRU: shards hold few enough entries (budget / entry
    /// size) that a scan beats the bookkeeping of an intrusive list.
    fn evict_to(&mut self, budget: usize) {
        while self.bytes > budget && !self.map.is_empty() {
            let mut victim: Option<((TermId, u32), u64)> = None;
            for (&k, e) in &self.map {
                if victim.is_none_or(|(_, t)| e.last_used < t) {
                    victim = Some((k, e.last_used));
                }
            }
            if let Some((k, _)) = victim {
                if let Some(e) = self.map.remove(&k) {
                    self.bytes -= entry_bytes(&e.seeds);
                }
            }
        }
    }
}

/// Aggregate counters of a [`HeapSeedCache`], lifetime totals across all
/// shards (per-query accounting lives in [`crate::QueryStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeedCacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed (followed by an admission).
    pub misses: u64,
    /// Entries dropped by keyword invalidation (§6.2 updates).
    pub invalidated: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Bytes currently held (payload + per-entry overhead).
    pub bytes: usize,
}

/// The sharded, byte-budgeted, Zipf-aware cross-query heap-seed cache.
///
/// Keys are `(keyword, quadtree leaf)`; values are the sorted seed
/// candidate sets of [`kspin_nvd::ApproxNvd::init_candidates_of_leaf`],
/// denormalized with object vertices. Shared by reference across the
/// [`crate::serving::BatchExecutor`] worker threads.
#[derive(Debug)]
pub struct HeapSeedCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
}

impl HeapSeedCache {
    /// Creates an empty cache per `config` (which must be `enabled`;
    /// callers gate on the flag).
    pub fn new(config: &SeedCacheConfig) -> Self {
        let shards = config.shards.max(1);
        HeapSeedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            // PANIC-OK: shards >= 1 by the max(1) above.
            shard_budget: (config.capacity_bytes / shards).max(ENTRY_OVERHEAD_BYTES),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// Shard count — part of the snapshot's cache shape.
    pub(crate) fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard byte budget — part of the snapshot's cache shape.
    pub(crate) fn shard_budget(&self) -> usize {
        self.shard_budget
    }

    /// Rebuilds an empty cache with an explicit shape (the snapshot
    /// loader's entry point; [`HeapSeedCache::new`] derives the budget
    /// from a capacity instead). Restoring empty is sound: cached seeding
    /// is bit-identical to cold seeding by construction.
    pub(crate) fn from_shape(shards: usize, shard_budget: usize) -> Self {
        let shards = shards.max(1);
        HeapSeedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: shard_budget.max(ENTRY_OVERHEAD_BYTES),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    fn shard(&self, t: TermId, leaf: u32) -> MutexGuard<'_, Shard> {
        let mix = (t as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(leaf as u64);
        // PANIC-OK: new() builds at least one shard, so the modulus is
        // non-zero and i < shards.len().
        let i = (mix % self.shards.len() as u64) as usize;
        let shard = &self.shards[i]; // PANIC-OK: i < shards.len() by the modulus.
        match shard.lock() {
            Ok(g) => g,
            // A worker that panicked mid-insert left the shard in a valid
            // (if partially updated) state: every mutation below keeps
            // `bytes` and `map` consistent statement-by-statement.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The memoized seeds of `(t, leaf)`, bumping recency; `None` on miss.
    pub fn lookup(&self, t: TermId, leaf: u32) -> Option<Arc<[SeedCandidate]>> {
        let mut shard = self.shard(t, leaf);
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&(t, leaf)) {
            Some(e) => {
                e.last_used = tick;
                let seeds = Arc::clone(&e.seeds);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(seeds)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Admits freshly computed seeds for `(t, leaf)`, evicting LRU entries
    /// past the shard budget. Racing admissions of the same key (two
    /// workers missing concurrently) are benign: both computed the same
    /// deterministic value and the second simply replaces the first.
    pub fn admit(&self, t: TermId, leaf: u32, seeds: Arc<[SeedCandidate]>) {
        let bytes = entry_bytes(&seeds);
        let budget = self.shard_budget;
        let mut shard = self.shard(t, leaf);
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(old) = shard.map.insert(
            (t, leaf),
            Entry {
                seeds,
                last_used: tick,
            },
        ) {
            shard.bytes -= entry_bytes(&old.seeds);
        }
        shard.bytes += bytes;
        shard.evict_to(budget);
    }

    /// Drops every cached cell of keyword `t` — the §6.2 lazy-update hook:
    /// `insert_into_term`, `delete_from_term` and `rebuild_term` call this
    /// so no query ever seeds from a pre-update candidate set.
    pub fn invalidate_term(&self, t: TermId) {
        let mut dropped = 0u64;
        for m in &self.shards {
            let mut shard = match m.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let before = shard.map.len();
            let mut freed = 0;
            shard.map.retain(|&(kt, _), e| {
                let keep = kt != t;
                if !keep {
                    freed += entry_bytes(&e.seeds);
                }
                keep
            });
            dropped += (before - shard.map.len()) as u64;
            shard.bytes -= freed;
        }
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Empties the cache (benches use this to compare warm vs cold runs on
    /// one index build). Lifetime hit/miss counters are reset too.
    pub fn clear(&self) {
        for m in &self.shards {
            let mut shard = match m.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            shard.map.clear();
            shard.bytes = 0;
            shard.tick = 0;
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.invalidated.store(0, Ordering::Relaxed);
    }

    /// Lifetime counters plus current occupancy.
    pub fn stats(&self) -> SeedCacheStats {
        let mut entries = 0;
        let mut bytes = 0;
        for m in &self.shards {
            let shard = match m.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            entries += shard.map.len();
            bytes += shard.bytes;
        }
        SeedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

/// Computes the seed candidates of `(t, leaf)` from the keyword's NVD —
/// the value the cache memoizes. Sorted ascending by local id, exactly the
/// order a cold [`crate::heap::InvertedHeap::create`] seeds in, so cached
/// and cold heaps are bit-identical in extraction order.
pub(crate) fn compute_seeds(n: &NvdIndex, leaf: u32) -> Arc<[SeedCandidate]> {
    n.nvd()
        .init_candidates_of_leaf(leaf)
        .into_iter()
        .map(|local| SeedCandidate {
            local,
            vertex: n.nvd().object_vertex(local),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds(n: usize) -> Arc<[SeedCandidate]> {
        (0..n as u32)
            .map(|local| SeedCandidate {
                local,
                vertex: local,
            })
            .collect()
    }

    #[test]
    fn lookup_miss_then_hit() {
        let cache = HeapSeedCache::new(&SeedCacheConfig::enabled());
        assert!(cache.lookup(3, 7).is_none());
        cache.admit(3, 7, seeds(4));
        let got = cache.lookup(3, 7).expect("admitted entry");
        assert_eq!(got.len(), 4);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes >= 4 * std::mem::size_of::<SeedCandidate>());
    }

    #[test]
    fn invalidate_drops_only_the_keyword() {
        let cache = HeapSeedCache::new(&SeedCacheConfig::enabled());
        cache.admit(1, 0, seeds(2));
        cache.admit(1, 9, seeds(2));
        cache.admit(2, 0, seeds(2));
        cache.invalidate_term(1);
        assert!(cache.lookup(1, 0).is_none());
        assert!(cache.lookup(1, 9).is_none());
        assert!(cache.lookup(2, 0).is_some());
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let config = SeedCacheConfig {
            enabled: true,
            // One shard, room for ~2 small entries.
            capacity_bytes: 2 * (8 * std::mem::size_of::<SeedCandidate>() + ENTRY_OVERHEAD_BYTES),
            shards: 1,
        };
        let cache = HeapSeedCache::new(&config);
        cache.admit(0, 0, seeds(8));
        cache.admit(0, 1, seeds(8));
        // Touch (0,0) so (0,1) is the LRU victim.
        assert!(cache.lookup(0, 0).is_some());
        cache.admit(0, 2, seeds(8));
        assert!(cache.lookup(0, 1).is_none(), "LRU entry must be evicted");
        assert!(cache.lookup(0, 0).is_some());
        assert!(cache.lookup(0, 2).is_some());
        assert!(cache.stats().bytes <= config.capacity_bytes);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = HeapSeedCache::new(&SeedCacheConfig::enabled());
        cache.admit(5, 5, seeds(3));
        assert!(cache.lookup(5, 5).is_some());
        cache.clear();
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.hits, 0);
        assert!(cache.lookup(5, 5).is_none());
    }

    #[test]
    fn shared_across_threads() {
        let cache = HeapSeedCache::new(&SeedCacheConfig::enabled());
        crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            for w in 0..4u32 {
                let cache = &cache;
                handles.push(s.spawn(move |_| {
                    for i in 0..50 {
                        let (t, leaf) = ((i % 5) as TermId, w % 2);
                        if cache.lookup(t, leaf).is_none() {
                            cache.admit(t, leaf, seeds(4));
                        }
                    }
                }));
            }
            for h in handles {
                h.join().expect("cache worker panicked");
            }
        })
        .expect("scope failed");
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 200);
        assert!(s.entries <= 10);
    }
}
