//! The Keyword Separated Index (§6).
//!
//! One independent spatial index per keyword:
//!
//! * keywords with `|inv(t)| ≤ ρ` get **no NVD at all** (Observation 1 —
//!   under Zipf's law that is the vast majority); their inverted list *is*
//!   the index,
//! * frequent keywords get a [`ApproxNvd`] (§6.1) whose generators are the
//!   keyword's objects.
//!
//! Keyword independence makes construction embarrassingly parallel
//! (Observation 3); `build` fans terms out over worker threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use std::collections::BTreeMap;

use kspin_graph::{Graph, VertexId};
use kspin_nvd::ApproxNvd;
use kspin_text::{Corpus, ObjectId, TermId};

use crate::cache::{HeapSeedCache, SeedCacheConfig};
use crate::modules::NetworkDistance;

/// Index construction parameters.
#[derive(Debug, Clone)]
pub struct KspinConfig {
    /// The ρ threshold: keywords with at most this many objects skip NVD
    /// construction, and NVD quadtrees stop splitting at ρ colors. Paper
    /// default: 5.
    pub rho: usize,
    /// Worker threads for parallel per-keyword NVD construction.
    pub num_threads: usize,
    /// The cross-query heap-seed cache (serving layer; off by default).
    /// Admission is implied by the ρ-split: only NVD-backed keywords —
    /// exactly those with `|inv(t)| > ρ` — have cacheable seed sets.
    pub seed_cache: SeedCacheConfig,
}

impl Default for KspinConfig {
    fn default() -> Self {
        KspinConfig {
            rho: 5,
            // DETER-OK: sizes the build/serving worker pool only; every
            // parallel path writes into input-ordered result slots, so the
            // worker count never reaches a returned value.
            num_threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
            seed_cache: SeedCacheConfig::default(),
        }
    }
}

/// Index for one Zipf-tail keyword: just its (mutable) object list.
#[derive(Debug, Clone, Default)]
pub struct SmallIndex {
    pub(crate) objects: Vec<ObjectId>,
    pub(crate) vertices: Vec<VertexId>,
    pub(crate) alive: Vec<bool>,
}

impl SmallIndex {
    fn push(&mut self, o: ObjectId, v: VertexId) {
        // ALLOC-OK: index construction/update path, amortized over corpus
        // size; only conservative name-match edges reach it from serving.
        self.objects.push(o);
        // ALLOC-OK: same update-path invariant as above.
        self.vertices.push(v);
        // ALLOC-OK: same update-path invariant as above.
        self.alive.push(true);
    }

    /// Live object count.
    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }
}

/// Index for a frequent keyword: ρ-approximate NVD plus the mapping from
/// NVD-local generator ids to corpus object ids.
#[derive(Debug, Clone)]
pub struct NvdIndex {
    pub(crate) apx: ApproxNvd,
    /// `corpus_ids[local] = corpus object id` (extended by lazy inserts).
    pub(crate) corpus_ids: Vec<ObjectId>,
    /// Reverse mapping, `object id → local id`. A `BTreeMap` rather than
    /// a `HashMap`: lookups are the only hot operation, but the auditor
    /// and §6.2 update paths iterate it, and a `RandomState`-ordered walk
    /// on those paths is exactly what `cargo xtask determinism` forbids.
    pub(crate) local_of: BTreeMap<ObjectId, u32>,
}

impl NvdIndex {
    pub(crate) fn new(apx: ApproxNvd, corpus_ids: Vec<ObjectId>) -> Self {
        let local_of = corpus_ids
            .iter()
            .enumerate()
            .map(|(l, &o)| (o, l as u32))
            .collect();
        NvdIndex {
            apx,
            corpus_ids,
            local_of,
        }
    }

    /// The underlying approximate NVD.
    pub fn nvd(&self) -> &ApproxNvd {
        &self.apx
    }
}

/// Per-keyword index: none (keyword unused), small list, or NVD.
#[derive(Debug, Clone)]
pub enum KeywordIndex {
    /// `|inv(t)| ≤ ρ`: the object list is the whole index.
    Small(SmallIndex),
    /// Frequent keyword: ρ-approximate NVD. Boxed so the Zipf-tail `Small`
    /// majority keeps the per-term array entry small.
    Nvd(Box<NvdIndex>),
}

/// Construction statistics reported by the index benches (Figs. 6, 14).
#[derive(Debug, Clone, Default)]
pub struct BuildStats {
    /// Keywords indexed with an NVD.
    pub nvd_terms: usize,
    /// Keywords indexed with a plain list (Observation 1 beneficiaries).
    pub small_terms: usize,
    /// Wall-clock build time in seconds.
    pub build_seconds: f64,
}

/// The Keyword Separated Index over a whole corpus.
#[derive(Debug)]
pub struct KspinIndex {
    rho: usize,
    entries: Vec<Option<KeywordIndex>>,
    stats: BuildStats,
    /// The cross-query heap-seed cache, when the index was built with one
    /// ([`SeedCacheConfig::enabled`]). Owned by the index so §6.2 updates
    /// (`&mut self`) invalidate it without any query racing them.
    seed_cache: Option<HeapSeedCache>,
}

impl KspinIndex {
    /// Translates every stored vertex id onto a renumbered graph: small
    /// entries map their vertex lists through `r`, NVD entries relabel
    /// their ρ-approximate diagrams. Everything else in the index —
    /// object ids, Morton leaves, seed-cache keys and cached seeds — is
    /// vertex-free, so query results (including boundary-distance
    /// tie-breaks, which depend on extraction order, not ids) are
    /// bit-identical to the unpermuted index. Build-time only.
    pub fn relabel(&mut self, r: &kspin_graph::Relabeling) {
        for entry in self.entries.iter_mut().flatten() {
            match entry {
                KeywordIndex::Small(s) => {
                    for v in &mut s.vertices {
                        *v = r.to_local(*v);
                    }
                }
                KeywordIndex::Nvd(nvd) => nvd.apx.relabel(r),
            }
        }
        // Cached seeds denormalize object vertices (SeedCandidate.vertex),
        // so a relabel flushes the cache; it refills deterministically and
        // the serving determinism suite pins cache-on ≡ cache-off results.
        if let Some(cache) = &self.seed_cache {
            cache.clear();
        }
    }

    /// Builds the index over all corpus objects.
    pub fn build(graph: &Graph, corpus: &Corpus, config: &KspinConfig) -> Self {
        Self::build_filtered(graph, corpus, |_| true, config)
    }

    /// Builds over the subset of objects for which `include` holds — the
    /// §6.2 update experiment builds over (100−x)% and lazily inserts the
    /// rest.
    pub fn build_filtered<F>(
        graph: &Graph,
        corpus: &Corpus,
        include: F,
        config: &KspinConfig,
    ) -> Self
    where
        F: Fn(ObjectId) -> bool + Sync,
    {
        assert!(config.rho >= 1, "rho must be at least 1");
        let start = Instant::now();
        let num_terms = corpus.num_terms();
        let next = AtomicUsize::new(0);
        let threads = config.num_threads.max(1);

        let mut shards: Vec<Vec<(TermId, KeywordIndex)>> = Vec::new();
        let scope_result = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let next = &next;
                let include = &include;
                handles.push(scope.spawn(move |_| {
                    let mut out = Vec::new();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= num_terms {
                            break;
                        }
                        let t = t as TermId;
                        if let Some(entry) = Self::build_term(graph, corpus, t, include, config.rho)
                        {
                            out.push((t, entry));
                        }
                    }
                    out
                }));
            }
            shards = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(shard) => shard,
                    // Re-raise the worker's own panic payload so the
                    // original failure reaches the caller, not a generic
                    // join message.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect();
        });
        if let Err(payload) = scope_result {
            // Unreachable: every handle is joined above, so crossbeam's
            // unjoined-child-panicked arm can never trigger; re-raise to
            // preserve the payload if it somehow does.
            std::panic::resume_unwind(payload);
        }

        let mut entries: Vec<Option<KeywordIndex>> = (0..num_terms).map(|_| None).collect();
        let mut stats = BuildStats::default();
        for shard in shards {
            for (t, entry) in shard {
                match &entry {
                    KeywordIndex::Small(_) => stats.small_terms += 1,
                    KeywordIndex::Nvd(_) => stats.nvd_terms += 1,
                }
                entries[t as usize] = Some(entry);
            }
        }
        stats.build_seconds = start.elapsed().as_secs_f64();
        KspinIndex {
            rho: config.rho,
            entries,
            stats,
            seed_cache: config
                .seed_cache
                .enabled
                .then(|| HeapSeedCache::new(&config.seed_cache)),
        }
    }

    fn build_term<F>(
        graph: &Graph,
        corpus: &Corpus,
        t: TermId,
        include: &F,
        rho: usize,
    ) -> Option<KeywordIndex>
    where
        F: Fn(ObjectId) -> bool,
    {
        let postings = corpus.inverted(t);
        let mut objects = Vec::new();
        let mut vertices = Vec::new();
        for p in postings {
            if include(p.object) {
                objects.push(p.object);
                vertices.push(corpus.vertex_of(p.object));
            }
        }
        if objects.is_empty() {
            return None;
        }
        if objects.len() <= rho {
            let alive = vec![true; objects.len()];
            return Some(KeywordIndex::Small(SmallIndex {
                objects,
                vertices,
                alive,
            }));
        }
        let apx = ApproxNvd::build(graph, &vertices, rho);
        Some(KeywordIndex::Nvd(Box::new(NvdIndex::new(apx, objects))))
    }

    /// The ρ the index was built with.
    pub fn rho(&self) -> usize {
        self.rho
    }

    /// Construction statistics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The per-keyword index of `t`, if the keyword has any objects.
    #[inline]
    pub fn entry(&self, t: TermId) -> Option<&KeywordIndex> {
        self.entries.get(t as usize).and_then(Option::as_ref)
    }

    /// The cross-query heap-seed cache, if the index carries one.
    #[inline]
    pub fn seed_cache(&self) -> Option<&HeapSeedCache> {
        self.seed_cache.as_ref()
    }

    /// Every per-term entry in term-slot order — the snapshot
    /// serialization boundary (`entries.len()` is the term-slot count).
    pub(crate) fn snapshot_entries(&self) -> &[Option<KeywordIndex>] {
        &self.entries
    }

    /// Reassembles an index from decoded parts. Per-entry structure is
    /// validated by the snapshot codec before this runs; the seed cache
    /// restores empty (cached seeding ≡ cold seeding, so serving is
    /// bit-identical either way).
    pub(crate) fn from_snapshot_parts(
        rho: usize,
        entries: Vec<Option<KeywordIndex>>,
        stats: BuildStats,
        seed_cache: Option<HeapSeedCache>,
    ) -> Self {
        KspinIndex {
            rho,
            entries,
            stats,
            seed_cache,
        }
    }

    /// Approximate index size in bytes (Keyword Separated Index only — the
    /// distance and lower-bound modules report their own sizes).
    pub fn size_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .map(|e| match e {
                KeywordIndex::Small(s) => s.objects.len() * 9 + 24,
                KeywordIndex::Nvd(n) => n.apx.size_bytes() + n.corpus_ids.len() * 12,
            })
            .sum()
    }

    /// The debug-mode invariant auditor: cross-checks every per-keyword
    /// index against `corpus` and ρ, returning all violations found.
    ///
    /// Per keyword `t`, the audit asserts:
    ///
    /// * **ρ-split (Observation 1)** — a [`SmallIndex`] holds at most ρ
    ///   objects and an [`NvdIndex`] was built over more than ρ generators.
    ///   Lazy §6.2 updates may legitimately drift a term past the
    ///   threshold, so fold pending updates with
    ///   [`KspinIndex::rebuild_term`] before validating an updated index.
    /// * Table consistency — `SmallIndex` parallel arrays agree in length
    ///   and hold no duplicate object; `NvdIndex`'s local↔corpus id
    ///   mapping is a bijection sized to the NVD's object set.
    /// * Vertex agreement — each indexed object sits on its corpus vertex.
    /// * The per-NVD structural audit [`ApproxNvd::validate`] (adjacency
    ///   symmetry — Observation 2a — plus quadtree candidate invariants),
    ///   with violations prefixed by the owning keyword.
    pub fn validate(&self, corpus: &Corpus) -> Result<(), Vec<String>> {
        let mut errs = Vec::new();
        for (ti, entry) in self.entries.iter().enumerate() {
            let t = ti as TermId;
            match entry {
                None => {}
                Some(KeywordIndex::Small(s)) => {
                    if s.objects.len() != s.vertices.len() || s.objects.len() != s.alive.len() {
                        errs.push(format!(
                            "term {t}: Small parallel arrays disagree \
                             ({} objects, {} vertices, {} alive flags)",
                            s.objects.len(),
                            s.vertices.len(),
                            s.alive.len()
                        ));
                        continue;
                    }
                    if s.objects.len() > self.rho {
                        errs.push(format!(
                            "term {t}: ρ-split violated — Small index holds {} > ρ = {} objects",
                            s.objects.len(),
                            self.rho
                        ));
                    }
                    for (i, &o) in s.objects.iter().enumerate() {
                        if s.objects[..i].contains(&o) {
                            errs.push(format!("term {t}: object {o} appears twice in Small index"));
                        }
                        if s.vertices[i] != corpus.vertex_of(o) {
                            errs.push(format!(
                                "term {t}: object {o} indexed at vertex {} but corpus places it at {}",
                                s.vertices[i],
                                corpus.vertex_of(o)
                            ));
                        }
                    }
                }
                Some(KeywordIndex::Nvd(n)) => {
                    if n.apx.num_original() <= self.rho {
                        errs.push(format!(
                            "term {t}: ρ-split violated — NVD built over {} ≤ ρ = {} generators",
                            n.apx.num_original(),
                            self.rho
                        ));
                    }
                    if n.corpus_ids.len() != n.apx.num_total() {
                        errs.push(format!(
                            "term {t}: {} corpus ids for {} NVD objects",
                            n.corpus_ids.len(),
                            n.apx.num_total()
                        ));
                    }
                    if n.local_of.len() != n.corpus_ids.len() {
                        errs.push(format!(
                            "term {t}: local_of has {} entries for {} corpus ids \
                             (duplicate or missing object?)",
                            n.local_of.len(),
                            n.corpus_ids.len()
                        ));
                    }
                    for (l, &o) in n.corpus_ids.iter().enumerate() {
                        let l = l as u32;
                        if n.local_of.get(&o) != Some(&l) {
                            errs.push(format!(
                                "term {t}: corpus_ids[{l}] = {o} but local_of[{o}] = {:?}",
                                n.local_of.get(&o)
                            ));
                        }
                        if (l as usize) < n.apx.num_total()
                            && n.apx.object_vertex(l) != corpus.vertex_of(o)
                        {
                            errs.push(format!(
                                "term {t}: object {o} indexed at vertex {} but corpus places it at {}",
                                n.apx.object_vertex(l),
                                corpus.vertex_of(o)
                            ));
                        }
                    }
                    if let Err(sub) = n.apx.validate() {
                        errs.extend(sub.into_iter().map(|e| format!("term {t}: {e}")));
                    }
                }
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    // ---- §6.2 updates -------------------------------------------------

    /// Lazily inserts corpus object `o` into the index of every keyword in
    /// its document. The object must not already be present.
    pub fn insert_object(
        &mut self,
        graph: &Graph,
        corpus: &Corpus,
        o: ObjectId,
        dist: &mut dyn NetworkDistance,
    ) {
        let terms: Vec<TermId> = corpus.doc(o).iter().map(|p| p.term).collect();
        for t in terms {
            self.insert_into_term(graph, corpus, o, t, dist);
        }
    }

    /// Marks corpus object `o` deleted in every keyword index of its
    /// document.
    ///
    /// # Panics
    /// If `o` is not currently live in one of its keywords' indexes (see
    /// [`KspinIndex::delete_from_term`]).
    pub fn delete_object(&mut self, corpus: &Corpus, o: ObjectId) {
        let terms: Vec<TermId> = corpus.doc(o).iter().map(|p| p.term).collect();
        for t in terms {
            self.delete_from_term(o, t);
        }
    }

    /// Adds object `o` to keyword `t`'s index ("adding a keyword to an
    /// existing object" in §6.2).
    ///
    /// # Panics
    /// If `o` is already live in keyword `t`'s index — inserting a present
    /// object would double-count it in every query touching `t`.
    pub fn insert_into_term(
        &mut self,
        graph: &Graph,
        corpus: &Corpus,
        o: ObjectId,
        t: TermId,
        dist: &mut dyn NetworkDistance,
    ) {
        // §6.2 lazy update: every cached seed set of `t` may now miss the
        // new object (it might belong in a cell's candidate/attachment
        // set), so drop them all before the structural change.
        if let Some(cache) = &self.seed_cache {
            cache.invalidate_term(t);
        }
        let vertex = corpus.vertex_of(o);
        if (t as usize) >= self.entries.len() {
            self.entries.resize_with(t as usize + 1, || None);
        }
        match &mut self.entries[t as usize] {
            slot @ None => {
                let mut s = SmallIndex::default();
                s.push(o, vertex);
                *slot = Some(KeywordIndex::Small(s));
                self.stats.small_terms += 1;
            }
            Some(KeywordIndex::Small(s)) => {
                if let Some(i) = s.objects.iter().position(|&x| x == o) {
                    assert!(!s.alive[i], "object {o} already in keyword {t} index");
                    s.alive[i] = true;
                } else {
                    s.push(o, vertex);
                }
            }
            Some(KeywordIndex::Nvd(n)) => {
                if let Some(&local) = n.local_of.get(&o) {
                    assert!(
                        n.apx.is_deleted(local),
                        "object {o} already in keyword {t} index"
                    );
                    n.apx.undelete_object(local);
                } else {
                    let mut d = |a: VertexId, b: VertexId| dist.distance(a, b);
                    let local = n.apx.insert_object(vertex, graph.coord(vertex), &mut d);
                    debug_assert_eq!(local as usize, n.corpus_ids.len());
                    n.corpus_ids.push(o);
                    n.local_of.insert(o, local);
                }
            }
        }
    }

    /// Removes object `o` from keyword `t`'s index (mark-only).
    ///
    /// # Panics
    /// If `o` is not currently live in keyword `t`'s index. Deletion of an
    /// absent object is a caller contract violation, not a recoverable
    /// state: silently ignoring it would let the index drift from the
    /// corpus and return stale objects from queries (§6.2 requires
    /// delete-then-rebuild bookkeeping to stay exact).
    pub fn delete_from_term(&mut self, o: ObjectId, t: TermId) {
        // Deleted objects would be skipped at seeding time anyway, but
        // dropping `t`'s cached cells keeps cached and cold seeding
        // trivially identical after every §6.2 update.
        if let Some(cache) = &self.seed_cache {
            cache.invalidate_term(t);
        }
        match self.entries.get_mut(t as usize).and_then(Option::as_mut) {
            None => panic!("keyword {t} has no index"),
            Some(KeywordIndex::Small(s)) => {
                let i = s
                    .objects
                    .iter()
                    .position(|&x| x == o)
                    .unwrap_or_else(|| panic!("object {o} not in keyword {t} index"));
                assert!(s.alive[i], "object {o} already deleted from keyword {t}");
                s.alive[i] = false;
            }
            Some(KeywordIndex::Nvd(n)) => {
                let &local = n
                    .local_of
                    .get(&o)
                    .unwrap_or_else(|| panic!("object {o} not in keyword {t} index"));
                n.apx.delete_object(local);
            }
        }
    }

    /// Rebuilds keyword `t`'s index from its live object set, folding lazy
    /// updates in (the amortized cost of Fig. 8(b)). Converts between
    /// Small and NVD representations as the live count crosses ρ.
    pub fn rebuild_term(&mut self, graph: &Graph, corpus: &Corpus, t: TermId) {
        // A rebuild renumbers NVD-local ids; stale cached seeds would point
        // at the wrong objects, so drop every cell of `t`.
        if let Some(cache) = &self.seed_cache {
            cache.invalidate_term(t);
        }
        let Some(entry) = self.entries.get_mut(t as usize).and_then(Option::as_mut) else {
            return;
        };
        let live: Vec<ObjectId> = match entry {
            KeywordIndex::Small(s) => s
                .objects
                .iter()
                .zip(&s.alive)
                .filter(|&(_, &a)| a)
                .map(|(&o, _)| o)
                .collect(),
            KeywordIndex::Nvd(n) => (0..n.apx.num_total() as u32)
                .filter(|&l| !n.apx.is_deleted(l))
                .map(|l| n.corpus_ids[l as usize])
                .collect(),
        };
        if live.is_empty() {
            self.entries[t as usize] = None;
            return;
        }
        let vertices: Vec<VertexId> = live.iter().map(|&o| corpus.vertex_of(o)).collect();
        let fresh = if live.len() <= self.rho {
            KeywordIndex::Small(SmallIndex {
                alive: vec![true; live.len()],
                objects: live,
                vertices,
            })
        } else {
            KeywordIndex::Nvd(Box::new(NvdIndex::new(
                ApproxNvd::build(graph, &vertices, self.rho),
                live,
            )))
        };
        self.entries[t as usize] = Some(fresh);
    }

    /// Live object count in `t`'s index (0 when the keyword is unused).
    pub fn live_count(&self, t: TermId) -> usize {
        match self.entry(t) {
            None => 0,
            Some(KeywordIndex::Small(s)) => s.live_count(),
            Some(KeywordIndex::Nvd(n)) => (0..n.apx.num_total() as u32)
                .filter(|&l| !n.apx.is_deleted(l))
                .count(),
        }
    }
}

/// Fraction of indexed keywords that avoided NVD construction — the
/// Observation-1 payoff, reported by the Fig. 14 bench.
pub fn small_fraction(stats: &BuildStats) -> f64 {
    let total = stats.nvd_terms + stats.small_terms;
    if total == 0 {
        0.0
    } else {
        stats.small_terms as f64 / total as f64
    }
}
