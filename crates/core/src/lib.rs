//! K-SPIN: the Keyword Separated Indexing framework (the paper's primary
//! contribution).
//!
//! The framework (§3, Fig. 2) is four cooperating modules:
//!
//! 1. **Lower Bounding Module** — any [`LowerBound`] oracle; ALT by default.
//! 2. **Network Distance Module** — any [`NetworkDistance`] oracle; the
//!    paper's point is that this is pluggable (CH, PHL/HL, G-tree, …).
//! 3. **Heap Generator** — [`heap::InvertedHeap`]: *on-demand inverted
//!    heaps* satisfying Property 1, lazily populated from the Keyword
//!    Separated Index via `LazyReheap` (Algorithm 4).
//! 4. **Query Processor** — [`engine::QueryEngine`]: disjunctive/conjunctive
//!    Boolean kNN (Algorithm 1, §4.1), top-k with pseudo lower-bound scores
//!    (Algorithms 2–3, §4.2), and mixed ∧/∨ boolean trees (§2 remark).
//!
//! The Keyword Separated Index itself is [`index::KspinIndex`]: one
//! ρ-Approximate NVD per frequent keyword, plain object lists for the
//! Zipf-tail keywords with `|inv(t)| ≤ ρ` (Observation 1), built in
//! parallel over keywords (Observation 3), updatable in place (§6.2).

#![deny(missing_docs)]

pub mod cache;
pub mod engine;
pub mod heap;
pub mod index;
pub mod modules;
pub mod query;
pub mod serving;
pub mod snapshot;

pub use cache::{HeapSeedCache, SeedCacheConfig, SeedCacheStats};
pub use engine::{QueryEngine, QueryStats};
pub use index::{KspinConfig, KspinIndex};
pub use modules::{
    AltAstarDistance, BiDijkstraDistance, DijkstraDistance, ExactLowerBound, LowerBound,
    NetworkDistance,
};
pub use query::boolean::BoolExpr;
pub use query::topk::ScoreModel;
pub use query::Op;
pub use serving::{BatchExecutor, BatchOutput, ServingQuery, ServingResult};
