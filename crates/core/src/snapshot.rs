//! Engine-level snapshot codecs: mapping K-SPIN structures onto the flat
//! section format of [`kspin_snapshot`].
//!
//! This module knows how the engine's structures — CSR graph, corpus
//! posting columns, the Keyword Separated Index with its per-term
//! ρ-approximate NVDs, ALT landmark tables, the CH upward graph and the
//! active relabeling — flatten into the section registry of
//! [`kspin_snapshot::format::section`]. Each `encode_*` appends its
//! sections to a [`SnapshotWriter`] in ascending id order; each
//! `decode_*` copies the sections back out of a validated
//! [`SnapshotFile`] and reassembles the structure through its crate's
//! validating `from_*_parts` constructor, so a checksum-valid but
//! logically corrupt file yields a structured [`SnapshotError`] rather
//! than a panic or a broken engine.
//!
//! Encoding is canonical: a structure always produces the same sections
//! with the same contents, index sections are written even when empty,
//! and pooled per-term arrays are concatenated in term-slot order. Save →
//! load → save is therefore byte-identical (test-enforced at the
//! workspace level).
//!
//! The full-system composition (vocabulary, G-tree hierarchy, the
//! `KspinSystem` save/load entry points) lives in the root `kspin`
//! crate's `snapshot` module, which builds on these codecs.

pub use kspin_snapshot::{
    format, FormatError, IndexStore, SectionLabel, SectionView, SnapshotError, SnapshotFile,
    SnapshotWriter,
};

use crate::cache::HeapSeedCache;
use crate::index::{BuildStats, KeywordIndex, KspinIndex, NvdIndex, SmallIndex};
use kspin_graph::{Graph, Point, Relabeling};
use kspin_nvd::morton::MortonSpace;
use kspin_nvd::{AdjacencyGraph, ApproxNvd};
use kspin_snapshot::format::section;
use kspin_text::Corpus;

/// A cursor over one pooled section's decoded elements. Per-term slices
/// are taken off the front in term-slot order; [`Pool::finish`] then
/// proves the section holds no trailing elements, so pooled sections are
/// consumed exactly.
struct Pool<'a, T> {
    id: u32,
    data: &'a [T],
    cursor: usize,
}

impl<'a, T> Pool<'a, T> {
    fn new(id: u32, data: &'a [T]) -> Self {
        Pool {
            id,
            data,
            cursor: 0,
        }
    }

    /// The next `len` elements, or a structured error naming the section
    /// when the pool runs dry (a length section lying about its pools).
    fn take(&mut self, len: usize) -> Result<&'a [T], SnapshotError> {
        let end = self
            .cursor
            .checked_add(len)
            .ok_or_else(|| SnapshotError::decode(self.id, "pool length overflows"))?;
        let s = self.data.get(self.cursor..end).ok_or_else(|| {
            SnapshotError::decode(
                self.id,
                format!(
                    "pool exhausted: wanted {len} elements at {} of {}",
                    self.cursor,
                    self.data.len()
                ),
            )
        })?;
        self.cursor = end;
        Ok(s)
    }

    fn finish(self) -> Result<(), SnapshotError> {
        if self.cursor == self.data.len() {
            Ok(())
        } else {
            Err(SnapshotError::decode(
                self.id,
                format!(
                    "pool holds {} trailing elements past {}",
                    self.data.len() - self.cursor,
                    self.cursor
                ),
            ))
        }
    }
}

impl<T: Copy> Pool<'_, T> {
    /// The next single element.
    fn take1(&mut self) -> Result<T, SnapshotError> {
        let s = self.take(1)?;
        s.first().copied().ok_or_else(|| {
            SnapshotError::decode(self.id, "pool yielded an empty single-element slice")
        })
    }
}

fn decoded_usize(id: u32, what: &str, v: u64) -> Result<usize, SnapshotError> {
    usize::try_from(v)
        .map_err(|_| SnapshotError::decode(id, format!("{what} {v} does not fit in usize")))
}

fn decoded_bools(id: u32, bytes: &[u8]) -> Result<Vec<bool>, SnapshotError> {
    bytes
        .iter()
        .map(|&b| match b {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::decode(
                id,
                format!("flag byte {b} is neither 0 nor 1"),
            )),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Graph (sections 1-4)
// ---------------------------------------------------------------------

/// Appends the road graph's CSR arrays and coordinates.
pub fn encode_graph(w: &mut SnapshotWriter, g: &Graph) {
    let (offsets, targets, weights, coords) = g.csr_parts();
    w.put_u32s(section::GRAPH_OFFSETS, offsets);
    w.put_u32s(section::GRAPH_TARGETS, targets);
    w.put_u32s(section::GRAPH_WEIGHTS, weights);
    let mut interleaved = Vec::with_capacity(coords.len() * 2);
    for p in coords {
        interleaved.push(p.x as u32);
        interleaved.push(p.y as u32);
    }
    w.put_u32s(section::GRAPH_COORDS, &interleaved);
}

/// Reassembles the road graph through [`Graph::from_csr_parts`].
///
/// # Errors
/// Missing/mistyped sections, an odd coordinate array, or any violated
/// CSR invariant.
pub fn decode_graph(f: &SnapshotFile<'_>) -> Result<Graph, SnapshotError> {
    let offsets = f.u32s(section::GRAPH_OFFSETS)?;
    let targets = f.u32s(section::GRAPH_TARGETS)?;
    let weights = f.u32s(section::GRAPH_WEIGHTS)?;
    let interleaved = f.u32s(section::GRAPH_COORDS)?;
    if interleaved.len() % 2 != 0 {
        return Err(SnapshotError::decode(
            section::GRAPH_COORDS,
            format!("interleaved coordinate count {} is odd", interleaved.len()),
        ));
    }
    let coords: Vec<Point> = interleaved
        .chunks_exact(2)
        .map(|c| {
            // TAINT-OK(chunks_exact(2) yields exactly two elements per chunk)
            let (x, y) = (c[0], c[1]);
            Point {
                x: x.cast_signed(),
                y: y.cast_signed(),
            }
        })
        .collect();
    Graph::from_csr_parts(offsets, targets, weights, coords)
        .map_err(|e| SnapshotError::decode(section::GRAPH_OFFSETS, e))
}

// ---------------------------------------------------------------------
// Corpus (sections 10-14)
// ---------------------------------------------------------------------

/// Appends the corpus's flat posting columns.
pub fn encode_corpus(w: &mut SnapshotWriter, c: &Corpus) {
    let (vertex_of, doc_offsets, docs) = c.flat_parts();
    w.put_u32s(section::CORPUS_VERTEX_OF, vertex_of);
    w.put_u32s(section::CORPUS_DOC_OFFSETS, doc_offsets);
    let terms: Vec<u32> = docs.iter().map(|p| p.term).collect();
    let freqs: Vec<u32> = docs.iter().map(|p| p.freq).collect();
    let impacts: Vec<f64> = docs.iter().map(|p| p.impact).collect();
    w.put_u32s(section::CORPUS_DOC_TERMS, &terms);
    w.put_u32s(section::CORPUS_DOC_FREQS, &freqs);
    w.put_f64s(section::CORPUS_DOC_IMPACTS, &impacts);
}

/// Reassembles the corpus through [`Corpus::from_parts`], copying stored
/// impact bits verbatim so a reloaded corpus scores bit-identically.
///
/// # Errors
/// Missing/mistyped sections, mismatched posting columns, or any
/// violated corpus invariant.
pub fn decode_corpus(f: &SnapshotFile<'_>) -> Result<Corpus, SnapshotError> {
    let vertex_of = f.u32s(section::CORPUS_VERTEX_OF)?;
    let doc_offsets = f.u32s(section::CORPUS_DOC_OFFSETS)?;
    let terms = f.u32s(section::CORPUS_DOC_TERMS)?;
    let freqs = f.u32s(section::CORPUS_DOC_FREQS)?;
    let impacts = f.f64s(section::CORPUS_DOC_IMPACTS)?;
    if terms.len() != freqs.len() || terms.len() != impacts.len() {
        return Err(SnapshotError::decode(
            section::CORPUS_DOC_TERMS,
            format!(
                "posting columns disagree: {} terms, {} freqs, {} impacts",
                terms.len(),
                freqs.len(),
                impacts.len()
            ),
        ));
    }
    Corpus::from_parts(vertex_of, doc_offsets, &terms, &freqs, &impacts)
        .map_err(|e| SnapshotError::decode(section::CORPUS_DOC_OFFSETS, e))
}

// ---------------------------------------------------------------------
// Keyword Separated Index (sections 30-49)
// ---------------------------------------------------------------------

/// Appends the Keyword Separated Index: scalar metadata, the per-slot
/// kind table, and the pooled small-list and NVD arrays in term-slot
/// order. All twenty sections are written even when their pools are
/// empty, so logical content maps one-to-one onto sections (canonical).
pub fn encode_index(w: &mut SnapshotWriter, index: &KspinIndex) {
    let entries = index.snapshot_entries();
    let stats = index.stats();

    let mut kinds = Vec::with_capacity(entries.len());
    let mut small_lens: Vec<u32> = Vec::new();
    let mut small_objects: Vec<u32> = Vec::new();
    let mut small_vertices: Vec<u32> = Vec::new();
    let mut small_alive: Vec<u8> = Vec::new();
    let mut nvd_scalars: Vec<u64> = Vec::new();
    let mut nvd_lens: Vec<u32> = Vec::new();
    let mut nvd_starts: Vec<u32> = Vec::new();
    let mut nvd_cand_offsets: Vec<u32> = Vec::new();
    let mut nvd_cands: Vec<u32> = Vec::new();
    let mut nvd_objects: Vec<u32> = Vec::new();
    let mut nvd_max_radius: Vec<u32> = Vec::new();
    let mut nvd_adj_offsets: Vec<u32> = Vec::new();
    let mut nvd_adj_data: Vec<u32> = Vec::new();
    let mut nvd_deleted: Vec<u8> = Vec::new();
    let mut nvd_att_offsets: Vec<u32> = Vec::new();
    let mut nvd_att_data: Vec<u32> = Vec::new();
    let mut nvd_inserted: Vec<u32> = Vec::new();
    let mut nvd_corpus_ids: Vec<u32> = Vec::new();

    for entry in entries {
        match entry {
            None => kinds.push(0u8),
            Some(KeywordIndex::Small(s)) => {
                kinds.push(1u8);
                small_lens.push(s.objects.len() as u32);
                small_objects.extend_from_slice(&s.objects);
                small_vertices.extend_from_slice(&s.vertices);
                small_alive.extend(s.alive.iter().map(|&a| u8::from(a)));
            }
            Some(KeywordIndex::Nvd(nvd)) => {
                kinds.push(2u8);
                let p = nvd.apx.snapshot_parts();
                let (min, scale_x, scale_y) = p.space.to_parts();
                nvd_scalars.extend_from_slice(&[
                    p.rho as u64,
                    p.pending_updates as u64,
                    u64::from(min.x as u32),
                    u64::from(min.y as u32),
                    scale_x.to_bits(),
                    scale_y.to_bits(),
                ]);
                let (adj_offsets, adj_data) = p.adjacency.flat_parts();
                let att_total: usize = p.attached.iter().map(Vec::len).sum();
                nvd_lens.extend_from_slice(&[
                    p.starts.len() as u32,
                    p.cand_offsets.len() as u32,
                    p.cands.len() as u32,
                    p.objects.len() as u32,
                    (adj_offsets.len() - 1) as u32,
                    adj_data.len() as u32,
                    att_total as u32,
                    p.inserted_vertices.len() as u32,
                ]);
                nvd_starts.extend_from_slice(p.starts);
                nvd_cand_offsets.extend_from_slice(p.cand_offsets);
                nvd_cands.extend_from_slice(p.cands);
                nvd_objects.extend_from_slice(p.objects);
                nvd_max_radius.extend_from_slice(p.max_radius);
                nvd_adj_offsets.extend_from_slice(&adj_offsets);
                nvd_adj_data.extend_from_slice(&adj_data);
                nvd_deleted.extend(p.deleted.iter().map(|&d| u8::from(d)));
                let mut att_cursor = 0u32;
                nvd_att_offsets.push(0);
                for a in p.attached {
                    att_cursor += a.len() as u32;
                    nvd_att_offsets.push(att_cursor);
                    nvd_att_data.extend_from_slice(a);
                }
                nvd_inserted.extend_from_slice(p.inserted_vertices);
                nvd_corpus_ids.extend_from_slice(&nvd.corpus_ids);
            }
        }
    }

    let (cache_present, cache_shards, cache_shard_budget) = match index.seed_cache() {
        Some(c) => (1u64, c.num_shards() as u64, c.shard_budget() as u64),
        None => (0, 0, 0),
    };
    w.put_u64s(
        section::INDEX_META,
        &[
            index.rho() as u64,
            entries.len() as u64,
            stats.nvd_terms as u64,
            stats.small_terms as u64,
            stats.build_seconds.to_bits(),
            cache_present,
            cache_shards,
            cache_shard_budget,
        ],
    );
    w.put_bytes(section::INDEX_TERM_KINDS, &kinds);
    w.put_u32s(section::SMALL_LENS, &small_lens);
    w.put_u32s(section::SMALL_OBJECTS, &small_objects);
    w.put_u32s(section::SMALL_VERTICES, &small_vertices);
    w.put_bytes(section::SMALL_ALIVE, &small_alive);
    w.put_u64s(section::NVD_SCALARS, &nvd_scalars);
    w.put_u32s(section::NVD_LENS, &nvd_lens);
    w.put_u32s(section::NVD_STARTS, &nvd_starts);
    w.put_u32s(section::NVD_CAND_OFFSETS, &nvd_cand_offsets);
    w.put_u32s(section::NVD_CANDS, &nvd_cands);
    w.put_u32s(section::NVD_OBJECTS, &nvd_objects);
    w.put_u32s(section::NVD_MAX_RADIUS, &nvd_max_radius);
    w.put_u32s(section::NVD_ADJ_OFFSETS, &nvd_adj_offsets);
    w.put_u32s(section::NVD_ADJ_DATA, &nvd_adj_data);
    w.put_bytes(section::NVD_DELETED, &nvd_deleted);
    w.put_u32s(section::NVD_ATT_OFFSETS, &nvd_att_offsets);
    w.put_u32s(section::NVD_ATT_DATA, &nvd_att_data);
    w.put_u32s(section::NVD_INSERTED, &nvd_inserted);
    w.put_u32s(section::NVD_CORPUS_IDS, &nvd_corpus_ids);
}

struct NvdPools<'a> {
    scalars: Pool<'a, u64>,
    lens: Pool<'a, u32>,
    starts: Pool<'a, u32>,
    cand_offsets: Pool<'a, u32>,
    cands: Pool<'a, u32>,
    objects: Pool<'a, u32>,
    max_radius: Pool<'a, u32>,
    adj_offsets: Pool<'a, u32>,
    adj_data: Pool<'a, u32>,
    deleted: Pool<'a, u8>,
    att_offsets: Pool<'a, u32>,
    att_data: Pool<'a, u32>,
    inserted: Pool<'a, u32>,
    corpus_ids: Pool<'a, u32>,
}

fn len_field(id: u32, what: &str, v: u32) -> Result<usize, SnapshotError> {
    decoded_usize(id, what, u64::from(v))
}

/// Upper bound on a decoded seed-cache shard count.
/// [`HeapSeedCache::from_shape`] eagerly allocates one mutexed shard per
/// count, so unlike the pooled sections (bounded by the file's own size)
/// a decoded shard count is an amplification lever: 8 bytes of snapshot
/// could demand gigabytes. Real configurations use at most a few hundred
/// shards; 65 536 is far above any of them.
const MAX_CACHE_SHARDS: usize = 1 << 16;

fn decode_one_nvd(rho: usize, p: &mut NvdPools<'_>) -> Result<NvdIndex, SnapshotError> {
    use section::*;
    let &[s_rho, s_pending, s_min_x, s_min_y, s_scale_x, s_scale_y] = p.scalars.take(6)? else {
        return Err(SnapshotError::decode(
            NVD_SCALARS,
            "scalar pool slice is not 6 wide",
        ));
    };
    let &[l_starts, l_cand_offsets, l_cands, l_gens, l_adj_nodes, l_adj_edges, l_att_total, l_inserted] =
        p.lens.take(8)?
    else {
        return Err(SnapshotError::decode(
            NVD_LENS,
            "length pool slice is not 8 wide",
        ));
    };

    let term_rho = decoded_usize(NVD_SCALARS, "rho", s_rho)?;
    if term_rho != rho {
        return Err(SnapshotError::decode(
            NVD_SCALARS,
            format!("NVD rho {term_rho} disagrees with index rho {rho}"),
        ));
    }
    let pending_updates = decoded_usize(NVD_SCALARS, "pending_updates", s_pending)?;
    let min_x = u32::try_from(s_min_x)
        .map_err(|_| SnapshotError::decode(NVD_SCALARS, "min_x exceeds 32 bits"))?;
    let min_y = u32::try_from(s_min_y)
        .map_err(|_| SnapshotError::decode(NVD_SCALARS, "min_y exceeds 32 bits"))?;
    let min = Point {
        x: min_x.cast_signed(),
        y: min_y.cast_signed(),
    };
    let space = MortonSpace::from_parts(min, f64::from_bits(s_scale_x), f64::from_bits(s_scale_y))
        .map_err(|e| SnapshotError::decode(NVD_SCALARS, e))?;

    let starts_len = len_field(NVD_LENS, "starts length", l_starts)?;
    let cand_offsets_len = len_field(NVD_LENS, "cand_offsets length", l_cand_offsets)?;
    let cands_len = len_field(NVD_LENS, "cands length", l_cands)?;
    let gens = len_field(NVD_LENS, "generator count", l_gens)?;
    let adj_nodes = len_field(NVD_LENS, "adjacency node count", l_adj_nodes)?;
    let adj_edges = len_field(NVD_LENS, "adjacency edge count", l_adj_edges)?;
    let att_total = len_field(NVD_LENS, "attached total", l_att_total)?;
    let inserted_len = len_field(NVD_LENS, "inserted count", l_inserted)?;

    let leaf_fences = starts_len
        .checked_add(1)
        .ok_or_else(|| SnapshotError::decode(NVD_LENS, "leaf count overflows"))?;
    if cand_offsets_len != leaf_fences {
        return Err(SnapshotError::decode(
            NVD_LENS,
            format!("{cand_offsets_len} cand offsets for {starts_len} leaves"),
        ));
    }
    let overlay = gens
        .checked_add(inserted_len)
        .ok_or_else(|| SnapshotError::decode(NVD_LENS, "overlay generator count overflows"))?;
    if adj_nodes != overlay {
        return Err(SnapshotError::decode(
            NVD_LENS,
            format!("adjacency covers {adj_nodes} nodes for {overlay} overlay generators"),
        ));
    }

    let starts = p.starts.take(starts_len)?.to_vec();
    let cand_offsets = p.cand_offsets.take(cand_offsets_len)?.to_vec();
    let cands = p.cands.take(cands_len)?.to_vec();
    let objects = p.objects.take(gens)?.to_vec();
    let max_radius = p.max_radius.take(gens)?.to_vec();
    let adj_fences = adj_nodes
        .checked_add(1)
        .ok_or_else(|| SnapshotError::decode(NVD_LENS, "adjacency node count overflows"))?;
    let adj_offsets = p.adj_offsets.take(adj_fences)?;
    let adj_data = p.adj_data.take(adj_edges)?;
    let adjacency = AdjacencyGraph::from_flat(adj_offsets, adj_data)
        .map_err(|e| SnapshotError::decode(NVD_ADJ_OFFSETS, e))?;
    let deleted = decoded_bools(NVD_DELETED, p.deleted.take(overlay)?)?;
    let att_fences = gens
        .checked_add(1)
        .ok_or_else(|| SnapshotError::decode(NVD_LENS, "generator count overflows"))?;
    let att_offsets = p.att_offsets.take(att_fences)?;
    let att_data = p.att_data.take(att_total)?;
    if att_offsets.first() != Some(&0) || att_offsets.last() != Some(&l_att_total) {
        return Err(SnapshotError::decode(
            NVD_ATT_OFFSETS,
            "attached offsets must start at 0 and end at the attached total",
        ));
    }
    let attached: Vec<Vec<u32>> = att_offsets
        .windows(2)
        .map(|win| {
            // TAINT-OK(windows(2) yields exactly two elements per window)
            let (lo, hi) = (win[0], win[1]);
            let range = len_field(NVD_ATT_OFFSETS, "attached offset", lo)?
                ..len_field(NVD_ATT_OFFSETS, "attached offset", hi)?;
            att_data.get(range).map(<[u32]>::to_vec).ok_or_else(|| {
                SnapshotError::decode(
                    NVD_ATT_OFFSETS,
                    format!("attached offsets {lo}..{hi} out of order or range"),
                )
            })
        })
        .collect::<Result<_, _>>()?;
    let inserted_vertices = p.inserted.take(inserted_len)?.to_vec();
    let corpus_ids = p.corpus_ids.take(overlay)?.to_vec();

    let apx = ApproxNvd::from_snapshot_parts(
        term_rho,
        space,
        starts,
        cand_offsets,
        cands,
        objects,
        max_radius,
        adjacency,
        deleted,
        attached,
        inserted_vertices,
        pending_updates,
    )
    .map_err(|e| SnapshotError::decode(NVD_SCALARS, e))?;

    let nvd = NvdIndex::new(apx, corpus_ids);
    if nvd.local_of.len() != nvd.corpus_ids.len() {
        return Err(SnapshotError::decode(
            NVD_CORPUS_IDS,
            "corpus object ids repeat within one keyword",
        ));
    }
    Ok(nvd)
}

/// Reassembles the Keyword Separated Index: every pooled section is
/// consumed exactly (term-slot order, [`Pool::finish`] proves no
/// trailing elements), per-NVD structure goes through
/// [`ApproxNvd::from_snapshot_parts`]'s full structural audit, and the
/// stored term counts are checked against a recount. The seed cache is
/// restored *empty* with its stored shape — cached seeding is
/// bit-identical to cold seeding by construction, so a reloaded engine
/// serves the same bytes either way.
///
/// # Errors
/// Missing/mistyped sections or any violated index invariant; on error
/// no partially-initialized index escapes.
pub fn decode_index(f: &SnapshotFile<'_>) -> Result<KspinIndex, SnapshotError> {
    use section::*;
    let meta = f.u64s(INDEX_META)?;
    let &[m_rho, m_slots, m_nvd_terms, m_small_terms, m_build_seconds, m_cache_present, m_cache_shards, m_cache_budget] =
        meta.as_slice()
    else {
        return Err(SnapshotError::decode(
            INDEX_META,
            format!("index meta holds {} scalars, expected 8", meta.len()),
        ));
    };
    let rho = decoded_usize(INDEX_META, "rho", m_rho)?;
    if rho == 0 {
        return Err(SnapshotError::decode(INDEX_META, "rho must be at least 1"));
    }
    let term_slots = decoded_usize(INDEX_META, "term slot count", m_slots)?;
    let kinds = f.bytes(INDEX_TERM_KINDS)?;
    if kinds.len() != term_slots {
        return Err(SnapshotError::decode(
            INDEX_TERM_KINDS,
            format!("{} kind bytes for {term_slots} term slots", kinds.len()),
        ));
    }

    let small_lens = f.u32s(SMALL_LENS)?;
    let small_objects = f.u32s(SMALL_OBJECTS)?;
    let small_vertices = f.u32s(SMALL_VERTICES)?;
    let small_alive = f.bytes(SMALL_ALIVE)?;
    let nvd_scalars = f.u64s(NVD_SCALARS)?;
    let nvd_lens = f.u32s(NVD_LENS)?;
    let nvd_starts = f.u32s(NVD_STARTS)?;
    let nvd_cand_offsets = f.u32s(NVD_CAND_OFFSETS)?;
    let nvd_cands = f.u32s(NVD_CANDS)?;
    let nvd_objects = f.u32s(NVD_OBJECTS)?;
    let nvd_max_radius = f.u32s(NVD_MAX_RADIUS)?;
    let nvd_adj_offsets = f.u32s(NVD_ADJ_OFFSETS)?;
    let nvd_adj_data = f.u32s(NVD_ADJ_DATA)?;
    let nvd_deleted = f.bytes(NVD_DELETED)?;
    let nvd_att_offsets = f.u32s(NVD_ATT_OFFSETS)?;
    let nvd_att_data = f.u32s(NVD_ATT_DATA)?;
    let nvd_inserted = f.u32s(NVD_INSERTED)?;
    let nvd_corpus_ids = f.u32s(NVD_CORPUS_IDS)?;

    let mut lens_pool = Pool::new(SMALL_LENS, &small_lens);
    let mut objects_pool = Pool::new(SMALL_OBJECTS, &small_objects);
    let mut vertices_pool = Pool::new(SMALL_VERTICES, &small_vertices);
    let mut alive_pool = Pool::new(SMALL_ALIVE, small_alive);
    let mut nvd = NvdPools {
        scalars: Pool::new(NVD_SCALARS, &nvd_scalars),
        lens: Pool::new(NVD_LENS, &nvd_lens),
        starts: Pool::new(NVD_STARTS, &nvd_starts),
        cand_offsets: Pool::new(NVD_CAND_OFFSETS, &nvd_cand_offsets),
        cands: Pool::new(NVD_CANDS, &nvd_cands),
        objects: Pool::new(NVD_OBJECTS, &nvd_objects),
        max_radius: Pool::new(NVD_MAX_RADIUS, &nvd_max_radius),
        adj_offsets: Pool::new(NVD_ADJ_OFFSETS, &nvd_adj_offsets),
        adj_data: Pool::new(NVD_ADJ_DATA, &nvd_adj_data),
        deleted: Pool::new(NVD_DELETED, nvd_deleted),
        att_offsets: Pool::new(NVD_ATT_OFFSETS, &nvd_att_offsets),
        att_data: Pool::new(NVD_ATT_DATA, &nvd_att_data),
        inserted: Pool::new(NVD_INSERTED, &nvd_inserted),
        corpus_ids: Pool::new(NVD_CORPUS_IDS, &nvd_corpus_ids),
    };

    // TAINT-OK(term_slots equals the validated INDEX_TERM_KINDS section length, so the capacity is bounded by the file size)
    let mut entries: Vec<Option<KeywordIndex>> = Vec::with_capacity(term_slots);
    let mut small_count = 0usize;
    let mut nvd_count = 0usize;
    for &kind in kinds {
        match kind {
            0 => entries.push(None),
            1 => {
                // TAINT-OK(slot counter bounded by the kinds section length)
                small_count += 1;
                let len = len_field(SMALL_LENS, "small list length", lens_pool.take1()?)?;
                let objects = objects_pool.take(len)?.to_vec();
                let vertices = vertices_pool.take(len)?.to_vec();
                let alive = decoded_bools(SMALL_ALIVE, alive_pool.take(len)?)?;
                entries.push(Some(KeywordIndex::Small(SmallIndex {
                    objects,
                    vertices,
                    alive,
                })));
            }
            2 => {
                // TAINT-OK(slot counter bounded by the kinds section length)
                nvd_count += 1;
                let idx = decode_one_nvd(rho, &mut nvd)?;
                entries.push(Some(KeywordIndex::Nvd(Box::new(idx))));
            }
            other => {
                return Err(SnapshotError::decode(
                    INDEX_TERM_KINDS,
                    format!("unknown term kind byte {other}"),
                ));
            }
        }
    }

    lens_pool.finish()?;
    objects_pool.finish()?;
    vertices_pool.finish()?;
    alive_pool.finish()?;
    nvd.scalars.finish()?;
    nvd.lens.finish()?;
    nvd.starts.finish()?;
    nvd.cand_offsets.finish()?;
    nvd.cands.finish()?;
    nvd.objects.finish()?;
    nvd.max_radius.finish()?;
    nvd.adj_offsets.finish()?;
    nvd.adj_data.finish()?;
    nvd.deleted.finish()?;
    nvd.att_offsets.finish()?;
    nvd.att_data.finish()?;
    nvd.inserted.finish()?;
    nvd.corpus_ids.finish()?;

    // lint:allow(no-as-cast-in-decode) — usize → u64 widening of in-memory
    // counters, lossless on every supported target
    if m_nvd_terms != nvd_count as u64 || m_small_terms != small_count as u64 {
        return Err(SnapshotError::decode(
            INDEX_META,
            format!(
                "meta claims {m_nvd_terms}/{m_small_terms} nvd/small terms, \
                 kinds table holds {nvd_count}/{small_count}"
            ),
        ));
    }
    let stats = BuildStats {
        nvd_terms: nvd_count,
        small_terms: small_count,
        build_seconds: f64::from_bits(m_build_seconds),
    };
    let seed_cache = match m_cache_present {
        0 => {
            if m_cache_shards != 0 || m_cache_budget != 0 {
                return Err(SnapshotError::decode(
                    INDEX_META,
                    "cache shape must be zero when no cache is present",
                ));
            }
            None
        }
        1 => {
            let shards = decoded_usize(INDEX_META, "cache shard count", m_cache_shards)?;
            let budget = decoded_usize(INDEX_META, "cache shard budget", m_cache_budget)?;
            // `from_shape` allocates one mutexed shard up front per count,
            // so an adversarial shard count is an OOM lever; the budget is
            // lazily consumed and needs no cap.
            if shards > MAX_CACHE_SHARDS {
                return Err(SnapshotError::decode(
                    INDEX_META,
                    format!("cache shard count {shards} exceeds the {MAX_CACHE_SHARDS} cap"),
                ));
            }
            Some(HeapSeedCache::from_shape(shards, budget))
        }
        other => {
            return Err(SnapshotError::decode(
                INDEX_META,
                format!("cache presence flag {other} is neither 0 nor 1"),
            ));
        }
    };

    Ok(KspinIndex::from_snapshot_parts(
        rho, entries, stats, seed_cache,
    ))
}

// ---------------------------------------------------------------------
// ALT (sections 60-61)
// ---------------------------------------------------------------------

/// Appends the ALT landmark set and distance table.
pub fn encode_alt(w: &mut SnapshotWriter, alt: &kspin_alt::AltIndex) {
    let (landmarks, _num_vertices, dist) = alt.flat_parts();
    w.put_u32s(section::ALT_LANDMARKS, landmarks);
    w.put_u32s(section::ALT_DIST, dist);
}

/// Reassembles the ALT index. `num_vertices` comes from the decoded
/// graph (the table is `landmarks × vertices`, row-major).
///
/// # Errors
/// Missing/mistyped sections or an inconsistent table shape.
pub fn decode_alt(
    f: &SnapshotFile<'_>,
    num_vertices: usize,
) -> Result<kspin_alt::AltIndex, SnapshotError> {
    let landmarks = f.u32s(section::ALT_LANDMARKS)?;
    let dist = f.u32s(section::ALT_DIST)?;
    kspin_alt::AltIndex::from_flat_parts(landmarks, num_vertices, dist)
        .map_err(|e| SnapshotError::decode(section::ALT_DIST, e))
}

// ---------------------------------------------------------------------
// Contraction hierarchy (sections 70-74, optional)
// ---------------------------------------------------------------------

/// Appends the CH node order and upward adjacency.
pub fn encode_ch(w: &mut SnapshotWriter, ch: &kspin_ch::ContractionHierarchy) {
    let (rank, up_offsets, up_targets, up_weights, num_shortcuts) = ch.flat_parts();
    w.put_u64s(section::CH_META, &[num_shortcuts as u64]);
    w.put_u32s(section::CH_RANK, rank);
    w.put_u32s(section::CH_UP_OFFSETS, up_offsets);
    w.put_u32s(section::CH_UP_TARGETS, up_targets);
    w.put_u32s(section::CH_UP_WEIGHTS, up_weights);
}

/// Reassembles the CH when present, `Ok(None)` when the snapshot was
/// saved without one.
///
/// # Errors
/// Mistyped/partial CH sections or any violated CH invariant (rank not
/// a permutation, non-upward edges).
pub fn decode_ch(
    f: &SnapshotFile<'_>,
) -> Result<Option<kspin_ch::ContractionHierarchy>, SnapshotError> {
    use section::*;
    if !f.has(CH_META) {
        return Ok(None);
    }
    let meta = f.u64s(CH_META)?;
    let &[m_shortcuts] = meta.as_slice() else {
        return Err(SnapshotError::decode(
            CH_META,
            format!("ch meta holds {} scalars, expected 1", meta.len()),
        ));
    };
    let num_shortcuts = decoded_usize(CH_META, "shortcut count", m_shortcuts)?;
    let rank = f.u32s(CH_RANK)?;
    let up_offsets = f.u32s(CH_UP_OFFSETS)?;
    let up_targets = f.u32s(CH_UP_TARGETS)?;
    let up_weights = f.u32s(CH_UP_WEIGHTS)?;
    kspin_ch::ContractionHierarchy::from_flat_parts(
        rank,
        up_offsets,
        up_targets,
        up_weights,
        num_shortcuts,
    )
    .map(Some)
    .map_err(|e| SnapshotError::decode(CH_RANK, e))
}

// ---------------------------------------------------------------------
// Relabeling (section 90, optional)
// ---------------------------------------------------------------------

/// Appends the active relabeling as its visit order
/// (`order[local] = external`).
pub fn encode_relabeling(w: &mut SnapshotWriter, r: &Relabeling) {
    w.put_u32s(section::RELABEL_ORDER, r.inverse());
}

/// Reassembles the relabeling when present, `Ok(None)` when the
/// snapshot was saved without one.
///
/// # Errors
/// A mistyped section or an order that is not a permutation.
pub fn decode_relabeling(f: &SnapshotFile<'_>) -> Result<Option<Relabeling>, SnapshotError> {
    match f.u32s_opt(section::RELABEL_ORDER)? {
        None => Ok(None),
        Some(order) => Relabeling::try_from_order(order)
            .map(Some)
            .map_err(|e| SnapshotError::decode(section::RELABEL_ORDER, e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::KspinConfig;
    use crate::SeedCacheConfig;
    use kspin_graph::{GraphBuilder, VertexId as V};
    use kspin_text::CorpusBuilder;

    fn grid_graph(side: u32) -> Graph {
        let mut b = GraphBuilder::new((side * side) as usize);
        for y in 0..side {
            for x in 0..side {
                b.set_coord(
                    y * side + x,
                    Point {
                        x: x as i32 * 100,
                        y: y as i32 * 100,
                    },
                );
            }
        }
        for y in 0..side {
            for x in 0..side {
                let v = y * side + x;
                if x + 1 < side {
                    b.add_edge(v, v + 1, 100 + ((v * 7) % 41));
                }
                if y + 1 < side {
                    b.add_edge(v, v + side, 100 + ((v * 13) % 37));
                }
            }
        }
        b.build()
    }

    fn small_corpus(g: &Graph) -> Corpus {
        let mut cb = CorpusBuilder::new();
        let n = g.num_vertices() as u32;
        for v in (0..n).step_by(3) {
            let mut terms: Vec<(u32, u32)> = vec![(0, 1 + v % 3)];
            if v % 2 == 0 {
                terms.push((1, 1));
            }
            if v % 5 == 0 {
                terms.push((2 + v % 4, 2));
            }
            cb.add_object(v as V, &terms);
        }
        cb.build()
    }

    fn roundtrip_index(index: &KspinIndex) -> KspinIndex {
        let mut w = SnapshotWriter::new();
        encode_index(&mut w, index);
        let bytes = w.finish();
        let f = SnapshotFile::validate(&bytes).expect("canonical bytes validate");
        decode_index(&f).expect("decode")
    }

    #[test]
    fn graph_roundtrip_is_identity() {
        let g = grid_graph(6);
        let mut w = SnapshotWriter::new();
        encode_graph(&mut w, &g);
        let bytes = w.finish();
        let f = SnapshotFile::validate(&bytes).unwrap();
        let g2 = decode_graph(&f).unwrap();
        assert_eq!(g.csr_parts(), g2.csr_parts());
    }

    #[test]
    fn corpus_roundtrip_preserves_impact_bits() {
        let g = grid_graph(6);
        let c = small_corpus(&g);
        let mut w = SnapshotWriter::new();
        encode_corpus(&mut w, &c);
        let bytes = w.finish();
        let f = SnapshotFile::validate(&bytes).unwrap();
        let c2 = decode_corpus(&f).unwrap();
        let (v1, o1, d1) = c.flat_parts();
        let (v2, o2, d2) = c2.flat_parts();
        assert_eq!(v1, v2);
        assert_eq!(o1, o2);
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.iter().zip(d2) {
            assert_eq!(a.term, b.term);
            assert_eq!(a.freq, b.freq);
            assert_eq!(a.impact.to_bits(), b.impact.to_bits());
        }
    }

    #[test]
    fn index_roundtrip_preserves_structure_and_reencodes_identically() {
        let g = grid_graph(8);
        let c = small_corpus(&g);
        let cfg = KspinConfig {
            rho: 3,
            seed_cache: SeedCacheConfig::enabled(),
            ..KspinConfig::default()
        };
        let index = KspinIndex::build(&g, &c, &cfg);
        let index2 = roundtrip_index(&index);
        index2.validate(&c).expect("reloaded index validates");
        assert_eq!(index.rho(), index2.rho());
        assert_eq!(index.stats().nvd_terms, index2.stats().nvd_terms);
        assert_eq!(index.stats().small_terms, index2.stats().small_terms);
        assert!(index2.seed_cache().is_some());

        // Canonical: encode(decode(encode(x))) == encode(x), byte for byte.
        let mut w1 = SnapshotWriter::new();
        encode_index(&mut w1, &index);
        let mut w2 = SnapshotWriter::new();
        encode_index(&mut w2, &index2);
        assert_eq!(w1.finish(), w2.finish());
    }

    #[test]
    fn alt_ch_relabeling_roundtrip() {
        let g = grid_graph(6);
        let alt = kspin_alt::AltIndex::build(&g, 4, kspin_alt::LandmarkStrategy::Farthest, 0);
        let ch = kspin_ch::ContractionHierarchy::build(&g, &kspin_ch::ChConfig::default());
        let r = Relabeling::hilbert(&g);
        let mut w = SnapshotWriter::new();
        encode_alt(&mut w, &alt);
        encode_ch(&mut w, &ch);
        encode_relabeling(&mut w, &r);
        let bytes = w.finish();
        let f = SnapshotFile::validate(&bytes).unwrap();
        let alt2 = decode_alt(&f, g.num_vertices()).unwrap();
        assert_eq!(alt.flat_parts(), alt2.flat_parts());
        let ch2 = decode_ch(&f).unwrap().expect("ch present");
        assert_eq!(ch.flat_parts(), ch2.flat_parts());
        let r2 = decode_relabeling(&f).unwrap().expect("relabeling present");
        assert_eq!(r.forward(), r2.forward());
    }

    #[test]
    fn optional_sections_absent_decode_to_none() {
        let g = grid_graph(4);
        let mut w = SnapshotWriter::new();
        encode_graph(&mut w, &g);
        let bytes = w.finish();
        let f = SnapshotFile::validate(&bytes).unwrap();
        assert!(decode_ch(&f).unwrap().is_none());
        assert!(decode_relabeling(&f).unwrap().is_none());
    }

    #[test]
    fn logically_corrupt_but_checksum_valid_index_is_rejected() {
        let g = grid_graph(8);
        let c = small_corpus(&g);
        let cfg = KspinConfig {
            rho: 3,
            ..KspinConfig::default()
        };
        let index = KspinIndex::build(&g, &c, &cfg);
        let mut w = SnapshotWriter::new();
        encode_index(&mut w, &index);
        let good = w.finish();
        let f = SnapshotFile::validate(&good).unwrap();

        // Rewrite with a lying meta (term count inflated): the reassembled
        // file has valid checksums but decode_index must reject it.
        let mut meta = f.u64s(section::INDEX_META).unwrap();
        meta[1] += 1;
        let mut w2 = SnapshotWriter::new();
        w2.put_u64s(section::INDEX_META, &meta);
        let mut kinds = f.bytes(section::INDEX_TERM_KINDS).unwrap().to_vec();
        kinds.push(2); // claims one more NVD than the pools hold
        w2.put_bytes(section::INDEX_TERM_KINDS, &kinds);
        for id in [
            section::SMALL_LENS,
            section::SMALL_OBJECTS,
            section::SMALL_VERTICES,
        ] {
            w2.put_u32s(id, &f.u32s(id).unwrap());
        }
        w2.put_bytes(section::SMALL_ALIVE, f.bytes(section::SMALL_ALIVE).unwrap());
        w2.put_u64s(section::NVD_SCALARS, &f.u64s(section::NVD_SCALARS).unwrap());
        for id in [
            section::NVD_LENS,
            section::NVD_STARTS,
            section::NVD_CAND_OFFSETS,
            section::NVD_CANDS,
            section::NVD_OBJECTS,
            section::NVD_MAX_RADIUS,
            section::NVD_ADJ_OFFSETS,
            section::NVD_ADJ_DATA,
        ] {
            w2.put_u32s(id, &f.u32s(id).unwrap());
        }
        w2.put_bytes(section::NVD_DELETED, f.bytes(section::NVD_DELETED).unwrap());
        for id in [
            section::NVD_ATT_OFFSETS,
            section::NVD_ATT_DATA,
            section::NVD_INSERTED,
            section::NVD_CORPUS_IDS,
        ] {
            w2.put_u32s(id, &f.u32s(id).unwrap());
        }
        let bad = w2.finish();
        let f2 = SnapshotFile::validate(&bad).expect("checksums are fresh");
        let err = decode_index(&f2).expect_err("lying meta accepted");
        assert!(matches!(err, SnapshotError::Decode { .. }), "{err}");
    }
}
