//! The Query Processor module (§3 module 4): ties the index and the
//! pluggable distance/lower-bound modules together and hosts the query
//! algorithms implemented in [`crate::query`].

use std::fmt;
use std::ops::AddAssign;

use kspin_graph::{Graph, HeapCounters, Weight};
use kspin_text::{Corpus, ObjectId, TermId};

use crate::cache::compute_seeds;
use crate::heap::{HeapContext, InvertedHeap};
use crate::index::{KeywordIndex, KspinIndex};
use crate::modules::{LowerBound, NetworkDistance};

/// Per-query/side-channel instrumentation.
///
/// `dist_computations` is the paper's headline cost driver ("this module is
/// the bottleneck", §3): the false-positive experiment (§7.4) compares
/// methods on exactly this axis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Calls into the Network Distance Module.
    pub dist_computations: usize,
    /// Candidates extracted from inverted heaps (the κ of §5.1).
    pub heap_extractions: usize,
    /// Lower-bound computations across all heaps.
    pub lb_computations: usize,
    /// Candidates discarded without a distance computation (keyword filter,
    /// duplicate, or lower-bound-score prune).
    pub pruned_candidates: usize,
    /// Heap creations served from the cross-query seed cache.
    pub cache_hits: usize,
    /// Heap creations that recomputed (and admitted) their seeds.
    pub cache_misses: usize,
    /// Seed candidates reused from the cache (the per-hit payload — the
    /// quadtree walks and sort/dedup passes the cache saved).
    pub seed_reuse: usize,
    /// Heap-kernel entries pushed, across the inverted heaps and the
    /// distance oracle's internal searches.
    pub heap_pushes: usize,
    /// Heap-kernel entries popped.
    pub heap_pops: usize,
    /// In-place decrease-keys — each one is a stale entry the old lazy
    /// kernel would have duplicated, percolated, and re-popped.
    pub heap_decrease_keys: usize,
    /// Stale heap entries popped and discarded. Structurally zero on the
    /// indexed d-ary kernel (asserted by the tier-1 suite); carried so the
    /// lazy-deletion bench baselines report on the same schema.
    pub heap_stale_skipped: usize,
    /// Heap-kernel pushes that forced the entry array to grow. Zero in the
    /// steady state (`DaryHeap::new` pre-sizes to the item count) — the
    /// dynamic face of `cargo xtask allocs`'s static certificate, surfaced
    /// per query in the `table_serving` rows.
    pub heap_grows: usize,
    /// RPHAST one-to-many sweeps run by the batch pre-pass (one per query
    /// in a qualifying keyword group; the restricted domain is shared).
    pub sweeps: usize,
    /// Vertices settled/relaxed by those sweeps (upward settles + downward
    /// relaxations) — directly comparable to the per-query Dijkstra pop
    /// counts the sweeps replace.
    pub sweep_settled: usize,
    /// Distance-oracle calls answered from a precomputed sweep table
    /// instead of a per-query graph search.
    pub sweep_hits: usize,
}

impl QueryStats {
    pub(crate) fn clear(&mut self) {
        *self = QueryStats::default();
    }

    /// Folds a finished inverted heap's accounting into these stats: the
    /// §5.1 lb/extraction counters and the heap-kernel traffic counters.
    pub(crate) fn absorb_heap(&mut self, heap: &crate::heap::InvertedHeap<'_>) {
        self.lb_computations += heap.lb_computed();
        self.heap_extractions += heap.extractions();
        self.absorb_counters(heap.heap_counters());
    }

    /// Adds raw kernel counters (inverted heaps and distance oracles).
    pub(crate) fn absorb_counters(&mut self, c: HeapCounters) {
        self.heap_pushes += c.pushes as usize;
        self.heap_pops += c.pops as usize;
        self.heap_decrease_keys += c.decrease_keys as usize;
        self.heap_stale_skipped += c.stale_skipped as usize;
        self.heap_grows += c.grows as usize;
    }

    /// Cache hit rate in `[0, 1]` (0 when the cache never engaged).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Cross-thread merge for the [`crate::serving::BatchExecutor`]: every
/// counter is an additive total, so worker stats sum into an aggregate.
impl AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: QueryStats) {
        self.dist_computations += rhs.dist_computations;
        self.heap_extractions += rhs.heap_extractions;
        self.lb_computations += rhs.lb_computations;
        self.pruned_candidates += rhs.pruned_candidates;
        self.cache_hits += rhs.cache_hits;
        self.cache_misses += rhs.cache_misses;
        self.seed_reuse += rhs.seed_reuse;
        self.heap_pushes += rhs.heap_pushes;
        self.heap_pops += rhs.heap_pops;
        self.heap_decrease_keys += rhs.heap_decrease_keys;
        self.heap_stale_skipped += rhs.heap_stale_skipped;
        self.heap_grows += rhs.heap_grows;
        self.sweeps += rhs.sweeps;
        self.sweep_settled += rhs.sweep_settled;
        self.sweep_hits += rhs.sweep_hits;
    }
}

/// One-line rendering for the bench tables (`table_serving` rows).
impl fmt::Display for QueryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dist={} extract={} lb={} pruned={} cache={}h/{}m ({:.1}%) reuse={} \
             heap={}push/{}pop/{}dec/{}stale alloc={}grow \
             sweep={}x/{}settled/{}hit",
            self.dist_computations,
            self.heap_extractions,
            self.lb_computations,
            self.pruned_candidates,
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate(),
            self.seed_reuse,
            self.heap_pushes,
            self.heap_pops,
            self.heap_decrease_keys,
            self.heap_stale_skipped,
            self.heap_grows,
            self.sweeps,
            self.sweep_settled,
            self.sweep_hits
        )
    }
}

/// Reusable scratch buffers for the query hot loops (lint
/// `no-alloc-in-hot-loop`): allocated once per engine, cleared per query,
/// and grown to high-water capacity — never reallocated per iteration of
/// the Algorithm 1/3 candidate loops.
///
/// Safe to move in and out with `std::mem::take` because the inverted
/// heaps borrow the index through the engine's `'a` references, not
/// through the engine itself.
#[derive(Debug, Default)]
pub(crate) struct QueryScratch {
    /// Per-heap MINKEY snapshot for Algorithm 3's selection scan.
    pub(crate) min_keys: Vec<Weight>,
    /// Candidate dedup set shared by the BkNN/top-k extraction loops.
    pub(crate) evaluated: SeenSet,
}

/// Epoch-stamped membership set over `ObjectId`, replacing the former
/// `HashSet<ObjectId>` dedup set: a `RandomState`-hashed set on the
/// extraction loop was a latent nondeterminism source (and a rehash-growth
/// alloc risk), flagged by `cargo xtask determinism`. Same trick as the
/// `one_to_many` target slots in `kspin-graph::dijkstra` — a slot is a
/// member iff its stamp equals the current epoch, so [`SeenSet::clear`]
/// is O(1) and [`SeenSet::insert`] is a branch-free array write with no
/// hashing, no iteration order, and no steady-state allocation.
#[derive(Debug, Default)]
pub(crate) struct SeenSet {
    /// `epoch_of[o]` = the epoch in which object `o` was last inserted.
    epoch_of: Vec<u32>,
    /// Current membership epoch; 0 means "no epoch started".
    epoch: u32,
}

impl SeenSet {
    /// A set covering objects `0..n`, sized once at engine construction
    /// (the warm-up phase — the query loops never resize it).
    pub(crate) fn with_capacity(n: usize) -> SeenSet {
        SeenSet {
            epoch_of: vec![0; n],
            epoch: 0,
        }
    }

    /// Empties the set by advancing the epoch — O(1), no deallocation.
    /// On the (practically unreachable) u32 wrap the stamps are rewritten
    /// wholesale so stale epochs can never alias.
    pub(crate) fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.epoch_of.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Inserts `o`, returning whether it was newly inserted — the
    /// `HashSet::insert` contract the query loops rely on.
    pub(crate) fn insert(&mut self, o: ObjectId) -> bool {
        // PANIC-OK: sized to corpus.num_objects() at engine construction,
        // and every candidate ObjectId comes from that same corpus.
        let slot = &mut self.epoch_of[o as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// A K-SPIN query engine: one borrowed index + corpus + lower-bound oracle,
/// and an owned (mutable) network distance oracle.
///
/// ```no_run
/// # use kspin_core::{KspinIndex, KspinConfig, QueryEngine, DijkstraDistance, Op};
/// # use kspin_alt::{AltIndex, LandmarkStrategy};
/// # let graph: kspin_graph::Graph = unimplemented!();
/// # let corpus: kspin_text::Corpus = unimplemented!();
/// let alt = AltIndex::build(&graph, 16, LandmarkStrategy::Farthest, 0);
/// let index = KspinIndex::build(&graph, &corpus, &KspinConfig::default());
/// let mut engine = QueryEngine::new(&graph, &corpus, &index, &alt, DijkstraDistance::new(&graph));
/// let results = engine.bknn(42, 10, &[0, 1], Op::And);
/// ```
pub struct QueryEngine<'a, D: NetworkDistance> {
    pub(crate) graph: &'a Graph,
    pub(crate) corpus: &'a Corpus,
    pub(crate) index: &'a KspinIndex,
    pub(crate) lower_bound: &'a dyn LowerBound,
    pub(crate) dist: D,
    /// The distance oracle's kernel counters at the last stats reset —
    /// [`QueryEngine::stats`] reports the delta, so oracle heap traffic
    /// is attributed alongside the inverted-heap traffic.
    dist_base: HeapCounters,
    pub(crate) stats: QueryStats,
    pub(crate) scratch: QueryScratch,
    /// Whether this engine consults the index's heap-seed cache (when the
    /// index carries one). On by default; benches toggle it per sweep leg.
    pub(crate) use_cache: bool,
}

impl<'a, D: NetworkDistance> QueryEngine<'a, D> {
    /// Assembles an engine from the four framework modules.
    pub fn new(
        graph: &'a Graph,
        corpus: &'a Corpus,
        index: &'a KspinIndex,
        lower_bound: &'a dyn LowerBound,
        dist: D,
    ) -> Self {
        let dist_base = dist.heap_counters();
        QueryEngine {
            graph,
            corpus,
            index,
            lower_bound,
            dist,
            dist_base,
            stats: QueryStats::default(),
            scratch: QueryScratch {
                min_keys: Vec::new(),
                evaluated: SeenSet::with_capacity(corpus.num_objects()),
            },
            use_cache: true,
        }
    }

    /// Enables/disables use of the index's heap-seed cache for this engine
    /// (no-op when the index was built without one). The cache only ever
    /// changes *how seeds are obtained*, never query results, so this is a
    /// pure performance knob.
    pub fn set_seed_cache(&mut self, on: bool) {
        self.use_cache = on;
    }

    /// Builds the inverted heap for keyword `t`, serving the seed set from
    /// the index's cross-query cache when possible (§6 Obs. 1: hot-keyword
    /// seeds repeat across queries). Falls through to the cold
    /// [`InvertedHeap::create`] for Small entries, cache-off engines, and
    /// cacheless indexes — the three paths produce bit-identical heaps.
    pub(crate) fn make_heap(
        &mut self,
        t: TermId,
        ctx: &HeapContext<'_>,
    ) -> Option<InvertedHeap<'a>> {
        if self.use_cache {
            if let (Some(cache), Some(KeywordIndex::Nvd(n))) =
                (self.index.seed_cache(), self.index.entry(t))
            {
                let leaf = n.nvd().leaf_index(ctx.graph.coord(ctx.q));
                let seeds = match cache.lookup(t, leaf) {
                    Some(s) => {
                        self.stats.cache_hits += 1;
                        self.stats.seed_reuse += s.len();
                        s
                    }
                    None => {
                        self.stats.cache_misses += 1;
                        let s = compute_seeds(n, leaf);
                        cache.admit(t, leaf, std::sync::Arc::clone(&s));
                        s
                    }
                };
                return InvertedHeap::create_seeded(self.index, t, ctx, &seeds);
            }
        }
        InvertedHeap::create(self.index, t, ctx)
    }

    /// Statistics accumulated since the last [`QueryEngine::reset_stats`],
    /// including the distance oracle's heap-kernel traffic over the same
    /// window.
    pub fn stats(&self) -> QueryStats {
        let mut s = self.stats;
        s.absorb_counters(self.dist.heap_counters().since(self.dist_base));
        s
    }

    /// Clears the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats.clear();
        self.dist_base = self.dist.heap_counters();
    }

    /// The distance module's name (for bench labels).
    pub fn distance_name(&self) -> &'static str {
        self.dist.name()
    }

    /// Releases the engine, returning the distance oracle.
    pub fn into_distance(self) -> D {
        self.dist
    }
}
