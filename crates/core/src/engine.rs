//! The Query Processor module (§3 module 4): ties the index and the
//! pluggable distance/lower-bound modules together and hosts the query
//! algorithms implemented in [`crate::query`].

use std::collections::HashSet;

use kspin_graph::{Graph, Weight};
use kspin_text::{Corpus, ObjectId};

use crate::index::KspinIndex;
use crate::modules::{LowerBound, NetworkDistance};

/// Per-query/side-channel instrumentation.
///
/// `dist_computations` is the paper's headline cost driver ("this module is
/// the bottleneck", §3): the false-positive experiment (§7.4) compares
/// methods on exactly this axis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Calls into the Network Distance Module.
    pub dist_computations: usize,
    /// Candidates extracted from inverted heaps (the κ of §5.1).
    pub heap_extractions: usize,
    /// Lower-bound computations across all heaps.
    pub lb_computations: usize,
    /// Candidates discarded without a distance computation (keyword filter,
    /// duplicate, or lower-bound-score prune).
    pub pruned_candidates: usize,
}

impl QueryStats {
    pub(crate) fn clear(&mut self) {
        *self = QueryStats::default();
    }
}

/// Reusable scratch buffers for the query hot loops (lint
/// `no-alloc-in-hot-loop`): allocated once per engine, cleared per query,
/// and grown to high-water capacity — never reallocated per iteration of
/// the Algorithm 1/3 candidate loops.
///
/// Safe to move in and out with `std::mem::take` because the inverted
/// heaps borrow the index through the engine's `'a` references, not
/// through the engine itself.
#[derive(Debug, Default)]
pub(crate) struct QueryScratch {
    /// Per-heap MINKEY snapshot for Algorithm 3's selection scan.
    pub(crate) min_keys: Vec<Weight>,
    /// Candidate dedup set shared by the BkNN/top-k extraction loops.
    pub(crate) evaluated: HashSet<ObjectId>,
}

/// A K-SPIN query engine: one borrowed index + corpus + lower-bound oracle,
/// and an owned (mutable) network distance oracle.
///
/// ```no_run
/// # use kspin_core::{KspinIndex, KspinConfig, QueryEngine, DijkstraDistance, Op};
/// # use kspin_alt::{AltIndex, LandmarkStrategy};
/// # let graph: kspin_graph::Graph = unimplemented!();
/// # let corpus: kspin_text::Corpus = unimplemented!();
/// let alt = AltIndex::build(&graph, 16, LandmarkStrategy::Farthest, 0);
/// let index = KspinIndex::build(&graph, &corpus, &KspinConfig::default());
/// let mut engine = QueryEngine::new(&graph, &corpus, &index, &alt, DijkstraDistance::new(&graph));
/// let results = engine.bknn(42, 10, &[0, 1], Op::And);
/// ```
pub struct QueryEngine<'a, D: NetworkDistance> {
    pub(crate) graph: &'a Graph,
    pub(crate) corpus: &'a Corpus,
    pub(crate) index: &'a KspinIndex,
    pub(crate) lower_bound: &'a dyn LowerBound,
    pub(crate) dist: D,
    pub(crate) stats: QueryStats,
    pub(crate) scratch: QueryScratch,
}

impl<'a, D: NetworkDistance> QueryEngine<'a, D> {
    /// Assembles an engine from the four framework modules.
    pub fn new(
        graph: &'a Graph,
        corpus: &'a Corpus,
        index: &'a KspinIndex,
        lower_bound: &'a dyn LowerBound,
        dist: D,
    ) -> Self {
        QueryEngine {
            graph,
            corpus,
            index,
            lower_bound,
            dist,
            stats: QueryStats::default(),
            scratch: QueryScratch::default(),
        }
    }

    /// Statistics accumulated since the last [`QueryEngine::reset_stats`].
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// Clears the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats.clear();
    }

    /// The distance module's name (for bench labels).
    pub fn distance_name(&self) -> &'static str {
        self.dist.name()
    }

    /// Releases the engine, returning the distance oracle.
    pub fn into_distance(self) -> D {
        self.dist
    }
}
