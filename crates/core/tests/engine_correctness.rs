//! End-to-end exactness: every K-SPIN query processor must return exactly
//! what the network-expansion oracle returns, across operators, k values,
//! keyword counts, ρ values, distance modules, and after updates.

use kspin_alt::{AltIndex, LandmarkStrategy};
use kspin_core::query::baseline::{brute_bknn, brute_topk};
use kspin_core::{
    BoolExpr, DijkstraDistance, KspinConfig, KspinIndex, Op, QueryEngine, ScoreModel,
};
use kspin_graph::generate::{road_network, RoadNetworkConfig};
use kspin_graph::{Graph, Weight};
use kspin_text::generate::{corpus as gen_corpus, CorpusConfig};
use kspin_text::workload::{query_vectors, WorkloadConfig};
use kspin_text::TextModel;
use kspin_text::{Corpus, ObjectId, TermId};

struct World {
    graph: Graph,
    corpus: Corpus,
    alt: AltIndex,
    index: KspinIndex,
}

fn world(n: usize, seed: u64, rho: usize) -> World {
    let graph = road_network(&RoadNetworkConfig::new(n, seed));
    let mut cc = CorpusConfig::new(graph.num_vertices(), seed ^ 0xabc);
    cc.object_fraction = 0.08;
    let (corpus, _) = gen_corpus(&cc);
    let alt = AltIndex::build(&graph, 8, LandmarkStrategy::Farthest, seed);
    let index = KspinIndex::build(
        &graph,
        &corpus,
        &KspinConfig {
            rho,
            num_threads: 2,
            ..KspinConfig::default()
        },
    );
    World {
        graph,
        corpus,
        alt,
        index,
    }
}

fn engine(w: &World) -> QueryEngine<'_, DijkstraDistance<'_>> {
    QueryEngine::new(
        &w.graph,
        &w.corpus,
        &w.index,
        &w.alt,
        DijkstraDistance::new(&w.graph),
    )
}

fn vectors(w: &World, len: usize) -> Vec<Vec<TermId>> {
    let cfg = WorkloadConfig {
        seed_terms: vec![0, 1, 2, 3, 4],
        objects_per_term: 2,
        vertices_per_vector: 1,
        seed: 7,
    };
    query_vectors(&w.corpus, &cfg, len)
}

/// Distances must match exactly; object identity may differ only on ties.
fn assert_same_distances(got: &[(ObjectId, Weight)], want: &[(ObjectId, Weight)], label: &str) {
    let gd: Vec<Weight> = got.iter().map(|&(_, d)| d).collect();
    let wd: Vec<Weight> = want.iter().map(|&(_, d)| d).collect();
    assert_eq!(
        gd, wd,
        "{label}: distances differ\ngot  {got:?}\nwant {want:?}"
    );
}

fn assert_same_scores(got: &[(ObjectId, f64)], want: &[(ObjectId, f64)], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: result counts differ");
    for (i, ((_, gs), (_, ws))) in got.iter().zip(want).enumerate() {
        assert!(
            (gs - ws).abs() < 1e-9,
            "{label}: score {i} differs: {gs} vs {ws}\ngot  {got:?}\nwant {want:?}"
        );
    }
}

#[test]
fn bknn_matches_oracle_across_k_and_ops() {
    let w = world(800, 11, 5);
    let mut e = engine(&w);
    for terms in vectors(&w, 2) {
        for q in [3u32, 177, 555] {
            for k in [1usize, 5, 10] {
                for op in [Op::And, Op::Or] {
                    let got = e.bknn(q, k, &terms, op);
                    let want = brute_bknn(&w.graph, &w.corpus, q, k, &terms, op);
                    assert_same_distances(
                        &got,
                        &want,
                        &format!("q={q} k={k} op={op:?} terms={terms:?}"),
                    );
                }
            }
        }
    }
}

#[test]
fn bknn_matches_oracle_across_term_counts() {
    let w = world(800, 13, 5);
    let mut e = engine(&w);
    for len in 1..=4 {
        for terms in vectors(&w, len).into_iter().take(3) {
            for op in [Op::And, Op::Or] {
                let got = e.bknn(42, 5, &terms, op);
                let want = brute_bknn(&w.graph, &w.corpus, 42, 5, &terms, op);
                assert_same_distances(&got, &want, &format!("len={len} op={op:?}"));
            }
        }
    }
}

#[test]
fn topk_matches_oracle() {
    let w = world(800, 17, 5);
    let mut e = engine(&w);
    for len in 1..=3 {
        for terms in vectors(&w, len).into_iter().take(4) {
            for q in [9u32, 250, 700] {
                for k in [1usize, 5, 10] {
                    let got = e.top_k(q, k, &terms);
                    let want = brute_topk(&w.graph, &w.corpus, q, k, &terms);
                    assert_same_scores(&got, &want, &format!("q={q} k={k} terms={terms:?}"));
                }
            }
        }
    }
}

#[test]
fn results_are_exact_for_every_rho() {
    // §6.1: approximation affects performance only — results stay exact.
    for rho in [1usize, 3, 7, 11] {
        let w = world(500, 19, rho);
        let mut e = engine(&w);
        let terms = vectors(&w, 2).remove(0);
        let got = e.bknn(77, 5, &terms, Op::Or);
        let want = brute_bknn(&w.graph, &w.corpus, 77, 5, &terms, Op::Or);
        assert_same_distances(&got, &want, &format!("rho={rho}"));
        let got = e.top_k(77, 5, &terms);
        let want = brute_topk(&w.graph, &w.corpus, 77, 5, &terms);
        assert_same_scores(&got, &want, &format!("rho={rho}"));
    }
}

#[test]
fn mixed_boolean_expression_matches_filtered_brute_force() {
    let w = world(700, 23, 5);
    let mut e = engine(&w);
    let ts = vectors(&w, 3).remove(0);
    // t0 AND (t1 OR t2)
    let expr = BoolExpr::And(vec![BoolExpr::Term(ts[0]), BoolExpr::any(&[ts[1], ts[2]])]);
    for q in [5u32, 340] {
        let got = e.bknn_expr(q, 5, &expr);
        // Oracle: filter objects by the expression, sort by distance.
        let mut dij = kspin_graph::Dijkstra::new(w.graph.num_vertices());
        dij.sssp(&w.graph, q);
        let space = dij.space();
        let mut want: Vec<(ObjectId, Weight)> = (0..w.corpus.num_objects() as ObjectId)
            .filter(|&o| expr.matches(&w.corpus, o))
            .filter_map(|o| space.distance(w.corpus.vertex_of(o)).map(|d| (o, d)))
            .collect();
        want.sort_unstable_by_key(|&(o, d)| (d, o));
        want.truncate(5);
        assert_same_distances(&got, &want, &format!("expr q={q}"));
    }
}

#[test]
fn query_on_unused_keywords_returns_empty() {
    let w = world(400, 29, 5);
    let mut e = engine(&w);
    let unused = (0..w.corpus.num_terms() as TermId)
        .find(|&t| w.corpus.inv_len(t) == 0)
        .expect("corpus has an unused term");
    assert!(e.bknn(0, 5, &[unused], Op::Or).is_empty());
    assert!(e.bknn(0, 5, &[unused, 0], Op::And).is_empty());
    assert!(e.top_k(0, 5, &[unused]).is_empty());
    // Disjunction with one live keyword still answers.
    assert!(!e.bknn(0, 5, &[unused, 0], Op::Or).is_empty());
}

#[test]
fn query_from_object_vertex_returns_it_first() {
    let w = world(400, 31, 5);
    let mut e = engine(&w);
    // Pick an object and query from its own vertex with its first keyword.
    let o: ObjectId = 3.min(w.corpus.num_objects() as u32 - 1);
    let t = w.corpus.doc(o)[0].term;
    let q = w.corpus.vertex_of(o);
    let got = e.bknn(q, 1, &[t], Op::Or);
    assert_eq!(got[0].1, 0, "nearest object at distance 0");
}

#[test]
fn duplicate_query_terms_are_harmless() {
    let w = world(400, 37, 5);
    let mut e = engine(&w);
    let a = e.bknn(10, 5, &[0, 0, 1, 1], Op::Or);
    let b = e.bknn(10, 5, &[0, 1], Op::Or);
    assert_eq!(a, b);
    let ta = e.top_k(10, 5, &[0, 0, 1]);
    let tb = e.top_k(10, 5, &[0, 1]);
    assert_eq!(ta.len(), tb.len());
}

#[test]
fn kappa_stays_a_small_multiple_of_k() {
    // §5.1: in practice κ ≤ 3k for BkNN and ≤ 5k for top-k. Give slack for
    // small synthetic corpora (plus the ρ initialization overhead).
    let w = world(900, 41, 5);
    let mut e = engine(&w);
    let terms = vectors(&w, 2).remove(0);
    let k = 10;
    e.reset_stats();
    let _ = e.bknn(123, k, &terms, Op::Or);
    let kappa = e.stats().heap_extractions;
    assert!(
        kappa <= 8 * k + 20,
        "BkNN κ = {kappa} too large for k = {k}"
    );
    e.reset_stats();
    let _ = e.top_k(123, k, &terms);
    let kappa = e.stats().heap_extractions;
    assert!(
        kappa <= 12 * k + 20,
        "top-k κ = {kappa} too large for k = {k}"
    );
}

#[test]
fn stats_count_distance_computations() {
    let w = world(500, 43, 5);
    let mut e = engine(&w);
    e.reset_stats();
    let res = e.bknn(7, 3, &[0], Op::Or);
    let s = e.stats();
    assert!(s.dist_computations >= res.len());
    assert!(s.heap_extractions >= s.dist_computations);
    assert!(s.lb_computations > 0);
}

/// Generic brute-force oracle over any (text, score) model pair.
fn brute_topk_with(
    w: &World,
    q: u32,
    k: usize,
    terms: &[TermId],
    text: TextModel,
    score: ScoreModel,
) -> Vec<f64> {
    let query = kspin_text::QueryTerms::with_model(&w.corpus, terms, text);
    let mut dij = kspin_graph::Dijkstra::new(w.graph.num_vertices());
    dij.sssp(&w.graph, q);
    let space = dij.space();
    let mut scores: Vec<f64> = (0..w.corpus.num_objects() as ObjectId)
        .filter_map(|o| {
            let tr = query.relevance(&w.corpus, o);
            if tr <= 0.0 {
                return None; // candidates must share a keyword (§2)
            }
            let d = space.distance(w.corpus.vertex_of(o))?;
            Some(score.combine(d, tr))
        })
        .collect();
    scores.sort_by(f64::total_cmp);
    scores.truncate(k);
    scores
}

#[test]
fn topk_is_exact_under_bm25() {
    let w = world(700, 61, 5);
    let mut e = engine(&w);
    for terms in vectors(&w, 2).into_iter().take(3) {
        for q in [5u32, 432] {
            let got = e.top_k_with(
                q,
                5,
                &terms,
                TextModel::BM25_DEFAULT,
                ScoreModel::WeightedDistance,
            );
            let want = brute_topk_with(
                &w,
                q,
                5,
                &terms,
                TextModel::BM25_DEFAULT,
                ScoreModel::WeightedDistance,
            );
            assert_eq!(got.len(), want.len());
            for ((_, gs), ws) in got.iter().zip(&want) {
                assert!((gs - ws).abs() < 1e-9, "bm25 q={q} terms={terms:?}");
            }
        }
    }
}

#[test]
fn topk_is_exact_under_weighted_sum() {
    let w = world(700, 67, 5);
    let mut e = engine(&w);
    // Normalize by the network diameter proxy: twice the max edge-weight
    // sum isn't needed — any fixed max_dist keeps the model monotone.
    let score = ScoreModel::WeightedSum {
        alpha: 0.6,
        max_dist: 2_000_000,
    };
    for terms in vectors(&w, 2).into_iter().take(3) {
        for q in [17u32, 640] {
            for text in [TextModel::Cosine, TextModel::BM25_DEFAULT] {
                let got = e.top_k_with(q, 5, &terms, text, score);
                let want = brute_topk_with(&w, q, 5, &terms, text, score);
                assert_eq!(got.len(), want.len());
                for ((_, gs), ws) in got.iter().zip(&want) {
                    assert!((gs - ws).abs() < 1e-9, "{text:?} q={q}");
                }
            }
        }
    }
}

#[test]
fn score_models_rank_differently_but_both_exactly() {
    // Sanity: the two score models are genuinely different rankings on at
    // least some query (otherwise the weighted-sum path is untested).
    let w = world(700, 71, 5);
    let mut e = engine(&w);
    let mut differ = false;
    for terms in vectors(&w, 2) {
        for q in [3u32, 99, 500] {
            let a: Vec<ObjectId> = e.top_k(q, 5, &terms).iter().map(|&(o, _)| o).collect();
            let b: Vec<ObjectId> = e
                .top_k_with(
                    q,
                    5,
                    &terms,
                    TextModel::Cosine,
                    ScoreModel::WeightedSum {
                        alpha: 0.3,
                        max_dist: 500_000,
                    },
                )
                .iter()
                .map(|&(o, _)| o)
                .collect();
            if a != b {
                differ = true;
            }
        }
    }
    assert!(
        differ,
        "weighted-sum never changed any ranking — suspicious"
    );
}

// ---- updates ----------------------------------------------------------

#[test]
fn results_stay_exact_after_lazy_insertions() {
    // Build over 70% of objects, lazily insert the rest, then compare with
    // the full-corpus oracle (Fig. 8(a)'s setting).
    let w0 = world(700, 47, 5);
    let cut = |o: ObjectId| o % 10 < 7;
    let mut index = KspinIndex::build_filtered(
        &w0.graph,
        &w0.corpus,
        cut,
        &KspinConfig {
            rho: 5,
            num_threads: 2,
            ..KspinConfig::default()
        },
    );
    let mut dist = DijkstraDistance::new(&w0.graph);
    for o in 0..w0.corpus.num_objects() as ObjectId {
        if !cut(o) {
            index.insert_object(&w0.graph, &w0.corpus, o, &mut dist);
        }
    }
    let mut e = QueryEngine::new(
        &w0.graph,
        &w0.corpus,
        &index,
        &w0.alt,
        DijkstraDistance::new(&w0.graph),
    );
    for terms in vectors(&w0, 2).into_iter().take(3) {
        for q in [31u32, 444] {
            let got = e.bknn(q, 5, &terms, Op::Or);
            let want = brute_bknn(&w0.graph, &w0.corpus, q, 5, &terms, Op::Or);
            assert_same_distances(&got, &want, "after lazy insertions");
            let got = e.top_k(q, 5, &terms);
            let want = brute_topk(&w0.graph, &w0.corpus, q, 5, &terms);
            assert_same_scores(&got, &want, "top-k after lazy insertions");
        }
    }
}

#[test]
fn results_stay_exact_after_deletions() {
    let w = world(700, 53, 5);
    let mut index = KspinIndex::build(
        &w.graph,
        &w.corpus,
        &KspinConfig {
            rho: 5,
            num_threads: 2,
            ..KspinConfig::default()
        },
    );
    // Delete every 5th object.
    let deleted: Vec<ObjectId> = (0..w.corpus.num_objects() as ObjectId)
        .filter(|o| o % 5 == 0)
        .collect();
    for &o in &deleted {
        index.delete_object(&w.corpus, o);
    }
    let mut e = QueryEngine::new(
        &w.graph,
        &w.corpus,
        &index,
        &w.alt,
        DijkstraDistance::new(&w.graph),
    );
    let is_deleted = |o: ObjectId| o.is_multiple_of(5);
    for terms in vectors(&w, 2).into_iter().take(3) {
        for q in [8u32, 600] {
            let got = e.bknn(q, 5, &terms, Op::Or);
            for &(o, _) in &got {
                assert!(!is_deleted(o), "deleted object {o} returned");
            }
            // Oracle over the live subset.
            let mut dij = kspin_graph::Dijkstra::new(w.graph.num_vertices());
            dij.sssp(&w.graph, q);
            let space = dij.space();
            let mut want: Vec<(ObjectId, Weight)> = (0..w.corpus.num_objects() as ObjectId)
                .filter(|&o| !is_deleted(o) && w.corpus.contains_any(o, &terms))
                .filter_map(|o| space.distance(w.corpus.vertex_of(o)).map(|d| (o, d)))
                .collect();
            want.sort_unstable_by_key(|&(o, d)| (d, o));
            want.truncate(5);
            assert_same_distances(&got, &want, "after deletions");
        }
    }
}

#[test]
fn rebuild_after_updates_preserves_results() {
    let w = world(600, 59, 5);
    let mut index = KspinIndex::build_filtered(
        &w.graph,
        &w.corpus,
        |o| o % 2 == 0,
        &KspinConfig {
            rho: 5,
            num_threads: 2,
            ..KspinConfig::default()
        },
    );
    let mut dist = DijkstraDistance::new(&w.graph);
    for o in 0..w.corpus.num_objects() as ObjectId {
        if o % 2 == 1 {
            index.insert_object(&w.graph, &w.corpus, o, &mut dist);
        }
    }
    // Rebuild every keyword's index and re-check exactness.
    for t in 0..w.corpus.num_terms() as TermId {
        index.rebuild_term(&w.graph, &w.corpus, t);
    }
    let mut e = QueryEngine::new(
        &w.graph,
        &w.corpus,
        &index,
        &w.alt,
        DijkstraDistance::new(&w.graph),
    );
    let terms = vectors(&w, 2).remove(0);
    let got = e.bknn(99, 5, &terms, Op::Or);
    let want = brute_bknn(&w.graph, &w.corpus, 99, 5, &terms, Op::Or);
    assert_same_distances(&got, &want, "after rebuild");
}
