//! ROAD (Lee et al. [12], applied to top-k spatial keyword queries by
//! Rocha-Junior & Nørvåg [3]).
//!
//! ROAD organizes the network as a hierarchy of *Rnets* with *shortcuts*
//! between each Rnet's border vertices. Search is a network expansion that
//! *bypasses* Rnets containing no relevant objects: when the wavefront
//! reaches a border of an object-free Rnet, it jumps across it via
//! shortcuts instead of expanding its interior. Keyword aggregation stores,
//! per Rnet, which keywords occur in the subtree — exactly the
//! false-positive-prone aggregation of §1.1.
//!
//! The hierarchy and the shortcut distances are shared with the
//! [`kspin_gtree`] crate (the paper notes the two baselines differ mainly
//! in how the same subgraph hierarchy is stored and searched).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use kspin_graph::{Graph, OrderedWeight, VertexId, Weight, INFINITY};
use kspin_gtree::GTree;
use kspin_text::{score, Corpus, ObjectId, QueryTerms, TermId};

/// The ROAD index: per-vertex border chains + per-Rnet keyword sets,
/// layered over a [`GTree`] hierarchy whose matrices provide shortcuts.
pub struct RoadIndex<'a> {
    gt: &'a GTree,
    graph: &'a Graph,
    corpus: &'a Corpus,
    /// Per vertex: the nodes (Rnets) having it as a border, shallowest
    /// (closest to the root) first — the search tries to bypass the biggest
    /// object-free Rnet available.
    border_chain: Vec<Vec<u32>>,
    /// Per vertex: its position within each chain node's border list.
    border_pos_in_node: Vec<Vec<u32>>,
    /// Per Rnet: keywords present in the subtree.
    rnet_terms: Vec<HashSet<TermId>>,
    /// Per Rnet: object count in the subtree.
    rnet_objects: Vec<u32>,
}

impl<'a> RoadIndex<'a> {
    /// Builds the overlay layers.
    pub fn build(gt: &'a GTree, graph: &'a Graph, corpus: &'a Corpus) -> Self {
        let num_nodes = gt.hierarchy.num_nodes();
        let n = graph.num_vertices();
        let mut border_chain: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut border_pos_in_node: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Nodes are allocated parent-before-child, so increasing id order
        // visits shallow nodes first.
        for node in 0..num_nodes as u32 {
            for (i, &b) in gt.borders(node).iter().enumerate() {
                border_chain[b as usize].push(node);
                border_pos_in_node[b as usize].push(i as u32);
            }
        }

        let mut rnet_terms: Vec<HashSet<TermId>> = vec![HashSet::new(); num_nodes];
        let mut rnet_objects = vec![0u32; num_nodes];
        for o in 0..corpus.num_objects() as ObjectId {
            let mut node = gt.hierarchy.leaf_of(corpus.vertex_of(o));
            loop {
                rnet_objects[node as usize] += 1;
                for p in corpus.doc(o) {
                    rnet_terms[node as usize].insert(p.term);
                }
                if node == 0 {
                    break;
                }
                node = gt.hierarchy.parent(node);
            }
        }

        RoadIndex {
            gt,
            graph,
            corpus,
            border_chain,
            border_pos_in_node,
            rnet_terms,
            rnet_objects,
        }
    }

    /// Whether Rnet `n` contains any object with any of `terms`.
    fn rnet_relevant(&self, n: u32, terms: &[TermId]) -> bool {
        let set = &self.rnet_terms[n as usize];
        terms.iter().any(|t| set.contains(t))
    }

    /// The shallowest bypassable Rnet at border vertex `v`: object-free of
    /// query keywords and not containing the query's leaf.
    fn bypass_net(&self, v: VertexId, q_leaf: u32, terms: &[TermId]) -> Option<(u32, u32)> {
        for (ci, &n) in self.border_chain[v as usize].iter().enumerate() {
            if self.gt.in_subtree(n, q_leaf) {
                continue;
            }
            if self.rnet_objects[n as usize] > 0 && self.rnet_relevant(n, terms) {
                continue;
            }
            return Some((n, self.border_pos_in_node[v as usize][ci]));
        }
        None
    }

    /// Core expansion: settles vertices in distance order, bypassing
    /// irrelevant Rnets, invoking `visit(object, distance)`; stops when
    /// `visit` returns false or the frontier empties.
    fn expand<F>(&self, q: VertexId, terms: &[TermId], mut visit: F) -> ExpansionStats
    where
        F: FnMut(ObjectId, Weight) -> bool,
    {
        let q_leaf = self.gt.hierarchy.leaf_of(q);
        let n = self.graph.num_vertices();
        let mut dist: Vec<Weight> = vec![INFINITY; n];
        let mut settled = vec![false; n];
        let mut heap: BinaryHeap<(Reverse<Weight>, VertexId)> = BinaryHeap::new();
        dist[q as usize] = 0;
        heap.push((Reverse(0), q));
        let mut stats = ExpansionStats::default();

        while let Some((Reverse(d), v)) = heap.pop() {
            if settled[v as usize] || d > dist[v as usize] {
                continue;
            }
            settled[v as usize] = true;
            stats.settled += 1;
            if let Some(o) = self.corpus.object_at(v) {
                if !visit(o, d) {
                    break;
                }
            }
            if let Some((net, pos)) = self.bypass_net(v, q_leaf, terms) {
                // Jump across the Rnet via shortcuts…
                let borders = self.gt.borders(net);
                for (j, &b2) in borders.iter().enumerate() {
                    if b2 == v {
                        continue;
                    }
                    stats.shortcut_relaxations += 1;
                    let nd = d.saturating_add(self.gt.border_shortcut(net, pos as usize, j));
                    if nd < dist[b2 as usize] {
                        dist[b2 as usize] = nd;
                        heap.push((Reverse(nd), b2));
                    }
                }
                // …and still take original edges that leave the Rnet.
                for (u, w) in self.graph.neighbors(v) {
                    if self.gt.in_subtree(net, self.gt.hierarchy.leaf_of(u)) {
                        continue;
                    }
                    let nd = d + w;
                    if nd < dist[u as usize] {
                        dist[u as usize] = nd;
                        heap.push((Reverse(nd), u));
                    }
                }
            } else {
                for (u, w) in self.graph.neighbors(v) {
                    let nd = d + w;
                    if nd < dist[u as usize] {
                        dist[u as usize] = nd;
                        heap.push((Reverse(nd), u));
                    }
                }
            }
        }
        stats
    }

    /// Top-k spatial keyword query [3]: distance-ordered expansion scoring
    /// each settled relevant object, terminating once
    /// `d / TR_max ≥ D_k`. Exact.
    pub fn top_k(&self, q: VertexId, k: usize, terms: &[TermId]) -> Vec<(ObjectId, f64)> {
        let query = QueryTerms::new(self.corpus, terms);
        if k == 0 || query.is_empty() {
            return Vec::new();
        }
        let tr_max = query.max_relevance(self.corpus);
        if tr_max <= 0.0 {
            return Vec::new();
        }
        let mut best: BinaryHeap<(OrderedWeight, ObjectId)> = BinaryHeap::new();
        self.expand(q, query.terms(), |o, d| {
            let d_k = match best.peek() {
                Some(&(s, _)) if best.len() == k => s.get(),
                _ => f64::INFINITY,
            };
            if d as f64 / tr_max >= d_k {
                return false; // no farther object can improve the top-k
            }
            let tr = query.relevance(self.corpus, o);
            if tr > 0.0 {
                let st = score(d, tr);
                if best.len() < k {
                    best.push((OrderedWeight::new(st), o));
                } else if st < d_k {
                    best.pop();
                    best.push((OrderedWeight::new(st), o));
                }
            }
            true
        });
        let mut out: Vec<(ObjectId, f64)> = best.into_iter().map(|(s, o)| (o, s.get())).collect();
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Boolean kNN by bypassed expansion (provided for completeness; the
    /// paper's Table 1 marks ROAD as top-k-only and our benches follow it).
    pub fn bknn(
        &self,
        q: VertexId,
        k: usize,
        terms: &[TermId],
        conjunctive: bool,
    ) -> Vec<(ObjectId, Weight)> {
        let mut uniq = terms.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        if k == 0 || uniq.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.expand(q, &uniq, |o, d| {
            let ok = if conjunctive {
                self.corpus.contains_all(o, &uniq)
            } else {
                self.corpus.contains_any(o, &uniq)
            };
            if ok {
                out.push((o, d));
            }
            out.len() < k
        });
        out
    }

    /// Overlay size in bytes (border chains + Rnet keyword sets), excluding
    /// the shared hierarchy matrices.
    pub fn size_bytes(&self) -> usize {
        let chains: usize = self.border_chain.iter().map(|c| c.len() * 8 + 24).sum();
        let terms: usize = self.rnet_terms.iter().map(|s| s.len() * 8 + 32).sum();
        chains + terms + self.rnet_objects.len() * 4
    }
}

/// Expansion effort counters (for diagnostics/benches).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpansionStats {
    pub settled: usize,
    pub shortcut_relaxations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_gtree::tree::GtreeConfig;
    use kspin_text::generate::{corpus as gen_corpus, CorpusConfig};

    fn fixture(n: usize, seed: u64) -> (Graph, Corpus, GTree) {
        let g = road_network(&RoadNetworkConfig::new(n, seed));
        let mut cc = CorpusConfig::new(g.num_vertices(), seed ^ 9);
        cc.object_fraction = 0.06;
        let (corpus, _) = gen_corpus(&cc);
        let gt = GTree::build(
            &g,
            &GtreeConfig {
                partition: kspin_gtree::PartitionConfig { leaf_size: 48 },
                num_threads: 2,
            },
        );
        (g, corpus, gt)
    }

    #[test]
    fn topk_matches_brute_force() {
        let (g, c, gt) = fixture(700, 211);
        let road = RoadIndex::build(&gt, &g, &c);
        let mut dij = kspin_graph::Dijkstra::new(g.num_vertices());
        for q in [1u32, 350, 680] {
            let q = q.min(g.num_vertices() as u32 - 1);
            let got = road.top_k(q, 5, &[0, 1]);
            // Brute force oracle.
            let query = QueryTerms::new(&c, &[0, 1]);
            dij.sssp(&g, q);
            let space = dij.space();
            let mut want: Vec<f64> = (0..c.num_objects() as ObjectId)
                .filter_map(|o| {
                    let tr = query.relevance(&c, o);
                    (tr > 0.0).then(|| score(space.distance(c.vertex_of(o)).unwrap(), tr))
                })
                .collect();
            want.sort_by(f64::total_cmp);
            want.truncate(5);
            assert_eq!(got.len(), want.len());
            for ((_, gs), ws) in got.iter().zip(&want) {
                assert!((gs - ws).abs() < 1e-9, "q={q}");
            }
        }
    }

    #[test]
    fn bknn_matches_brute_force() {
        let (g, c, gt) = fixture(700, 213);
        let road = RoadIndex::build(&gt, &g, &c);
        let mut dij = kspin_graph::Dijkstra::new(g.num_vertices());
        for conj in [false, true] {
            let got = road.bknn(5, 5, &[0, 1], conj);
            dij.sssp(&g, 5);
            let space = dij.space();
            let mut want: Vec<Weight> = (0..c.num_objects() as ObjectId)
                .filter(|&o| {
                    if conj {
                        c.contains_all(o, &[0, 1])
                    } else {
                        c.contains_any(o, &[0, 1])
                    }
                })
                .map(|o| space.distance(c.vertex_of(o)).unwrap())
                .collect();
            want.sort_unstable();
            want.truncate(5);
            let gd: Vec<Weight> = got.iter().map(|&(_, d)| d).collect();
            assert_eq!(gd, want, "conj={conj}");
        }
    }

    #[test]
    fn bypass_actually_skips_interior_vertices() {
        let (g, c, gt) = fixture(1200, 215);
        let road = RoadIndex::build(&gt, &g, &c);
        // A keyword so rare that most Rnets are bypassable.
        let rare = (0..c.num_terms() as TermId)
            .find(|&t| c.inv_len(t) == 1)
            .expect("no singleton keyword");
        let stats = road.expand(0, &[rare], |_, _| true);
        assert!(
            stats.settled < g.num_vertices(),
            "bypass settled every vertex ({} of {})",
            stats.settled,
            g.num_vertices()
        );
        assert!(stats.shortcut_relaxations > 0, "no shortcuts used");
    }

    #[test]
    fn unused_keyword_returns_empty() {
        let (g, c, gt) = fixture(400, 217);
        let road = RoadIndex::build(&gt, &g, &c);
        let unused = (0..c.num_terms() as TermId)
            .find(|&t| c.inv_len(t) == 0)
            .unwrap();
        assert!(road.top_k(0, 5, &[unused]).is_empty());
        assert!(road.bknn(0, 5, &[unused], false).is_empty());
    }
}
