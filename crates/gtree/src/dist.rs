//! Assembly-based network distances with materialization.
//!
//! A [`GtreeDistance`] is pinned to one source vertex at a time. It
//! materializes, per tree node `n`, the vector `dist(q, ·)` over `cb(n)`
//! (the node's matrix frame) by min-plus composition along the hierarchy,
//! and caches those vectors so later distance computations from the same
//! source reuse them — the *materialization* of Zhong et al. that §7.4
//! keeps identical between KS-GT and the G-tree baseline for an
//! apples-to-apples comparison.
//!
//! Every `lookup + add` inside a composition increments the *matrix
//! operation* counter, the machine-independent cost measure of Fig. 16.

use std::collections::HashMap;

use kspin_graph::{Graph, VertexId, Weight, INFINITY};

use crate::tree::GTree;

/// Materialized assembly state for one source vertex.
pub struct GtreeDistance<'a> {
    gt: &'a GTree,
    graph: &'a Graph,
    source: VertexId,
    source_leaf: u32,
    /// Per node: `dist(source, cb(n))` for internal nodes; for the source
    /// leaf: `dist(source, borders(leaf))`.
    arrays: HashMap<u32, Vec<Weight>>,
    /// Matrix operations performed (lookup + add in compositions).
    ops: u64,
}

impl<'a> GtreeDistance<'a> {
    /// Creates assembly state pinned to `source`.
    pub fn new(gt: &'a GTree, graph: &'a Graph, source: VertexId) -> Self {
        GtreeDistance {
            gt,
            graph,
            source,
            source_leaf: gt.hierarchy.leaf_of(source),
            arrays: HashMap::new(),
            ops: 0,
        }
    }

    /// The pinned source vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Re-pins to a new source, clearing materialized arrays.
    pub fn reset(&mut self, source: VertexId) {
        self.source = source;
        self.source_leaf = self.gt.hierarchy.leaf_of(source);
        self.arrays.clear();
    }

    /// Matrix operations since construction (or the last counter reset).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Zeroes the matrix-operation counter.
    pub fn reset_ops(&mut self) {
        self.ops = 0;
    }

    /// Exact network distance from the pinned source to `t`.
    pub fn distance(&mut self, t: VertexId) -> Weight {
        if t == self.source {
            return 0;
        }
        let t_leaf = self.gt.hierarchy.leaf_of(t);
        if t_leaf == self.source_leaf {
            return self.same_leaf_distance(t);
        }
        // Materialize down to t's leaf and finish over its borders.
        let border_dists = self.border_array(t_leaf).to_vec();
        let cols = self.gt.leaf_col[t_leaf as usize].len();
        let tcol = self.gt.leaf_col[t_leaf as usize][&t] as usize;
        let mat = &self.gt.matrix[t_leaf as usize];
        let mut best = INFINITY;
        for (bi, &dqb) in border_dists.iter().enumerate() {
            self.ops += 1;
            let d = dqb.saturating_add(mat[bi * cols + tcol]);
            if d < best {
                best = d;
            }
        }
        best
    }

    /// Minimum distance from the source to any border of node `n` — the
    /// `mindist(q, node)` the keyword-aggregated search orders its queue
    /// by. Zero for nodes containing the source.
    pub fn min_dist(&mut self, n: u32) -> Weight {
        if self.gt.in_subtree(n, self.source_leaf) {
            return 0;
        }
        self.border_array(n)
            .iter()
            .copied()
            .min()
            .unwrap_or(INFINITY)
    }

    /// `dist(source, borders(n))`, materializing ancestors as needed.
    pub fn border_array(&mut self, n: u32) -> Vec<Weight> {
        if n == self.source_leaf {
            // Direct from the leaf matrix: column of the source.
            return self.source_leaf_border_dists();
        }
        if self.gt.in_subtree(n, self.source_leaf) {
            // Ancestor of the source: restrict its cb array to its borders.
            let frame = self.cb_array(n);
            return self.restrict_to_borders(n, &frame);
        }
        // Neither the source leaf nor an ancestor: the parent's cb frame
        // contains this node's borders as a block.
        let parent = self.gt.hierarchy.parent(n);
        debug_assert_ne!(parent, u32::MAX);
        let parent_frame = self.cb_array(parent);
        let child_idx = self
            .gt
            .hierarchy
            .children(parent)
            .iter()
            .position(|&c| c == n)
            .expect("child listed in parent");
        let off = self.gt.cb_child_offset[parent as usize][child_idx] as usize;
        let len = self.gt.borders[n as usize].len();
        parent_frame[off..off + len].to_vec()
    }

    /// `dist(source, cb(n))` for an internal node, cached.
    fn cb_array(&mut self, n: u32) -> Vec<Weight> {
        debug_assert!(!self.gt.hierarchy.is_leaf(n), "cb_array on a leaf");
        if let Some(a) = self.arrays.get(&n) {
            return a.clone();
        }
        let frame_len = self.gt.cb[n as usize].len();
        let (seed_positions, seed_dists): (Vec<u32>, Vec<Weight>) =
            if self.gt.in_subtree(n, self.source_leaf) {
                // Compose upward through the child on the source's path.
                let c = self.gt.child_toward_leaf(n, self.source_leaf);
                let child_borders = self.border_array(c);
                let child_idx = self
                    .gt
                    .hierarchy
                    .children(n)
                    .iter()
                    .position(|&x| x == c)
                    .expect("child listed in parent");
                let off = self.gt.cb_child_offset[n as usize][child_idx];
                let positions = (off..off + child_borders.len() as u32).collect();
                (positions, child_borders)
            } else {
                // Source outside n: every entering path crosses borders(n).
                let own = self.border_array(n);
                (self.gt.border_pos[n as usize].clone(), own)
            };

        let mat = &self.gt.matrix[n as usize];
        let mut out = vec![INFINITY; frame_len];
        for (&p, &d0) in seed_positions.iter().zip(&seed_dists) {
            out[p as usize] = out[p as usize].min(d0);
        }
        for x in 0..frame_len {
            let mut best = out[x];
            for (&p, &d0) in seed_positions.iter().zip(&seed_dists) {
                self.ops += 1;
                let d = d0.saturating_add(mat[p as usize * frame_len + x]);
                if d < best {
                    best = d;
                }
            }
            out[x] = best;
        }
        self.arrays.insert(n, out.clone());
        out
    }

    fn restrict_to_borders(&self, n: u32, frame: &[Weight]) -> Vec<Weight> {
        self.gt.border_pos[n as usize]
            .iter()
            .map(|&p| frame[p as usize])
            .collect()
    }

    fn source_leaf_border_dists(&mut self) -> Vec<Weight> {
        let leaf = self.source_leaf as usize;
        let cols = self.gt.leaf_col[leaf].len();
        let scol = self.gt.leaf_col[leaf][&self.source] as usize;
        let mat = &self.gt.matrix[leaf];
        (0..self.gt.borders[leaf].len())
            .map(|bi| {
                self.ops += 1;
                mat[bi * cols + scol]
            })
            .collect()
    }

    /// Same-leaf distances: the global shortest path either stays inside
    /// the leaf subgraph (local Dijkstra) or crosses a leaf border
    /// (via-border assembly); the minimum of the two is exact.
    fn same_leaf_distance(&mut self, t: VertexId) -> Weight {
        let leaf = self.source_leaf;
        let local = self.local_leaf_dijkstra(t);
        let cols = self.gt.leaf_col[leaf as usize].len();
        let tcol = self.gt.leaf_col[leaf as usize][&t] as usize;
        let border_dists = self.source_leaf_border_dists();
        let mat = &self.gt.matrix[leaf as usize];
        let mut best = local;
        for (bi, &dqb) in border_dists.iter().enumerate() {
            self.ops += 1;
            let d = dqb.saturating_add(mat[bi * cols + tcol]);
            if d < best {
                best = d;
            }
        }
        best
    }

    fn local_leaf_dijkstra(&self, t: VertexId) -> Weight {
        use std::cmp::Reverse;
        let leaf = self.source_leaf;
        let mut dist: HashMap<VertexId, Weight> = HashMap::new();
        let mut heap = std::collections::BinaryHeap::new();
        dist.insert(self.source, 0);
        heap.push((Reverse(0), self.source));
        while let Some((Reverse(d), v)) = heap.pop() {
            if d > dist[&v] {
                continue;
            }
            if v == t {
                return d;
            }
            for (u, w) in self.graph.neighbors(v) {
                if self.gt.hierarchy.leaf_of(u) != leaf {
                    continue;
                }
                let nd = d + w;
                if nd < dist.get(&u).copied().unwrap_or(INFINITY) {
                    dist.insert(u, nd);
                    heap.push((Reverse(nd), u));
                }
            }
        }
        INFINITY
    }
}

impl GTree {
    /// The child of `anc` whose subtree contains `leaf`.
    pub(crate) fn child_toward_leaf(&self, anc: u32, leaf: u32) -> u32 {
        for &c in self.hierarchy.children(anc) {
            if self.in_subtree(c, leaf) {
                return c;
            }
        }
        unreachable!("leaf {leaf} not under node {anc}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::GtreeConfig;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::Dijkstra;

    fn build(n: usize, leaf: usize, seed: u64) -> (Graph, GTree) {
        let g = road_network(&RoadNetworkConfig::new(n, seed));
        let gt = GTree::build(
            &g,
            &GtreeConfig {
                partition: crate::partition::PartitionConfig { leaf_size: leaf },
                num_threads: 2,
            },
        );
        (g, gt)
    }

    #[test]
    fn assembly_matches_dijkstra_everywhere() {
        let (g, gt) = build(700, 32, 91);
        let mut dij = Dijkstra::new(g.num_vertices());
        for s in [0u32, 123, 456, 699] {
            let s = s.min(g.num_vertices() as u32 - 1);
            let mut gd = GtreeDistance::new(&gt, &g, s);
            dij.sssp(&g, s);
            let space = dij.space();
            for t in (0..g.num_vertices() as VertexId).step_by(23) {
                assert_eq!(gd.distance(t), space.distance(t).unwrap(), "({s},{t})");
            }
        }
    }

    #[test]
    fn same_leaf_pairs_are_exact() {
        let (g, gt) = build(500, 64, 93);
        let mut dij = Dijkstra::new(g.num_vertices());
        // Exhaustively test one leaf.
        let leaf = gt.hierarchy.leaf_of(0);
        let vs = gt.hierarchy.leaf_vertices(leaf).to_vec();
        let s = vs[0];
        let mut gd = GtreeDistance::new(&gt, &g, s);
        dij.sssp(&g, s);
        let space = dij.space();
        for &t in &vs {
            assert_eq!(
                gd.distance(t),
                space.distance(t).unwrap(),
                "same-leaf ({s},{t})"
            );
        }
    }

    #[test]
    fn min_dist_lower_bounds_every_member() {
        let (g, gt) = build(600, 32, 95);
        let s = 7;
        let mut gd = GtreeDistance::new(&gt, &g, s);
        let mut dij = Dijkstra::new(g.num_vertices());
        dij.sssp(&g, s);
        let space = dij.space();
        for n in 0..gt.hierarchy.num_nodes() as u32 {
            let md = gd.min_dist(n);
            // Every vertex inside the node is at least min_dist away.
            if gt.hierarchy.is_leaf(n) {
                for &v in gt.hierarchy.leaf_vertices(n) {
                    assert!(md <= space.distance(v).unwrap(), "node {n} vertex {v}");
                }
            }
        }
    }

    #[test]
    fn materialization_reuses_arrays() {
        let (g, gt) = build(600, 32, 97);
        let mut gd = GtreeDistance::new(&gt, &g, 11);
        let _ = gd.distance(500);
        let ops_first = gd.ops();
        let _ = gd.distance(501.min(g.num_vertices() as u32 - 1));
        let ops_second = gd.ops() - ops_first;
        assert!(
            ops_second <= ops_first,
            "second query ({ops_second} ops) should reuse materialized arrays ({ops_first} ops)"
        );
    }

    #[test]
    fn reset_changes_source() {
        let (g, gt) = build(400, 32, 99);
        let mut gd = GtreeDistance::new(&gt, &g, 0);
        let d1 = gd.distance(100);
        gd.reset(100);
        assert_eq!(gd.distance(0), d1, "distance must be symmetric");
        assert_eq!(gd.distance(100), 0);
    }
}
