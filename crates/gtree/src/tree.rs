//! The G-tree structure: borders, distance matrices, build.

use std::collections::HashMap;

use kspin_graph::{Dijkstra, Graph, VertexId, Weight};

use crate::partition::{partition, Hierarchy, PartitionConfig};

/// Build parameters.
#[derive(Debug, Clone, Default)]
pub struct GtreeConfig {
    /// Partitioning parameters (leaf size τ).
    pub partition: PartitionConfig,
    /// Worker threads for matrix construction (0 = all available).
    pub num_threads: usize,
}

/// A built G-tree over one road network.
///
/// Matrices are **globally exact**: every entry is the true network
/// distance in `G`, computed during the build by bounded one-to-many
/// Dijkstra (see the crate docs for why this differs from the original
/// bottom-up supergraph construction without changing query behavior).
#[derive(Debug)]
pub struct GTree {
    pub hierarchy: Hierarchy,
    /// Per node: its border vertices.
    pub(crate) borders: Vec<Vec<VertexId>>,
    /// Per internal node: concatenation of children's borders (the matrix
    /// dimension); per leaf: empty.
    pub(crate) cb: Vec<Vec<VertexId>>,
    /// Per internal node and child position: offset of that child's border
    /// block within `cb`.
    pub(crate) cb_child_offset: Vec<Vec<u32>>,
    /// Per node: positions of `borders[n]` within the parent-facing frame —
    /// for internal nodes, indices into `cb[n]`; for leaves, indices into
    /// the leaf's vertex list.
    pub(crate) border_pos: Vec<Vec<u32>>,
    /// Per node matrix, row-major:
    /// * leaf: `borders × leaf_vertices` (column order = the leaf's
    ///   vertex-list order),
    /// * internal: `cb × cb`.
    pub(crate) matrix: Vec<Vec<Weight>>,
    /// Per leaf: vertex → column index.
    pub(crate) leaf_col: Vec<HashMap<VertexId, u32>>,
    /// DFS leaf-interval per node (`[lo, hi)`) and leaf order index per
    /// leaf, for O(1) subtree membership tests.
    pub(crate) leaf_range: Vec<(u32, u32)>,
    leaf_order: Vec<u32>,
}

impl GTree {
    /// Builds the tree (partition + borders + matrices).
    pub fn build(graph: &Graph, config: &GtreeConfig) -> Self {
        let hierarchy = partition(graph, &config.partition);
        let num_nodes = hierarchy.num_nodes();

        // --- DFS leaf intervals ------------------------------------------
        let mut leaf_range = vec![(0u32, 0u32); num_nodes];
        let mut leaf_order = vec![0u32; num_nodes];
        let mut counter = 0u32;
        dfs_intervals(
            &hierarchy,
            0,
            &mut counter,
            &mut leaf_range,
            &mut leaf_order,
        );

        let in_subtree = |n: u32, leaf: u32| -> bool {
            let (lo, hi) = leaf_range[n as usize];
            (lo..hi).contains(&leaf_order[leaf as usize])
        };

        // --- borders ------------------------------------------------------
        let mut borders: Vec<Vec<VertexId>> = vec![Vec::new(); num_nodes];
        // Leaves: a vertex is a border if any neighbor lives in another leaf.
        for n in 0..num_nodes as u32 {
            if !hierarchy.is_leaf(n) {
                continue;
            }
            for &v in hierarchy.leaf_vertices(n) {
                if graph.neighbors(v).any(|(u, _)| hierarchy.leaf_of(u) != n) {
                    borders[n as usize].push(v);
                }
            }
        }
        // Internal nodes bottom-up (children have larger ids than parents
        // in our construction order, so iterate in reverse).
        for n in (0..num_nodes as u32).rev() {
            if hierarchy.is_leaf(n) {
                continue;
            }
            let mut bs = Vec::new();
            for &c in hierarchy.children(n) {
                for &b in &borders[c as usize] {
                    let outside = graph
                        .neighbors(b)
                        .any(|(u, _)| !in_subtree(n, hierarchy.leaf_of(u)));
                    if outside {
                        bs.push(b);
                    }
                }
            }
            borders[n as usize] = bs;
        }

        // --- cb frames and border positions --------------------------------
        let mut cb: Vec<Vec<VertexId>> = vec![Vec::new(); num_nodes];
        let mut cb_child_offset: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
        for n in 0..num_nodes as u32 {
            if hierarchy.is_leaf(n) {
                continue;
            }
            let mut frame = Vec::new();
            let mut offsets = Vec::new();
            for &c in hierarchy.children(n) {
                offsets.push(frame.len() as u32);
                frame.extend_from_slice(&borders[c as usize]);
            }
            cb[n as usize] = frame;
            cb_child_offset[n as usize] = offsets;
        }

        let mut leaf_col: Vec<HashMap<VertexId, u32>> = vec![HashMap::new(); num_nodes];
        for n in 0..num_nodes as u32 {
            if hierarchy.is_leaf(n) {
                leaf_col[n as usize] = hierarchy
                    .leaf_vertices(n)
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, i as u32))
                    .collect();
            }
        }

        let mut border_pos: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
        for n in 0..num_nodes as u32 {
            border_pos[n as usize] = if hierarchy.is_leaf(n) {
                borders[n as usize]
                    .iter()
                    .map(|b| leaf_col[n as usize][b])
                    .collect()
            } else {
                let pos: HashMap<VertexId, u32> = cb[n as usize]
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, i as u32))
                    .collect();
                borders[n as usize].iter().map(|b| pos[b]).collect()
            };
        }

        // --- matrices (parallel over matrix *rows*: the root node alone can
        // carry most of the work, so node-level parallelism would serialize
        // on it) -------------------------------------------------------------
        let threads = if config.num_threads == 0 {
            std::thread::available_parallelism().map_or(4, |p| p.get())
        } else {
            config.num_threads
        };
        // A job is (node, row): one bounded one-to-many Dijkstra.
        let mut jobs: Vec<(u32, u32)> = Vec::new();
        for n in 0..num_nodes as u32 {
            let rows = if hierarchy.is_leaf(n) {
                borders[n as usize].len()
            } else {
                cb[n as usize].len()
            };
            for r in 0..rows as u32 {
                jobs.push((n, r));
            }
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        // lint:allow(sanctioned-concurrency) — per-job result slots for the
        // one-off matrix build; each slot is locked exactly once by the one
        // worker that claims the job, so there is no contention and no
        // cross-job ordering to get wrong. The query path stays lock-free.
        type RowSlot = std::sync::Mutex<Vec<Weight>>;
        let slots: Vec<RowSlot> = jobs.iter().map(|_| RowSlot::new(Vec::new())).collect();
        crossbeam_scope(threads, || {
            let mut dij = Dijkstra::new(graph.num_vertices());
            loop {
                let j = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (n, r) = jobs[j];
                let (source, targets): (VertexId, &[VertexId]) = if hierarchy.is_leaf(n) {
                    (borders[n as usize][r as usize], hierarchy.leaf_vertices(n))
                } else {
                    (cb[n as usize][r as usize], &cb[n as usize])
                };
                *slots[j].lock().expect("row slot poisoned") =
                    dij.one_to_many(graph, source, targets);
            }
        });
        let mut matrix: Vec<Vec<Weight>> = vec![Vec::new(); num_nodes];
        for (j, slot) in slots.into_iter().enumerate() {
            let (n, _) = jobs[j];
            matrix[n as usize].extend(slot.into_inner().expect("row slot poisoned"));
        }

        GTree {
            hierarchy,
            borders,
            cb,
            cb_child_offset,
            border_pos,
            matrix,
            leaf_col,
            leaf_range,
            leaf_order,
        }
    }

    /// Whether `leaf` (a leaf node id) lies in the subtree of `n`.
    #[inline]
    pub fn in_subtree(&self, n: u32, leaf: u32) -> bool {
        let (lo, hi) = self.leaf_range[n as usize];
        (lo..hi).contains(&self.leaf_order[leaf as usize])
    }

    /// Exact network distance between the `i`-th and `j`-th borders of
    /// node `n` (read from the node's matrix). This is the *shortcut*
    /// weight a ROAD-style route overlay hangs between Rnet borders.
    pub fn border_shortcut(&self, n: u32, i: usize, j: usize) -> Weight {
        let ni = n as usize;
        if self.hierarchy.is_leaf(n) {
            let cols = self.hierarchy.leaf_vertices(n).len();
            let col = self.border_pos[ni][j] as usize;
            self.matrix[ni][i * cols + col]
        } else {
            let dim = self.cb[ni].len();
            let (pi, pj) = (
                self.border_pos[ni][i] as usize,
                self.border_pos[ni][j] as usize,
            );
            self.matrix[ni][pi * dim + pj]
        }
    }

    /// Borders of node `n`.
    pub fn borders(&self, n: u32) -> &[VertexId] {
        &self.borders[n as usize]
    }

    /// Total index size in bytes (matrices dominate — this is the
    /// keyword-free road-network index of Fig. 14).
    pub fn size_bytes(&self) -> usize {
        let mats: usize = self.matrix.iter().map(|m| m.len() * 4).sum();
        let frames: usize = self.cb.iter().map(|f| f.len() * 4).sum();
        let bs: usize = self.borders.iter().map(|b| b.len() * 8).sum();
        let leaves: usize = self.hierarchy.total_leaf_vertices() * 12;
        mats + frames + bs + leaves
    }

    /// Average border count over leaves (build-quality diagnostic).
    pub fn avg_leaf_borders(&self) -> f64 {
        let leaves: Vec<usize> = (0..self.hierarchy.num_nodes() as u32)
            .filter(|&n| self.hierarchy.is_leaf(n))
            .map(|n| self.borders[n as usize].len())
            .collect();
        leaves.iter().sum::<usize>() as f64 / leaves.len().max(1) as f64
    }
}

fn dfs_intervals(
    h: &Hierarchy,
    n: u32,
    counter: &mut u32,
    range: &mut [(u32, u32)],
    order: &mut [u32],
) {
    let lo = *counter;
    if h.is_leaf(n) {
        order[n as usize] = *counter;
        *counter += 1;
    } else {
        for &c in h.children(n) {
            dfs_intervals(h, c, counter, range, order);
        }
    }
    range[n as usize] = (lo, *counter);
}

/// Runs `f` on `threads` scoped workers (each gets its own copy via the
/// closure being `Fn`).
fn crossbeam_scope<F: Fn() + Sync>(threads: usize, f: F) {
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|_| f());
        }
    })
    .expect("gtree build pool failed");
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};

    fn build(n: usize, leaf: usize) -> (Graph, GTree) {
        let g = road_network(&RoadNetworkConfig::new(n, 81));
        let gt = GTree::build(
            &g,
            &GtreeConfig {
                partition: PartitionConfig { leaf_size: leaf },
                num_threads: 2,
            },
        );
        (g, gt)
    }

    #[test]
    fn borders_have_outside_neighbors() {
        let (g, gt) = build(600, 32);
        for n in 0..gt.hierarchy.num_nodes() as u32 {
            for &b in gt.borders(n) {
                let has_outside = g
                    .neighbors(b)
                    .any(|(u, _)| !gt.in_subtree(n, gt.hierarchy.leaf_of(u)));
                assert!(has_outside, "border {b} of node {n} has no outside edge");
            }
        }
    }

    #[test]
    fn all_cut_edges_touch_borders() {
        let (g, gt) = build(600, 32);
        // Every edge crossing a leaf boundary has both endpoints as leaf
        // borders.
        for e in g.edges() {
            let (lu, lv) = (gt.hierarchy.leaf_of(e.u), gt.hierarchy.leaf_of(e.v));
            if lu != lv {
                assert!(gt.borders(lu).contains(&e.u));
                assert!(gt.borders(lv).contains(&e.v));
            }
        }
    }

    #[test]
    fn leaf_matrices_hold_exact_distances() {
        let (g, gt) = build(400, 32);
        let mut dij = Dijkstra::new(g.num_vertices());
        // Check one leaf exhaustively.
        let leaf = gt.hierarchy.leaf_of(0);
        let cols = gt.hierarchy.leaf_vertices(leaf);
        for (bi, &b) in gt.borders(leaf).iter().enumerate() {
            dij.sssp(&g, b);
            let space = dij.space();
            for (ci, &v) in cols.iter().enumerate() {
                let want = space.distance(v).unwrap();
                let got = gt.matrix[leaf as usize][bi * cols.len() + ci];
                assert_eq!(got, want, "leaf {leaf} border {b} vertex {v}");
            }
        }
    }

    #[test]
    fn internal_matrices_hold_exact_distances() {
        let (g, gt) = build(400, 32);
        let mut dij = Dijkstra::new(g.num_vertices());
        // Root matrix spot check.
        let frame = &gt.cb[0];
        assert!(!frame.is_empty(), "root has no child borders");
        let rows = frame.len();
        for bi in (0..rows).step_by((rows / 4).max(1)) {
            dij.sssp(&g, frame[bi]);
            let space = dij.space();
            for ci in 0..rows {
                let want = space.distance(frame[ci]).unwrap();
                assert_eq!(gt.matrix[0][bi * rows + ci], want);
            }
        }
    }

    #[test]
    fn border_pos_points_at_the_right_vertices() {
        let (_, gt) = build(500, 32);
        for n in 0..gt.hierarchy.num_nodes() as u32 {
            let ni = n as usize;
            for (i, &b) in gt.borders[ni].iter().enumerate() {
                let p = gt.border_pos[ni][i] as usize;
                if gt.hierarchy.is_leaf(n) {
                    assert_eq!(gt.hierarchy.leaf_vertices(n)[p], b);
                } else {
                    assert_eq!(gt.cb[ni][p], b);
                }
            }
        }
    }

    #[test]
    fn cb_blocks_match_children_borders() {
        let (_, gt) = build(500, 32);
        for n in 0..gt.hierarchy.num_nodes() as u32 {
            let ni = n as usize;
            for (k, &c) in gt.hierarchy.children(n).iter().enumerate() {
                let off = gt.cb_child_offset[ni][k] as usize;
                let bs = &gt.borders[c as usize];
                assert_eq!(&gt.cb[ni][off..off + bs.len()], &bs[..]);
            }
        }
    }
}
