//! G-tree (Zhong et al. [4], [17]) — the state-of-the-art keyword-aggregated
//! baseline, and the KS-GT network distance module of §7.4.
//!
//! A G-tree is a hierarchical partitioning of the road network. Each node
//! owns a subgraph; *borders* are the node's vertices with edges leaving the
//! subgraph; distance matrices let queries assemble exact network distances
//! by min-plus composition along the hierarchy instead of graph traversal.
//!
//! This implementation:
//!
//! * partitions geometrically (alternating-axis median bisection — the
//!   METIS substitution of DESIGN.md §3),
//! * stores **globally exact** border matrices (each entry is the true
//!   network distance, computed by bounded one-to-many Dijkstra during the
//!   build), so assembly is exact by construction,
//! * counts *matrix operations* (one lookup+add in a composition) exactly
//!   as §7.4.2 defines them,
//! * implements the keyword-aggregated spatial keyword algorithms
//!   (pseudo-documents + occurrence lists), the per-keyword occurrence-list
//!   variant **Gtree-Opt** (§7.4.1), and the materialized point-to-point
//!   distance API that KS-GT plugs into K-SPIN.

pub mod dist;
pub mod partition;
pub mod sk;
pub mod tree;

pub use dist::GtreeDistance;
pub use partition::PartitionConfig;
pub use sk::{GtreeSpatialKeyword, OccurrenceMode};
pub use tree::GTree;
