//! Geometric hierarchical partitioning.
//!
//! Recursive alternating-axis median bisection over vertex coordinates.
//! For planar-like road networks this produces boundary (border) counts of
//! the same order as METIS's edge-cut partitions — and border counts are
//! what drive G-tree matrix sizes and query cost (DESIGN.md §3,
//! substitution 3).

use kspin_graph::{Graph, VertexId};

/// Partitioning parameters.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Maximum vertices per leaf (τ). Paper-style G-trees use 64–256.
    pub leaf_size: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig { leaf_size: 128 }
    }
}

/// The partition hierarchy: a binary tree over vertex sets.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Per node: parent id (`u32::MAX` for the root).
    pub parent: Vec<u32>,
    /// Per node: child ids (empty for leaves).
    pub children: Vec<Vec<u32>>,
    /// Per node: depth (root = 0).
    pub depth: Vec<u32>,
    /// Per leaf node: its vertices. Empty for internal nodes.
    pub vertices: Vec<Vec<VertexId>>,
    /// Per vertex: owning leaf node id.
    pub leaf_of: Vec<u32>,
}

impl Hierarchy {
    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Whether `n` is a leaf.
    pub fn is_leaf(&self, n: u32) -> bool {
        self.children[n as usize].is_empty()
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, mut a: u32, mut b: u32) -> u32 {
        while self.depth[a as usize] > self.depth[b as usize] {
            a = self.parent[a as usize];
        }
        while self.depth[b as usize] > self.depth[a as usize] {
            b = self.parent[b as usize];
        }
        while a != b {
            a = self.parent[a as usize];
            b = self.parent[b as usize];
        }
        a
    }

    /// Translates the hierarchy onto a renumbered graph: every per-leaf
    /// vertex list maps through `r` (preserving list order, which downstream
    /// matrix layouts key on) and the vertex-indexed `leaf_of` table is
    /// permuted. Tree topology is untouched, so G-tree traversal and
    /// distances are bit-identical. Build-time only.
    pub fn relabel(&self, r: &kspin_graph::Relabeling) -> Hierarchy {
        Hierarchy {
            parent: self.parent.clone(),
            children: self.children.clone(),
            depth: self.depth.clone(),
            vertices: self
                .vertices
                .iter()
                .map(|vs| vs.iter().map(|&v| r.to_local(v)).collect())
                .collect(),
            leaf_of: r.permute_table(&self.leaf_of),
        }
    }

    /// The child of ancestor `anc` on the path toward node `n` (which must
    /// be a strict descendant of `anc`).
    pub fn child_toward(&self, anc: u32, mut n: u32) -> u32 {
        while self.parent[n as usize] != anc {
            n = self.parent[n as usize];
            debug_assert_ne!(n, u32::MAX, "n is not a descendant of anc");
        }
        n
    }
}

/// Builds the hierarchy by recursive median bisection.
pub fn partition(graph: &Graph, config: &PartitionConfig) -> Hierarchy {
    assert!(config.leaf_size >= 2, "leaf_size must be at least 2");
    let n = graph.num_vertices();
    let mut h = Hierarchy {
        parent: vec![u32::MAX],
        children: vec![Vec::new()],
        depth: vec![0],
        vertices: vec![Vec::new()],
        leaf_of: vec![u32::MAX; n],
    };
    let all: Vec<VertexId> = (0..n as VertexId).collect();
    split(graph, config, &mut h, 0, all, 0);
    h
}

fn split(
    graph: &Graph,
    config: &PartitionConfig,
    h: &mut Hierarchy,
    node: u32,
    mut vertices: Vec<VertexId>,
    axis: u8,
) {
    if vertices.len() <= config.leaf_size {
        for &v in &vertices {
            h.leaf_of[v as usize] = node;
        }
        h.vertices[node as usize] = vertices;
        return;
    }
    // Median split on the current axis (ties broken by the other axis and
    // id so the split is always proper).
    let mid = vertices.len() / 2;
    vertices.select_nth_unstable_by_key(mid, |&v| {
        let p = graph.coord(v);
        if axis == 0 {
            (p.x, p.y, v)
        } else {
            (p.y, p.x, v)
        }
    });
    let right = vertices.split_off(mid);
    let left = vertices;
    for part in [left, right] {
        let child = h.parent.len() as u32;
        h.parent.push(node);
        h.children.push(Vec::new());
        h.depth.push(h.depth[node as usize] + 1);
        h.vertices.push(Vec::new());
        h.children[node as usize].push(child);
        split(graph, config, h, child, part, 1 - axis);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};

    fn build(n: usize, leaf: usize) -> (Graph, Hierarchy) {
        let g = road_network(&RoadNetworkConfig::new(n, 71));
        let h = partition(&g, &PartitionConfig { leaf_size: leaf });
        (g, h)
    }

    #[test]
    fn every_vertex_lands_in_exactly_one_leaf() {
        let (g, h) = build(1000, 64);
        let mut seen = vec![false; g.num_vertices()];
        for n in 0..h.num_nodes() as u32 {
            if h.is_leaf(n) {
                for &v in &h.vertices[n as usize] {
                    assert!(!seen[v as usize], "vertex {v} in two leaves");
                    seen[v as usize] = true;
                    assert_eq!(h.leaf_of[v as usize], n);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn relabel_keeps_leaf_assignment_consistent() {
        let (g, h) = build(800, 64);
        let r = kspin_graph::Relabeling::hilbert(&g);
        let rh = h.relabel(&r);
        assert_eq!(rh.num_nodes(), h.num_nodes());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(rh.leaf_of[r.to_local(v) as usize], h.leaf_of[v as usize]);
        }
        for n in 0..h.num_nodes() {
            let mapped: Vec<VertexId> = h.vertices[n].iter().map(|&v| r.to_local(v)).collect();
            assert_eq!(rh.vertices[n], mapped, "leaf {n} lost its vertex order");
        }
    }

    #[test]
    fn leaves_respect_size_bound() {
        let (_, h) = build(1000, 64);
        for n in 0..h.num_nodes() as u32 {
            if h.is_leaf(n) {
                let s = h.vertices[n as usize].len();
                assert!(s <= 64 && s > 0, "leaf size {s}");
            }
        }
    }

    #[test]
    fn tree_structure_is_consistent() {
        let (_, h) = build(500, 32);
        for n in 1..h.num_nodes() as u32 {
            let p = h.parent[n as usize];
            assert!(h.children[p as usize].contains(&n));
            assert_eq!(h.depth[n as usize], h.depth[p as usize] + 1);
        }
        assert_eq!(h.parent[0], u32::MAX);
    }

    #[test]
    fn lca_and_child_toward() {
        let (g, h) = build(800, 32);
        let la = h.leaf_of[0];
        let lb = h.leaf_of[g.num_vertices() - 1];
        let l = h.lca(la, lb);
        assert!(h.depth[l as usize] <= h.depth[la as usize]);
        assert_eq!(h.lca(la, la), la);
        if la != lb {
            let c = h.child_toward(l, la);
            assert_eq!(h.parent[c as usize], l);
        }
        // Root is an ancestor of everything.
        assert_eq!(h.lca(la, 0), 0);
    }

    #[test]
    fn single_leaf_when_graph_is_small() {
        let (g, h) = build(50, 128);
        assert_eq!(h.num_nodes(), 1);
        assert!(h.is_leaf(0));
        assert_eq!(h.vertices[0].len(), g.num_vertices());
    }
}
