//! Geometric hierarchical partitioning.
//!
//! Recursive alternating-axis median bisection over vertex coordinates.
//! For planar-like road networks this produces boundary (border) counts of
//! the same order as METIS's edge-cut partitions — and border counts are
//! what drive G-tree matrix sizes and query cost (DESIGN.md §3,
//! substitution 3).

use kspin_graph::{Graph, VertexId};

/// Partitioning parameters.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Maximum vertices per leaf (τ). Paper-style G-trees use 64–256.
    pub leaf_size: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig { leaf_size: 128 }
    }
}

/// The partition hierarchy: a binary tree over vertex sets.
///
/// Storage is flat CSR — child lists and per-leaf vertex lists live in
/// pooled `(offsets, data)` arrays — so the whole structure snapshots as
/// six plain little-endian arrays and loads by validate-then-copy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Per node: parent id (`u32::MAX` for the root).
    parent: Vec<u32>,
    /// Per node: depth (root = 0).
    depth: Vec<u32>,
    /// CSR offsets into `child_data` (`num_nodes + 1` entries).
    child_offsets: Vec<u32>,
    /// Pooled child ids (empty range for leaves).
    child_data: Vec<u32>,
    /// CSR offsets into `vert_data` (`num_nodes + 1` entries).
    vert_offsets: Vec<u32>,
    /// Pooled per-leaf vertices (empty range for internal nodes).
    vert_data: Vec<VertexId>,
    /// Per vertex: owning leaf node id.
    leaf_of: Vec<u32>,
}

impl Hierarchy {
    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Whether `n` is a leaf.
    pub fn is_leaf(&self, n: u32) -> bool {
        self.children(n).is_empty()
    }

    /// Parent of `n` (`u32::MAX` for the root).
    #[inline]
    pub fn parent(&self, n: u32) -> u32 {
        self.parent[n as usize]
    }

    /// Depth of `n` (root = 0).
    #[inline]
    pub fn depth(&self, n: u32) -> u32 {
        self.depth[n as usize]
    }

    /// Child ids of `n` (empty for leaves).
    #[inline]
    pub fn children(&self, n: u32) -> &[u32] {
        let lo = self.child_offsets[n as usize] as usize;
        let hi = self.child_offsets[n as usize + 1] as usize;
        &self.child_data[lo..hi]
    }

    /// Vertices of leaf `n` (empty for internal nodes). Order is the
    /// build's partition order — downstream matrix layouts key on it.
    #[inline]
    pub fn leaf_vertices(&self, n: u32) -> &[VertexId] {
        let lo = self.vert_offsets[n as usize] as usize;
        let hi = self.vert_offsets[n as usize + 1] as usize;
        &self.vert_data[lo..hi]
    }

    /// The leaf node owning vertex `v`.
    #[inline]
    pub fn leaf_of(&self, v: VertexId) -> u32 {
        self.leaf_of[v as usize]
    }

    /// Total pooled leaf-vertex count (= number of graph vertices).
    pub fn total_leaf_vertices(&self) -> usize {
        self.vert_data.len()
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, mut a: u32, mut b: u32) -> u32 {
        while self.depth[a as usize] > self.depth[b as usize] {
            a = self.parent[a as usize];
        }
        while self.depth[b as usize] > self.depth[a as usize] {
            b = self.parent[b as usize];
        }
        while a != b {
            a = self.parent[a as usize];
            b = self.parent[b as usize];
        }
        a
    }

    /// Translates the hierarchy onto a renumbered graph: the pooled
    /// vertex array maps through `r` (preserving list order, which
    /// downstream matrix layouts key on) and the vertex-indexed `leaf_of`
    /// table is permuted. Tree topology is untouched, so G-tree traversal
    /// and distances are bit-identical. Build-time only.
    pub fn relabel(&self, r: &kspin_graph::Relabeling) -> Hierarchy {
        Hierarchy {
            parent: self.parent.clone(),
            depth: self.depth.clone(),
            child_offsets: self.child_offsets.clone(),
            child_data: self.child_data.clone(),
            vert_offsets: self.vert_offsets.clone(),
            vert_data: self.vert_data.iter().map(|&v| r.to_local(v)).collect(),
            leaf_of: r.permute_table(&self.leaf_of),
        }
    }

    /// The child of ancestor `anc` on the path toward node `n` (which must
    /// be a strict descendant of `anc`).
    pub fn child_toward(&self, anc: u32, mut n: u32) -> u32 {
        while self.parent[n as usize] != anc {
            n = self.parent[n as usize];
            debug_assert_ne!(n, u32::MAX, "n is not a descendant of anc");
        }
        n
    }

    /// Borrowed views of the raw arrays — `(parent, child_offsets,
    /// child_data, depth, vert_offsets, vert_data, leaf_of)` — the
    /// snapshot serialization boundary.
    #[allow(clippy::type_complexity)]
    pub fn flat_parts(&self) -> (&[u32], &[u32], &[u32], &[u32], &[u32], &[VertexId], &[u32]) {
        (
            &self.parent,
            &self.child_offsets,
            &self.child_data,
            &self.depth,
            &self.vert_offsets,
            &self.vert_data,
            &self.leaf_of,
        )
    }

    /// Reassembles a hierarchy from its raw arrays, verbatim, validating
    /// every structural invariant the traversal code indexes by: CSR
    /// shapes, parents precede children (the bottom-up reverse-iteration
    /// order), depth bookkeeping, parent/child symmetry, leaves-only
    /// vertex ranges, and that the leaf vertex lists partition
    /// `0..leaf_of.len()` consistently with `leaf_of`.
    ///
    /// # Errors
    /// A description of the first violated invariant.
    pub fn from_flat_parts(
        parent: Vec<u32>,
        child_offsets: Vec<u32>,
        child_data: Vec<u32>,
        depth: Vec<u32>,
        vert_offsets: Vec<u32>,
        vert_data: Vec<VertexId>,
        leaf_of: Vec<u32>,
    ) -> Result<Hierarchy, String> {
        let n = parent.len();
        if n == 0 {
            return Err("hierarchy must hold at least the root node".into());
        }
        if depth.len() != n {
            return Err(format!("depth holds {} entries for {n} nodes", depth.len()));
        }
        check_csr("child", &child_offsets, child_data.len(), n)?;
        check_csr("vert", &vert_offsets, vert_data.len(), n)?;
        if parent[0] != u32::MAX || depth[0] != 0 {
            return Err("root must have parent = u32::MAX and depth 0".into());
        }
        for node in 1..n {
            let p = parent[node] as usize;
            if p >= node {
                return Err(format!(
                    "node {node} has parent {p}: parents must precede children"
                ));
            }
            if depth[node] != depth[p] + 1 {
                return Err(format!("node {node} depth is not parent depth + 1"));
            }
        }
        // Every non-root node is listed by exactly its parent.
        let mut listed = vec![false; n];
        for node in 0..n {
            let lo = child_offsets[node] as usize;
            let hi = child_offsets[node + 1] as usize;
            for &c in &child_data[lo..hi] {
                let c = c as usize;
                if c >= n || c == 0 {
                    return Err(format!("node {node} lists invalid child {c}"));
                }
                if parent[c] as usize != node {
                    return Err(format!("node {node} lists child {c} with another parent"));
                }
                if listed[c] {
                    return Err(format!("node {c} listed as a child twice"));
                }
                listed[c] = true;
            }
        }
        if let Some(orphan) = (1..n).find(|&c| !listed[c]) {
            return Err(format!("node {orphan} is not listed by its parent"));
        }
        // Leaves own vertices; internal nodes own none; leaf lists
        // partition the vertex set consistently with leaf_of.
        let mut seen = vec![false; leaf_of.len()];
        for node in 0..n {
            let is_leaf = child_offsets[node] == child_offsets[node + 1];
            let lo = vert_offsets[node] as usize;
            let hi = vert_offsets[node + 1] as usize;
            if !is_leaf && lo != hi {
                return Err(format!("internal node {node} holds vertices"));
            }
            for &v in &vert_data[lo..hi] {
                match seen.get_mut(v as usize) {
                    Some(slot) if !*slot => *slot = true,
                    _ => {
                        return Err(format!(
                            "vertex {v} out of range or in two leaves — not a partition"
                        ))
                    }
                }
                if leaf_of[v as usize] as usize != node {
                    return Err(format!("leaf_of[{v}] disagrees with leaf {node}"));
                }
            }
        }
        if vert_data.len() != leaf_of.len() {
            return Err(format!(
                "{} pooled leaf vertices for {} graph vertices",
                vert_data.len(),
                leaf_of.len()
            ));
        }
        Ok(Hierarchy {
            parent,
            depth,
            child_offsets,
            child_data,
            vert_offsets,
            vert_data,
            leaf_of,
        })
    }
}

fn check_csr(what: &str, offsets: &[u32], data_len: usize, n: usize) -> Result<(), String> {
    if offsets.len() != n + 1 {
        return Err(format!(
            "{what}_offsets holds {} entries for {n} nodes",
            offsets.len()
        ));
    }
    if u32::try_from(data_len).is_err() {
        return Err(format!("{what}_data length {data_len} exceeds u32"));
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&(data_len as u32)) {
        return Err(format!(
            "{what}_offsets must start at 0 and end at the data length"
        ));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(format!("{what}_offsets must be monotone non-decreasing"));
    }
    Ok(())
}

/// Nested-list scratch state for the recursive build; flattened into the
/// CSR [`Hierarchy`] once the recursion finishes.
struct Builder {
    parent: Vec<u32>,
    children: Vec<Vec<u32>>,
    depth: Vec<u32>,
    vertices: Vec<Vec<VertexId>>,
    leaf_of: Vec<u32>,
}

impl Builder {
    fn finish(self) -> Hierarchy {
        let mut child_offsets = Vec::with_capacity(self.children.len() + 1);
        child_offsets.push(0u32);
        let mut child_data = Vec::new();
        for l in &self.children {
            child_data.extend_from_slice(l);
            child_offsets.push(child_data.len() as u32);
        }
        let mut vert_offsets = Vec::with_capacity(self.vertices.len() + 1);
        vert_offsets.push(0u32);
        let mut vert_data = Vec::with_capacity(self.leaf_of.len());
        for l in &self.vertices {
            vert_data.extend_from_slice(l);
            vert_offsets.push(vert_data.len() as u32);
        }
        Hierarchy {
            parent: self.parent,
            depth: self.depth,
            child_offsets,
            child_data,
            vert_offsets,
            vert_data,
            leaf_of: self.leaf_of,
        }
    }
}

/// Builds the hierarchy by recursive median bisection.
pub fn partition(graph: &Graph, config: &PartitionConfig) -> Hierarchy {
    assert!(config.leaf_size >= 2, "leaf_size must be at least 2");
    let n = graph.num_vertices();
    let mut b = Builder {
        parent: vec![u32::MAX],
        children: vec![Vec::new()],
        depth: vec![0],
        vertices: vec![Vec::new()],
        leaf_of: vec![u32::MAX; n],
    };
    let all: Vec<VertexId> = (0..n as VertexId).collect();
    split(graph, config, &mut b, 0, all, 0);
    b.finish()
}

fn split(
    graph: &Graph,
    config: &PartitionConfig,
    b: &mut Builder,
    node: u32,
    mut vertices: Vec<VertexId>,
    axis: u8,
) {
    if vertices.len() <= config.leaf_size {
        for &v in &vertices {
            b.leaf_of[v as usize] = node;
        }
        b.vertices[node as usize] = vertices;
        return;
    }
    // Median split on the current axis (ties broken by the other axis and
    // id so the split is always proper).
    let mid = vertices.len() / 2;
    vertices.select_nth_unstable_by_key(mid, |&v| {
        let p = graph.coord(v);
        if axis == 0 {
            (p.x, p.y, v)
        } else {
            (p.y, p.x, v)
        }
    });
    let right = vertices.split_off(mid);
    let left = vertices;
    for part in [left, right] {
        let child = b.parent.len() as u32;
        b.parent.push(node);
        b.children.push(Vec::new());
        b.depth.push(b.depth[node as usize] + 1);
        b.vertices.push(Vec::new());
        b.children[node as usize].push(child);
        split(graph, config, b, child, part, 1 - axis);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};

    fn build(n: usize, leaf: usize) -> (Graph, Hierarchy) {
        let g = road_network(&RoadNetworkConfig::new(n, 71));
        let h = partition(&g, &PartitionConfig { leaf_size: leaf });
        (g, h)
    }

    #[test]
    fn every_vertex_lands_in_exactly_one_leaf() {
        let (g, h) = build(1000, 64);
        let mut seen = vec![false; g.num_vertices()];
        for n in 0..h.num_nodes() as u32 {
            if h.is_leaf(n) {
                for &v in h.leaf_vertices(n) {
                    assert!(!seen[v as usize], "vertex {v} in two leaves");
                    seen[v as usize] = true;
                    assert_eq!(h.leaf_of(v), n);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn relabel_keeps_leaf_assignment_consistent() {
        let (g, h) = build(800, 64);
        let r = kspin_graph::Relabeling::hilbert(&g);
        let rh = h.relabel(&r);
        assert_eq!(rh.num_nodes(), h.num_nodes());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(rh.leaf_of(r.to_local(v)), h.leaf_of(v));
        }
        for n in 0..h.num_nodes() as u32 {
            let mapped: Vec<VertexId> = h.leaf_vertices(n).iter().map(|&v| r.to_local(v)).collect();
            assert_eq!(
                rh.leaf_vertices(n),
                mapped,
                "leaf {n} lost its vertex order"
            );
        }
    }

    #[test]
    fn leaves_respect_size_bound() {
        let (_, h) = build(1000, 64);
        for n in 0..h.num_nodes() as u32 {
            if h.is_leaf(n) {
                let s = h.leaf_vertices(n).len();
                assert!(s <= 64 && s > 0, "leaf size {s}");
            }
        }
    }

    #[test]
    fn tree_structure_is_consistent() {
        let (_, h) = build(500, 32);
        for n in 1..h.num_nodes() as u32 {
            let p = h.parent(n);
            assert!(h.children(p).contains(&n));
            assert_eq!(h.depth(n), h.depth(p) + 1);
        }
        assert_eq!(h.parent(0), u32::MAX);
    }

    #[test]
    fn lca_and_child_toward() {
        let (g, h) = build(800, 32);
        let la = h.leaf_of(0);
        let lb = h.leaf_of(g.num_vertices() as VertexId - 1);
        let l = h.lca(la, lb);
        assert!(h.depth(l) <= h.depth(la));
        assert_eq!(h.lca(la, la), la);
        if la != lb {
            let c = h.child_toward(l, la);
            assert_eq!(h.parent(c), l);
        }
        // Root is an ancestor of everything.
        assert_eq!(h.lca(la, 0), 0);
    }

    #[test]
    fn single_leaf_when_graph_is_small() {
        let (g, h) = build(50, 128);
        assert_eq!(h.num_nodes(), 1);
        assert!(h.is_leaf(0));
        assert_eq!(h.leaf_vertices(0).len(), g.num_vertices());
    }

    #[test]
    fn flat_parts_round_trip_is_identity() {
        let (_, h) = build(900, 32);
        let (p, co, cd, d, vo, vd, lo) = h.flat_parts();
        let h2 = Hierarchy::from_flat_parts(
            p.to_vec(),
            co.to_vec(),
            cd.to_vec(),
            d.to_vec(),
            vo.to_vec(),
            vd.to_vec(),
            lo.to_vec(),
        )
        .expect("round trip");
        for n in 0..h.num_nodes() as u32 {
            assert_eq!(h2.parent(n), h.parent(n));
            assert_eq!(h2.depth(n), h.depth(n));
            assert_eq!(h2.children(n), h.children(n));
            assert_eq!(h2.leaf_vertices(n), h.leaf_vertices(n));
        }
    }

    #[test]
    fn from_flat_parts_rejects_corruption() {
        let (_, h) = build(400, 32);
        let (p, co, cd, d, vo, vd, lo) = h.flat_parts();
        // Swap a vertex into the wrong leaf.
        let mut bad_lo = lo.to_vec();
        bad_lo[0] = bad_lo[lo.len() - 1];
        if bad_lo[0] != lo[0] {
            assert!(Hierarchy::from_flat_parts(
                p.to_vec(),
                co.to_vec(),
                cd.to_vec(),
                d.to_vec(),
                vo.to_vec(),
                vd.to_vec(),
                bad_lo,
            )
            .is_err());
        }
        // Break the depth bookkeeping.
        let mut bad_d = d.to_vec();
        if bad_d.len() > 1 {
            bad_d[1] = 7;
            assert!(Hierarchy::from_flat_parts(
                p.to_vec(),
                co.to_vec(),
                cd.to_vec(),
                bad_d,
                vo.to_vec(),
                vd.to_vec(),
                lo.to_vec(),
            )
            .is_err());
        }
        // Truncate the child CSR.
        assert!(Hierarchy::from_flat_parts(
            p.to_vec(),
            co[..co.len() - 1].to_vec(),
            cd.to_vec(),
            d.to_vec(),
            vo.to_vec(),
            vd.to_vec(),
            lo.to_vec(),
        )
        .is_err());
    }
}
