//! Keyword-aggregated spatial keyword queries over a G-tree — the
//! state-of-the-art baseline the paper compares against (§1.1, §7).
//!
//! Every tree node aggregates its subtree's keywords into a
//! *pseudo-document* (term → max impact) and an *occurrence list* (which
//! children contain objects). Queries traverse the hierarchy best-first by
//! lower-bound score/distance, computing assembly distances to groups and
//! objects — incurring exactly the false-positive work the paper's
//! motivating example walks through.
//!
//! [`OccurrenceMode::PerKeyword`] is **Gtree-Opt** (§7.4.1): a separate
//! occurrence list per keyword lets the traversal skip children without
//! query-keyword objects before touching their pseudo-documents. As §7.4.2
//! shows, this trims pseudo-document lookups but *not* matrix operations —
//! aggregation's information loss is structural.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use kspin_graph::{Graph, VertexId, Weight};
use kspin_text::{score, Corpus, ObjectId, QueryTerms, TermId};

use crate::dist::GtreeDistance;
use crate::tree::GTree;

/// Which occurrence lists the traversal consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccurrenceMode {
    /// Original G-tree: one occurrence list per node + pseudo-document
    /// checks per child.
    Aggregated,
    /// Gtree-Opt: per-keyword occurrence lists (keyword separation applied
    /// to occurrence lists only).
    PerKeyword,
}

/// Keyword aggregation layers over a [`GTree`].
pub struct GtreeSpatialKeyword<'a> {
    gt: &'a GTree,
    graph: &'a Graph,
    corpus: &'a Corpus,
    /// Per node: term → maximum impact of that term in the subtree.
    pseudo_doc: Vec<HashMap<TermId, f64>>,
    /// Per node: child positions (into the node's child list) containing
    /// at least one object.
    occurrence: Vec<Vec<u8>>,
    /// Per node: per-term child positions (Gtree-Opt).
    term_occurrence: Vec<HashMap<TermId, Vec<u8>>>,
    /// Per leaf: its objects.
    leaf_objects: Vec<Vec<ObjectId>>,
    /// Pseudo-document lookups performed by the last query.
    pseudo_lookups: std::cell::Cell<u64>,
}

impl<'a> GtreeSpatialKeyword<'a> {
    /// Aggregates `corpus` into the tree.
    pub fn build(gt: &'a GTree, graph: &'a Graph, corpus: &'a Corpus) -> Self {
        let n = gt.hierarchy.num_nodes();
        let mut pseudo_doc: Vec<HashMap<TermId, f64>> = vec![HashMap::new(); n];
        let mut occurrence: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut term_occurrence: Vec<HashMap<TermId, Vec<u8>>> = vec![HashMap::new(); n];
        let mut leaf_objects: Vec<Vec<ObjectId>> = vec![Vec::new(); n];

        for o in 0..corpus.num_objects() as ObjectId {
            let leaf = gt.hierarchy.leaf_of(corpus.vertex_of(o)) as usize;
            leaf_objects[leaf].push(o);
            for p in corpus.doc(o) {
                let e = pseudo_doc[leaf].entry(p.term).or_insert(0.0);
                if p.impact > *e {
                    *e = p.impact;
                }
            }
        }
        // Children were appended after their parents, so reverse id order is
        // a valid bottom-up order.
        for node in (0..n).rev() {
            if gt.hierarchy.is_leaf(node as u32) {
                continue;
            }
            let children = gt.hierarchy.children(node as u32).to_vec();
            for (ci, &c) in children.iter().enumerate() {
                if pseudo_doc[c as usize].is_empty() {
                    continue; // no objects below
                }
                occurrence[node].push(ci as u8);
                let child_doc = pseudo_doc[c as usize].clone();
                for (t, imp) in child_doc {
                    let e = pseudo_doc[node].entry(t).or_insert(0.0);
                    if imp > *e {
                        *e = imp;
                    }
                    term_occurrence[node].entry(t).or_default().push(ci as u8);
                }
            }
        }

        GtreeSpatialKeyword {
            gt,
            graph,
            corpus,
            pseudo_doc,
            occurrence,
            term_occurrence,
            leaf_objects,
            pseudo_lookups: std::cell::Cell::new(0),
        }
    }

    /// Maximum possible textual relevance of any object under `node` —
    /// `Σ_j λ_{t_j,ψ} · maximpact(t_j, subtree)`. Zero means prunable.
    fn tr_max(&self, query: &QueryTerms, node: u32) -> f64 {
        let doc = &self.pseudo_doc[node as usize];
        let mut tr = 0.0;
        for (j, &t) in query.terms().iter().enumerate() {
            self.pseudo_lookups.set(self.pseudo_lookups.get() + 1);
            if let Some(&imp) = doc.get(&t) {
                tr += query.impact(j) * imp;
            }
        }
        tr
    }

    /// Children of `node` that may contain relevant objects, per mode.
    fn candidate_children(&self, node: u32, terms: &[TermId], mode: OccurrenceMode) -> Vec<u32> {
        let kids = self.gt.hierarchy.children(node);
        match mode {
            OccurrenceMode::Aggregated => self.occurrence[node as usize]
                .iter()
                .map(|&ci| kids[ci as usize])
                .collect(),
            OccurrenceMode::PerKeyword => {
                // Union the per-keyword lists via a bitmask (fanout ≤ 64 —
                // ours is 2) to keep Gtree-Opt's savings allocation-free.
                let mut mask = 0u64;
                for &t in terms {
                    if let Some(cis) = self.term_occurrence[node as usize].get(&t) {
                        for &ci in cis {
                            mask |= 1 << ci;
                        }
                    }
                }
                (0..kids.len())
                    .filter(|&ci| mask & (1 << ci) != 0)
                    .map(|ci| kids[ci])
                    .collect()
            }
        }
    }

    /// Pseudo-document lookups in the last query (the cost Gtree-Opt
    /// saves, Fig. 15 vs Fig. 16).
    pub fn last_pseudo_lookups(&self) -> u64 {
        self.pseudo_lookups.get()
    }

    /// Top-k by keyword-aggregated best-first traversal. Returns the exact
    /// results and the matrix-operation count.
    pub fn top_k(
        &self,
        q: VertexId,
        k: usize,
        terms: &[TermId],
        mode: OccurrenceMode,
    ) -> (Vec<(ObjectId, f64)>, u64) {
        self.pseudo_lookups.set(0);
        let query = QueryTerms::new(self.corpus, terms);
        let mut out = Vec::new();
        if k == 0 || query.is_empty() {
            return (out, 0);
        }
        let mut dist = GtreeDistance::new(self.gt, self.graph, q);
        let mut pq: BinaryHeap<Reverse<(u64, Entry)>> = BinaryHeap::new();
        // Score keys scaled to u64 for a total order; f64 scores in our
        // weight range fit comfortably (scale by 2^16).
        let key = |s: f64| -> u64 { (s * 65536.0).min(u64::MAX as f64 / 2.0) as u64 };
        if self.tr_max(&query, 0) > 0.0 {
            pq.push(Reverse((0, Entry::Node(0))));
        }
        while let Some(Reverse((_, entry))) = pq.pop() {
            match entry {
                Entry::Object(o, st) => {
                    out.push((o, f64::from_bits(st)));
                    if out.len() == k {
                        break;
                    }
                }
                Entry::Node(n) => {
                    if self.gt.hierarchy.is_leaf(n) {
                        // Score every relevant object in the group — the
                        // aggregation-induced bulk work of §1.1.
                        for &o in &self.leaf_objects[n as usize] {
                            let tr = query.relevance(self.corpus, o);
                            if tr <= 0.0 {
                                continue;
                            }
                            let d = dist.distance(self.corpus.vertex_of(o));
                            let st = score(d, tr);
                            pq.push(Reverse((key(st), Entry::Object(o, st.to_bits()))));
                        }
                    } else {
                        for m in self.candidate_children(n, query.terms(), mode) {
                            let tr_max = self.tr_max(&query, m);
                            if tr_max <= 0.0 {
                                continue;
                            }
                            let md = dist.min_dist(m);
                            let lb = md as f64 / tr_max;
                            pq.push(Reverse((key(lb), Entry::Node(m))));
                        }
                    }
                }
            }
        }
        (out, dist.ops())
    }

    /// Boolean kNN by keyword-aggregated best-first traversal.
    /// `conjunctive` selects ∧ (all terms) vs ∨ (any term).
    pub fn bknn(
        &self,
        q: VertexId,
        k: usize,
        terms: &[TermId],
        conjunctive: bool,
        mode: OccurrenceMode,
    ) -> (Vec<(ObjectId, Weight)>, u64) {
        self.pseudo_lookups.set(0);
        let mut uniq = terms.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        let mut out = Vec::new();
        if k == 0 || uniq.is_empty() {
            return (out, 0);
        }
        let mut dist = GtreeDistance::new(self.gt, self.graph, q);
        let mut pq: BinaryHeap<Reverse<(Weight, Entry)>> = BinaryHeap::new();
        if self.node_may_match(0, &uniq, conjunctive) {
            pq.push(Reverse((0, Entry::Node(0))));
        }
        while let Some(Reverse((_, entry))) = pq.pop() {
            match entry {
                Entry::Object(o, d) => {
                    out.push((o, d as Weight));
                    if out.len() == k {
                        break;
                    }
                }
                Entry::Node(n) => {
                    if self.gt.hierarchy.is_leaf(n) {
                        for &o in &self.leaf_objects[n as usize] {
                            let ok = if conjunctive {
                                self.corpus.contains_all(o, &uniq)
                            } else {
                                self.corpus.contains_any(o, &uniq)
                            };
                            if !ok {
                                continue;
                            }
                            let d = dist.distance(self.corpus.vertex_of(o));
                            pq.push(Reverse((d, Entry::Object(o, d as u64))));
                        }
                    } else {
                        for m in self.candidate_children(n, &uniq, mode) {
                            if !self.node_may_match(m, &uniq, conjunctive) {
                                continue;
                            }
                            let md = dist.min_dist(m);
                            pq.push(Reverse((md, Entry::Node(m))));
                        }
                    }
                }
            }
        }
        (out, dist.ops())
    }

    /// Pseudo-document keyword test. For conjunctions this is precisely the
    /// lossy aggregated check: the subtree contains every keyword *somewhere*,
    /// not necessarily on one object — the false-positive source.
    fn node_may_match(&self, node: u32, terms: &[TermId], conjunctive: bool) -> bool {
        let doc = &self.pseudo_doc[node as usize];
        self.pseudo_lookups
            .set(self.pseudo_lookups.get() + terms.len() as u64);
        if conjunctive {
            terms.iter().all(|t| doc.contains_key(t))
        } else {
            terms.iter().any(|t| doc.contains_key(t))
        }
    }

    /// Index size in bytes of the keyword aggregation layers (added on top
    /// of [`GTree::size_bytes`]).
    pub fn size_bytes(&self) -> usize {
        let pd: usize = self.pseudo_doc.iter().map(|d| d.len() * 16 + 32).sum();
        let occ: usize = self.occurrence.iter().map(|o| o.len() + 24).sum();
        let tocc: usize = self
            .term_occurrence
            .iter()
            .map(|m| m.values().map(|v| 16 + v.len()).sum::<usize>() + 32)
            .sum();
        let lo: usize = self.leaf_objects.iter().map(|l| l.len() * 4).sum();
        pd + occ + tocc + lo
    }
}

/// Priority-queue entry: a tree node (keyed by lower bound) or a fully
/// scored object. Object payloads carry their exact key so equal-priority
/// ordering stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Entry {
    Object(ObjectId, u64),
    Node(u32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::GtreeConfig;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_text::generate::{corpus as gen_corpus, CorpusConfig};

    fn fixture(n: usize, seed: u64) -> (Graph, Corpus, GTree) {
        let g = road_network(&RoadNetworkConfig::new(n, seed));
        let mut cc = CorpusConfig::new(g.num_vertices(), seed ^ 5);
        cc.object_fraction = 0.08;
        let (corpus, _) = gen_corpus(&cc);
        let gt = GTree::build(
            &g,
            &GtreeConfig {
                partition: crate::partition::PartitionConfig { leaf_size: 48 },
                num_threads: 2,
            },
        );
        (g, corpus, gt)
    }

    /// Brute-force top-k oracle.
    fn brute_topk(g: &Graph, c: &Corpus, q: VertexId, k: usize, terms: &[TermId]) -> Vec<f64> {
        let query = QueryTerms::new(c, terms);
        let mut dij = kspin_graph::Dijkstra::new(g.num_vertices());
        dij.sssp(g, q);
        let space = dij.space();
        let mut scores: Vec<f64> = (0..c.num_objects() as ObjectId)
            .filter_map(|o| {
                let tr = query.relevance(c, o);
                (tr > 0.0).then(|| score(space.distance(c.vertex_of(o)).unwrap(), tr))
            })
            .collect();
        scores.sort_by(f64::total_cmp);
        scores.truncate(k);
        scores
    }

    #[test]
    fn topk_matches_brute_force_in_both_modes() {
        let (g, c, gt) = fixture(600, 111);
        let sk = GtreeSpatialKeyword::build(&gt, &g, &c);
        for q in [3u32, 301] {
            for mode in [OccurrenceMode::Aggregated, OccurrenceMode::PerKeyword] {
                let (got, ops) = sk.top_k(q, 5, &[0, 1], mode);
                let want = brute_topk(&g, &c, q, 5, &[0, 1]);
                assert_eq!(got.len(), want.len());
                for ((_, gs), ws) in got.iter().zip(&want) {
                    assert!((gs - ws).abs() < 1e-9, "mode {mode:?} q {q}");
                }
                assert!(ops > 0, "no matrix ops counted");
            }
        }
    }

    #[test]
    fn bknn_matches_brute_force() {
        let (g, c, gt) = fixture(600, 113);
        let sk = GtreeSpatialKeyword::build(&gt, &g, &c);
        let mut dij = kspin_graph::Dijkstra::new(g.num_vertices());
        for q in [9u32, 441] {
            for conj in [false, true] {
                let (got, _) = sk.bknn(q, 5, &[0, 1], conj, OccurrenceMode::Aggregated);
                dij.sssp(&g, q);
                let space = dij.space();
                let mut want: Vec<Weight> = (0..c.num_objects() as ObjectId)
                    .filter(|&o| {
                        if conj {
                            c.contains_all(o, &[0, 1])
                        } else {
                            c.contains_any(o, &[0, 1])
                        }
                    })
                    .map(|o| space.distance(c.vertex_of(o)).unwrap())
                    .collect();
                want.sort_unstable();
                want.truncate(5);
                let gd: Vec<Weight> = got.iter().map(|&(_, d)| d).collect();
                assert_eq!(gd, want, "q={q} conj={conj}");
            }
        }
    }

    #[test]
    fn both_modes_do_identical_matrix_ops() {
        // §7.4.2's finding: Gtree-Opt saves pseudo-document lookups, not
        // matrix operations.
        let (g, c, gt) = fixture(800, 115);
        let sk = GtreeSpatialKeyword::build(&gt, &g, &c);
        let (_, ops_agg) = sk.top_k(42, 10, &[0, 1], OccurrenceMode::Aggregated);
        let lookups_agg = sk.last_pseudo_lookups();
        let (_, ops_opt) = sk.top_k(42, 10, &[0, 1], OccurrenceMode::PerKeyword);
        let lookups_opt = sk.last_pseudo_lookups();
        assert_eq!(ops_agg, ops_opt, "matrix ops must match across modes");
        assert!(
            lookups_opt <= lookups_agg,
            "Opt should not do more pseudo-doc lookups"
        );
    }

    #[test]
    fn pseudo_documents_aggregate_max_impacts() {
        let (g, c, gt) = fixture(400, 117);
        let sk = GtreeSpatialKeyword::build(&gt, &g, &c);
        // Root pseudo-doc's max impact per term equals corpus max impact.
        for t in 0..c.num_terms() as TermId {
            if c.inv_len(t) == 0 {
                continue;
            }
            let got = sk.pseudo_doc[0].get(&t).copied().unwrap_or(0.0);
            assert!((got - c.max_impact(t)).abs() < 1e-12, "term {t}");
        }
        let _ = &g;
    }

    #[test]
    fn unused_keyword_returns_empty() {
        let (g, c, gt) = fixture(400, 119);
        let sk = GtreeSpatialKeyword::build(&gt, &g, &c);
        let unused = (0..c.num_terms() as TermId)
            .find(|&t| c.inv_len(t) == 0)
            .unwrap();
        let (got, _) = sk.top_k(0, 5, &[unused], OccurrenceMode::Aggregated);
        assert!(got.is_empty());
        let (got, _) = sk.bknn(0, 5, &[unused], false, OccurrenceMode::Aggregated);
        assert!(got.is_empty());
    }
}
