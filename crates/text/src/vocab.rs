//! Keyword string interning.

use std::collections::HashMap;

use crate::corpus::TermId;

/// Bidirectional map between keyword strings and dense [`TermId`]s.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    terms: Vec<String>,
    index: HashMap<String, TermId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(term.to_owned());
        self.index.insert(term.to_owned(), id);
        id
    }

    /// Looks up an already-interned term.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.index.get(term).copied()
    }

    /// The string for `id`.
    ///
    /// # Panics
    /// If `id` was never interned.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// All interned terms in id order — the snapshot serialization
    /// boundary (the intern map is derived, not stored).
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// Rebuilds a vocabulary from an id-ordered term list, re-deriving
    /// the intern map (the snapshot loader's entry point).
    ///
    /// # Errors
    /// When a term repeats — interning is a bijection.
    pub fn from_terms(terms: Vec<String>) -> Result<Self, String> {
        let mut index = HashMap::with_capacity(terms.len());
        for (id, term) in terms.iter().enumerate() {
            if index.insert(term.clone(), id as TermId).is_some() {
                return Err(format!("term {term:?} appears twice in the vocabulary"));
            }
        }
        Ok(Vocabulary { terms, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("thai");
        let b = v.intern("restaurant");
        assert_ne!(a, b);
        assert_eq!(v.intern("thai"), a);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn roundtrip_lookup() {
        let mut v = Vocabulary::new();
        let id = v.intern("takeaway");
        assert_eq!(v.get("takeaway"), Some(id));
        assert_eq!(v.get("grocer"), None);
        assert_eq!(v.term(id), "takeaway");
    }

    #[test]
    fn empty_vocab() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}
