//! Objects, documents and inverted lists with pre-computed impacts.

use std::collections::HashMap;

use kspin_graph::VertexId;

/// Dense object (POI) identifier within a [`Corpus`].
pub type ObjectId = u32;

/// Dense keyword identifier (see [`crate::Vocabulary`]).
pub type TermId = u32;

/// One `(term, frequency)` entry of an object's document, with its
/// pre-computed impact `λ_{t,o}` (Eq. 3 — impacts are query-independent, so
/// the paper computes them offline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DocPosting {
    pub term: TermId,
    pub freq: u32,
    pub impact: f64,
}

/// One `(object, frequency)` entry of a keyword's inverted list `inv(t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvPosting {
    pub object: ObjectId,
    pub freq: u32,
    pub impact: f64,
}

/// A spatial keyword dataset: objects on vertices, documents, inverted
/// lists, and offline-computed impact statistics.
///
/// Immutable after construction — dynamic updates (§6.2) are handled at the
/// index layer, which keeps its own overlay of inserted/deleted objects.
///
/// Documents and inverted lists are stored *flat*: one pooled posting
/// array each, sliced through `u32` offset tables. Accessors hand out the
/// same `&[DocPosting]` / `&[InvPosting]` slices as before, but the whole
/// corpus is now four cache-dense arrays — the layout the snapshot format
/// serializes verbatim.
#[derive(Debug, Clone)]
pub struct Corpus {
    vertex_of: Vec<VertexId>,
    object_at: HashMap<VertexId, ObjectId>,
    /// `doc_offsets[o]..doc_offsets[o + 1]` slices `docs` for object `o`.
    doc_offsets: Vec<u32>,
    docs: Vec<DocPosting>,
    /// `inv_offsets[t]..inv_offsets[t + 1]` slices `inverted` for term `t`.
    inv_offsets: Vec<u32>,
    inverted: Vec<InvPosting>,
    max_impact: Vec<f64>,
    doc_len: Vec<u32>,
    total_occurrences: u64,
}

impl Corpus {
    /// Number of objects `|O|`.
    pub fn num_objects(&self) -> usize {
        self.vertex_of.len()
    }

    /// Number of distinct keywords `|W|` (including any ids with empty
    /// inverted lists).
    pub fn num_terms(&self) -> usize {
        self.inv_offsets.len() - 1
    }

    /// Total keyword occurrences `|doc(V)|` (sum of document lengths).
    pub fn total_occurrences(&self) -> u64 {
        self.total_occurrences
    }

    /// The road-network vertex hosting object `o`.
    #[inline]
    pub fn vertex_of(&self, o: ObjectId) -> VertexId {
        self.vertex_of[o as usize]
    }

    /// The object on vertex `v`, if any.
    #[inline]
    pub fn object_at(&self, v: VertexId) -> Option<ObjectId> {
        self.object_at.get(&v).copied()
    }

    /// Translates object placements onto a renumbered graph: `vertex_of`
    /// maps through `r` and the vertex→object map is rebuilt under the new
    /// ids. Documents, inverted lists and impact scores are vertex-free, so
    /// text scoring is untouched. Build-time only.
    pub fn relabel(&mut self, r: &kspin_graph::Relabeling) {
        for v in &mut self.vertex_of {
            *v = r.to_local(*v);
        }
        self.object_at = self
            .vertex_of
            .iter()
            .enumerate()
            .map(|(o, &v)| (v, o as ObjectId))
            .collect();
    }

    /// Document of `o`, sorted by term id.
    #[inline]
    pub fn doc(&self, o: ObjectId) -> &[DocPosting] {
        let lo = self.doc_offsets[o as usize] as usize;
        let hi = self.doc_offsets[o as usize + 1] as usize;
        &self.docs[lo..hi]
    }

    /// Inverted list `inv(t)`, sorted by object id. Empty for term ids the
    /// corpus has never seen (queries may mention words no object carries).
    #[inline]
    pub fn inverted(&self, t: TermId) -> &[InvPosting] {
        match (
            self.inv_offsets.get(t as usize),
            self.inv_offsets.get(t as usize + 1),
        ) {
            (Some(&lo), Some(&hi)) => &self.inverted[lo as usize..hi as usize],
            _ => &[],
        }
    }

    /// `|inv(t)|` — the keyword's frequency in Observation 1's sense.
    #[inline]
    pub fn inv_len(&self, t: TermId) -> usize {
        self.inverted(t).len()
    }

    /// Maximum impact `λ_{t,max}` over all objects containing `t`
    /// (Algorithm 2 uses this in the pseudo lower-bound). Zero for unused
    /// terms.
    #[inline]
    pub fn max_impact(&self, t: TermId) -> f64 {
        self.max_impact.get(t as usize).copied().unwrap_or(0.0)
    }

    /// Document length of `o` (total keyword occurrences, `Σ_t f_{t,o}`) —
    /// the `dl` of BM25-style length normalization.
    #[inline]
    pub fn doc_len(&self, o: ObjectId) -> u32 {
        self.doc_len[o as usize]
    }

    /// Mean document length over all objects (BM25's `avgdl`).
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_len.is_empty() {
            0.0
        } else {
            self.total_occurrences as f64 / self.doc_len.len() as f64
        }
    }

    /// Whether object `o`'s document contains `t`.
    pub fn contains(&self, o: ObjectId, t: TermId) -> bool {
        self.doc(o).binary_search_by_key(&t, |p| p.term).is_ok()
    }

    /// Whether `o` contains *all* of `terms` (conjunctive criterion).
    pub fn contains_all(&self, o: ObjectId, terms: &[TermId]) -> bool {
        terms.iter().all(|&t| self.contains(o, t))
    }

    /// Whether `o` contains *any* of `terms` (disjunctive criterion).
    pub fn contains_any(&self, o: ObjectId, terms: &[TermId]) -> bool {
        terms.iter().any(|&t| self.contains(o, t))
    }

    /// The term id of the least frequent (smallest `|inv(t)|`) of `terms` —
    /// the heap the conjunctive BkNN processor drives from (§4.1.2).
    pub fn least_frequent(&self, terms: &[TermId]) -> Option<TermId> {
        terms.iter().copied().min_by_key(|&t| self.inv_len(t))
    }

    /// Approximate memory footprint in bytes (documents + inverted lists).
    pub fn size_bytes(&self) -> usize {
        let posting = std::mem::size_of::<DocPosting>();
        self.docs.len() * posting
            + self.inverted.len() * posting
            + (self.doc_offsets.len() + self.inv_offsets.len()) * 4
            + self.vertex_of.len() * 4
            + self.max_impact.len() * 8
    }

    /// Borrowed views of the flat storage — `(vertex_of, doc_offsets,
    /// docs)` — the snapshot serialization boundary. Inverted lists,
    /// impacts statistics and the vertex→object map are all derivable from
    /// these three arrays (and are re-derived deterministically on load).
    pub fn flat_parts(&self) -> (&[VertexId], &[u32], &[DocPosting]) {
        (&self.vertex_of, &self.doc_offsets, &self.docs)
    }

    /// Reassembles a corpus from its flat columns, copying stored impact
    /// bits verbatim (no recomputation, so a reloaded corpus scores
    /// bit-identically) and re-deriving the inverted lists, per-term
    /// impact maxima, document lengths and the vertex→object map exactly
    /// as [`CorpusBuilder::build`] does.
    ///
    /// # Errors
    /// A description of the first violated invariant: non-monotone or
    /// mis-sized offsets, column length mismatches, empty documents,
    /// unsorted document terms, non-positive frequencies or impacts, or a
    /// vertex hosting two objects.
    pub fn from_parts(
        vertex_of: Vec<VertexId>,
        doc_offsets: Vec<u32>,
        terms: &[TermId],
        freqs: &[u32],
        impacts: &[f64],
    ) -> Result<Corpus, String> {
        let num_objects = vertex_of.len();
        if doc_offsets.len() != num_objects + 1 {
            return Err(format!(
                "doc_offsets holds {} entries for {num_objects} objects",
                doc_offsets.len()
            ));
        }
        if terms.len() != freqs.len() || terms.len() != impacts.len() {
            return Err(format!(
                "posting columns disagree: {} terms, {} freqs, {} impacts",
                terms.len(),
                freqs.len(),
                impacts.len()
            ));
        }
        if doc_offsets.first() != Some(&0) || doc_offsets.last() != Some(&(terms.len() as u32)) {
            return Err("doc_offsets must start at 0 and end at the posting count".into());
        }
        if u32::try_from(terms.len()).is_err() {
            return Err(format!("posting count {} exceeds u32 offsets", terms.len()));
        }
        if doc_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("doc_offsets must be monotone non-decreasing".into());
        }
        let mut docs = Vec::with_capacity(terms.len());
        let mut doc_len = Vec::with_capacity(num_objects);
        let mut total_occurrences = 0u64;
        let mut num_terms = 0usize;
        for o in 0..num_objects {
            let lo = doc_offsets[o] as usize;
            let hi = doc_offsets[o + 1] as usize;
            if lo == hi {
                return Err(format!("object {o} has an empty document"));
            }
            let mut len = 0u32;
            for i in lo..hi {
                let (term, freq, impact) = (terms[i], freqs[i], impacts[i]);
                if i > lo && terms[i - 1] >= term {
                    return Err(format!("object {o} document terms not strictly ascending"));
                }
                if freq == 0 {
                    return Err(format!("object {o} carries a zero frequency"));
                }
                if !(impact.is_finite() && impact > 0.0) {
                    return Err(format!("object {o} carries a non-positive impact {impact}"));
                }
                num_terms = num_terms.max(term as usize + 1);
                len += freq;
                total_occurrences += u64::from(freq);
                docs.push(DocPosting { term, freq, impact });
            }
            doc_len.push(len);
        }
        let mut sorted_vertices = vertex_of.clone();
        sorted_vertices.sort_unstable();
        if sorted_vertices.windows(2).any(|w| w[0] == w[1]) {
            return Err("a vertex hosts more than one object".into());
        }
        let (inv_offsets, inverted, max_impact) = invert(&docs, &doc_offsets, num_terms);
        let object_at = vertex_of
            .iter()
            .enumerate()
            .map(|(o, &v)| (v, o as ObjectId))
            .collect();
        Ok(Corpus {
            vertex_of,
            object_at,
            doc_offsets,
            docs,
            inv_offsets,
            inverted,
            max_impact,
            doc_len,
            total_occurrences,
        })
    }
}

/// Derives the flat inverted lists (counting sort by term, objects kept in
/// ascending order) and per-term impact maxima from the flat documents.
fn invert(
    docs: &[DocPosting],
    doc_offsets: &[u32],
    num_terms: usize,
) -> (Vec<u32>, Vec<InvPosting>, Vec<f64>) {
    let mut inv_offsets = vec![0u32; num_terms + 1];
    for p in docs {
        inv_offsets[p.term as usize + 1] += 1;
    }
    for t in 0..num_terms {
        inv_offsets[t + 1] += inv_offsets[t];
    }
    let mut next: Vec<u32> = inv_offsets[..num_terms].to_vec();
    let mut inverted = vec![
        InvPosting {
            object: 0,
            freq: 0,
            impact: 0.0
        };
        docs.len()
    ];
    let mut max_impact = vec![0.0f64; num_terms];
    for o in 0..doc_offsets.len().saturating_sub(1) {
        let lo = doc_offsets[o] as usize;
        let hi = doc_offsets[o + 1] as usize;
        for p in &docs[lo..hi] {
            let t = p.term as usize;
            inverted[next[t] as usize] = InvPosting {
                object: o as ObjectId,
                freq: p.freq,
                impact: p.impact,
            };
            next[t] += 1;
            if p.impact > max_impact[t] {
                max_impact[t] = p.impact;
            }
        }
    }
    (inv_offsets, inverted, max_impact)
}

/// Builder for [`Corpus`]. Objects are added one at a time; impacts are
/// computed when [`CorpusBuilder::build`] runs.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    vertex_of: Vec<VertexId>,
    raw_docs: Vec<Vec<(TermId, u32)>>,
    num_terms: usize,
}

impl CorpusBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an object at `vertex` whose document is `terms` (term, freq)
    /// pairs. Duplicate terms accumulate their frequencies. Returns the new
    /// object's id.
    ///
    /// # Panics
    /// If another object already occupies `vertex` (the paper places at most
    /// one object per vertex, `O ⊆ V`), or the document is empty.
    pub fn add_object(&mut self, vertex: VertexId, terms: &[(TermId, u32)]) -> ObjectId {
        assert!(!terms.is_empty(), "object documents must be non-empty");
        assert!(
            !self.vertex_of.contains(&vertex),
            "vertex {vertex} already hosts an object"
        );
        let mut doc: Vec<(TermId, u32)> = Vec::with_capacity(terms.len());
        let mut sorted = terms.to_vec();
        sorted.sort_unstable_by_key(|&(t, _)| t);
        for (t, f) in sorted {
            assert!(f > 0, "term frequencies must be positive");
            match doc.last_mut() {
                Some((lt, lf)) if *lt == t => *lf += f,
                _ => doc.push((t, f)),
            }
            self.num_terms = self.num_terms.max(t as usize + 1);
        }
        let id = self.vertex_of.len() as ObjectId;
        self.vertex_of.push(vertex);
        self.raw_docs.push(doc);
        id
    }

    /// Finalizes the corpus, computing impacts `λ_{t,o} = w_{t,o} / ‖w_o‖`
    /// with `w_{t,o} = 1 + ln f_{t,o}` per Eq. (2)/(3). Storage is flat:
    /// documents pool into one posting array behind per-object offsets and
    /// the inverted lists are derived by a counting sort over it.
    pub fn build(self) -> Corpus {
        let num_objects = self.vertex_of.len();
        let mut doc_offsets = Vec::with_capacity(num_objects + 1);
        doc_offsets.push(0u32);
        let mut docs: Vec<DocPosting> = Vec::new();
        let mut doc_len = Vec::with_capacity(num_objects);
        let mut total_occurrences = 0u64;

        for raw in self.raw_docs {
            let norm: f64 = raw
                .iter()
                .map(|&(_, f)| {
                    let w = 1.0 + (f as f64).ln();
                    w * w
                })
                .sum::<f64>()
                .sqrt();
            let mut len = 0u32;
            for (term, freq) in raw {
                total_occurrences += freq as u64;
                len += freq;
                let impact = (1.0 + (freq as f64).ln()) / norm;
                docs.push(DocPosting { term, freq, impact });
            }
            doc_len.push(len);
            doc_offsets.push(docs.len() as u32);
        }
        let (inv_offsets, inverted, max_impact) = invert(&docs, &doc_offsets, self.num_terms);

        let object_at = self
            .vertex_of
            .iter()
            .enumerate()
            .map(|(o, &v)| (v, o as ObjectId))
            .collect();

        Corpus {
            vertex_of: self.vertex_of,
            object_at,
            doc_offsets,
            docs,
            inv_offsets,
            inverted,
            max_impact,
            doc_len,
            total_occurrences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the running-example-style corpus: three objects with
    /// overlapping keyword sets.
    fn sample() -> Corpus {
        let mut b = CorpusBuilder::new();
        // terms: 0 = thai, 1 = restaurant, 2 = takeaway
        b.add_object(10, &[(0, 1), (1, 1)]);
        b.add_object(20, &[(1, 2)]);
        b.add_object(30, &[(0, 1), (2, 3)]);
        b.build()
    }

    #[test]
    fn counts_and_lookup() {
        let c = sample();
        assert_eq!(c.num_objects(), 3);
        assert_eq!(c.num_terms(), 3);
        assert_eq!(c.total_occurrences(), 1 + 1 + 2 + 1 + 3);
        assert_eq!(c.vertex_of(1), 20);
        assert_eq!(c.object_at(30), Some(2));
        assert_eq!(c.object_at(99), None);
    }

    #[test]
    fn inverted_lists_match_documents() {
        let c = sample();
        let objs: Vec<_> = c.inverted(0).iter().map(|p| p.object).collect();
        assert_eq!(objs, vec![0, 2]);
        assert_eq!(c.inv_len(1), 2);
        assert_eq!(c.inv_len(2), 1);
        assert_eq!(c.least_frequent(&[0, 1, 2]), Some(2));
    }

    #[test]
    fn containment_predicates() {
        let c = sample();
        assert!(c.contains(0, 0));
        assert!(!c.contains(1, 0));
        assert!(c.contains_all(0, &[0, 1]));
        assert!(!c.contains_all(0, &[0, 2]));
        assert!(c.contains_any(1, &[0, 1]));
        assert!(!c.contains_any(1, &[0, 2]));
    }

    #[test]
    fn impacts_are_normalized_per_document() {
        let c = sample();
        for o in 0..c.num_objects() as ObjectId {
            let norm: f64 = c.doc(o).iter().map(|p| p.impact * p.impact).sum();
            assert!((norm - 1.0).abs() < 1e-9, "object {o} norm {norm}");
        }
    }

    #[test]
    fn single_term_document_has_unit_impact() {
        let c = sample();
        // Object 1 has only term 1 (freq 2): impact must be exactly 1.
        assert!((c.doc(1)[0].impact - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_impact_is_max_over_inverted_list() {
        let c = sample();
        for t in 0..c.num_terms() as TermId {
            let expect = c
                .inverted(t)
                .iter()
                .map(|p| p.impact)
                .fold(0.0f64, f64::max);
            assert_eq!(c.max_impact(t), expect);
        }
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let mut b = CorpusBuilder::new();
        b.add_object(1, &[(5, 1), (5, 2)]);
        let c = b.build();
        assert_eq!(
            c.doc(0),
            &[DocPosting {
                term: 5,
                freq: 3,
                impact: 1.0
            }]
        );
    }

    #[test]
    #[should_panic(expected = "already hosts")]
    fn duplicate_vertex_rejected() {
        let mut b = CorpusBuilder::new();
        b.add_object(1, &[(0, 1)]);
        b.add_object(1, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_document_rejected() {
        let mut b = CorpusBuilder::new();
        b.add_object(1, &[]);
    }
}
