//! Objects, documents and inverted lists with pre-computed impacts.

use std::collections::HashMap;

use kspin_graph::VertexId;

/// Dense object (POI) identifier within a [`Corpus`].
pub type ObjectId = u32;

/// Dense keyword identifier (see [`crate::Vocabulary`]).
pub type TermId = u32;

/// One `(term, frequency)` entry of an object's document, with its
/// pre-computed impact `λ_{t,o}` (Eq. 3 — impacts are query-independent, so
/// the paper computes them offline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DocPosting {
    pub term: TermId,
    pub freq: u32,
    pub impact: f64,
}

/// One `(object, frequency)` entry of a keyword's inverted list `inv(t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvPosting {
    pub object: ObjectId,
    pub freq: u32,
    pub impact: f64,
}

/// A spatial keyword dataset: objects on vertices, documents, inverted
/// lists, and offline-computed impact statistics.
///
/// Immutable after construction — dynamic updates (§6.2) are handled at the
/// index layer, which keeps its own overlay of inserted/deleted objects.
#[derive(Debug, Clone)]
pub struct Corpus {
    vertex_of: Vec<VertexId>,
    object_at: HashMap<VertexId, ObjectId>,
    docs: Vec<Vec<DocPosting>>,
    inverted: Vec<Vec<InvPosting>>,
    max_impact: Vec<f64>,
    doc_len: Vec<u32>,
    total_occurrences: u64,
}

impl Corpus {
    /// Number of objects `|O|`.
    pub fn num_objects(&self) -> usize {
        self.vertex_of.len()
    }

    /// Number of distinct keywords `|W|` (including any ids with empty
    /// inverted lists).
    pub fn num_terms(&self) -> usize {
        self.inverted.len()
    }

    /// Total keyword occurrences `|doc(V)|` (sum of document lengths).
    pub fn total_occurrences(&self) -> u64 {
        self.total_occurrences
    }

    /// The road-network vertex hosting object `o`.
    #[inline]
    pub fn vertex_of(&self, o: ObjectId) -> VertexId {
        self.vertex_of[o as usize]
    }

    /// The object on vertex `v`, if any.
    #[inline]
    pub fn object_at(&self, v: VertexId) -> Option<ObjectId> {
        self.object_at.get(&v).copied()
    }

    /// Translates object placements onto a renumbered graph: `vertex_of`
    /// maps through `r` and the vertex→object map is rebuilt under the new
    /// ids. Documents, inverted lists and impact scores are vertex-free, so
    /// text scoring is untouched. Build-time only.
    pub fn relabel(&mut self, r: &kspin_graph::Relabeling) {
        for v in &mut self.vertex_of {
            *v = r.to_local(*v);
        }
        self.object_at = self
            .vertex_of
            .iter()
            .enumerate()
            .map(|(o, &v)| (v, o as ObjectId))
            .collect();
    }

    /// Document of `o`, sorted by term id.
    #[inline]
    pub fn doc(&self, o: ObjectId) -> &[DocPosting] {
        &self.docs[o as usize]
    }

    /// Inverted list `inv(t)`, sorted by object id. Empty for term ids the
    /// corpus has never seen (queries may mention words no object carries).
    #[inline]
    pub fn inverted(&self, t: TermId) -> &[InvPosting] {
        self.inverted.get(t as usize).map_or(&[], Vec::as_slice)
    }

    /// `|inv(t)|` — the keyword's frequency in Observation 1's sense.
    #[inline]
    pub fn inv_len(&self, t: TermId) -> usize {
        self.inverted(t).len()
    }

    /// Maximum impact `λ_{t,max}` over all objects containing `t`
    /// (Algorithm 2 uses this in the pseudo lower-bound). Zero for unused
    /// terms.
    #[inline]
    pub fn max_impact(&self, t: TermId) -> f64 {
        self.max_impact.get(t as usize).copied().unwrap_or(0.0)
    }

    /// Document length of `o` (total keyword occurrences, `Σ_t f_{t,o}`) —
    /// the `dl` of BM25-style length normalization.
    #[inline]
    pub fn doc_len(&self, o: ObjectId) -> u32 {
        self.doc_len[o as usize]
    }

    /// Mean document length over all objects (BM25's `avgdl`).
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_len.is_empty() {
            0.0
        } else {
            self.total_occurrences as f64 / self.doc_len.len() as f64
        }
    }

    /// Whether object `o`'s document contains `t`.
    pub fn contains(&self, o: ObjectId, t: TermId) -> bool {
        self.docs[o as usize]
            .binary_search_by_key(&t, |p| p.term)
            .is_ok()
    }

    /// Whether `o` contains *all* of `terms` (conjunctive criterion).
    pub fn contains_all(&self, o: ObjectId, terms: &[TermId]) -> bool {
        terms.iter().all(|&t| self.contains(o, t))
    }

    /// Whether `o` contains *any* of `terms` (disjunctive criterion).
    pub fn contains_any(&self, o: ObjectId, terms: &[TermId]) -> bool {
        terms.iter().any(|&t| self.contains(o, t))
    }

    /// The term id of the least frequent (smallest `|inv(t)|`) of `terms` —
    /// the heap the conjunctive BkNN processor drives from (§4.1.2).
    pub fn least_frequent(&self, terms: &[TermId]) -> Option<TermId> {
        terms.iter().copied().min_by_key(|&t| self.inv_len(t))
    }

    /// Approximate memory footprint in bytes (documents + inverted lists).
    pub fn size_bytes(&self) -> usize {
        let posting = std::mem::size_of::<DocPosting>();
        let doc_bytes: usize = self.docs.iter().map(|d| d.len() * posting).sum();
        let inv_bytes: usize = self.inverted.iter().map(|l| l.len() * posting).sum();
        doc_bytes + inv_bytes + self.vertex_of.len() * 4 + self.max_impact.len() * 8
    }
}

/// Builder for [`Corpus`]. Objects are added one at a time; impacts are
/// computed when [`CorpusBuilder::build`] runs.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    vertex_of: Vec<VertexId>,
    raw_docs: Vec<Vec<(TermId, u32)>>,
    num_terms: usize,
}

impl CorpusBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an object at `vertex` whose document is `terms` (term, freq)
    /// pairs. Duplicate terms accumulate their frequencies. Returns the new
    /// object's id.
    ///
    /// # Panics
    /// If another object already occupies `vertex` (the paper places at most
    /// one object per vertex, `O ⊆ V`), or the document is empty.
    pub fn add_object(&mut self, vertex: VertexId, terms: &[(TermId, u32)]) -> ObjectId {
        assert!(!terms.is_empty(), "object documents must be non-empty");
        assert!(
            !self.vertex_of.contains(&vertex),
            "vertex {vertex} already hosts an object"
        );
        let mut doc: Vec<(TermId, u32)> = Vec::with_capacity(terms.len());
        let mut sorted = terms.to_vec();
        sorted.sort_unstable_by_key(|&(t, _)| t);
        for (t, f) in sorted {
            assert!(f > 0, "term frequencies must be positive");
            match doc.last_mut() {
                Some((lt, lf)) if *lt == t => *lf += f,
                _ => doc.push((t, f)),
            }
            self.num_terms = self.num_terms.max(t as usize + 1);
        }
        let id = self.vertex_of.len() as ObjectId;
        self.vertex_of.push(vertex);
        self.raw_docs.push(doc);
        id
    }

    /// Finalizes the corpus, computing impacts `λ_{t,o} = w_{t,o} / ‖w_o‖`
    /// with `w_{t,o} = 1 + ln f_{t,o}` per Eq. (2)/(3).
    pub fn build(self) -> Corpus {
        let num_objects = self.vertex_of.len();
        let mut docs = Vec::with_capacity(num_objects);
        let mut inverted: Vec<Vec<InvPosting>> = vec![Vec::new(); self.num_terms];
        let mut max_impact = vec![0.0f64; self.num_terms];
        let mut doc_len = Vec::with_capacity(num_objects);
        let mut total_occurrences = 0u64;

        for (o, raw) in self.raw_docs.into_iter().enumerate() {
            let norm: f64 = raw
                .iter()
                .map(|&(_, f)| {
                    let w = 1.0 + (f as f64).ln();
                    w * w
                })
                .sum::<f64>()
                .sqrt();
            let doc: Vec<DocPosting> = raw
                .into_iter()
                .map(|(term, freq)| {
                    total_occurrences += freq as u64;
                    let impact = (1.0 + (freq as f64).ln()) / norm;
                    DocPosting { term, freq, impact }
                })
                .collect();
            for p in &doc {
                inverted[p.term as usize].push(InvPosting {
                    object: o as ObjectId,
                    freq: p.freq,
                    impact: p.impact,
                });
                if p.impact > max_impact[p.term as usize] {
                    max_impact[p.term as usize] = p.impact;
                }
            }
            doc_len.push(doc.iter().map(|p| p.freq).sum());
            docs.push(doc);
        }

        let object_at = self
            .vertex_of
            .iter()
            .enumerate()
            .map(|(o, &v)| (v, o as ObjectId))
            .collect();

        Corpus {
            vertex_of: self.vertex_of,
            object_at,
            docs,
            inverted,
            max_impact,
            doc_len,
            total_occurrences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the running-example-style corpus: three objects with
    /// overlapping keyword sets.
    fn sample() -> Corpus {
        let mut b = CorpusBuilder::new();
        // terms: 0 = thai, 1 = restaurant, 2 = takeaway
        b.add_object(10, &[(0, 1), (1, 1)]);
        b.add_object(20, &[(1, 2)]);
        b.add_object(30, &[(0, 1), (2, 3)]);
        b.build()
    }

    #[test]
    fn counts_and_lookup() {
        let c = sample();
        assert_eq!(c.num_objects(), 3);
        assert_eq!(c.num_terms(), 3);
        assert_eq!(c.total_occurrences(), 1 + 1 + 2 + 1 + 3);
        assert_eq!(c.vertex_of(1), 20);
        assert_eq!(c.object_at(30), Some(2));
        assert_eq!(c.object_at(99), None);
    }

    #[test]
    fn inverted_lists_match_documents() {
        let c = sample();
        let objs: Vec<_> = c.inverted(0).iter().map(|p| p.object).collect();
        assert_eq!(objs, vec![0, 2]);
        assert_eq!(c.inv_len(1), 2);
        assert_eq!(c.inv_len(2), 1);
        assert_eq!(c.least_frequent(&[0, 1, 2]), Some(2));
    }

    #[test]
    fn containment_predicates() {
        let c = sample();
        assert!(c.contains(0, 0));
        assert!(!c.contains(1, 0));
        assert!(c.contains_all(0, &[0, 1]));
        assert!(!c.contains_all(0, &[0, 2]));
        assert!(c.contains_any(1, &[0, 1]));
        assert!(!c.contains_any(1, &[0, 2]));
    }

    #[test]
    fn impacts_are_normalized_per_document() {
        let c = sample();
        for o in 0..c.num_objects() as ObjectId {
            let norm: f64 = c.doc(o).iter().map(|p| p.impact * p.impact).sum();
            assert!((norm - 1.0).abs() < 1e-9, "object {o} norm {norm}");
        }
    }

    #[test]
    fn single_term_document_has_unit_impact() {
        let c = sample();
        // Object 1 has only term 1 (freq 2): impact must be exactly 1.
        assert!((c.doc(1)[0].impact - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_impact_is_max_over_inverted_list() {
        let c = sample();
        for t in 0..c.num_terms() as TermId {
            let expect = c
                .inverted(t)
                .iter()
                .map(|p| p.impact)
                .fold(0.0f64, f64::max);
            assert_eq!(c.max_impact(t), expect);
        }
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let mut b = CorpusBuilder::new();
        b.add_object(1, &[(5, 1), (5, 2)]);
        let c = b.build();
        assert_eq!(
            c.doc(0),
            &[DocPosting {
                term: 5,
                freq: 3,
                impact: 1.0
            }]
        );
    }

    #[test]
    #[should_panic(expected = "already hosts")]
    fn duplicate_vertex_rejected() {
        let mut b = CorpusBuilder::new();
        b.add_object(1, &[(0, 1)]);
        b.add_object(1, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_document_rejected() {
        let mut b = CorpusBuilder::new();
        b.add_object(1, &[]);
    }
}
