//! Textual relevance (Eqs. 2–3) and the weighted-distance spatio-textual
//! score (Eq. 1).
//!
//! The paper's techniques only require the relevance to decompose per query
//! keyword (`TR(ψ,o) = Σ_t query_weight(t) · object_weight(t,o)`, Eq. 3) —
//! "pseudo lower-bounds can be applied to any textual model that computes
//! similarity per query keyword … including language models, TF×IDF, and
//! BM25" (§4.2). [`TextModel`] captures that family: cosine TF×IDF (the
//! paper's default) and Okapi BM25.

use kspin_graph::Weight;

use crate::corpus::{Corpus, ObjectId, TermId};

/// A per-keyword-decomposable textual relevance model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TextModel {
    /// Cosine similarity over `1 + ln(tf)` impacts with IDF query weights
    /// (Eq. 2/3) — the paper's default.
    #[default]
    Cosine,
    /// Okapi BM25 with the usual `k1` saturation and `b` length
    /// normalization.
    Bm25 { k1: f64, b: f64 },
}

impl TextModel {
    /// The standard BM25 parameterization (`k1 = 1.2`, `b = 0.75`).
    pub const BM25_DEFAULT: TextModel = TextModel::Bm25 { k1: 1.2, b: 0.75 };
}

/// A query keyword set `ψ` with pre-computed per-term query weights and
/// per-term maximum object contributions.
///
/// Built once per query (the paper's implementation note: "query impacts
/// need only be computed once for the query").
#[derive(Debug, Clone)]
pub struct QueryTerms {
    terms: Vec<TermId>,
    impacts: Vec<f64>,
    /// `max_o [query_weight(t) · object_weight(t, o)]` per term — the
    /// `λ_{t,ψ} · λ_{t,max}` summands of Algorithm 2, generalized per model.
    max_contrib: Vec<f64>,
    model: TextModel,
}

impl QueryTerms {
    /// Cosine query (the paper's default model).
    pub fn new(corpus: &Corpus, terms: &[TermId]) -> Self {
        Self::with_model(corpus, terms, TextModel::Cosine)
    }

    /// Builds query weights under `model`. Terms with empty inverted lists
    /// keep a well-defined weight (they can never match, but norms must
    /// stay finite); duplicates are collapsed.
    pub fn with_model(corpus: &Corpus, terms: &[TermId], model: TextModel) -> Self {
        let mut uniq = terms.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        let num_objects = corpus.num_objects() as f64;
        let impacts: Vec<f64> = match model {
            TextModel::Cosine => {
                let weights: Vec<f64> = uniq
                    .iter()
                    .map(|&t| {
                        let inv = corpus.inv_len(t) as f64;
                        let ratio = if inv > 0.0 {
                            num_objects / inv
                        } else {
                            num_objects
                        };
                        (1.0 + ratio).ln()
                    })
                    .collect();
                let norm = weights.iter().map(|w| w * w).sum::<f64>().sqrt();
                if norm > 0.0 {
                    weights.iter().map(|w| w / norm).collect()
                } else {
                    vec![0.0; weights.len()]
                }
            }
            TextModel::Bm25 { .. } => uniq
                .iter()
                .map(|&t| {
                    // Robertson–Sparck-Jones IDF, floored at 0.
                    let n = corpus.inv_len(t) as f64;
                    ((num_objects - n + 0.5) / (n + 0.5) + 1.0).ln().max(0.0)
                })
                .collect(),
        };
        let max_contrib: Vec<f64> = uniq
            .iter()
            .enumerate()
            .map(|(j, &t)| {
                let max_obj = match model {
                    TextModel::Cosine => corpus.max_impact(t),
                    TextModel::Bm25 { .. } => corpus
                        .inverted(t)
                        .iter()
                        .map(|p| object_weight(model, corpus, p.object, p.freq, p.impact))
                        .fold(0.0f64, f64::max),
                };
                impacts[j] * max_obj
            })
            .collect();
        QueryTerms {
            terms: uniq,
            impacts,
            max_contrib,
            model,
        }
    }

    /// The model this query scores under.
    pub fn model(&self) -> TextModel {
        self.model
    }

    /// The (deduplicated, sorted) query term ids.
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// Query weight for the i-th term of [`QueryTerms::terms`]
    /// (`λ_{t_i,ψ}` under cosine, IDF under BM25).
    pub fn impact(&self, i: usize) -> f64 {
        self.impacts[i]
    }

    /// Maximum possible contribution of the i-th term to any object's
    /// relevance — Algorithm 2's `λ_{t_j,ψ} · λ_{t_j,max}`, per model.
    pub fn max_term_contribution(&self, i: usize) -> f64 {
        self.max_contrib[i]
    }

    /// Number of query terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the query has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Textual relevance `TR(ψ, o)` under the query's model (Eq. 3 or its
    /// BM25 analogue). Zero when the object shares no keyword with the
    /// query.
    pub fn relevance(&self, corpus: &Corpus, o: ObjectId) -> f64 {
        let doc = corpus.doc(o);
        let mut tr = 0.0;
        // Both sides are sorted by term id: merge.
        let mut di = 0;
        for (qi, &t) in self.terms.iter().enumerate() {
            while di < doc.len() && doc[di].term < t {
                di += 1;
            }
            if di < doc.len() && doc[di].term == t {
                let p = &doc[di];
                tr += self.impacts[qi] * object_weight(self.model, corpus, o, p.freq, p.impact);
            }
        }
        tr
    }

    /// Upper bound on `TR(ψ, o)` over all objects — the bound behind the
    /// *valid* lower-bound score `ST_all` that the pseudo lower-bound
    /// improves upon (§4.2).
    pub fn max_relevance(&self, _corpus: &Corpus) -> f64 {
        self.max_contrib.iter().sum()
    }
}

/// Object-side term weight under `model`: the stored cosine impact, or the
/// BM25 saturation term computed from tf + document length.
#[inline]
fn object_weight(
    model: TextModel,
    corpus: &Corpus,
    o: ObjectId,
    freq: u32,
    cosine_impact: f64,
) -> f64 {
    match model {
        TextModel::Cosine => cosine_impact,
        TextModel::Bm25 { k1, b } => {
            let f = freq as f64;
            let dl = corpus.doc_len(o) as f64;
            let avgdl = corpus.avg_doc_len().max(1e-9);
            f * (k1 + 1.0) / (f + k1 * (1.0 - b + b * dl / avgdl))
        }
    }
}

/// Weighted-distance spatio-textual score `ST(q,o) = d(q,o) / TR(ψ,o)`
/// (Eq. 1). Infinity when the relevance is zero (an object sharing no
/// keyword can never be a top-k result under weighted distance).
#[inline]
pub fn score(distance: Weight, relevance: f64) -> f64 {
    if relevance <= 0.0 {
        f64::INFINITY
    } else {
        distance as f64 / relevance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    fn sample() -> Corpus {
        let mut b = CorpusBuilder::new();
        b.add_object(10, &[(0, 1), (1, 1)]); // o0: thai restaurant
        b.add_object(20, &[(1, 2)]); // o1: restaurant restaurant
        b.add_object(30, &[(0, 1), (2, 3)]); // o2: thai takeaway^3
        b.build()
    }

    #[test]
    fn query_impacts_are_normalized() {
        let c = sample();
        let q = QueryTerms::new(&c, &[0, 1, 2]);
        let norm: f64 = (0..q.len()).map(|i| q.impact(i) * q.impact(i)).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duplicates_are_collapsed() {
        let c = sample();
        let q = QueryTerms::new(&c, &[1, 0, 1, 0]);
        assert_eq!(q.terms(), &[0, 1]);
    }

    #[test]
    fn rarer_terms_get_higher_impact() {
        let c = sample();
        // term 2 appears in 1 object, term 1 in 2 objects.
        let q = QueryTerms::new(&c, &[1, 2]);
        assert!(q.impact(1) > q.impact(0));
    }

    #[test]
    fn relevance_zero_without_shared_terms() {
        let c = sample();
        let q = QueryTerms::new(&c, &[2]);
        assert_eq!(q.relevance(&c, 1), 0.0); // o1 lacks takeaway
        assert!(q.relevance(&c, 2) > 0.0);
    }

    #[test]
    fn relevance_increases_with_coverage() {
        let c = sample();
        let q = QueryTerms::new(&c, &[0, 1]);
        // o0 contains both query terms; o1 only one of them.
        assert!(q.relevance(&c, 0) > q.relevance(&c, 1));
    }

    #[test]
    fn max_relevance_dominates_each_object() {
        let c = sample();
        for model in [TextModel::Cosine, TextModel::BM25_DEFAULT] {
            let q = QueryTerms::with_model(&c, &[0, 1, 2], model);
            let bound = q.max_relevance(&c);
            for o in 0..c.num_objects() as ObjectId {
                assert!(bound + 1e-12 >= q.relevance(&c, o), "{model:?}");
            }
        }
    }

    #[test]
    fn per_term_contribution_bound_holds_per_object() {
        // The Algorithm-2 summand must dominate each single term's real
        // contribution, under both models.
        let c = sample();
        for model in [TextModel::Cosine, TextModel::BM25_DEFAULT] {
            let q = QueryTerms::with_model(&c, &[0, 1, 2], model);
            for (j, &t) in q.terms().iter().enumerate() {
                for o in 0..c.num_objects() as ObjectId {
                    let solo = QueryTerms::with_model(&c, &[t], model);
                    // solo impact may be normalized differently under
                    // cosine; compare using the shared query weights.
                    let contribution = q
                        .relevance(&c, o)
                        .min(q.impact(j) * (solo.relevance(&c, o) / solo.impact(0).max(1e-12)));
                    let _ = contribution;
                    // Direct check: term contribution ≤ max contribution.
                    if c.contains(o, t) {
                        let doc = c.doc(o);
                        let p = doc.iter().find(|p| p.term == t).unwrap();
                        let w = super::object_weight(model, &c, o, p.freq, p.impact);
                        assert!(
                            q.impact(j) * w <= q.max_term_contribution(j) + 1e-12,
                            "{model:?} term {t} object {o}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bm25_rewards_frequency_with_saturation() {
        let c = sample();
        let q = QueryTerms::with_model(&c, &[1], TextModel::BM25_DEFAULT);
        // o1 has tf=2 for term 1, o0 has tf=1 — o1 scores higher, but less
        // than 2×（saturation).
        let r0 = q.relevance(&c, 0);
        let r1 = q.relevance(&c, 1);
        assert!(r1 > r0);
        assert!(r1 < 2.0 * r0);
    }

    #[test]
    fn unseen_term_is_harmless() {
        let c = sample();
        let q = QueryTerms::new(&c, &[0, 11]); // term 11 unused
        assert!(q.relevance(&c, 0) > 0.0);
        let q = QueryTerms::with_model(&c, &[0, 11], TextModel::BM25_DEFAULT);
        assert!(q.relevance(&c, 0) > 0.0);
    }

    #[test]
    fn doc_len_statistics() {
        let c = sample();
        assert_eq!(c.doc_len(0), 2);
        assert_eq!(c.doc_len(1), 2);
        assert_eq!(c.doc_len(2), 4);
        assert!((c.avg_doc_len() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn score_weighted_distance() {
        assert_eq!(score(100, 0.5), 200.0);
        assert_eq!(score(100, 0.0), f64::INFINITY);
        assert_eq!(score(0, 0.7), 0.0);
    }
}
