//! Query workload construction following §7.1.
//!
//! The paper builds query keyword vectors by (1) choosing popular seed
//! terms, (2) picking an object containing the seed term, and (3) extending
//! the vector with further keywords of that object, "ensuring combinations
//! of query keywords are correlated because they exist for a real-world
//! object". Each vector is then paired with uniformly sampled query
//! vertices.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use kspin_graph::VertexId;

use crate::corpus::{Corpus, TermId};

/// Parameters for workload construction.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Seed keywords ("hotel", "restaurant", …) — must be contained in at
    /// least one object each.
    pub seed_terms: Vec<TermId>,
    /// Objects sampled per seed term (paper: 10).
    pub objects_per_term: usize,
    /// Query vertices sampled per vector (paper: 100).
    pub vertices_per_vector: usize,
    /// RNG seed.
    pub seed: u64,
}

/// One benchmark query: a keyword vector and a query vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    pub vertex: VertexId,
    pub terms: Vec<TermId>,
}

/// Builds correlated keyword vectors of exactly `len` terms.
///
/// Vectors shorter than `len` can occur only when an object's document has
/// fewer than `len` distinct keywords; such objects are skipped, so every
/// returned vector has exactly `len` distinct terms and the seed term first.
pub fn query_vectors(corpus: &Corpus, config: &WorkloadConfig, len: usize) -> Vec<Vec<TermId>> {
    assert!(len >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed ^ (len as u64).wrapping_mul(0x9e37_79b9));
    let mut vectors = Vec::new();
    for &seed_term in &config.seed_terms {
        let inv = corpus.inverted(seed_term);
        if inv.is_empty() {
            continue;
        }
        let mut produced = 0;
        let mut attempts = 0;
        while produced < config.objects_per_term && attempts < config.objects_per_term * 20 {
            attempts += 1;
            let o = inv[rng.gen_range(0..inv.len())].object;
            let mut others: Vec<TermId> = corpus
                .doc(o)
                .iter()
                .map(|p| p.term)
                .filter(|&t| t != seed_term)
                .collect();
            if others.len() + 1 < len {
                continue;
            }
            others.shuffle(&mut rng);
            let mut vector = Vec::with_capacity(len);
            vector.push(seed_term);
            vector.extend(others.into_iter().take(len - 1));
            produced += 1;
            vectors.push(vector);
        }
    }
    vectors
}

/// Parameters for the Zipf-skewed hot-keyword serving workload.
#[derive(Debug, Clone)]
pub struct ZipfWorkloadConfig {
    /// Queries to generate.
    pub num_queries: usize,
    /// Distinct keywords per query.
    pub terms_per_query: usize,
    /// Zipf exponent over keyword popularity ranks — §6 Obs. 1's skew.
    /// Higher concentrates the load on fewer hot keywords.
    pub zipf_exponent: f64,
    /// Query vertices are drawn from a pre-sampled pool of this size
    /// rather than the whole graph, so `(keyword, source cell)` pairs
    /// recur across queries the way real traffic hot-spots do.
    pub hot_vertex_pool: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZipfWorkloadConfig {
    fn default() -> Self {
        ZipfWorkloadConfig {
            num_queries: 1000,
            terms_per_query: 2,
            zipf_exponent: 1.0,
            hot_vertex_pool: 64,
            seed: 0x5e47,
        }
    }
}

/// Builds a serving workload whose keyword choices follow a Zipf
/// distribution over *popularity ranks* (keywords ordered by inverted-list
/// length, most frequent first) and whose vertices come from a small hot
/// pool — the §6 Obs. 1 traffic shape the cross-query heap-seed cache is
/// designed for. Deterministic in `config.seed`.
pub fn zipf_queries(
    corpus: &Corpus,
    config: &ZipfWorkloadConfig,
    num_vertices: usize,
) -> Vec<Query> {
    assert!(config.terms_per_query >= 1);
    assert!(config.hot_vertex_pool >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Popularity ranking: rank 0 = most frequent keyword.
    let mut by_freq: Vec<TermId> = (0..corpus.num_terms() as TermId)
        .filter(|&t| corpus.inv_len(t) > 0)
        .collect();
    by_freq.sort_by_key(|&t| (std::cmp::Reverse(corpus.inv_len(t)), t));
    assert!(
        by_freq.len() >= config.terms_per_query,
        "corpus has too few used keywords for the requested vector length"
    );
    let zipf = crate::generate::ZipfSampler::new(by_freq.len(), config.zipf_exponent);
    let pool: Vec<VertexId> = (0..config.hot_vertex_pool)
        .map(|_| rng.gen_range(0..num_vertices) as VertexId)
        .collect();
    let mut out = Vec::with_capacity(config.num_queries);
    let mut terms = Vec::with_capacity(config.terms_per_query);
    while out.len() < config.num_queries {
        terms.clear();
        while terms.len() < config.terms_per_query {
            let t = by_freq[zipf.sample(&mut rng)];
            if !terms.contains(&t) {
                terms.push(t);
            }
        }
        out.push(Query {
            vertex: pool[rng.gen_range(0..pool.len())],
            terms: terms.clone(),
        });
    }
    out
}

/// Uniformly samples query vertices.
pub fn query_vertices(num_vertices: usize, count: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| rng.gen_range(0..num_vertices) as VertexId)
        .collect()
}

/// Full §7.1 workload: the cross product of keyword vectors of length `len`
/// and uniformly sampled vertices.
pub fn queries(
    corpus: &Corpus,
    config: &WorkloadConfig,
    num_vertices: usize,
    len: usize,
) -> Vec<Query> {
    let vectors = query_vectors(corpus, config, len);
    let vertices = query_vertices(
        num_vertices,
        config.vertices_per_vector,
        config.seed ^ 0xdead_beef,
    );
    let mut out = Vec::with_capacity(vectors.len() * vertices.len());
    for vector in &vectors {
        for &v in &vertices {
            out.push(Query {
                vertex: v,
                terms: vector.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{corpus as gen_corpus, CorpusConfig};

    fn setup() -> (Corpus, WorkloadConfig) {
        let (c, _) = gen_corpus(&CorpusConfig::new(10_000, 21));
        let cfg = WorkloadConfig {
            seed_terms: vec![0, 1, 2, 3, 4],
            objects_per_term: 5,
            vertices_per_vector: 3,
            seed: 77,
        };
        (c, cfg)
    }

    #[test]
    fn vectors_have_requested_length_and_distinct_terms() {
        let (c, cfg) = setup();
        for len in 1..=4 {
            let vs = query_vectors(&c, &cfg, len);
            assert!(!vs.is_empty(), "no vectors of length {len}");
            for v in &vs {
                assert_eq!(v.len(), len);
                let mut s = v.clone();
                s.sort_unstable();
                s.dedup();
                assert_eq!(s.len(), len, "duplicate terms in {v:?}");
            }
        }
    }

    #[test]
    fn vectors_are_correlated_with_a_real_object() {
        let (c, cfg) = setup();
        for v in query_vectors(&c, &cfg, 3) {
            // Some object must contain all terms of the vector (it was built
            // from one).
            let any = (0..c.num_objects() as u32).any(|o| c.contains_all(o, &v));
            assert!(any, "vector {v:?} matches no object");
        }
    }

    #[test]
    fn seed_term_leads_every_vector() {
        let (c, cfg) = setup();
        for v in query_vectors(&c, &cfg, 2) {
            assert!(cfg.seed_terms.contains(&v[0]));
        }
    }

    #[test]
    fn full_workload_is_cross_product() {
        let (c, cfg) = setup();
        let qs = queries(&c, &cfg, 10_000, 2);
        let vs = query_vectors(&c, &cfg, 2);
        assert_eq!(qs.len(), vs.len() * cfg.vertices_per_vector);
        for q in &qs {
            assert!((q.vertex as usize) < 10_000);
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let (c, cfg) = setup();
        assert_eq!(queries(&c, &cfg, 10_000, 2), queries(&c, &cfg, 10_000, 2));
    }

    #[test]
    fn missing_seed_terms_are_skipped() {
        let (c, mut cfg) = setup();
        cfg.seed_terms = vec![TermId::MAX - 1];
        assert!(query_vectors(&c, &cfg, 2).is_empty());
    }

    #[test]
    fn zipf_workload_shape_and_determinism() {
        let (c, _) = setup();
        let cfg = ZipfWorkloadConfig {
            num_queries: 200,
            terms_per_query: 2,
            hot_vertex_pool: 8,
            ..ZipfWorkloadConfig::default()
        };
        let qs = zipf_queries(&c, &cfg, 10_000);
        assert_eq!(qs.len(), 200);
        let mut vertices: Vec<VertexId> = qs.iter().map(|q| q.vertex).collect();
        vertices.sort_unstable();
        vertices.dedup();
        assert!(vertices.len() <= 8, "vertices must come from the hot pool");
        for q in &qs {
            assert_eq!(q.terms.len(), 2);
            assert_ne!(q.terms[0], q.terms[1]);
            for &t in &q.terms {
                assert!(c.inv_len(t) > 0, "sampled an unused keyword");
            }
        }
        assert_eq!(qs, zipf_queries(&c, &cfg, 10_000));
    }

    #[test]
    fn zipf_workload_is_head_heavy() {
        let (c, _) = setup();
        let cfg = ZipfWorkloadConfig {
            num_queries: 400,
            terms_per_query: 1,
            zipf_exponent: 1.0,
            hot_vertex_pool: 4,
            seed: 9,
        };
        let qs = zipf_queries(&c, &cfg, 10_000);
        // Obs. 1 shape: the single most-drawn keyword should account for a
        // clearly super-uniform share of the queries.
        let mut counts = std::collections::HashMap::new();
        for q in &qs {
            *counts.entry(q.terms[0]).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let uniform = qs.len() / counts.len().max(1);
        assert!(
            max > 2 * uniform.max(1),
            "head keyword drawn {max} times, uniform share {uniform} — not Zipf-skewed"
        );
    }
}
