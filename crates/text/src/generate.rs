//! Zipfian keyword corpus generator.
//!
//! Substitutes the OSM-extracted POI keywords of Table 2 (DESIGN.md §3,
//! substitution 1). The generator reproduces the statistical properties the
//! paper's techniques rely on:
//!
//! * keyword frequencies follow Zipf's law with α ≈ 1 (Observation 1);
//! * |O| ≈ 4.5 % of |V| and ≈ 4–5 keyword occurrences per object,
//!   matching the Table 2 ratios;
//! * objects sit on distinct road-network vertices.

use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};

use kspin_graph::VertexId;

use crate::corpus::{Corpus, CorpusBuilder, TermId};
use crate::vocab::Vocabulary;

/// Parameters of the synthetic keyword dataset.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of road-network vertices objects may occupy.
    pub num_vertices: usize,
    /// Fraction of vertices hosting an object. Table 2 default ≈ 0.045.
    pub object_fraction: f64,
    /// Vocabulary size `|W|`.
    pub num_terms: usize,
    /// Mean document length (keyword occurrences per object). Default 4.5.
    pub mean_doc_len: f64,
    /// Zipf exponent α. Default 1.0 (classic Zipf, per Observation 1).
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// Table-2-like defaults for a network with `num_vertices` vertices.
    pub fn new(num_vertices: usize, seed: u64) -> Self {
        CorpusConfig {
            num_vertices,
            object_fraction: 0.045,
            num_terms: ((num_vertices as f64).powf(0.62) * 4.0).ceil() as usize,
            mean_doc_len: 4.5,
            zipf_exponent: 1.0,
            seed,
        }
    }
}

/// Zipf sampler over ranks `0..n` with `P(r) ∝ 1/(r+1)^α`, via a
/// pre-computed CDF and binary search.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `alpha`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Draws from Poisson(λ) by Knuth's product method — fine for the small λ
/// used for document lengths.
fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Popular seed terms used by the §7.1 workload; the generator aliases them
/// to the five most frequent Zipf ranks so "hotel" really is a frequent
/// keyword, exactly as in the paper's setup.
pub const SEED_TERM_NAMES: [&str; 5] = ["hotel", "restaurant", "supermarket", "bank", "school"];

/// Generates a corpus and its vocabulary.
///
/// Term ids coincide with Zipf ranks, so `inv_len` is (stochastically)
/// non-increasing in term id — handy for the keyword-density experiment
/// (Fig. 13). Objects are placed on uniformly sampled distinct vertices.
pub fn corpus(config: &CorpusConfig) -> (Corpus, Vocabulary) {
    assert!(config.num_vertices > 0, "need a non-empty vertex set");
    assert!(
        (0.0..=1.0).contains(&config.object_fraction),
        "object_fraction must be in [0, 1]"
    );
    assert!(config.num_terms >= SEED_TERM_NAMES.len());
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut vocab = Vocabulary::new();
    for (rank, name) in SEED_TERM_NAMES.iter().enumerate() {
        let id = vocab.intern(name);
        debug_assert_eq!(id as usize, rank);
    }
    for rank in SEED_TERM_NAMES.len()..config.num_terms {
        vocab.intern(&format!("kw{rank:06}"));
    }

    let num_objects = ((config.num_vertices as f64) * config.object_fraction)
        .round()
        .max(1.0) as usize;
    let zipf = ZipfSampler::new(config.num_terms, config.zipf_exponent);
    let vertices = sample(&mut rng, config.num_vertices, num_objects);

    let mut builder = CorpusBuilder::new();
    let mut doc = Vec::new();
    for v in vertices.iter() {
        doc.clear();
        let len = 1 + poisson(&mut rng, (config.mean_doc_len - 1.0).max(0.0));
        for _ in 0..len {
            let t = zipf.sample(&mut rng) as TermId;
            // Occasional repeated keywords give non-trivial tf weights.
            let f = match rng.gen::<f64>() {
                x if x < 0.05 => 3,
                x if x < 0.20 => 2,
                _ => 1,
            };
            doc.push((t, f));
        }
        builder.add_object(v as VertexId, &doc);
    }
    (builder.build(), vocab)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_table2_like_ratios() {
        let cfg = CorpusConfig::new(20_000, 99);
        let (c, v) = corpus(&cfg);
        let n_obj = c.num_objects() as f64;
        assert!((n_obj / 20_000.0 - 0.045).abs() < 0.005);
        let occ_per_obj = c.total_occurrences() as f64 / n_obj;
        assert!(
            (3.0..6.5).contains(&occ_per_obj),
            "occurrences/object {occ_per_obj}"
        );
        assert_eq!(v.len(), cfg.num_terms);
    }

    #[test]
    fn is_deterministic() {
        let cfg = CorpusConfig::new(5_000, 7);
        let (c1, _) = corpus(&cfg);
        let (c2, _) = corpus(&cfg);
        assert_eq!(c1.num_objects(), c2.num_objects());
        for o in 0..c1.num_objects() as u32 {
            assert_eq!(c1.vertex_of(o), c2.vertex_of(o));
            assert_eq!(c1.doc(o), c2.doc(o));
        }
    }

    #[test]
    fn inverted_list_sizes_are_zipf_like() {
        let (c, _) = corpus(&CorpusConfig::new(50_000, 13));
        // The most frequent keyword should dwarf the median keyword, and the
        // long tail should dominate: ≥ 70 % of *used* keywords should have
        // |inv(t)| ≤ 5 (Observation 1 predicts ~80 % for true Zipf).
        let mut sizes: Vec<usize> = (0..c.num_terms() as TermId)
            .map(|t| c.inv_len(t))
            .filter(|&s| s > 0)
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        assert!(sizes[0] > 50 * sizes[sizes.len() / 2]);
        let small = sizes.iter().filter(|&&s| s <= 5).count();
        assert!(
            small as f64 / sizes.len() as f64 > 0.7,
            "only {small}/{} keywords have inv ≤ 5",
            sizes.len()
        );
    }

    #[test]
    fn seed_terms_are_frequent() {
        let (c, v) = corpus(&CorpusConfig::new(30_000, 4));
        let hotel = v.get("hotel").unwrap();
        // Rank 0 must be among the most frequent keywords.
        let max_inv = (0..c.num_terms() as TermId)
            .map(|t| c.inv_len(t))
            .max()
            .unwrap();
        assert!(c.inv_len(hotel) * 2 >= max_inv);
        assert!(c.inv_len(hotel) > 100);
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            if r == 0 {
                counts[0] += 1;
            } else if r == 1 {
                counts[1] += 1;
            }
        }
        // P(rank 0) ≈ 2 × P(rank 1) under α = 1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.6..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn tiny_corpus_works() {
        let mut cfg = CorpusConfig::new(10, 0);
        cfg.object_fraction = 0.5;
        cfg.num_terms = 8;
        let (c, _) = corpus(&cfg);
        assert_eq!(c.num_objects(), 5);
    }
}
