//! Spatio-textual scoring substrate for the K-SPIN reproduction.
//!
//! Implements the paper's §2 preliminaries:
//!
//! * [`Vocabulary`] — string interning for keywords.
//! * [`Corpus`] — objects (POIs placed on road-network vertices), their
//!   documents, per-keyword inverted lists, and the pre-computed *impact*
//!   values `λ_{t,o}` of Eq. (3).
//! * [`QueryTerms`] — query-side impacts `λ_{t,ψ}` and the cosine textual
//!   relevance `TR(ψ, o)` (Eq. 2 rewritten as Eq. 3).
//! * [`score`] — the weighted-distance spatio-textual score of Eq. (1).
//! * [`generate`] — Zipfian corpus generator (Observation 1 depends on
//!   Zipf-distributed inverted-list sizes) standing in for OSM POI data.
//! * [`workload`] — the correlated query-keyword-vector construction of
//!   §7.1.

pub mod corpus;
pub mod generate;
pub mod io;
pub mod relevance;
pub mod vocab;
pub mod workload;

pub use corpus::{Corpus, CorpusBuilder, DocPosting, InvPosting, ObjectId, TermId};
pub use relevance::{score, QueryTerms, TextModel};
pub use vocab::Vocabulary;
