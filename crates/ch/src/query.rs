//! Bidirectional upward Dijkstra over a built hierarchy.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kspin_graph::{VertexId, Weight, INFINITY};

use crate::construction::ContractionHierarchy;

/// Reusable point-to-point query state.
///
/// A query runs two upward Dijkstras (from source and target) and takes the
/// minimum combined distance over vertices settled by both. State is reused
/// across queries via epochs, so a `ChQuery` performs no allocation in the
/// steady state.
pub struct ChQuery<'a> {
    ch: &'a ContractionHierarchy,
    dist: [Vec<Weight>; 2],
    epoch: [Vec<u32>; 2],
    cur: u32,
    heap: BinaryHeap<(Reverse<Weight>, u8, VertexId)>,
}

impl<'a> ChQuery<'a> {
    /// Creates query state for `ch`.
    pub fn new(ch: &'a ContractionHierarchy) -> Self {
        let n = ch.num_vertices();
        ChQuery {
            ch,
            dist: [vec![INFINITY; n], vec![INFINITY; n]],
            epoch: [vec![0; n], vec![0; n]],
            cur: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Exact network distance between `s` and `t` ([`INFINITY`] when
    /// disconnected).
    pub fn distance(&mut self, s: VertexId, t: VertexId) -> Weight {
        if s == t {
            return 0;
        }
        self.cur = self.cur.wrapping_add(1);
        if self.cur == 0 {
            for side in &mut self.epoch {
                side.iter_mut().for_each(|e| *e = u32::MAX);
            }
            self.cur = 1;
        }
        self.heap.clear();
        self.relax(0, s, 0);
        self.relax(1, t, 0);
        let mut best = INFINITY;
        while let Some((Reverse(d), side, v)) = self.heap.pop() {
            if d >= best {
                break; // No meeting point can improve once min key ≥ best.
            }
            let side = side as usize;
            if self.get(side, v) < d {
                continue; // stale
            }
            let other = 1 - side;
            let od = self.get(other, v);
            if od < INFINITY {
                let total = d + od;
                if total < best {
                    best = total;
                }
            }
            for (u, w) in self.ch.upward(v) {
                let nd = d + w;
                if nd < self.get(side, u) {
                    self.relax(side, u, nd);
                }
            }
        }
        best
    }

    #[inline]
    fn get(&self, side: usize, v: VertexId) -> Weight {
        // PANIC-OK: side is 0 or 1 by the caller; epoch/dist are sized
        // num_vertices at new() and v is a graph vertex < n.
        if self.epoch[side][v as usize] == self.cur {
            self.dist[side][v as usize] // PANIC-OK: bounds as above.
        } else {
            INFINITY
        }
    }

    #[inline]
    fn relax(&mut self, side: usize, v: VertexId, d: Weight) {
        // PANIC-OK: side is 0 or 1 by the caller; epoch/dist are sized
        // num_vertices at new() and v is a graph vertex < n.
        self.epoch[side][v as usize] = self.cur;
        // PANIC-OK: bounds as above.
        self.dist[side][v as usize] = d;
        // ALLOC-OK: clear() keeps the BinaryHeap's capacity across queries,
        // and entries per query are bounded by the upward-edge count, so
        // capacity stops growing once the workload's deepest search has run.
        self.heap.push((Reverse(d), side as u8, v));
    }
}
