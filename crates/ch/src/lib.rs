//! Contraction Hierarchies (Geisberger et al. [10]).
//!
//! The low-memory Network Distance Module variant in the paper (KS-CH,
//! Table 1). Vertices are contracted in importance order; shortcuts preserve
//! shortest-path distances among the remaining vertices; a point-to-point
//! query is a bidirectional Dijkstra restricted to upward edges.
//!
//! The implementation follows the standard recipe:
//!
//! * lazy-update priority queue over `edge difference + deleted neighbors`,
//! * hop/space-bounded witness searches during contraction,
//! * a CSR upward graph for cache-friendly queries.

mod construction;
mod query;
pub mod sweep;

pub use construction::{ChConfig, ContractionHierarchy};
pub use query::ChQuery;
pub use sweep::{OneToManySweep, RestrictedTargets, SweepCounters};

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::{Dijkstra, GraphBuilder, VertexId, INFINITY};

    #[test]
    fn exact_on_random_road_network() {
        let g = road_network(&RoadNetworkConfig::new(800, 23));
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let mut q = ChQuery::new(&ch);
        let mut dij = Dijkstra::new(g.num_vertices());
        for s in [0u32, 7, 111, 400, 750] {
            let s = s.min(g.num_vertices() as u32 - 1);
            dij.sssp(&g, s);
            let space = dij.space();
            for t in (0..g.num_vertices() as VertexId).step_by(53) {
                let exact = space.distance(t).unwrap();
                let got = q.distance(s, t);
                assert_eq!(got, exact, "mismatch for ({s}, {t})");
            }
        }
    }

    #[test]
    fn distance_to_self_is_zero() {
        let g = road_network(&RoadNetworkConfig::new(200, 5));
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let mut q = ChQuery::new(&ch);
        for v in [0u32, 50, 150] {
            assert_eq!(q.distance(v, v), 0);
        }
    }

    #[test]
    fn disconnected_pairs_are_infinite() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 3);
        b.add_edge(2, 3, 4);
        let g = b.build();
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let mut q = ChQuery::new(&ch);
        assert_eq!(q.distance(0, 2), INFINITY);
        assert_eq!(q.distance(0, 1), 3);
        assert_eq!(q.distance(2, 3), 4);
    }

    #[test]
    fn path_graph_distances() {
        let mut b = GraphBuilder::new(6);
        for v in 0..5 {
            b.add_edge(v, v + 1, v + 1);
        }
        let g = b.build();
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let mut q = ChQuery::new(&ch);
        assert_eq!(q.distance(0, 5), 1 + 2 + 3 + 4 + 5);
        assert_eq!(q.distance(2, 4), 3 + 4);
    }

    #[test]
    fn query_is_symmetric_and_matches_dijkstra() {
        let g = road_network(&RoadNetworkConfig::new(300, 8));
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let mut q = ChQuery::new(&ch);
        let mut dij = Dijkstra::new(g.num_vertices());
        let d1 = q.distance(0, 99);
        let d2 = q.distance(99, 0);
        assert_eq!(d1, d2);
        assert_eq!(d1, dij.one_to_one(&g, 0, 99));
    }
}
