//! CH preprocessing: node ordering and contraction.
//!
//! Performance notes for planar-like road networks:
//!
//! * priorities use *dirty versioning* — a queue entry is re-evaluated only
//!   if a neighbor was contracted since it was pushed;
//! * the contraction endgame forms a near-clique of size ≈ treewidth; once
//!   a vertex's live degree passes [`SKIP_WITNESS_DEGREE`] witness searches
//!   are pointless (they nearly always fail inside the core) and all
//!   pairwise shortcuts are added directly. Extra shortcuts never hurt
//!   correctness — every shortcut weight is a real path length — they only
//!   trade a little query time for a lot of build time.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use kspin_graph::{Graph, VertexId, Weight, INFINITY};

/// Above this live degree, contraction skips witness searches.
const SKIP_WITNESS_DEGREE: usize = 24;

/// Tuning knobs for contraction.
#[derive(Debug, Clone)]
pub struct ChConfig {
    /// Settled-vertex budget per witness search. Larger → fewer unnecessary
    /// shortcuts, slower build.
    pub witness_budget: usize,
    /// Hop limit per witness search.
    pub witness_hops: usize,
}

impl Default for ChConfig {
    fn default() -> Self {
        ChConfig {
            witness_budget: 50,
            witness_hops: 5,
        }
    }
}

/// A built hierarchy: every vertex has a rank, and `upward` holds all edges
/// (original + shortcuts) from lower- to higher-ranked endpoints. On an
/// undirected graph the same upward graph serves both search directions.
#[derive(Debug, Clone)]
pub struct ContractionHierarchy {
    rank: Vec<u32>,
    up_offsets: Vec<u32>,
    up_targets: Vec<VertexId>,
    up_weights: Vec<Weight>,
    num_shortcuts: usize,
}

impl ContractionHierarchy {
    /// Contracts `graph` into a hierarchy.
    pub fn build(graph: &Graph, config: &ChConfig) -> Self {
        Contractor::new(graph, config).run()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.rank.len()
    }

    /// Contraction rank of `v` (0 = contracted first / least important).
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        // PANIC-OK: rank is sized num_vertices at build; v is a graph vertex.
        self.rank[v as usize]
    }

    /// Upward edges of `v`: neighbors with strictly higher rank.
    #[inline]
    pub fn upward(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        // PANIC-OK: up_offsets has n+1 slots and is monotone, bounding
        // up_targets/up_weights by CSR construction; v is a graph vertex.
        let lo = self.up_offsets[v as usize] as usize;
        let hi = self.up_offsets[v as usize + 1] as usize; // PANIC-OK: v + 1 <= n.
        self.up_targets[lo..hi] // PANIC-OK: offsets bound targets by construction.
            .iter()
            .copied()
            // PANIC-OK: up_weights is the same length as up_targets.
            .zip(self.up_weights[lo..hi].iter().copied())
    }

    /// Shortcut edges added during contraction.
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Translates the hierarchy onto a renumbered graph: every stored
    /// vertex id goes through `r` while each vertex keeps its contraction
    /// rank, so node order, sweep order and query results are bit-identical
    /// to the unpermuted hierarchy. Build-time only.
    pub fn relabel(&self, r: &kspin_graph::Relabeling) -> ContractionHierarchy {
        let n = self.rank.len();
        assert_eq!(n, r.len(), "relabeling size mismatch");
        let mut rank = vec![0u32; n];
        for v in 0..n as VertexId {
            rank[r.to_local(v) as usize] = self.rank[v as usize];
        }
        let mut directed: Vec<(VertexId, VertexId, Weight)> =
            Vec::with_capacity(self.up_targets.len());
        for u in 0..n as VertexId {
            for (t, w) in self.upward(u) {
                directed.push((r.to_local(u), r.to_local(t), w));
            }
        }
        directed.sort_unstable();
        let mut deg = vec![0u32; n + 1];
        for &(lo, _, _) in &directed {
            deg[lo as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let up_offsets = deg;
        let mut up_targets = vec![0; directed.len()];
        let mut up_weights = vec![0; directed.len()];
        let mut cursor = up_offsets.clone();
        for (lo, hi, w) in directed {
            let c = &mut cursor[lo as usize];
            up_targets[*c as usize] = hi;
            up_weights[*c as usize] = w;
            *c += 1;
        }
        ContractionHierarchy {
            rank,
            up_offsets,
            up_targets,
            up_weights,
            num_shortcuts: self.num_shortcuts,
        }
    }

    /// Total directed upward edges.
    pub fn num_upward_edges(&self) -> usize {
        self.up_targets.len()
    }

    /// Approximate index size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.rank.len() * 4 + self.up_offsets.len() * 4 + self.up_targets.len() * 8
    }

    /// Borrowed views of the raw arrays — `(rank, up_offsets, up_targets,
    /// up_weights, num_shortcuts)` — the snapshot serialization boundary.
    pub fn flat_parts(&self) -> (&[u32], &[u32], &[VertexId], &[Weight], usize) {
        (
            &self.rank,
            &self.up_offsets,
            &self.up_targets,
            &self.up_weights,
            self.num_shortcuts,
        )
    }

    /// Reassembles a hierarchy from its raw arrays, verbatim, validating
    /// the CSR shape and that `rank` is a permutation of `0..n` (the
    /// invariants the upward-search indexing relies on).
    ///
    /// # Errors
    /// A description of the first violated invariant.
    pub fn from_flat_parts(
        rank: Vec<u32>,
        up_offsets: Vec<u32>,
        up_targets: Vec<VertexId>,
        up_weights: Vec<Weight>,
        num_shortcuts: usize,
    ) -> Result<ContractionHierarchy, String> {
        let n = rank.len();
        if up_offsets.len() != n + 1 {
            return Err(format!(
                "up_offsets holds {} entries for {n} vertices",
                up_offsets.len()
            ));
        }
        if up_targets.len() != up_weights.len() {
            return Err(format!(
                "up_targets/up_weights length mismatch: {} vs {}",
                up_targets.len(),
                up_weights.len()
            ));
        }
        if u32::try_from(up_targets.len()).is_err() {
            return Err(format!(
                "upward edge count {} exceeds u32",
                up_targets.len()
            ));
        }
        if up_offsets.first() != Some(&0) || up_offsets.last() != Some(&(up_targets.len() as u32)) {
            return Err("up_offsets must start at 0 and end at the edge count".into());
        }
        if up_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("up_offsets must be monotone non-decreasing".into());
        }
        if up_targets.iter().any(|&t| t as usize >= n) {
            return Err(format!("an upward target is out of range {n}"));
        }
        let mut seen = vec![false; n];
        for &r in &rank {
            match seen.get_mut(r as usize) {
                Some(slot) if !*slot => *slot = true,
                _ => {
                    return Err(format!(
                        "rank {r} out of range or repeated — not a permutation"
                    ))
                }
            }
        }
        // Upward edges must point strictly up the hierarchy; the sweep's
        // downward pass and the bidirectional search both rely on it.
        for v in 0..n {
            let lo = up_offsets[v] as usize;
            let hi = up_offsets[v + 1] as usize;
            if up_targets[lo..hi]
                .iter()
                .any(|&t| rank[t as usize] <= rank[v])
            {
                return Err(format!("vertex {v} has a non-upward edge"));
            }
        }
        Ok(ContractionHierarchy {
            rank,
            up_offsets,
            up_targets,
            up_weights,
            num_shortcuts,
        })
    }
}

/// Working state for one contraction run.
struct Contractor<'a> {
    config: &'a ChConfig,
    /// Dynamic adjacency of the not-yet-contracted "core" graph.
    /// Contracted vertices are physically unlinked, so every entry is live.
    adj: Vec<HashMap<VertexId, Weight>>,
    contracted: Vec<bool>,
    deleted_neighbors: Vec<u32>,
    rank: Vec<u32>,
    /// All upward edges discovered so far as (from, to, weight).
    edges: Vec<(VertexId, VertexId, Weight)>,
    num_shortcuts: usize,
    // Witness-search scratch.
    wdist: Vec<Weight>,
    wepoch: Vec<u32>,
    wcur: u32,
    wheap: BinaryHeap<(Reverse<Weight>, u32, VertexId)>,
}

impl<'a> Contractor<'a> {
    fn new(graph: &Graph, config: &'a ChConfig) -> Self {
        let n = graph.num_vertices();
        let mut adj: Vec<HashMap<VertexId, Weight>> = vec![HashMap::new(); n];
        for v in 0..n as VertexId {
            for (u, w) in graph.neighbors(v) {
                adj[v as usize].insert(u, w); // PANIC-OK: adj is sized n; v < n.
            }
        }
        Contractor {
            config,
            adj,
            contracted: vec![false; n],
            deleted_neighbors: vec![0; n],
            rank: vec![0; n],
            edges: Vec::new(),
            num_shortcuts: 0,
            wdist: vec![INFINITY; n],
            wepoch: vec![0; n],
            wcur: 0,
            wheap: BinaryHeap::new(),
        }
    }

    fn run(mut self) -> ContractionHierarchy {
        let n = self.adj.len();
        // Record original edges before contraction mutates adjacency.
        for u in 0..n {
            // PANIC-OK: adj is sized n = self.adj.len(); u < n.
            for (&v, &w) in &self.adj[u] {
                if (u as VertexId) < v {
                    self.edges.push((u as VertexId, v, w));
                }
            }
        }

        // Dirty-versioned lazy priority queue (see module docs).
        let mut version = vec![0u32; n];
        let mut queue: BinaryHeap<(Reverse<i64>, u32, VertexId)> = (0..n as VertexId)
            .map(|v| (Reverse(self.priority(v)), 0, v))
            .collect();
        let mut next_rank = 0u32;
        while let Some((Reverse(_), ver, v)) = queue.pop() {
            // PANIC-OK: contracted/version/adj/rank are all sized n; queue
            // entries and adjacency keys are vertices < n throughout.
            if self.contracted[v as usize] {
                continue;
            }
            // PANIC-OK: version sized n; v < n.
            if ver != version[v as usize] {
                let fresh = self.priority(v);
                // PANIC-OK: version is sized n; v < n as above.
                queue.push((Reverse(fresh), version[v as usize], v));
                continue;
            }
            // PANIC-OK: adj is sized n; v < n as above.
            let neighbors: Vec<VertexId> = self.adj[v as usize].keys().copied().collect();
            for &u in &neighbors {
                // PANIC-OK: version is sized n; adjacency keys are < n.
                version[u as usize] = version[u as usize].wrapping_add(1);
            }
            self.contract(v);
            self.rank[v as usize] = next_rank; // PANIC-OK: rank sized n; v < n.
            next_rank += 1;
        }

        // Assemble the upward CSR.
        let rank = self.rank;
        let mut deg = vec![0u32; n + 1];
        let mut directed: Vec<(VertexId, VertexId, Weight)> = Vec::with_capacity(self.edges.len());
        for &(u, v, w) in &self.edges {
            // PANIC-OK: rank is sized n; edge endpoints are vertices < n.
            let (lo, hi) = if rank[u as usize] < rank[v as usize] {
                (u, v)
            } else {
                (v, u)
            };
            directed.push((lo, hi, w));
        }
        // Deduplicate parallel upward edges, keeping the minimum weight.
        directed.sort_unstable();
        directed.dedup_by(|next, prev| next.0 == prev.0 && next.1 == prev.1);
        for &(lo, _, _) in &directed {
            deg[lo as usize + 1] += 1; // PANIC-OK: deg has n+1 slots; lo < n.
        }
        for i in 0..n {
            deg[i + 1] += deg[i]; // PANIC-OK: deg has n+1 slots; i < n.
        }
        let up_offsets = deg;
        let mut up_targets = vec![0; directed.len()];
        let mut up_weights = vec![0; directed.len()];
        let mut cursor = up_offsets.clone();
        for (lo, hi, w) in directed {
            // PANIC-OK: cursor is sized n+1 with lo < n; the counting-sort
            // cursor stays below up_offsets[lo + 1] <= directed.len(), which
            // sizes up_targets/up_weights.
            let c = &mut cursor[lo as usize];
            up_targets[*c as usize] = hi; // PANIC-OK: cursor bound as above.
            up_weights[*c as usize] = w; // PANIC-OK: cursor bound as above.
            *c += 1;
        }
        ContractionHierarchy {
            rank,
            up_offsets,
            up_targets,
            up_weights,
            num_shortcuts: self.num_shortcuts,
        }
    }

    /// Priority = edge difference + deleted neighbors (standard heuristic).
    fn priority(&mut self, v: VertexId) -> i64 {
        let (shortcuts, removed) = self.simulate(v);
        // PANIC-OK: deleted_neighbors is sized n; v < n.
        shortcuts as i64 - removed as i64 + self.deleted_neighbors[v as usize] as i64
    }

    /// Counts the shortcuts contracting `v` would add, without mutating.
    fn simulate(&mut self, v: VertexId) -> (usize, usize) {
        let deg = self.adj[v as usize].len(); // PANIC-OK: adj is sized n; v < n.
        if deg > SKIP_WITNESS_DEGREE {
            // Endgame core: assume every pair needs a shortcut.
            return (deg * deg.saturating_sub(1) / 2, deg);
        }
        let neighbors: Vec<(VertexId, Weight)> =
            self.adj[v as usize].iter().map(|(&u, &w)| (u, w)).collect(); // PANIC-OK: v < n.
        let mut shortcuts = 0;
        for i in 0..neighbors.len() {
            let (u, wu) = neighbors[i]; // PANIC-OK: i < neighbors.len().
                                        // PANIC-OK: i + 1 <= neighbors.len(), a valid (possibly empty) tail.
            for &(t, wt) in &neighbors[i + 1..] {
                if !self.has_witness(u, t, wu + wt, v) {
                    shortcuts += 1;
                }
            }
        }
        (shortcuts, neighbors.len())
    }

    fn contract(&mut self, v: VertexId) {
        let neighbors: Vec<(VertexId, Weight)> =
            self.adj[v as usize].iter().map(|(&u, &w)| (u, w)).collect(); // PANIC-OK: v < n.
        let skip_witness = neighbors.len() > SKIP_WITNESS_DEGREE;
        for i in 0..neighbors.len() {
            let (u, wu) = neighbors[i]; // PANIC-OK: i < neighbors.len().
                                        // PANIC-OK: i + 1 <= neighbors.len(), a valid (possibly empty) tail.
            for &(t, wt) in &neighbors[i + 1..] {
                let via = wu + wt;
                if skip_witness || !self.has_witness(u, t, via, v) {
                    self.insert_shortcut(u, t, via);
                }
            }
        }
        // PANIC-OK: contracted/adj/deleted_neighbors are sized n; v and its
        // adjacency keys are vertices < n.
        self.contracted[v as usize] = true;
        for &(u, _) in &neighbors {
            self.adj[u as usize].remove(&v); // PANIC-OK: adj sized n; u < n.
                                             // PANIC-OK: deleted_neighbors is sized n; u < n as above.
            self.deleted_neighbors[u as usize] += 1;
        }
        self.adj[v as usize] = HashMap::new(); // PANIC-OK: adj sized n; v < n.
    }

    fn insert_shortcut(&mut self, u: VertexId, t: VertexId, w: Weight) {
        // PANIC-OK: adj is sized n; u and t are adjacency keys < n.
        let e = self.adj[u as usize].entry(t).or_insert(Weight::MAX);
        if w < *e {
            *e = w;
            self.adj[t as usize].insert(u, w); // PANIC-OK: t < n as above.
            self.edges.push((u, t, w));
            self.num_shortcuts += 1;
        }
    }

    /// Bounded Dijkstra from `u` toward `t` in the core graph minus
    /// `excluded`; returns true if a path of length ≤ `limit` exists, in
    /// which case the shortcut u–v–t is unnecessary.
    fn has_witness(&mut self, u: VertexId, t: VertexId, limit: Weight, excluded: VertexId) -> bool {
        self.wcur = self.wcur.wrapping_add(1);
        if self.wcur == 0 {
            self.wepoch.iter_mut().for_each(|e| *e = u32::MAX);
            self.wcur = 1;
        }
        self.wheap.clear();
        self.wheap.push((Reverse(0), 0, u));
        // PANIC-OK: wepoch/wdist are sized n; u is a graph vertex < n.
        self.wepoch[u as usize] = self.wcur;
        self.wdist[u as usize] = 0; // PANIC-OK: wdist is sized n; u < n.
        let mut settled = 0;
        while let Some((Reverse(d), hops, x)) = self.wheap.pop() {
            if d > limit || settled >= self.config.witness_budget {
                return false;
            }
            // PANIC-OK: heap entries are vertices < n; wepoch/wdist sized n.
            if self.wepoch[x as usize] == self.wcur && d > self.wdist[x as usize] {
                continue;
            }
            if x == t {
                return d <= limit;
            }
            settled += 1;
            if hops as usize >= self.config.witness_hops {
                continue;
            }
            // PANIC-OK: adj is sized n and its keys are vertices < n, which
            // also bounds the wepoch/wdist accesses below.
            for (&y, &w) in &self.adj[x as usize] {
                if y == excluded {
                    continue;
                }
                let nd = d + w;
                if nd <= limit
                    // PANIC-OK: wepoch/wdist are sized n; y is an adjacency key < n.
                    && (self.wepoch[y as usize] != self.wcur || nd < self.wdist[y as usize])
                {
                    self.wepoch[y as usize] = self.wcur; // PANIC-OK: y < n as above.
                    self.wdist[y as usize] = nd; // PANIC-OK: y < n as above.
                    self.wheap.push((Reverse(nd), hops + 1, y));
                }
            }
        }
        false
    }
}
