//! PHAST-style batched one-to-many distance sweeps.
//!
//! A per-query Dijkstra pays a heap operation and a cache-missing adjacency
//! scan per settled vertex, for *every* query. PHAST (Delling et al.; see
//! SALT in PAPERS.md) restructures one-to-many over a contraction hierarchy
//! into two phases:
//!
//! 1. **Upward search** — a plain Dijkstra from the source restricted to
//!    upward edges. Its search space is tiny (the source's CH label).
//! 2. **Downward sweep** — one *linear* pass over vertices in descending
//!    contraction rank, relaxing each vertex's upward arcs in reverse:
//!    `dist[v] = min(dist[v], dist[u] + w)` for every upward arc `(v → u)`.
//!    Every up-down shortest path is covered because the higher-ranked
//!    endpoint is always processed first.
//!
//! The sweep touches each vertex exactly once with perfectly sequential
//! memory access — no heap, no frontier — so a batch of queries against the
//! same target set amortizes beautifully. **RPHAST** restricts the sweep to
//! the union of the targets' upward search spaces ([`RestrictedTargets`]),
//! computed once per target set and reused across every source in a batch.
//!
//! Distances are exact (CH preserves shortest paths), so swapping a
//! per-query Dijkstra for a sweep is invisible in results — the property
//! the serving layer's determinism certificate relies on.

use kspin_graph::{weight_add, DaryHeap, HeapCounters, VertexId, Weight, INFINITY};

use crate::construction::ContractionHierarchy;

/// Structural instrumentation for the sweep kernel (mirrors
/// [`HeapCounters`] for the per-query kernels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepCounters {
    /// Full (PHAST) one-to-many sweeps run.
    pub sweeps: u64,
    /// Restricted (RPHAST) one-to-many sweeps run.
    pub restricted_sweeps: u64,
    /// Vertices relaxed by downward sweeps — the sweep analogue of
    /// "settled" for a per-query search.
    pub swept_vertices: u64,
    /// Vertices settled by upward searches (phase 1).
    pub upward_settled: u64,
}

impl SweepCounters {
    /// Total vertices this kernel has settled/relaxed, comparable to the
    /// pop count of a per-query Dijkstra over the same queries.
    pub fn total_settled(&self) -> u64 {
        self.swept_vertices + self.upward_settled
    }
}

/// The union of the upward search spaces of a target set, in descending
/// contraction-rank order — the restricted sweep domain of RPHAST.
///
/// Built once per target set (e.g. per keyword group in a serving batch)
/// and shared by every source sweeping against those targets.
#[derive(Debug, Clone)]
pub struct RestrictedTargets {
    /// The targets, in the caller's order (output order of
    /// [`OneToManySweep::one_to_many_restricted`]).
    targets: Vec<VertexId>,
    /// Sweep domain: every vertex reachable from a target via upward arcs,
    /// sorted by descending rank. Upward-closed by construction, which is
    /// exactly what makes the restricted sweep exact.
    order: Vec<VertexId>,
}

impl RestrictedTargets {
    /// Collects the restriction for `targets` by a DFS over upward arcs.
    pub fn new(ch: &ContractionHierarchy, targets: &[VertexId]) -> Self {
        let n = ch.num_vertices();
        let mut in_set = vec![false; n];
        let mut stack: Vec<VertexId> = Vec::new();
        for &t in targets {
            // PANIC-OK: in_set is sized n; targets are graph vertices < n.
            if !in_set[t as usize] {
                in_set[t as usize] = true; // PANIC-OK: t < n as above.
                stack.push(t);
            }
        }
        let mut order: Vec<VertexId> = Vec::new();
        while let Some(v) = stack.pop() {
            order.push(v);
            for (u, _) in ch.upward(v) {
                // PANIC-OK: in_set is sized n; upward targets are vertices < n.
                if !in_set[u as usize] {
                    in_set[u as usize] = true; // PANIC-OK: u < n as above.
                    stack.push(u);
                }
            }
        }
        // Rank is a bijection onto 0..n, so this order is deterministic.
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(ch.rank(v)));
        RestrictedTargets {
            targets: targets.to_vec(),
            order,
        }
    }

    /// The target set, in construction order.
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Size of the restricted sweep domain.
    pub fn restricted_len(&self) -> usize {
        self.order.len()
    }
}

/// Reusable one-to-many sweep state over a built hierarchy.
///
/// All buffers are pre-sized to the vertex count at construction and
/// epoch-stamped, so repeated sweeps never clear or reallocate them.
pub struct OneToManySweep<'a> {
    ch: &'a ContractionHierarchy,
    /// All vertices in descending contraction rank — the full sweep order.
    order: Vec<VertexId>,
    dist: Vec<Weight>,
    epoch: Vec<u32>,
    cur: u32,
    heap: DaryHeap,
    counters: SweepCounters,
}

impl<'a> OneToManySweep<'a> {
    /// Creates sweep state for `ch`.
    pub fn new(ch: &'a ContractionHierarchy) -> Self {
        let n = ch.num_vertices();
        // rank is a bijection onto 0..n: invert it directly instead of
        // sorting (order[n - 1 - rank(v)] = v gives descending rank).
        let mut order = vec![0 as VertexId; n];
        for v in 0..n as VertexId {
            // PANIC-OK: rank is a bijection onto 0..n, so the index is < n.
            order[n - 1 - ch.rank(v) as usize] = v;
        }
        OneToManySweep {
            ch,
            order,
            dist: vec![INFINITY; n],
            epoch: vec![0; n],
            cur: 0,
            heap: DaryHeap::new(n),
            counters: SweepCounters::default(),
        }
    }

    /// Distances from `source` to each of `targets` via a full PHAST sweep,
    /// written into `out` (cleared first). Unreachable targets get
    /// [`INFINITY`].
    ///
    /// After the call, [`OneToManySweep::distance`] reads the distance to
    /// *any* vertex — the sweep computes a full SSSP.
    pub fn one_to_many(&mut self, source: VertexId, targets: &[VertexId], out: &mut Vec<Weight>) {
        self.upward_search(source);
        self.counters.sweeps += 1;
        // Move the order out so the loop can relax through &mut self.
        let order = std::mem::take(&mut self.order);
        for &v in &order {
            self.relax_downward(v);
        }
        self.counters.swept_vertices += order.len() as u64;
        self.order = order;
        self.gather(targets, out);
    }

    /// RPHAST: distances from `source` to `restricted.targets()` sweeping
    /// only the restricted domain, written into `out` (cleared first).
    pub fn one_to_many_restricted(
        &mut self,
        source: VertexId,
        restricted: &RestrictedTargets,
        out: &mut Vec<Weight>,
    ) {
        self.upward_search(source);
        self.counters.restricted_sweeps += 1;
        for &v in &restricted.order {
            self.relax_downward(v);
        }
        self.counters.swept_vertices += restricted.order.len() as u64;
        self.gather(&restricted.targets, out);
    }

    /// Distance of `v` as of the last sweep ([`INFINITY`] if unreached, or
    /// outside the restricted domain of a restricted sweep).
    #[inline]
    pub fn distance(&self, v: VertexId) -> Weight {
        // PANIC-OK: v is a vertex id < n from the hierarchy; arrays sized n.
        if self.epoch[v as usize] == self.cur {
            self.dist[v as usize] // PANIC-OK: same bound as the epoch read.
        } else {
            INFINITY
        }
    }

    /// Structural sweep counters accumulated over this instance's lifetime.
    pub fn counters(&self) -> SweepCounters {
        self.counters
    }

    /// Heap counters of the upward-search phase.
    pub fn heap_counters(&self) -> HeapCounters {
        self.heap.counters()
    }

    /// Phase 1: Dijkstra from `source` restricted to upward arcs.
    fn upward_search(&mut self, source: VertexId) {
        self.cur = self.cur.wrapping_add(1);
        if self.cur == 0 {
            // Extremely rare wrap: force-refresh every slot.
            self.epoch.iter_mut().for_each(|e| *e = u32::MAX);
            self.cur = 1;
        }
        self.heap.clear();
        self.write(source, 0);
        self.heap.insert_or_decrease(0, source);
        while let Some((d, v)) = self.heap.pop() {
            self.counters.upward_settled += 1;
            for (u, w) in self.ch.upward(v) {
                let nd = weight_add(d, w);
                if nd < self.label(u) {
                    self.write(u, nd);
                    self.heap.insert_or_decrease(nd, u);
                }
            }
        }
    }

    /// Phase 2 step: pull `v`'s label down through its upward arcs. The
    /// heads are strictly higher-ranked, so descending-rank processing has
    /// already finalized them.
    #[inline]
    fn relax_downward(&mut self, v: VertexId) {
        let mut best = self.label(v);
        for (u, w) in self.ch.upward(v) {
            let du = self.label(u);
            if du < INFINITY {
                let nd = weight_add(du, w);
                if nd < best {
                    best = nd;
                }
            }
        }
        if best < INFINITY {
            self.write(v, best);
        }
    }

    #[inline]
    fn label(&self, v: VertexId) -> Weight {
        // PANIC-OK: v is a vertex id < n from the hierarchy; arrays sized n.
        if self.epoch[v as usize] == self.cur {
            self.dist[v as usize] // PANIC-OK: same bound as the epoch read.
        } else {
            INFINITY
        }
    }

    #[inline]
    fn write(&mut self, v: VertexId, d: Weight) {
        // PANIC-OK: v is a vertex id < n from the hierarchy; arrays sized n.
        self.epoch[v as usize] = self.cur;
        self.dist[v as usize] = d; // PANIC-OK: same bound as above.
    }

    fn gather(&self, targets: &[VertexId], out: &mut Vec<Weight>) {
        out.clear();
        // ALLOC-OK: out is a caller-reused buffer; extend grows it to
        // targets.len() once, after which clear+extend never reallocates.
        out.extend(targets.iter().map(|&t| self.distance(t)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::{ChConfig, ContractionHierarchy};
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::{Dijkstra, Graph, GraphBuilder};

    fn network(n: usize, seed: u64) -> (Graph, ContractionHierarchy) {
        let g = road_network(&RoadNetworkConfig::new(n, seed));
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        (g, ch)
    }

    #[test]
    fn full_sweep_matches_dijkstra_sssp() {
        let (g, ch) = network(600, 19);
        let mut sweep = OneToManySweep::new(&ch);
        let mut dij = Dijkstra::new(g.num_vertices());
        let targets: Vec<VertexId> = (0..g.num_vertices() as VertexId).step_by(7).collect();
        let mut out = Vec::new();
        for s in [0u32, 13, 250, 599] {
            sweep.one_to_many(s, &targets, &mut out);
            dij.sssp(&g, s);
            let space = dij.space();
            for (i, &t) in targets.iter().enumerate() {
                assert_eq!(
                    out[i],
                    space.distance(t).unwrap_or(INFINITY),
                    "mismatch at ({s}, {t})"
                );
            }
        }
    }

    #[test]
    fn restricted_sweep_matches_full_on_targets() {
        let (g, ch) = network(500, 31);
        let mut sweep = OneToManySweep::new(&ch);
        let targets: Vec<VertexId> = vec![3, 77, 201, 499, 77];
        let restricted = RestrictedTargets::new(&ch, &targets);
        assert!(restricted.restricted_len() < g.num_vertices());
        let (mut full, mut fast) = (Vec::new(), Vec::new());
        for s in [5u32, 100, 444] {
            sweep.one_to_many(s, &targets, &mut full);
            sweep.one_to_many_restricted(s, &restricted, &mut fast);
            assert_eq!(full, fast, "restricted sweep diverged for source {s}");
        }
    }

    #[test]
    fn restricted_domain_is_upward_closed_and_ordered() {
        let (_, ch) = network(300, 7);
        let r = RestrictedTargets::new(&ch, &[1, 50, 299]);
        for w in r.order.windows(2) {
            assert!(ch.rank(w[0]) > ch.rank(w[1]), "order not descending");
        }
        let in_set: std::collections::BTreeSet<_> = r.order.iter().copied().collect();
        for &v in &r.order {
            for (u, _) in ch.upward(v) {
                assert!(in_set.contains(&u), "domain not upward-closed at {v}->{u}");
            }
        }
    }

    #[test]
    fn counters_account_for_sweep_work() {
        let (g, ch) = network(400, 3);
        let mut sweep = OneToManySweep::new(&ch);
        let mut out = Vec::new();
        sweep.one_to_many(0, &[1, 2], &mut out);
        let c = sweep.counters();
        assert_eq!(c.sweeps, 1);
        assert_eq!(c.swept_vertices, g.num_vertices() as u64);
        assert!(c.upward_settled >= 1);
        let restricted = RestrictedTargets::new(&ch, &[1, 2]);
        sweep.one_to_many_restricted(0, &restricted, &mut out);
        let c = sweep.counters();
        assert_eq!(c.restricted_sweeps, 1);
        assert!(c.total_settled() > 0);
        assert_eq!(sweep.heap_counters().stale_skipped, 0);
    }

    #[test]
    fn disconnected_targets_are_infinite() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 2, 4);
        b.add_edge(3, 4, 1);
        let g = b.build();
        let ch = ContractionHierarchy::build(&g, &ChConfig::default());
        let mut sweep = OneToManySweep::new(&ch);
        let mut out = Vec::new();
        sweep.one_to_many(0, &[2, 3, 4], &mut out);
        assert_eq!(out, vec![7, INFINITY, INFINITY]);
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    fn state_reuse_across_sweeps_is_clean() {
        let (_, ch) = network(200, 11);
        let mut sweep = OneToManySweep::new(&ch);
        let mut out = Vec::new();
        sweep.one_to_many(0, &[199], &mut out);
        let first = out[0];
        sweep.one_to_many(199, &[0], &mut out);
        assert_eq!(out[0], first, "undirected distance must be symmetric");
        // distance() reflects only the latest sweep's epoch.
        assert_eq!(sweep.distance(199), 0);
    }
}
