//! FS-FBS (Jiang, Fu & Wong [2]): Boolean kNN over 2-hop labels.
//!
//! FS-FBS keeps a forward 2-hop label per vertex and, for each hub, a
//! *backward label*: the distance-sorted list of vertices whose label
//! contains the hub. A BkNN query merges the backward labels of the query's
//! hubs lazily, popping candidate vertices in exact-distance order.
//!
//! Keyword handling is the aggregation weak spot the paper highlights (§8):
//!
//! * **Frequent keywords** — each backward entry carries a *bit-array hash*
//!   (here: a 64-bit signature of the keywords of the object at that
//!   vertex). Hash collisions create false positives, each costing a wasted
//!   verification.
//! * **Infrequent keywords** — no ordered access exists: FS-FBS computes
//!   label distances to *every* object in the inverted list, with no early
//!   termination.
//!
//! The 2-hop labels come from [`kspin_hl`] (see DESIGN.md §3 on the label
//! substitution); the crate adds the backward merge, signatures, and the
//! frequent/infrequent split.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use kspin_graph::{Graph, VertexId, Weight};
use kspin_hl::{BackwardLabels, HubLabels};
use kspin_text::{Corpus, ObjectId, TermId};

/// Configuration for the frequent/infrequent split.
#[derive(Debug, Clone)]
pub struct FsFbsConfig {
    /// Keywords with `|inv(t)|` above this are "frequent" and served by the
    /// signature-filtered backward scan; the rest take the
    /// scan-the-whole-inverted-list path. The paper notes this threshold
    /// must be tuned experimentally — a weakness in itself.
    pub frequency_threshold: usize,
}

impl Default for FsFbsConfig {
    fn default() -> Self {
        FsFbsConfig {
            frequency_threshold: 16,
        }
    }
}

/// Hashes a keyword into its signature bit.
#[inline]
fn term_bit(t: TermId) -> u64 {
    1u64 << ((t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 58)
}

/// The FS-FBS index.
pub struct FsFbs<'a> {
    corpus: &'a Corpus,
    labels: &'a HubLabels,
    backward: BackwardLabels,
    /// Per backward entry (arena-aligned with `backward`): the keyword
    /// signature of the object at that vertex (0 = no object).
    signatures: Vec<u64>,
    config: FsFbsConfig,
}

impl<'a> FsFbs<'a> {
    /// Builds the backward labels and per-entry signatures.
    pub fn build(
        graph: &Graph,
        corpus: &'a Corpus,
        labels: &'a HubLabels,
        config: FsFbsConfig,
    ) -> Self {
        let backward = labels.invert();
        let mut signatures = vec![0u64; backward.num_entries()];
        for h in 0..graph.num_vertices() as VertexId {
            let off = backward.entry_offset(h);
            let (vs, _) = backward.of(h);
            for (i, &v) in vs.iter().enumerate() {
                if let Some(o) = corpus.object_at(v) {
                    let mut sig = 0u64;
                    for p in corpus.doc(o) {
                        sig |= term_bit(p.term);
                    }
                    signatures[off + i] = sig;
                }
            }
        }
        FsFbs {
            corpus,
            labels,
            backward,
            signatures,
            config,
        }
    }

    /// Boolean kNN: exact results, sorted by ascending distance.
    pub fn bknn(
        &self,
        q: VertexId,
        k: usize,
        terms: &[TermId],
        conjunctive: bool,
    ) -> Vec<(ObjectId, Weight)> {
        let mut uniq = terms.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        if k == 0 || uniq.is_empty() {
            return Vec::new();
        }
        let all_infrequent = uniq
            .iter()
            .all(|&t| self.corpus.inv_len(t) <= self.config.frequency_threshold);
        if all_infrequent {
            self.bknn_infrequent(q, k, &uniq, conjunctive)
        } else {
            self.bknn_backward_scan(q, k, &uniq, conjunctive)
        }
    }

    /// Frequent path: lazy k-way merge over the query hubs' backward
    /// labels, with the signature filter in front of verification.
    fn bknn_backward_scan(
        &self,
        q: VertexId,
        k: usize,
        terms: &[TermId],
        conjunctive: bool,
    ) -> Vec<(ObjectId, Weight)> {
        let (q_hubs, q_dists) = self.labels.label(q);
        let q_sig: u64 = terms.iter().map(|&t| term_bit(t)).fold(0, |a, b| a | b);

        // Merge state: one cursor per query hub, keyed by dq(hub) + entry
        // distance. The first pop of each vertex carries its exact distance
        // (2-hop cover property).
        let mut merge: BinaryHeap<(Reverse<Weight>, u32)> = BinaryHeap::new();
        let mut cursor: Vec<u32> = vec![0; q_hubs.len()];
        for (i, (&h, &dq)) in q_hubs.iter().zip(q_dists).enumerate() {
            let (_, ds) = self.backward.of(h);
            if !ds.is_empty() {
                merge.push((Reverse(dq + ds[0]), i as u32));
            }
        }

        let mut seen: HashSet<VertexId> = HashSet::new();
        let mut out = Vec::with_capacity(k);
        while let Some((Reverse(d), i)) = merge.pop() {
            let i = i as usize;
            let h = q_hubs[i];
            let (vs, ds) = self.backward.of(h);
            let pos = cursor[i] as usize;
            let v = vs[pos];
            let sig = self.signatures[self.backward.entry_offset(h) + pos];
            cursor[i] += 1;
            if (pos + 1) < vs.len() {
                merge.push((Reverse(q_dists[i] + ds[pos + 1]), i as u32));
            }
            if seen.insert(v) {
                // Signature filter: conjunctive needs every query bit set
                // (collisions → false positives, verified below), while
                // disjunctive needs any.
                let pass = if conjunctive {
                    sig & q_sig == q_sig
                } else {
                    sig & q_sig != 0
                };
                if pass {
                    if let Some(o) = self.corpus.object_at(v) {
                        let ok = if conjunctive {
                            self.corpus.contains_all(o, terms)
                        } else {
                            self.corpus.contains_any(o, terms)
                        };
                        if ok {
                            // First pop of v ⇒ d is the exact distance.
                            out.push((o, d));
                            if out.len() == k {
                                break;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Infrequent path: no ordered access — compute label distances to the
    /// whole candidate list and sort (the §8 criticism: "it is not possible
    /// to terminate without evaluating the entire list").
    fn bknn_infrequent(
        &self,
        q: VertexId,
        k: usize,
        terms: &[TermId],
        conjunctive: bool,
    ) -> Vec<(ObjectId, Weight)> {
        let candidates: Vec<ObjectId> = if conjunctive {
            let driver = terms
                .iter()
                .copied()
                .min_by_key(|&t| self.corpus.inv_len(t))
                .expect("non-empty terms");
            self.corpus
                .inverted(driver)
                .iter()
                .map(|p| p.object)
                .filter(|&o| self.corpus.contains_all(o, terms))
                .collect()
        } else {
            let mut set: Vec<ObjectId> = terms
                .iter()
                .flat_map(|&t| self.corpus.inverted(t).iter().map(|p| p.object))
                .collect();
            set.sort_unstable();
            set.dedup();
            set
        };
        let mut scored: Vec<(ObjectId, Weight)> = candidates
            .into_iter()
            .map(|o| (o, self.labels.distance(q, self.corpus.vertex_of(o))))
            .collect();
        scored.sort_unstable_by_key(|&(o, d)| (d, o));
        scored.truncate(k);
        scored
    }

    /// Index size in bytes: backward labels + signatures (the forward
    /// labels are shared with the distance module and reported separately).
    pub fn size_bytes(&self) -> usize {
        self.backward.size_bytes() + self.signatures.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspin_ch::{ChConfig, ContractionHierarchy};
    use kspin_graph::generate::{road_network, RoadNetworkConfig};
    use kspin_graph::Dijkstra;
    use kspin_text::generate::{corpus as gen_corpus, CorpusConfig};

    struct Fixture {
        graph: Graph,
        corpus: Corpus,
        labels: HubLabels,
    }

    fn fixture(n: usize, seed: u64) -> Fixture {
        let graph = road_network(&RoadNetworkConfig::new(n, seed));
        let mut cc = CorpusConfig::new(graph.num_vertices(), seed ^ 3);
        cc.object_fraction = 0.08;
        let (corpus, _) = gen_corpus(&cc);
        let ch = ContractionHierarchy::build(&graph, &ChConfig::default());
        let labels = HubLabels::build(&ch);
        Fixture {
            graph,
            corpus,
            labels,
        }
    }

    fn oracle(
        f: &Fixture,
        q: VertexId,
        k: usize,
        terms: &[TermId],
        conjunctive: bool,
    ) -> Vec<Weight> {
        let mut dij = Dijkstra::new(f.graph.num_vertices());
        dij.sssp(&f.graph, q);
        let space = dij.space();
        let mut want: Vec<Weight> = (0..f.corpus.num_objects() as ObjectId)
            .filter(|&o| {
                if conjunctive {
                    f.corpus.contains_all(o, terms)
                } else {
                    f.corpus.contains_any(o, terms)
                }
            })
            .filter_map(|o| space.distance(f.corpus.vertex_of(o)))
            .collect();
        want.sort_unstable();
        want.truncate(k);
        want
    }

    #[test]
    fn frequent_path_matches_oracle() {
        let f = fixture(700, 301);
        let fs = FsFbs::build(&f.graph, &f.corpus, &f.labels, FsFbsConfig::default());
        // Terms 0 and 1 are the most frequent by construction.
        for q in [2u32, 345, 650] {
            for conj in [false, true] {
                let got = fs.bknn(q, 5, &[0, 1], conj);
                let gd: Vec<Weight> = got.iter().map(|&(_, d)| d).collect();
                assert_eq!(gd, oracle(&f, q, 5, &[0, 1], conj), "q={q} conj={conj}");
            }
        }
    }

    #[test]
    fn infrequent_path_matches_oracle() {
        let f = fixture(700, 303);
        let fs = FsFbs::build(&f.graph, &f.corpus, &f.labels, FsFbsConfig::default());
        let rare = (0..f.corpus.num_terms() as TermId)
            .find(|&t| (1..=3).contains(&f.corpus.inv_len(t)))
            .expect("no rare term");
        for q in [7u32, 123] {
            let got = fs.bknn(q, 5, &[rare], false);
            let gd: Vec<Weight> = got.iter().map(|&(_, d)| d).collect();
            assert_eq!(gd, oracle(&f, q, 5, &[rare], false));
        }
    }

    #[test]
    fn mixed_frequency_terms_use_backward_scan_correctly() {
        let f = fixture(700, 305);
        let fs = FsFbs::build(&f.graph, &f.corpus, &f.labels, FsFbsConfig::default());
        let rare = (0..f.corpus.num_terms() as TermId)
            .find(|&t| (1..=3).contains(&f.corpus.inv_len(t)))
            .expect("no rare term");
        for conj in [false, true] {
            let got = fs.bknn(50, 5, &[0, rare], conj);
            let gd: Vec<Weight> = got.iter().map(|&(_, d)| d).collect();
            assert_eq!(gd, oracle(&f, 50, 5, &[0, rare], conj), "conj={conj}");
        }
    }

    #[test]
    fn signatures_cover_object_keywords() {
        let f = fixture(400, 307);
        let fs = FsFbs::build(&f.graph, &f.corpus, &f.labels, FsFbsConfig::default());
        // Every object's own keyword bits are set in every backward entry
        // pointing at its vertex — no false negatives.
        for o in (0..f.corpus.num_objects() as ObjectId).step_by(7) {
            let v = f.corpus.vertex_of(o);
            let (hubs, _) = f.labels.label(v);
            for &h in hubs {
                let (vs, _) = fs.backward.of(h);
                let pos = vs.iter().position(|&x| x == v).expect("entry exists");
                let sig = fs.signatures[fs.backward.entry_offset(h) + pos];
                for p in f.corpus.doc(o) {
                    assert_ne!(sig & term_bit(p.term), 0, "missing bit for term {}", p.term);
                }
            }
        }
    }

    #[test]
    fn zero_k_and_empty_terms() {
        let f = fixture(300, 309);
        let fs = FsFbs::build(&f.graph, &f.corpus, &f.labels, FsFbsConfig::default());
        assert!(fs.bknn(0, 0, &[0], false).is_empty());
        assert!(fs.bknn(0, 5, &[], false).is_empty());
    }
}
