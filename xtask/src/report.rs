//! Shared report emission and baseline-ratchet plumbing for the xtask
//! analysis tools.
//!
//! `cargo xtask lint`, `cargo xtask panics`, and `cargo xtask allocs` all
//! end the same way: load `lint-baseline.json`, keep only the entries of
//! the rules this run actually evaluated (the rest pass through
//! untouched), either rewrite the baseline or apply the ratchet, emit a
//! human or SARIF-lite JSON report, and exit non-zero on new findings or
//! (under `--deny-stale`) stale entries. [`finish`] is that tail, written
//! once; [`render_json`] is the shared report shape.

use std::fs;
use std::process::ExitCode;

use crate::baseline::{Baseline, Ratchet};
use crate::json::Json;
use crate::lint::workspace_root;
use crate::rules::{Finding, Summary};

/// File name of the committed ratchet, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Report format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Format {
    Human,
    Json,
}

/// Parses a `--format` value.
pub(crate) fn parse_format(value: &str) -> Result<Format, String> {
    match value {
        "human" => Ok(Format::Human),
        "json" => Ok(Format::Json),
        other => Err(format!("unknown format `{other}` — use human or json")),
    }
}

/// The shared tail of every analysis run. `active` names the rule keys
/// this run owns: baseline entries of other rules are neither applied nor
/// reported stale, and survive `--update-baseline` untouched. `extras`
/// appends tool-specific top-level keys to the JSON report (e.g. the
/// allocs certifier's H1-dedup counter).
pub(crate) fn finish(
    tool: &str,
    active: &[&str],
    summary: &Summary,
    update_baseline: bool,
    deny_stale: bool,
    format: Format,
    extras: Vec<(String, Json)>,
    print_human: impl FnOnce(&Ratchet),
) -> ExitCode {
    let baseline_path = workspace_root().join(BASELINE_FILE);
    let mut baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let inactive: Vec<_> = baseline
        .entries
        .iter()
        .filter(|e| !active.contains(&e.rule.as_str()))
        .cloned()
        .collect();
    baseline
        .entries
        .retain(|e| active.contains(&e.rule.as_str()));

    if update_baseline {
        let mut updated = baseline.updated(&summary.findings);
        updated.entries.extend(inactive);
        if let Err(e) = fs::write(&baseline_path, updated.render()) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "{} rewritten: {} entr{}",
            BASELINE_FILE,
            updated.entries.len(),
            if updated.entries.len() == 1 {
                "y"
            } else {
                "ies"
            }
        );
        return ExitCode::SUCCESS;
    }

    let ratchet = baseline.apply(&summary.findings);
    match format {
        Format::Human => print_human(&ratchet),
        Format::Json => print!("{}", render_json(tool, summary, &ratchet, extras).render()),
    }
    if ratchet.new.is_empty() && (ratchet.stale.is_empty() || !deny_stale) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Prints the stale-entry epilogue shared by the human reports.
pub(crate) fn print_stale(ratchet: &Ratchet) {
    if !ratchet.stale.is_empty() {
        println!();
        for e in &ratchet.stale {
            println!(
                "stale baseline entry: {}:{} [{}] no longer fires — remove it from {}",
                e.file, e.line, e.rule, BASELINE_FILE
            );
        }
    }
}

/// SARIF-lite report: rule id, message, file, line, col, snippet per
/// finding, plus the ratchet's verdict. All three tools emit the same
/// shape under their own tool id; `extras` is appended verbatim.
pub(crate) fn render_json(
    tool: &str,
    summary: &Summary,
    ratchet: &Ratchet,
    extras: Vec<(String, Json)>,
) -> Json {
    let finding = |f: &Finding, baselined: bool| {
        Json::Obj(vec![
            ("rule".into(), Json::Str(f.rule.key().to_string())),
            ("message".into(), Json::Str(f.message.clone())),
            ("file".into(), Json::Str(f.file.clone())),
            ("line".into(), Json::Num(to_f64(f.line))),
            ("col".into(), Json::Num(to_f64(f.col))),
            ("snippet".into(), Json::Str(f.snippet.clone())),
            ("baselined".into(), Json::Bool(baselined)),
        ])
    };
    let mut findings: Vec<Json> = ratchet.new.iter().map(|f| finding(f, false)).collect();
    findings.extend(ratchet.baselined.iter().map(|f| finding(f, true)));
    let stale = ratchet
        .stale
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("rule".into(), Json::Str(e.rule.clone())),
                ("file".into(), Json::Str(e.file.clone())),
                ("line".into(), Json::Num(to_f64(e.line))),
                ("reason".into(), Json::Str(e.reason.clone())),
            ])
        })
        .collect();
    let justified = summary
        .justified
        .iter()
        .map(|(&k, &n)| (k.to_string(), Json::Num(to_f64(n))))
        .collect();
    let mut obj = vec![
        ("tool".into(), Json::Str(tool.to_string())),
        ("schema".into(), Json::Str("sarif-lite/2".into())),
        (
            "files_scanned".into(),
            Json::Num(to_f64(summary.files_scanned)),
        ),
        ("new_count".into(), Json::Num(to_f64(ratchet.new.len()))),
        (
            "baselined_count".into(),
            Json::Num(to_f64(ratchet.baselined.len())),
        ),
        ("findings".into(), Json::Arr(findings)),
        ("stale_baseline".into(), Json::Arr(stale)),
        ("justified".into(), Json::Obj(justified)),
    ];
    obj.extend(extras);
    Json::Obj(obj)
}

#[allow(clippy::cast_precision_loss)]
pub(crate) fn to_f64(n: usize) -> f64 {
    n as f64
}
