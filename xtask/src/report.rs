//! Shared report emission, baseline-ratchet plumbing, and the generic
//! reachability-certifier driver for the xtask analysis tools.
//!
//! `cargo xtask lint`, `cargo xtask panics`, `cargo xtask allocs`, and
//! `cargo xtask determinism` all end the same way: load
//! `lint-baseline.json`, keep only the entries of the rules this run
//! actually evaluated (the rest pass through untouched), either rewrite
//! the baseline or apply the ratchet, emit a human or SARIF-lite JSON
//! report, and exit non-zero on new findings or (under `--deny-stale`)
//! stale entries. [`finish`] is that tail, written once; [`render_json`]
//! is the shared report shape.
//!
//! The three call-graph certifiers additionally share their whole
//! pipeline — entry-spec resolution with hard errors on rot, the
//! warm-up-fenced reachability sweep, per-site justification and
//! dedup, finding assembly with shortest call chains, CLI parsing, and
//! the human report — through [`Certifier`]/[`Hooks`]/[`run_certifier`].
//! A new certifier supplies only its classifier (`fn(&SourceFile,
//! &CallGraph, idx) -> Vec<Site>`), its justification predicate, and a
//! [`Certifier`] description block.

use std::fs;
use std::process::ExitCode;

use crate::baseline::{Baseline, Ratchet};
use crate::callgraph::{CallGraph, Reach};
use crate::json::Json;
use crate::lint::{walk_rs, workspace_root};
use crate::rules::{Finding, Rule, Summary};
use crate::scope::SourceFile;

/// File name of the committed ratchet, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Report format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Format {
    Human,
    Json,
}

/// Parses a `--format` value.
pub(crate) fn parse_format(value: &str) -> Result<Format, String> {
    match value {
        "human" => Ok(Format::Human),
        "json" => Ok(Format::Json),
        other => Err(format!("unknown format `{other}` — use human or json")),
    }
}

/// The shared tail of every analysis run. `active` names the rule keys
/// this run owns: baseline entries of other rules are neither applied nor
/// reported stale, and survive `--update-baseline` untouched. `extras`
/// appends tool-specific top-level keys to the JSON report (e.g. the
/// allocs certifier's H1-dedup counter).
pub(crate) fn finish(
    tool: &str,
    active: &[&str],
    summary: &Summary,
    update_baseline: bool,
    deny_stale: bool,
    format: Format,
    extras: Vec<(String, Json)>,
    print_human: impl FnOnce(&Ratchet),
) -> ExitCode {
    let baseline_path = workspace_root().join(BASELINE_FILE);
    let mut baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let inactive: Vec<_> = baseline
        .entries
        .iter()
        .filter(|e| !active.contains(&e.rule.as_str()))
        .cloned()
        .collect();
    baseline
        .entries
        .retain(|e| active.contains(&e.rule.as_str()));

    if update_baseline {
        let mut updated = baseline.updated(&summary.findings);
        updated.entries.extend(inactive);
        if let Err(e) = fs::write(&baseline_path, updated.render()) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "{} rewritten: {} entr{}",
            BASELINE_FILE,
            updated.entries.len(),
            if updated.entries.len() == 1 {
                "y"
            } else {
                "ies"
            }
        );
        return ExitCode::SUCCESS;
    }

    let ratchet = baseline.apply(&summary.findings);
    match format {
        Format::Human => print_human(&ratchet),
        Format::Json => print!("{}", render_json(tool, summary, &ratchet, extras).render()),
    }
    if ratchet.new.is_empty() && (ratchet.stale.is_empty() || !deny_stale) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Prints the stale-entry epilogue shared by the human reports.
pub(crate) fn print_stale(ratchet: &Ratchet) {
    if !ratchet.stale.is_empty() {
        println!();
        for e in &ratchet.stale {
            println!(
                "stale baseline entry: {}:{} [{}] no longer fires — remove it from {}",
                e.file, e.line, e.rule, BASELINE_FILE
            );
        }
    }
}

/// SARIF-lite report: rule id, message, file, line, col, snippet per
/// finding, plus the ratchet's verdict. All three tools emit the same
/// shape under their own tool id; `extras` is appended verbatim.
pub(crate) fn render_json(
    tool: &str,
    summary: &Summary,
    ratchet: &Ratchet,
    extras: Vec<(String, Json)>,
) -> Json {
    let finding = |f: &Finding, baselined: bool| {
        Json::Obj(vec![
            ("rule".into(), Json::Str(f.rule.key().to_string())),
            ("message".into(), Json::Str(f.message.clone())),
            ("file".into(), Json::Str(f.file.clone())),
            ("line".into(), Json::Num(to_f64(f.line))),
            ("col".into(), Json::Num(to_f64(f.col))),
            ("snippet".into(), Json::Str(f.snippet.clone())),
            ("baselined".into(), Json::Bool(baselined)),
        ])
    };
    let mut findings: Vec<Json> = ratchet.new.iter().map(|f| finding(f, false)).collect();
    findings.extend(ratchet.baselined.iter().map(|f| finding(f, true)));
    let stale = ratchet
        .stale
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("rule".into(), Json::Str(e.rule.clone())),
                ("file".into(), Json::Str(e.file.clone())),
                ("line".into(), Json::Num(to_f64(e.line))),
                ("reason".into(), Json::Str(e.reason.clone())),
            ])
        })
        .collect();
    let justified = summary
        .justified
        .iter()
        .map(|(&k, &n)| (k.to_string(), Json::Num(to_f64(n))))
        .collect();
    let mut obj = vec![
        ("tool".into(), Json::Str(tool.to_string())),
        ("schema".into(), Json::Str("sarif-lite/2".into())),
        (
            "files_scanned".into(),
            Json::Num(to_f64(summary.files_scanned)),
        ),
        ("new_count".into(), Json::Num(to_f64(ratchet.new.len()))),
        (
            "baselined_count".into(),
            Json::Num(to_f64(ratchet.baselined.len())),
        ),
        ("findings".into(), Json::Arr(findings)),
        ("stale_baseline".into(), Json::Arr(stale)),
        ("justified".into(), Json::Obj(justified)),
    ];
    obj.extend(extras);
    Json::Obj(obj)
}

#[allow(clippy::cast_precision_loss)]
pub(crate) fn to_f64(n: usize) -> f64 {
    n as f64
}

// ---------------------------------------------------------------------------
// The shared call-graph certifier driver.
// ---------------------------------------------------------------------------

/// Loads the `.rs` files under the given workspace-relative dirs, sorted
/// by path. The dir tables themselves live in [`crate::entrypoints`] —
/// the single registration point for every certifier's perimeter.
pub(crate) fn load_files(dirs: &[&str]) -> Vec<SourceFile> {
    let root = workspace_root();
    let mut paths = Vec::new();
    for dir in dirs {
        walk_rs(&root.join(dir), &mut paths);
    }
    paths.sort();
    paths
        .iter()
        .filter_map(|p| SourceFile::load(&root, p))
        .collect()
}

/// Loads the certified perimeter
/// ([`crate::entrypoints::CERT_DIRS`]) from disk. Shared by `cargo xtask
/// panics`, `allocs`, and `determinism`, which certify the same five
/// hot-path crates.
pub(crate) fn load_perimeter() -> Vec<SourceFile> {
    load_files(&crate::entrypoints::CERT_DIRS)
}

/// One classified site inside an item body, independent of which
/// certifier found it.
#[derive(Debug)]
pub struct Site {
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Human description of the site's class.
    pub what: String,
}

/// Span-collector signature for [`Hooks::dedup`]: the `(line, col)` spans
/// a token-level rule already polices in a file.
pub type DedupFn = fn(&SourceFile) -> Vec<(usize, usize)>;

/// The tool-specific parts of a certifier, all plain function pointers so
/// a [`Certifier`] description block stays a `const`-friendly value.
#[derive(Clone, Copy)]
pub struct Hooks {
    /// Classifies the rule's sites in the certified body of `items[idx]`.
    pub classify: fn(&SourceFile, &CallGraph, usize) -> Vec<Site>,
    /// Whether an inline marker comment justifies a site on this line.
    pub justified: fn(&SourceFile, usize) -> bool,
    /// Spans a token-level rule already polices in this file —
    /// deduplicated out of the report instead of double-counted.
    pub dedup: Option<DedupFn>,
}

/// Everything that distinguishes one call-graph certifier from the next,
/// beyond its classifier.
pub struct Certifier {
    /// JSON tool id, e.g. `cargo-xtask-panics`.
    pub tool: &'static str,
    /// CLI task name, e.g. `panics` (used in the human report header).
    pub name: &'static str,
    /// CLI usage text.
    pub usage: &'static str,
    /// The baseline rule this certifier owns.
    pub rule: Rule,
    /// Default entry-point specs when no `--entry` is given.
    pub default_entries: &'static [&'static str],
    /// Warm-up boundary specs the sweep never crosses; empty = sweep the
    /// whole graph from the entries.
    pub warm_up: &'static [&'static str],
    /// Inline justification marker, e.g. `PANIC-OK`.
    pub marker: &'static str,
    /// Adjective for the reachable-fn count line, e.g. `steady-reachable`.
    pub reach_adjective: &'static str,
    /// Noun phrase for the failure tally, e.g. `panic-reachable`.
    pub noun: &'static str,
    /// The classifier and its helpers.
    pub hooks: Hooks,
}

/// The full analysis result of one certifier run, kept for reporting and
/// the self-tests.
pub struct Certificate {
    pub graph: CallGraph,
    pub reach: Reach,
    /// Resolved entry items per spec.
    pub entries: Vec<(String, Vec<usize>)>,
    /// Resolved warm-up boundary items per spec.
    pub warm_up: Vec<(String, Vec<usize>)>,
    /// Unjustified findings under the certifier's rule.
    pub summary: Summary,
    /// Sites dropped because a token-level rule already reports the same
    /// `(file, line, col)`.
    pub deduplicated: usize,
}

/// Runs a certifier's analysis over `files` from the given steady-state
/// entry specs, never crossing the warm-up boundary specs. Both spec
/// lists must resolve in full: a renamed entry silently narrows the
/// certificate, a renamed warm-up fence silently *widens* it — each is a
/// hard error.
pub fn certify(
    files: Vec<SourceFile>,
    entry_specs: &[String],
    warm_up_specs: &[String],
    rule: Rule,
    hooks: &Hooks,
) -> Result<Certificate, String> {
    let graph = CallGraph::build(&files);
    let resolve_all = |specs: &[String], kind: &str| -> Result<Vec<(String, Vec<usize>)>, String> {
        let mut resolved = Vec::new();
        let mut missing = Vec::new();
        for spec in specs {
            let items = graph.resolve_entry(spec);
            if items.is_empty() {
                missing.push(spec.clone());
            }
            resolved.push((spec.clone(), items));
        }
        if missing.is_empty() {
            Ok(resolved)
        } else {
            Err(format!(
                "{kind} spec(s) resolved to no certified fn — renamed or removed? {}",
                missing.join(", ")
            ))
        }
    };
    let entries = resolve_all(entry_specs, "entry point")?;
    let warm_up = resolve_all(warm_up_specs, "warm-up boundary")?;
    let roots: Vec<usize> = entries
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .collect();
    let avoid: Vec<usize> = warm_up
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .collect();
    let reach = if avoid.is_empty() {
        graph.reach(&roots)
    } else {
        graph.reach_avoiding(&roots, &avoid)
    };

    let mut summary = Summary {
        files_scanned: files.len(),
        ..Summary::default()
    };
    let mut deduplicated = 0usize;
    for idx in 0..graph.items.len() {
        if !graph.items[idx].certified() || !reach.reached(idx) {
            continue;
        }
        let file = &files[graph.items[idx].file_idx];
        let policed: Vec<(usize, usize)> = hooks.dedup.map(|d| d(file)).unwrap_or_default();
        for site in (hooks.classify)(file, &graph, idx) {
            if policed.contains(&(site.line, site.col)) {
                deduplicated += 1;
                continue;
            }
            if (hooks.justified)(file, site.line) {
                *summary.justified.entry(rule.key()).or_insert(0) += 1;
                continue;
            }
            let chain: Vec<String> = reach
                .chain(idx)
                .into_iter()
                .map(|i| graph.items[i].qualified())
                .collect();
            summary.findings.push(Finding {
                rule,
                file: file.rel.clone(),
                line: site.line,
                col: site.col,
                message: format!("{}; via {}", site.what, chain.join(" → ")),
                snippet: file.snippet(site.line).to_string(),
            });
        }
    }
    summary.findings.sort_by(|a, b| {
        (&a.file, a.line, a.col)
            .cmp(&(&b.file, b.line, b.col))
            .then_with(|| a.message.cmp(&b.message))
    });
    Ok(Certificate {
        graph,
        reach,
        entries,
        warm_up,
        summary,
        deduplicated,
    })
}

#[derive(Debug)]
struct CertifierOptions {
    format: Format,
    entries: Vec<String>,
    list_entries: bool,
    update_baseline: bool,
    deny_stale: bool,
    help: bool,
}

/// Parses the CLI surface shared by every certifier:
/// `--format/--entry/--list-entries/--update-baseline/--deny-stale`.
fn parse_certifier_args(
    args: &[String],
    default_entries: &[&str],
) -> Result<CertifierOptions, String> {
    let mut opts = CertifierOptions {
        format: Format::Human,
        entries: Vec::new(),
        list_entries: false,
        update_baseline: false,
        deny_stale: false,
        help: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let value = it.next().ok_or("--format needs a value: human or json")?;
                opts.format = parse_format(value)?;
            }
            "--entry" => {
                let value = it.next().ok_or("--entry needs a Type::method value")?;
                opts.entries.push(value.clone());
            }
            "--list-entries" => opts.list_entries = true,
            "--update-baseline" => opts.update_baseline = true,
            "--deny-stale" => opts.deny_stale = true,
            "-h" | "--help" => opts.help = true,
            other => {
                if let Some(value) = other.strip_prefix("--format=") {
                    opts.format = parse_format(value)?;
                } else if let Some(value) = other.strip_prefix("--entry=") {
                    opts.entries.push(value.to_string());
                } else {
                    return Err(format!("unknown argument `{other}`"));
                }
            }
        }
    }
    if opts.entries.is_empty() {
        opts.entries
            .extend(default_entries.iter().map(|s| s.to_string()));
    }
    Ok(opts)
}

/// The shared CLI entry of every call-graph certifier: parse, resolve,
/// sweep, classify, ratchet, report. The per-tool modules are
/// classifier-only.
pub fn run_certifier(spec: &Certifier, args: &[String]) -> ExitCode {
    let opts = match parse_certifier_args(args, spec.default_entries) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", spec.usage);
            return ExitCode::FAILURE;
        }
    };
    if opts.help {
        println!("{}", spec.usage);
        return ExitCode::SUCCESS;
    }
    if opts.list_entries {
        for e in spec.default_entries {
            println!("{e}");
        }
        for w in spec.warm_up {
            println!("warm-up {w}");
        }
        return ExitCode::SUCCESS;
    }

    let warm: Vec<String> = spec.warm_up.iter().map(|s| s.to_string()).collect();
    let cert = match certify(
        load_perimeter(),
        &opts.entries,
        &warm,
        spec.rule,
        &spec.hooks,
    ) {
        Ok(cert) => cert,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut extras = Vec::new();
    if spec.hooks.dedup.is_some() {
        extras.push((
            "deduplicated_with_h1".to_string(),
            Json::Num(to_f64(cert.deduplicated)),
        ));
    }
    finish(
        spec.tool,
        &[spec.rule.key()],
        &cert.summary,
        opts.update_baseline,
        opts.deny_stale,
        opts.format,
        extras,
        |ratchet| print_certificate(spec, &cert, ratchet),
    )
}

/// The human report shared by the certifiers: perimeter and reachability
/// sizes, resolved entries, the warm-up fence, and the ratchet verdict.
fn print_certificate(spec: &Certifier, cert: &Certificate, ratchet: &Ratchet) {
    let certified = cert.graph.items.iter().filter(|i| i.certified()).count();
    let reachable = (0..cert.graph.items.len())
        .filter(|&i| cert.graph.items[i].certified() && cert.reach.reached(i))
        .count();
    println!(
        "cargo xtask {} — {} files, {} certified fns, {} {} from {} entry points",
        spec.name,
        cert.summary.files_scanned,
        certified,
        reachable,
        spec.reach_adjective,
        cert.entries.len()
    );
    for (entry_spec, resolved) in &cert.entries {
        let defs: Vec<String> = resolved
            .iter()
            .map(|&i| {
                let item = &cert.graph.items[i];
                format!("{}:{}", item.file, item.line)
            })
            .collect();
        println!("  entry {:<36} → {}", entry_spec, defs.join(", "));
    }
    if !cert.warm_up.is_empty() {
        let fenced: usize = cert.warm_up.iter().map(|(_, v)| v.len()).sum();
        println!(
            "  warm-up boundary: {} spec(s) fencing {} fn(s) — excluded from the steady sweep",
            cert.warm_up.len(),
            fenced
        );
    }
    let justified = cert
        .summary
        .justified
        .get(spec.rule.key())
        .copied()
        .unwrap_or(0);
    let dedup_note = if spec.hooks.dedup.is_some() {
        format!(", {} deduplicated with H1", cert.deduplicated)
    } else {
        String::new()
    };
    println!(
        "  {} new finding(s), {} baselined, {} justified via {}{}",
        ratchet.new.len(),
        ratchet.baselined.len(),
        justified,
        spec.marker,
        dedup_note
    );
    if !ratchet.new.is_empty() {
        println!();
        for f in &ratchet.new {
            println!("{f}");
            if !f.snippet.is_empty() {
                println!("    {}", f.snippet);
            }
        }
        println!("\n{} unjustified {} site(s)", ratchet.new.len(), spec.noun);
    }
    print_stale(ratchet);
}
