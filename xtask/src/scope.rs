//! Brace-tracked scope analysis over the token stream of [`crate::lex`].
//!
//! For every token the analyzer knows:
//!
//! * the innermost enclosing named item (`fn`/`impl`/`mod`),
//! * whether the token sits inside `#[cfg(test)]` / `#[test]` code,
//! * the **loop nesting depth** — how many `for`/`while`/`loop` bodies
//!   enclose it within the current function.
//!
//! The model is deliberately approximate (no full parse): a `{` is
//! classified by the head tokens seen since the last statement boundary,
//! with precedence `fn > impl > mod > item > loop > block` so that
//! `impl Trait for Type {` never counts as a loop and a `for<'a>` bound in
//! a signature never counts either. Closures and plain blocks inherit the
//! enclosing loop depth — an allocation inside a closure that is invoked
//! per-iteration is still a per-iteration allocation.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use crate::lex::{lex, Token, TokenKind};

/// How a brace scope was classified from its head tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// A function (or method, or closure with an explicit `fn`-headed item).
    Fn,
    /// An `impl` block.
    Impl,
    /// A `mod` block.
    Mod,
    /// `struct`/`enum`/`union`/`trait` bodies.
    Item,
    /// A `for`/`while`/`loop` body.
    Loop,
    /// Anything else: plain blocks, `if`/`match` bodies, closures,
    /// struct literals.
    Block,
}

/// Scope facts for one token.
#[derive(Debug, Clone, Default)]
pub struct TokenScope {
    /// Inside `#[cfg(test)]` or `#[test]` code.
    pub in_test: bool,
    /// Number of enclosing loop bodies within the current function.
    pub loop_depth: usize,
    /// Name of the innermost enclosing `fn`, if any.
    pub fn_name: Option<String>,
    /// Name of the innermost enclosing named item (fn/mod/struct/…).
    pub item_name: Option<String>,
}

#[derive(Debug, Clone)]
struct Scope {
    in_test: bool,
    loop_depth: usize,
    fn_name: Option<String>,
    item_name: Option<String>,
    /// `(`/`[` nesting of the *enclosing* scope at push time, restored on
    /// pop so closure bodies inside call arguments track statements again.
    saved_group_depth: usize,
    /// For a brace opened mid-expression (inside `(`/`[`): the suspended
    /// head state of the enclosing statement, restored on pop so a closure
    /// in `for x in xs.map(|v| { … }) {` does not erase the `for` head.
    saved_head: Option<Head>,
}

/// Head-token state gathered since the last statement boundary; decides
/// what the next `{` opens.
#[derive(Debug, Default, Clone)]
struct Head {
    fn_name: Option<String>,
    item_name: Option<String>,
    saw_fn: bool,
    saw_impl: bool,
    saw_mod: bool,
    saw_item: bool,
    saw_loop: bool,
    test_attr: bool,
}

impl Head {
    fn clear(&mut self) {
        *self = Head::default();
    }
}

/// Computes per-token scope facts. `scopes[i]` describes `tokens[i]`.
pub fn analyze(tokens: &[Token]) -> Vec<TokenScope> {
    let mut scopes: Vec<TokenScope> = Vec::with_capacity(tokens.len());
    let mut stack: Vec<Scope> = vec![Scope {
        in_test: false,
        loop_depth: 0,
        fn_name: None,
        item_name: None,
        saved_group_depth: 0,
        saved_head: None,
    }];
    let mut head = Head::default();
    let mut group_depth = 0usize;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() {
            scopes.push(current(&stack));
            i += 1;
            continue;
        }
        // Attribute groups (`#[...]` / `#![...]`) are consumed wholesale so
        // their brackets never perturb the delimiter bookkeeping.
        if t.is_punct("#") && group_depth == 0 {
            let (end, is_test) = scan_attribute(tokens, i);
            if let Some(end) = end {
                head.test_attr |= is_test;
                for _ in i..=end {
                    scopes.push(current(&stack));
                }
                i = end + 1;
                continue;
            }
        }
        match t.kind {
            TokenKind::Ident if group_depth == 0 => {
                match t.text.as_str() {
                    "fn" => {
                        head.saw_fn = true;
                        head.fn_name = next_ident(tokens, i);
                        head.item_name.clone_from(&head.fn_name);
                    }
                    "impl" => head.saw_impl = true,
                    "mod" => {
                        head.saw_mod = true;
                        head.item_name = next_ident(tokens, i);
                    }
                    "struct" | "enum" | "trait" | "union" => {
                        head.saw_item = true;
                        head.item_name = next_ident(tokens, i);
                    }
                    "for" | "while" | "loop" => head.saw_loop = true,
                    _ => {}
                }
                scopes.push(current(&stack));
            }
            TokenKind::Punct => match t.text.as_str() {
                "(" | "[" => {
                    scopes.push(current(&stack));
                    group_depth += 1;
                }
                ")" | "]" => {
                    group_depth = group_depth.saturating_sub(1);
                    scopes.push(current(&stack));
                }
                ";" if group_depth == 0 => {
                    scopes.push(current(&stack));
                    head.clear();
                }
                "{" => {
                    scopes.push(current(&stack));
                    let mut scope = open_scope(&stack, &head, group_depth);
                    if group_depth > 0 {
                        scope.saved_head = Some(std::mem::take(&mut head));
                    }
                    stack.push(scope);
                    group_depth = 0;
                    head.clear();
                }
                "}" => {
                    if stack.len() > 1 {
                        let closed = stack.pop().expect("stack.len() > 1");
                        group_depth = closed.saved_group_depth;
                        head = closed.saved_head.unwrap_or_default();
                    } else {
                        head.clear();
                    }
                    scopes.push(current(&stack));
                }
                _ => scopes.push(current(&stack)),
            },
            _ => scopes.push(current(&stack)),
        }
        i += 1;
    }
    scopes
}

fn current(stack: &[Scope]) -> TokenScope {
    let top = stack.last().expect("scope stack never empties");
    TokenScope {
        in_test: top.in_test,
        loop_depth: top.loop_depth,
        fn_name: top.fn_name.clone(),
        item_name: top.item_name.clone(),
    }
}

/// Classifies the scope a `{` opens, by head precedence.
fn open_scope(stack: &[Scope], head: &Head, group_depth: usize) -> Scope {
    let parent = stack.last().expect("scope stack never empties");
    let kind = if head.saw_fn {
        ScopeKind::Fn
    } else if head.saw_impl {
        ScopeKind::Impl
    } else if head.saw_mod {
        ScopeKind::Mod
    } else if head.saw_item {
        ScopeKind::Item
    } else if head.saw_loop && group_depth == 0 {
        ScopeKind::Loop
    } else {
        ScopeKind::Block
    };
    Scope {
        in_test: parent.in_test || head.test_attr,
        loop_depth: match kind {
            ScopeKind::Fn => 0,
            ScopeKind::Loop => parent.loop_depth + 1,
            _ => parent.loop_depth,
        },
        fn_name: if kind == ScopeKind::Fn {
            head.fn_name.clone()
        } else {
            parent.fn_name.clone()
        },
        item_name: if head.item_name.is_some() {
            head.item_name.clone()
        } else {
            parent.item_name.clone()
        },
        saved_group_depth: group_depth,
        saved_head: None,
    }
}

/// The first identifier after position `i`, skipping comments (the `fn` /
/// `mod` / `struct` name).
fn next_ident(tokens: &[Token], i: usize) -> Option<String> {
    tokens[i + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
}

/// Scans an attribute starting at the `#` at `i`. Returns the index of the
/// closing `]` (if this really is an attribute) and whether the attribute
/// marks test-only code: `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`
/// — but **not** `#[cfg(not(test))]`.
fn scan_attribute(tokens: &[Token], i: usize) -> (Option<usize>, bool) {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct("!")) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("[")) {
        return (None, false);
    }
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    for (k, t) in tokens.iter().enumerate().skip(j) {
        match t.kind {
            TokenKind::Punct if t.text == "[" => depth += 1,
            TokenKind::Punct if t.text == "]" => {
                depth -= 1;
                if depth == 0 {
                    let has = |s: &str| idents.contains(&s);
                    let is_test = has("test") && (idents.len() == 1 || has("cfg")) && !has("not");
                    return (Some(k), is_test);
                }
            }
            TokenKind::Ident => idents.push(&t.text),
            _ => {}
        }
    }
    (None, false)
}

// ---------------------------------------------------------------------------
// SourceFile: tokens + scopes + the line-level comment model that backs
// `lint:allow` justifications and report snippets.
// ---------------------------------------------------------------------------

/// A parsed source file ready for rule scans.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// The full token stream (comments included).
    pub tokens: Vec<Token>,
    /// `scopes[i]` describes `tokens[i]`.
    pub scopes: Vec<TokenScope>,
    /// Indices into `tokens` of non-comment tokens, in order — what the
    /// rule passes iterate.
    pub code: Vec<usize>,
    /// Raw source lines (for report snippets), 0-based.
    lines: Vec<String>,
    /// 1-based line → concatenated comment text on that line.
    comment_on_line: BTreeMap<usize, String>,
    /// 1-based lines carrying at least one code token.
    code_on_line: BTreeSet<usize>,
    /// 1-based lines carrying a doc comment (`///`, `//!`, `/** … */`).
    doc_on_line: BTreeSet<usize>,
}

impl SourceFile {
    /// Parses source text (for fixtures and tests as well as real files).
    pub fn from_source(rel: &str, src: &str) -> Self {
        let tokens = lex(src);
        let scopes = analyze(&tokens);
        let mut comment_on_line: BTreeMap<usize, String> = BTreeMap::new();
        let mut code_on_line = BTreeSet::new();
        let mut doc_on_line = BTreeSet::new();
        let mut code = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            if t.is_comment() {
                for line in t.line..=t.end_line() {
                    let slot = comment_on_line.entry(line).or_default();
                    slot.push_str(&t.text);
                    slot.push('\n');
                    if t.is_doc_comment() {
                        doc_on_line.insert(line);
                    }
                }
            } else {
                code.push(i);
                for line in t.line..=t.end_line() {
                    code_on_line.insert(line);
                }
            }
        }
        SourceFile {
            rel: rel.to_string(),
            tokens,
            scopes,
            code,
            lines: src.lines().map(str::to_string).collect(),
            comment_on_line,
            code_on_line,
            doc_on_line,
        }
    }

    /// Reads and parses a file, producing a workspace-relative name.
    pub fn load(root: &Path, path: &Path) -> Option<Self> {
        let src = fs::read_to_string(path).ok()?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        Some(SourceFile::from_source(&rel, &src))
    }

    /// The trimmed raw source of a 1-based line (for report snippets).
    pub fn snippet(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map_or("", |l| l.trim())
    }

    /// Whether a match at 1-based `line` is justified for `rule_key`: a
    /// `lint:allow(rule) — reason` comment on the line itself or in the
    /// contiguous comment-only block directly above.
    pub fn justified(&self, line: usize, rule_key: &str) -> bool {
        self.covered_by(line, &|c| allows(c, rule_key))
    }

    /// Whether a `PANIC-OK: reason` justification covers 1-based `line`
    /// (same placement grammar as `lint:allow`) — the panic-reachability
    /// certifier's exemption marker.
    pub fn panic_justified(&self, line: usize) -> bool {
        self.covered_by(line, &panic_ok)
    }

    /// Whether an `ALLOC-OK: capacity invariant` justification covers
    /// 1-based `line` (same placement grammar as `PANIC-OK`) — the
    /// allocation-reachability certifier's exemption marker.
    pub fn alloc_justified(&self, line: usize) -> bool {
        self.covered_by(line, &alloc_ok)
    }

    /// Whether a `DETER-OK: ordering invariant` justification covers
    /// 1-based `line` (same placement grammar as `PANIC-OK`) — the
    /// determinism certifier's exemption marker for sites whose output
    /// order provably does not depend on hash seed, time, rng, or
    /// thread/chunk assignment.
    pub fn deter_justified(&self, line: usize) -> bool {
        self.covered_by(line, &deter_ok)
    }

    /// Whether a `TAINT-OK(reason)` justification covers 1-based `line`
    /// (same placement grammar as `PANIC-OK`) — the untrusted-input flow
    /// certifier's exemption marker for sinks whose tainted operand is
    /// provably bounded by an earlier structural check.
    pub fn taint_justified(&self, line: usize) -> bool {
        self.covered_by(line, &taint_ok)
    }

    /// The shared placement walk: a marker comment on the line itself or
    /// in the contiguous comment-only block directly above it.
    fn covered_by(&self, line: usize, pred: &dyn Fn(&str) -> bool) -> bool {
        if self.comment_on_line.get(&line).is_some_and(|c| pred(c)) {
            return true;
        }
        let mut j = line;
        while j > 1 {
            j -= 1;
            let Some(comment) = self.comment_on_line.get(&j) else {
                break;
            };
            if self.code_on_line.contains(&j) {
                break;
            }
            if pred(comment) {
                return true;
            }
        }
        false
    }

    /// Whether any token on the 1-based line is code (not comment).
    pub fn line_has_code(&self, line: usize) -> bool {
        self.code_on_line.contains(&line)
    }

    /// The contiguous doc block directly above 1-based `line`, skipping
    /// attribute lines (`#[...]`) between the docs and the item.
    pub fn doc_block_above(&self, line: usize) -> String {
        let mut doc = String::new();
        let mut j = line;
        while j > 1 {
            j -= 1;
            let raw = self.snippet(j);
            if self.doc_on_line.contains(&j) && !self.line_has_code(j) {
                doc.push_str(raw);
                doc.push('\n');
            } else if raw.starts_with("#[") || raw.starts_with("#![") {
                continue;
            } else {
                break;
            }
        }
        doc
    }
}

/// Parses one `PANIC-OK:` justification comment: the marker must be
/// followed by a non-trivial reason (≥ 3 characters).
pub fn panic_ok(comment: &str) -> bool {
    comment
        .find("PANIC-OK:")
        .is_some_and(|p| comment[p + "PANIC-OK:".len()..].trim().len() >= 3)
}

/// Parses one `ALLOC-OK:` justification comment: the marker must be
/// followed by a non-trivial capacity invariant (≥ 3 characters), e.g.
/// `// ALLOC-OK: entries pre-sized to n at construction; len ≤ n`.
pub fn alloc_ok(comment: &str) -> bool {
    comment
        .find("ALLOC-OK:")
        .is_some_and(|p| comment[p + "ALLOC-OK:".len()..].trim().len() >= 3)
}

/// Parses one `DETER-OK:` justification comment: the marker must be
/// followed by a non-trivial ordering invariant (≥ 3 characters), e.g.
/// `// DETER-OK: feeds the worker count only; result slots are
/// input-ordered`.
pub fn deter_ok(comment: &str) -> bool {
    comment
        .find("DETER-OK:")
        .is_some_and(|p| comment[p + "DETER-OK:".len()..].trim().len() >= 3)
}

/// Parses one `TAINT-OK(reason)` justification comment: unlike the
/// colon-form markers the reason sits *inside* the parentheses — e.g.
/// `// TAINT-OK(chunks_exact(2) yields exactly-2 slices)` — and must be
/// non-trivial (≥ 3 characters). Nested parentheses in the reason are
/// fine: everything after the opening paren up to the final `)` counts.
pub fn taint_ok(comment: &str) -> bool {
    let Some(pos) = comment.find("TAINT-OK(") else {
        return false;
    };
    let rest = &comment[pos + "TAINT-OK(".len()..];
    let Some(end) = rest.rfind(')') else {
        return false;
    };
    rest[..end].trim().len() >= 3
}

/// Parses one `lint:allow(..)` comment: the rule list must contain
/// `rule_key` and a dash-separated non-empty reason must follow.
pub fn allows(comment: &str, rule_key: &str) -> bool {
    let Some(pos) = comment.find("lint:allow(") else {
        return false;
    };
    let rest = &comment[pos + "lint:allow(".len()..];
    let Some(end) = rest.find(')') else {
        return false;
    };
    if !rest[..end].split(',').any(|r| r.trim() == rule_key) {
        return false;
    }
    let after = rest[end + 1..].trim_start();
    let reason = after
        .strip_prefix('—')
        .or_else(|| after.strip_prefix('–'))
        .or_else(|| after.strip_prefix('-'));
    matches!(reason, Some(r) if r.trim().len() >= 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scope of the first code token with the given text.
    fn scope_of<'a>(file: &'a SourceFile, text: &str) -> &'a TokenScope {
        let (i, _) = file
            .tokens
            .iter()
            .enumerate()
            .find(|(_, t)| !t.is_comment() && t.text == text)
            .unwrap_or_else(|| panic!("token `{text}` not found"));
        &file.scopes[i]
    }

    #[test]
    fn loop_depth_nests_and_resets_per_fn() {
        let src = "\
fn outer() {
    before();
    for x in xs {
        one();
        while cond {
            two();
        }
        back_to_one();
    }
    after();
}
fn next_fn() { zero(); }
";
        let f = SourceFile::from_source("x.rs", src);
        assert_eq!(scope_of(&f, "before").loop_depth, 0);
        assert_eq!(scope_of(&f, "one").loop_depth, 1);
        assert_eq!(scope_of(&f, "two").loop_depth, 2);
        assert_eq!(scope_of(&f, "back_to_one").loop_depth, 1);
        assert_eq!(scope_of(&f, "after").loop_depth, 0);
        assert_eq!(scope_of(&f, "zero").loop_depth, 0);
        assert_eq!(scope_of(&f, "one").fn_name.as_deref(), Some("outer"));
        assert_eq!(scope_of(&f, "zero").fn_name.as_deref(), Some("next_fn"));
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "\
impl<T> Iterator for Wrapper<T> {
    fn next(&mut self) -> Option<T> { body() }
}
";
        let f = SourceFile::from_source("x.rs", src);
        assert_eq!(scope_of(&f, "body").loop_depth, 0);
        assert_eq!(scope_of(&f, "body").fn_name.as_deref(), Some("next"));
    }

    #[test]
    fn hrtb_for_in_signature_is_not_a_loop() {
        let src = "fn apply<F>(f: F) where F: for<'a> Fn(&'a u8) { body() }\n";
        let f = SourceFile::from_source("x.rs", src);
        assert_eq!(scope_of(&f, "body").loop_depth, 0);
    }

    #[test]
    fn closures_and_blocks_inherit_loop_depth() {
        let src = "\
fn f() {
    for x in xs {
        let c = values.iter().map(|v| { inside_closure(v) });
        if cond {
            inside_if();
        }
        let s = Struct { field: literal_block() };
    }
}
";
        let f = SourceFile::from_source("x.rs", src);
        assert_eq!(scope_of(&f, "inside_closure").loop_depth, 1);
        assert_eq!(scope_of(&f, "inside_if").loop_depth, 1);
        assert_eq!(scope_of(&f, "literal_block").loop_depth, 1);
    }

    #[test]
    fn nested_fn_resets_loop_depth() {
        let src = "\
fn f() {
    loop {
        fn helper() { in_helper() }
        in_loop();
    }
}
";
        let f = SourceFile::from_source("x.rs", src);
        assert_eq!(scope_of(&f, "in_helper").loop_depth, 0);
        assert_eq!(scope_of(&f, "in_helper").fn_name.as_deref(), Some("helper"));
        assert_eq!(scope_of(&f, "in_loop").loop_depth, 1);
    }

    #[test]
    fn cfg_test_marks_whole_items() {
        let src = "\
fn live() { a(); }
#[cfg(test)]
mod tests {
    fn t() { b(); }
}
fn live2() { c(); }
#[test]
fn unit() { d(); }
#[cfg(not(test))]
fn shipped() { e(); }
";
        let f = SourceFile::from_source("x.rs", src);
        assert!(!scope_of(&f, "a").in_test);
        assert!(scope_of(&f, "b").in_test);
        assert!(!scope_of(&f, "c").in_test);
        assert!(scope_of(&f, "d").in_test);
        assert!(!scope_of(&f, "e").in_test);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { body(); }\n";
        let f = SourceFile::from_source("x.rs", src);
        assert!(!scope_of(&f, "body").in_test);
    }

    #[test]
    fn closure_in_loop_header_does_not_erase_the_loop() {
        let src = "\
fn f() {
    for x in xs.iter().map(|v| { in_header(v) }) {
        in_body(x);
    }
}
";
        let f = SourceFile::from_source("x.rs", src);
        assert_eq!(scope_of(&f, "in_body").loop_depth, 1);
        assert_eq!(scope_of(&f, "in_header").loop_depth, 0);
    }

    #[test]
    fn while_let_is_a_loop() {
        let src = "fn f() { while let Some(x) = it.next() { body(x); } }\n";
        let f = SourceFile::from_source("x.rs", src);
        assert_eq!(scope_of(&f, "body").loop_depth, 1);
    }

    #[test]
    fn match_and_if_let_are_not_loops() {
        let src = "\
fn f() {
    match x {
        Some(v) => { in_arm(v) }
        None => {}
    }
    if let Some(v) = y { in_if_let(v); }
}
";
        let f = SourceFile::from_source("x.rs", src);
        assert_eq!(scope_of(&f, "in_arm").loop_depth, 0);
        assert_eq!(scope_of(&f, "in_if_let").loop_depth, 0);
    }

    #[test]
    fn justification_walks_contiguous_comment_block() {
        let src = "\
fn f() {
    // lint:allow(no-unwrap) — invariant: list non-empty
    // (continued explanation)
    x.unwrap();
    y.unwrap();
}
";
        let f = SourceFile::from_source("x.rs", src);
        assert!(f.justified(4, "no-unwrap"));
        assert!(!f.justified(5, "no-unwrap"), "code line breaks the block");
        assert!(!f.justified(4, "paper-docs"), "rule key must match");
    }

    #[test]
    fn justification_grammar() {
        assert!(allows(
            "// lint:allow(no-unwrap) — proven by Theorem 1",
            "no-unwrap"
        ));
        assert!(allows(
            "// lint:allow(no-unwrap) - ascii dash reason",
            "no-unwrap"
        ));
        assert!(allows(
            "// lint:allow(a, no-alloc-in-hot-loop) — multi",
            "no-alloc-in-hot-loop"
        ));
        assert!(!allows("// lint:allow(no-unwrap)", "no-unwrap"));
        assert!(!allows("// lint:allow(no-unwrap) — ", "no-unwrap"));
        assert!(!allows(
            "// lint:allow(paper-docs) — wrong rule",
            "no-unwrap"
        ));
        assert!(!allows("// nothing here", "no-unwrap"));
    }

    #[test]
    fn panic_ok_marker_needs_a_reason_and_follows_the_block_grammar() {
        assert!(panic_ok("// PANIC-OK: index < n by construction"));
        assert!(!panic_ok("// PANIC-OK:"));
        assert!(!panic_ok("// PANIC-OK: x"));
        assert!(!panic_ok("// panics here"));
        let src = "\
fn f() {
    // PANIC-OK: slot always in bounds (validated on push)
    a[i] = 0;
    b[j] = 0;
}
";
        let f = SourceFile::from_source("x.rs", src);
        assert!(f.panic_justified(3));
        assert!(!f.panic_justified(4), "code line breaks the block");
    }

    #[test]
    fn alloc_ok_marker_needs_an_invariant_and_follows_the_block_grammar() {
        assert!(alloc_ok("// ALLOC-OK: pre-sized to n at construction"));
        assert!(!alloc_ok("// ALLOC-OK:"));
        assert!(!alloc_ok("// ALLOC-OK: x"));
        assert!(!alloc_ok("// allocates here"));
        let src = "\
fn f() {
    // ALLOC-OK: scratch grows to an engine-lifetime high-water mark
    v.push(0);
    w.push(0);
}
";
        let f = SourceFile::from_source("x.rs", src);
        assert!(f.alloc_justified(3));
        assert!(!f.alloc_justified(4), "code line breaks the block");
        // The two markers are independent: ALLOC-OK never excuses a panic
        // site and vice versa.
        assert!(!f.panic_justified(3));
    }

    #[test]
    fn deter_ok_marker_needs_an_invariant_and_follows_the_block_grammar() {
        assert!(deter_ok(
            "// DETER-OK: victim scan over a BTreeMap — key order"
        ));
        assert!(!deter_ok("// DETER-OK:"));
        assert!(!deter_ok("// DETER-OK: x"));
        assert!(!deter_ok("// deterministic here"));
        let src = "\
fn f() {
    // DETER-OK: feeds the worker count only; slots are input-ordered
    let w = available_parallelism();
    let t = Instant::now();
}
";
        let f = SourceFile::from_source("x.rs", src);
        assert!(f.deter_justified(3));
        assert!(!f.deter_justified(4), "code line breaks the block");
        // The three markers are independent.
        assert!(!f.panic_justified(3));
        assert!(!f.alloc_justified(3));
    }

    #[test]
    fn taint_ok_marker_needs_a_parenthesized_reason_and_follows_the_block_grammar() {
        assert!(taint_ok(
            "// TAINT-OK(take(6) guarantees exactly 6 scalars)"
        ));
        assert!(taint_ok(
            "// TAINT-OK(chunks_exact(2) yields exactly-2 slices)"
        ));
        assert!(!taint_ok("// TAINT-OK()"));
        assert!(!taint_ok("// TAINT-OK(x)"));
        assert!(!taint_ok("// TAINT-OK: colon form is the wrong grammar"));
        assert!(!taint_ok("// sanitized upstream"));
        let src = "\
fn f() {
    // TAINT-OK(offsets bounded by the validated section length)
    let v = data[i];
    let w = data[j];
}
";
        let f = SourceFile::from_source("x.rs", src);
        assert!(f.taint_justified(3));
        assert!(!f.taint_justified(4), "code line breaks the block");
        // The four markers are independent.
        assert!(!f.panic_justified(3));
        assert!(!f.alloc_justified(3));
        assert!(!f.deter_justified(3));
    }

    #[test]
    fn doc_block_above_skips_attributes() {
        let src = "/// Implements Algorithm 2 (§4.2).\n#[inline]\npub fn good() {}\n";
        let f = SourceFile::from_source("x.rs", src);
        assert!(f.doc_block_above(3).contains("Algorithm 2"));
        assert!(f.doc_block_above(1).is_empty());
    }
}
