//! The `lint-baseline.json` ratchet.
//!
//! The baseline grandfathers known findings so the lint wall can gate on
//! *new* findings only, while shrinking monotonically: entries that no
//! longer fire are reported as stale (and fail CI under `--deny-stale`),
//! so fixing a finding forces the baseline file to shrink with it.
//! `cargo xtask lint --update-baseline` rewrites the file from the current
//! findings, preserving the human-written reasons of entries that survive.

use std::fs;
use std::path::Path;

use crate::json::{parse, Json};
use crate::rules::Finding;

/// Reason recorded for a finding newly admitted by `--update-baseline`.
const TODO_REASON: &str = "TODO: fix or replace with a lint:allow justification";

/// One grandfathered finding. Matching is by (rule, file, line) — columns
/// shift too easily under formatting to participate in identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub line: usize,
    /// Why this finding is tolerated (human-maintained).
    pub reason: String,
}

impl BaselineEntry {
    fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule.key() && self.file == f.file && self.line == f.line
    }
}

/// The parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    pub note: String,
    pub entries: Vec<BaselineEntry>,
}

/// Findings split against a baseline.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Findings not in the baseline — these fail the run.
    pub new: Vec<Finding>,
    /// Findings grandfathered by a baseline entry.
    pub baselined: Vec<Finding>,
    /// Baseline entries that no longer fire — the file must shrink.
    pub stale: Vec<BaselineEntry>,
}

impl Baseline {
    /// Loads `path`; a missing file is an empty baseline, a malformed one
    /// is an error (a truncated baseline must not silently admit
    /// everything).
    pub fn load(path: &Path) -> Result<Baseline, String> {
        if !path.exists() {
            return Ok(Baseline::default());
        }
        let src = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Baseline::parse(&src).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the JSON document shape written by [`Baseline::render`].
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let doc = parse(src)?;
        let note = doc
            .get("note")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let mut entries = Vec::new();
        for (i, e) in doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("baseline: missing `entries` array")?
            .iter()
            .enumerate()
        {
            let field = |key: &str| {
                e.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("baseline entry {i}: missing string `{key}`"))
            };
            entries.push(BaselineEntry {
                rule: field("rule")?,
                file: field("file")?,
                line: e
                    .get("line")
                    .and_then(Json::as_usize)
                    .ok_or(format!("baseline entry {i}: missing integer `line`"))?,
                reason: field("reason")?,
            });
        }
        Ok(Baseline { note, entries })
    }

    /// Renders back to JSON text.
    pub fn render(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("rule".into(), Json::Str(e.rule.clone())),
                    ("file".into(), Json::Str(e.file.clone())),
                    ("line".into(), Json::Num(to_f64(e.line))),
                    ("reason".into(), Json::Str(e.reason.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("note".into(), Json::Str(self.note.clone())),
            ("entries".into(), Json::Arr(entries)),
        ])
        .render()
    }

    /// Splits `findings` into new/baselined and reports stale entries.
    pub fn apply(&self, findings: &[Finding]) -> Ratchet {
        let mut ratchet = Ratchet::default();
        for f in findings {
            if self.entries.iter().any(|e| e.matches(f)) {
                ratchet.baselined.push(f.clone());
            } else {
                ratchet.new.push(f.clone());
            }
        }
        for e in &self.entries {
            if !findings.iter().any(|f| e.matches(f)) {
                ratchet.stale.push(e.clone());
            }
        }
        ratchet
    }

    /// The baseline `--update-baseline` writes: one entry per current
    /// finding, keeping the reason of any surviving entry and marking new
    /// admissions with a TODO reason to be human-edited.
    pub fn updated(&self, findings: &[Finding]) -> Baseline {
        let entries = findings
            .iter()
            .map(|f| BaselineEntry {
                rule: f.rule.key().to_string(),
                file: f.file.clone(),
                line: f.line,
                reason: self
                    .entries
                    .iter()
                    .find(|e| e.matches(f))
                    .map_or_else(|| TODO_REASON.to_string(), |e| e.reason.clone()),
            })
            .collect();
        Baseline {
            note: if self.note.is_empty() {
                "Grandfathered lint findings; cargo xtask lint fails only on findings \
                 not listed here. Shrink, never grow."
                    .to_string()
            } else {
                self.note.clone()
            },
            entries,
        }
    }
}

#[allow(clippy::cast_precision_loss)]
fn to_f64(n: usize) -> f64 {
    n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Rule};

    fn finding(rule: Rule, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            col: 1,
            message: "m".to_string(),
            snippet: "s".to_string(),
        }
    }

    fn entry(rule: &str, file: &str, line: usize, reason: &str) -> BaselineEntry {
        BaselineEntry {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            reason: reason.to_string(),
        }
    }

    #[test]
    fn ratchet_splits_new_baselined_and_stale() {
        let baseline = Baseline {
            note: String::new(),
            entries: vec![
                entry("no-swallowed-result", "src/a.rs", 10, "benign"),
                entry("no-unwrap", "src/gone.rs", 3, "was fixed"),
            ],
        };
        let findings = vec![
            finding(Rule::NoSwallowedResult, "src/a.rs", 10),
            finding(Rule::NoUnwrap, "src/b.rs", 7),
        ];
        let r = baseline.apply(&findings);
        assert_eq!(r.baselined.len(), 1);
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.new[0].file, "src/b.rs");
        assert_eq!(r.stale.len(), 1);
        assert_eq!(r.stale[0].file, "src/gone.rs");
    }

    #[test]
    fn update_preserves_reasons_and_marks_new_entries() {
        let baseline = Baseline {
            note: "keep".to_string(),
            entries: vec![entry("no-swallowed-result", "src/a.rs", 10, "benign flush")],
        };
        let findings = vec![
            finding(Rule::NoSwallowedResult, "src/a.rs", 10),
            finding(Rule::NoAllocInHotLoop, "crates/core/src/query/topk.rs", 5),
        ];
        let updated = baseline.updated(&findings);
        assert_eq!(updated.note, "keep");
        assert_eq!(updated.entries.len(), 2);
        assert_eq!(updated.entries[0].reason, "benign flush");
        assert!(updated.entries[1].reason.starts_with("TODO"));
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let baseline = Baseline {
            note: "n".to_string(),
            entries: vec![entry("no-unwrap", "src/a.rs", 324, "REPL flush")],
        };
        let back = Baseline::parse(&baseline.render()).expect("round-trip");
        assert_eq!(back.note, "n");
        assert_eq!(back.entries, baseline.entries);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse(r#"{"entries": [{"rule": "x"}]}"#).is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
