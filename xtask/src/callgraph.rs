//! Cross-crate call-graph construction over parsed [`crate::items`].
//!
//! Name resolution is deliberately conservative — every rule errs toward
//! *more* edges, because the consumer is a panic-reachability certifier
//! and a missed edge is a missed panic:
//!
//! * `self.method(…)` resolves precisely to the enclosing impl's method
//!   when one exists (and only then).
//! * `Type::method(…)` and `Self::method(…)` resolve to the named type's
//!   methods; an unknown qualifier falls back to every function of that
//!   name.
//! * `.method(…)` on any other receiver fans out to **every** function
//!   named `method` in the analyzed set — this is what soundly
//!   approximates trait-object dispatch through the `kspin-core::modules`
//!   traits (`NetworkDistance` / `LowerBound`): a `dist.distance(…)` call
//!   edges into every `distance` implementation.
//! * Bare `helper(…)` calls resolve to free functions of that name.
//!
//! A second, *stricter* edge set ([`CallGraph::typed_edges`]) resolves
//! the same call sites with receiver typing and no name fan-out — the
//! taint certifier's propagation substrate, where an extra edge (not a
//! missing one) is the unsound direction.
//!
//! Items marked test-only or debug-only by the parser are dropped from
//! resolution entirely: the certificate is about the release serving
//! binary, where `#[cfg(debug_assertions)]`/`#[cfg(test)]`/`feature =
//! "audit"` code does not exist. For the same reason the body scanner
//! skips `debug_assert*!` argument lists and statements under a
//! debug/test `cfg` attribute.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::items::{match_brace, parse_fields, type_head, Item};
use crate::lex::{Token, TokenKind};
use crate::scope::SourceFile;

/// The workspace call graph: items plus a conservative edge list.
#[derive(Debug)]
pub struct CallGraph {
    /// Every parsed item (certified or not), across all files.
    pub items: Vec<Item>,
    /// `edges[i]` = indices of items `items[i]` may call (deduplicated,
    /// ascending). Empty for non-certified items.
    pub edges: Vec<Vec<usize>>,
    /// `typed_edges[i]` ⊆ `edges[i]`: the same call sites resolved with
    /// *receiver typing* instead of name fan-out — a `.method(…)` call
    /// only edges into `Type::method` when the receiver's type is known
    /// (self, a declared field, or an inferrable local), and
    /// `Qual::method(…)` never falls back to the every-same-name set.
    /// The taint certifier floods over these: fan-out edges are sound
    /// for panic reachability (a missed edge is a missed panic) but
    /// catastrophic for taint (a `.push(…)` on a decode-local `Vec`
    /// must not taint the serving heap kernel's `push`).
    pub typed_edges: Vec<Vec<usize>>,
    /// `(struct, field)` → type head, from every named-struct
    /// declaration; types `self.field.method(…)` receivers.
    pub field_types: BTreeMap<(String, String), String>,
    /// `(self type, method)` pairs with a certified definition — the
    /// allocation classifier skips growth calls on such receivers
    /// because the call-graph edge charges the callee body instead.
    pub certified_methods: BTreeSet<(String, String)>,
}

/// Result of a breadth-first reachability sweep.
#[derive(Debug)]
pub struct Reach {
    /// `parent[i]` = predecessor of item `i` on a shortest call chain
    /// from an entry point; `Some(i)` marks an entry point itself.
    parent: Vec<Option<usize>>,
    /// Whether item `i` is reachable.
    reached: Vec<bool>,
}

impl Reach {
    /// Whether item `i` is reachable from any entry point.
    pub fn reached(&self, i: usize) -> bool {
        self.reached[i]
    }

    /// The shortest entry-to-`i` call chain as item indices (entry first).
    pub fn chain(&self, mut i: usize) -> Vec<usize> {
        let mut chain = vec![i];
        while let Some(p) = self.parent[i] {
            if p == i {
                break;
            }
            chain.push(p);
            i = p;
        }
        chain.reverse();
        chain
    }
}

impl CallGraph {
    /// Builds the call graph over `files` (parallel to the `file_idx`
    /// fields of the parsed items).
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut items = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            items.extend(crate::items::parse_items(file, fi));
        }
        let mut field_types = BTreeMap::new();
        for file in files {
            for (s, f, ty) in parse_fields(file) {
                field_types.insert((s, f), ty);
            }
        }
        let mut certified_methods = BTreeSet::new();
        for item in &items {
            if item.certified() {
                if let Some(t) = &item.self_type {
                    certified_methods.insert((t.clone(), item.name.clone()));
                }
            }
        }
        // Both edge sets are resolved in one sweep. The struct is built
        // first (with empty edge lists) because the typed pass needs
        // `local_types`/`receiver_type`, which read `items`/`field_types`
        // through `&self`.
        let mut graph = CallGraph {
            items,
            edges: Vec::new(),
            typed_edges: Vec::new(),
            field_types,
            certified_methods,
        };
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_of: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, item) in graph.items.iter().enumerate() {
            if !item.certified() {
                continue;
            }
            by_name.entry(&item.name).or_default().push(i);
            match &item.self_type {
                Some(t) => methods_of
                    .entry((t.as_str(), &item.name))
                    .or_default()
                    .push(i),
                None => free_by_name.entry(&item.name).or_default().push(i),
            }
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); graph.items.len()];
        let mut typed: Vec<Vec<usize>> = vec![Vec::new(); graph.items.len()];
        for i in 0..graph.items.len() {
            let item = &graph.items[i];
            if !item.certified() {
                continue;
            }
            let file = &files[item.file_idx];
            let locals = graph.local_types(file, i);
            let mut targets = BTreeSet::new();
            let mut typed_targets = BTreeSet::new();
            for k in body_tokens(file, &graph.items, i) {
                let Some(site) = call_at(file, &graph.items, i, k) else {
                    continue;
                };
                resolve(
                    &site,
                    item,
                    &by_name,
                    &free_by_name,
                    &methods_of,
                    &mut targets,
                );
                let receiver = match site {
                    CallSite::Method(_) => graph.receiver_type(file, i, k, &locals),
                    _ => None,
                };
                resolve_typed(
                    &site,
                    item,
                    receiver.as_deref(),
                    &free_by_name,
                    &methods_of,
                    &mut typed_targets,
                );
            }
            targets.remove(&i); // direct recursion adds nothing to reachability
            typed_targets.remove(&i);
            edges[i] = targets.into_iter().collect();
            typed[i] = typed_targets.into_iter().collect();
        }
        graph.edges = edges;
        graph.typed_edges = typed;
        graph
    }

    /// Resolves an entry-point spec (`Type::method` or a bare free-fn
    /// name) to certified item indices.
    pub fn resolve_entry(&self, spec: &str) -> Vec<usize> {
        let (ty, name) = match spec.split_once("::") {
            Some((t, n)) => (Some(t), n),
            None => (None, spec),
        };
        self.items
            .iter()
            .enumerate()
            .filter(|(_, it)| {
                it.certified()
                    && it.name == name
                    && ty.is_none_or(|t| it.self_type.as_deref() == Some(t))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Breadth-first reachability from `entries`, recording shortest-path
    /// parents for chain reporting.
    pub fn reach(&self, entries: &[usize]) -> Reach {
        self.reach_avoiding(entries, &[])
    }

    /// [`Self::reach`] that never enters the `avoid` set — the allocation
    /// certifier's warm-up boundary. An avoided item is unreachable even
    /// when listed as an entry (avoid wins), and nothing behind it is
    /// reached *through* it.
    pub fn reach_avoiding(&self, entries: &[usize], avoid: &[usize]) -> Reach {
        let mut parent = vec![None; self.items.len()];
        let mut reached = vec![false; self.items.len()];
        let mut blocked = vec![false; self.items.len()];
        for &a in avoid {
            blocked[a] = true;
        }
        let mut queue = VecDeque::new();
        for &e in entries {
            if !reached[e] && !blocked[e] {
                reached[e] = true;
                parent[e] = Some(e);
                queue.push_back(e);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in &self.edges[i] {
                if !reached[j] && !blocked[j] {
                    reached[j] = true;
                    parent[j] = Some(i);
                    queue.push_back(j);
                }
            }
        }
        Reach { parent, reached }
    }

    /// Best-effort types of the local bindings visible in `items[idx]`:
    /// `name: Type` (params and typed lets), `let x = Type::ctor(…)`,
    /// `let x = Type { … }`, `let v = vec![…]`. A name bound to two
    /// different heads — or to a form the scan cannot type — is dropped,
    /// which errs in the conservative direction for the allocation
    /// classifier: unknown receivers are flagged, not skipped.
    pub fn local_types(&self, file: &SourceFile, idx: usize) -> BTreeMap<String, String> {
        let (start, end) = self.items[idx].body;
        if start >= end {
            return BTreeMap::new();
        }
        // Rewind from the body to the `fn` keyword so params are in range.
        let mut fn_k = None;
        let mut j = start;
        while j > 0 {
            j -= 1;
            if tok(file, j).is_ident("fn") && tok(file, j + 1).text == self.items[idx].name {
                fn_k = Some(j);
                break;
            }
        }
        let Some(fn_k) = fn_k else {
            return BTreeMap::new();
        };
        let mut map: BTreeMap<String, Option<String>> = BTreeMap::new();
        let mut bind = |name: String, ty: Option<String>| {
            map.entry(name)
                .and_modify(|e| {
                    if *e != ty {
                        *e = None;
                    }
                })
                .or_insert(ty);
        };
        let mut k = fn_k;
        while k < end {
            let t = tok(file, k);
            // `IDENT : Type` — a param, typed let, or (harmlessly) a
            // struct-literal field; the head of an expression initializer
            // never names a certified-method self type.
            if t.kind == TokenKind::Ident
                && k + 2 < end
                && tok(file, k + 1).is_punct(":")
                && !KEYWORDS.contains(&t.text.as_str())
            {
                let mut stop = k + 2;
                let mut depth = 0i32;
                while stop < end {
                    let s = tok(file, stop);
                    if depth <= 0 && matches!(s.text.as_str(), "," | ")" | ";" | "=" | "{" | "}") {
                        break;
                    }
                    depth += crate::items::delim_depth(s);
                    stop += 1;
                }
                bind(t.text.clone(), type_head(file, k + 2, stop));
                k = stop;
                continue;
            }
            // `let [mut] IDENT = rhs` — type the binding from the rhs
            // shape, or poison it when the shape is unrecognized.
            if t.is_ident("let") {
                let mut n = k + 1;
                if n < end && tok(file, n).is_ident("mut") {
                    n += 1;
                }
                if n + 1 < end
                    && tok(file, n).kind == TokenKind::Ident
                    && tok(file, n + 1).is_punct("=")
                {
                    bind(tok(file, n).text.clone(), rhs_type(file, n + 2, end));
                    k = n + 2;
                    continue;
                }
            }
            k += 1;
        }
        map.into_iter()
            .filter_map(|(name, ty)| ty.map(|t| (name, t)))
            .collect()
    }

    /// Resolves the receiver type of the dot-call whose method name sits
    /// at code index `k` (`k - 1` is the `.`): `self` → the enclosing
    /// impl's self type, `self.field` → the declared field type, a bare
    /// local → its inferred binding type. `None` for chained or
    /// unrecognized receivers, which the allocation classifier treats as
    /// "may allocate".
    pub fn receiver_type(
        &self,
        file: &SourceFile,
        idx: usize,
        k: usize,
        locals: &BTreeMap<String, String>,
    ) -> Option<String> {
        if k < 2 {
            return None;
        }
        let r = tok(file, k - 2);
        if r.kind != TokenKind::Ident {
            return None;
        }
        let self_ty = self.items[idx].self_type.as_deref();
        if r.text == "self" {
            if k >= 3 && tok(file, k - 3).is_punct(".") {
                return None;
            }
            return self_ty.map(str::to_string);
        }
        if k >= 4 && tok(file, k - 3).is_punct(".") && tok(file, k - 4).is_ident("self") {
            if k >= 5 && tok(file, k - 5).is_punct(".") {
                return None;
            }
            return self_ty.and_then(|t| {
                self.field_types
                    .get(&(t.to_string(), r.text.clone()))
                    .cloned()
            });
        }
        if k >= 3 && tok(file, k - 3).is_punct(".") {
            return None; // `x.y.m(…)` on a non-self chain: unknown
        }
        locals.get(&r.text).cloned()
    }
}

/// Types a `let` initializer by shape: `vec![…]` → `Vec`,
/// `A::…::Type::ctor(…)` → `Type`, `Type { … }` → `Type`. `None`
/// otherwise (bare calls, literals, method chains — return types are
/// beyond this scan).
fn rhs_type(file: &SourceFile, r: usize, end: usize) -> Option<String> {
    if r >= end || tok(file, r).kind != TokenKind::Ident {
        return None;
    }
    if tok(file, r).is_ident("vec") && r + 1 < end && tok(file, r + 1).is_punct("!") {
        return Some("Vec".to_string());
    }
    if KEYWORDS.contains(&tok(file, r).text.as_str()) {
        return None;
    }
    // Walk the `A :: B :: c` path.
    let mut segs = vec![r];
    let mut j = r + 1;
    while j + 1 < end && tok(file, j).is_punct("::") && tok(file, j + 1).kind == TokenKind::Ident {
        segs.push(j + 1);
        j += 2;
    }
    if j < end && tok(file, j).is_punct("{") && segs.len() == 1 {
        return Some(tok(file, r).text.clone()); // struct literal
    }
    if j < end && tok(file, j).is_punct("(") && segs.len() >= 2 {
        // `Type::ctor(…)` — the binding has the qualifier's type.
        return Some(tok(file, segs[segs.len() - 2]).text.clone());
    }
    None
}

/// A syntactic call site.
#[derive(Debug)]
enum CallSite {
    /// `self.name(…)` — receiver is literally `self`.
    SelfMethod(String),
    /// `.name(…)` on any other receiver.
    Method(String),
    /// `Qual::name(…)`.
    Qualified(String, String),
    /// `name(…)`.
    Bare(String),
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "break", "continue",
    "else", "unsafe", "let", "ref", "box", "yield",
];

fn tok(file: &SourceFile, k: usize) -> &Token {
    &file.tokens[file.code[k]]
}

/// The code-token indices of `items[idx]`'s body that belong to the
/// certified release artifact: nested child items, `debug_assert*!`
/// argument lists, attribute groups, and statements gated by a
/// debug/test `cfg` attribute are all skipped.
pub(crate) fn body_tokens(file: &SourceFile, items: &[Item], idx: usize) -> Vec<usize> {
    let (start, end) = items[idx].body;
    // Nested items (same file, body strictly inside ours).
    let children: Vec<(usize, usize)> = items
        .iter()
        .enumerate()
        .filter(|(j, it)| {
            *j != idx
                && it.file_idx == items[idx].file_idx
                && it.body.0 >= start
                && it.body.1 <= end
        })
        .map(|(_, it)| it.body)
        .collect();
    let mut out = Vec::new();
    let mut k = start;
    while k < end {
        if let Some(&(_, ce)) = children.iter().find(|(cs, ce)| *cs <= k && k < *ce) {
            k = ce;
            continue;
        }
        let t = tok(file, k);
        // debug_assert!(…) / debug_assert_eq!(…) / debug_assert_ne!(…):
        // compiled out of release builds.
        if t.kind == TokenKind::Ident
            && t.text.starts_with("debug_assert")
            && k + 2 < end
            && tok(file, k + 1).is_punct("!")
            && tok(file, k + 2).is_punct("(")
        {
            k = skip_group(file, k + 2, end, "(", ")");
            continue;
        }
        if t.is_punct("#") {
            if let Some(next) = skip_attr_and_gated_stmt(file, k, end) {
                k = next;
                continue;
            }
        }
        out.push(k);
        k += 1;
    }
    out
}

/// Skips past the balanced group opened at `k` (which holds `open`);
/// returns the index just past the closer.
fn skip_group(file: &SourceFile, k: usize, end: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    for j in k..end {
        let t = tok(file, j);
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    end
}

/// Handles a `#` at code index `k`: skips the attribute group, and — when
/// the attribute cfg-gates on `debug_assertions`/`test`/the audit feature
/// — the statement it gates as well (to the next depth-0 `;`, or the end
/// of the first depth-0 brace block).
fn skip_attr_and_gated_stmt(file: &SourceFile, k: usize, end: usize) -> Option<usize> {
    let mut j = k + 1;
    if j < end && tok(file, j).is_punct("!") {
        j += 1;
    }
    if !(j < end && tok(file, j).is_punct("[")) {
        return None;
    }
    let mut depth = 0usize;
    let mut idents: Vec<String> = Vec::new();
    let mut strs: Vec<String> = Vec::new();
    let mut after = end;
    for i in j..end {
        let t = tok(file, i);
        match t.kind {
            TokenKind::Punct if t.text == "[" => depth += 1,
            TokenKind::Punct if t.text == "]" => {
                depth -= 1;
                if depth == 0 {
                    after = i + 1;
                    break;
                }
            }
            TokenKind::Ident => idents.push(t.text.clone()),
            TokenKind::StrLit => strs.push(t.text.clone()),
            _ => {}
        }
    }
    let has = |s: &str| idents.iter().any(|i| i == s);
    let gated = has("cfg")
        && !has("not")
        && (has("debug_assertions")
            || has("test")
            || (has("feature") && strs.iter().any(|s| s == "\"audit\"")));
    if !gated {
        return Some(after);
    }
    // Skip the gated statement.
    let mut depth = 0usize;
    let mut i = after;
    while i < end {
        let t = tok(file, i);
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            ";" if depth == 0 => return Some(i + 1),
            "{" if depth == 0 => return Some(match_brace(file, i, end) + 1),
            _ => {}
        }
        i += 1;
    }
    Some(end)
}

/// Classifies the token at code index `k` as a call site, if it is one:
/// an identifier followed by `(` (optionally through a `::<…>` turbofish).
fn call_at(file: &SourceFile, items: &[Item], idx: usize, k: usize) -> Option<CallSite> {
    let t = tok(file, k);
    if t.kind != TokenKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    let end = items[idx].body.1;
    let mut j = k + 1;
    // `name::<T>(…)` turbofish.
    if j + 1 < end && tok(file, j).is_punct("::") && tok(file, j + 1).is_punct("<") {
        let mut depth = 0i32;
        j += 1;
        while j < end {
            depth += match tok(file, j).text.as_str() {
                "<" => 1,
                ">" => -1,
                "<<" => 2,
                ">>" => -2,
                _ => 0,
            };
            j += 1;
            if depth == 0 {
                break;
            }
        }
    }
    if !(j < end && tok(file, j).is_punct("(")) {
        return None;
    }
    let name = t.text.clone();
    if k == items[idx].body.0 {
        return Some(CallSite::Bare(name));
    }
    let prev = tok(file, k - 1);
    if prev.is_punct(".") {
        let is_self = k >= 2
            && tok(file, k - 2).is_ident("self")
            && !(k >= 3 && tok(file, k - 3).is_punct("."));
        return Some(if is_self {
            CallSite::SelfMethod(name)
        } else {
            CallSite::Method(name)
        });
    }
    if prev.is_punct("::") {
        if k >= 2 && tok(file, k - 2).kind == TokenKind::Ident {
            return Some(CallSite::Qualified(tok(file, k - 2).text.clone(), name));
        }
        // `<T as Trait>::name(…)` — qualifier unrecoverable, fan out.
        return Some(CallSite::Method(name));
    }
    if prev.is_ident("fn") {
        return None; // a definition, not a call
    }
    Some(CallSite::Bare(name))
}

/// Applies the resolution rules documented on the module.
fn resolve(
    site: &CallSite,
    caller: &Item,
    by_name: &BTreeMap<&str, Vec<usize>>,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_of: &BTreeMap<(&str, &str), Vec<usize>>,
    targets: &mut BTreeSet<usize>,
) {
    let extend = |targets: &mut BTreeSet<usize>, v: Option<&Vec<usize>>| {
        if let Some(v) = v {
            targets.extend(v.iter().copied());
        }
    };
    match site {
        CallSite::SelfMethod(name) => {
            if let Some(ty) = &caller.self_type {
                if let Some(v) = methods_of.get(&(ty.as_str(), name.as_str())) {
                    targets.extend(v.iter().copied());
                    return;
                }
            }
            extend(targets, by_name.get(name.as_str()));
        }
        CallSite::Method(name) => extend(targets, by_name.get(name.as_str())),
        CallSite::Qualified(qual, name) => {
            let ty = if qual == "Self" {
                caller.self_type.clone().unwrap_or_else(|| qual.clone())
            } else {
                qual.clone()
            };
            if let Some(v) = methods_of.get(&(ty.as_str(), name.as_str())) {
                targets.extend(v.iter().copied());
            } else if let Some(v) = free_by_name.get(name.as_str()) {
                targets.extend(v.iter().copied());
            } else {
                extend(targets, by_name.get(name.as_str()));
            }
        }
        CallSite::Bare(name) => extend(targets, free_by_name.get(name.as_str())),
    }
}

/// The typed-edge resolution rules (see [`CallGraph::typed_edges`]):
/// like [`resolve`] but a `.method(…)` call requires a known receiver
/// type and `Qual::method(…)` never falls back to name fan-out. The
/// result under-approximates dynamic dispatch, which is the correct
/// direction for taint *propagation* (the flood must not jump between
/// unrelated types through a shared method name); the taint certifier's
/// sink classifier still inspects every tainted body directly.
fn resolve_typed(
    site: &CallSite,
    caller: &Item,
    receiver: Option<&str>,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_of: &BTreeMap<(&str, &str), Vec<usize>>,
    targets: &mut BTreeSet<usize>,
) {
    let extend = |targets: &mut BTreeSet<usize>, v: Option<&Vec<usize>>| {
        if let Some(v) = v {
            targets.extend(v.iter().copied());
        }
    };
    match site {
        CallSite::SelfMethod(name) => {
            if let Some(ty) = &caller.self_type {
                extend(targets, methods_of.get(&(ty.as_str(), name.as_str())));
            }
        }
        CallSite::Method(name) => {
            if let Some(ty) = receiver {
                extend(targets, methods_of.get(&(ty, name.as_str())));
            }
        }
        CallSite::Qualified(qual, name) => {
            let ty = if qual == "Self" {
                caller.self_type.clone().unwrap_or_else(|| qual.clone())
            } else {
                qual.clone()
            };
            if let Some(v) = methods_of.get(&(ty.as_str(), name.as_str())) {
                targets.extend(v.iter().copied());
            } else {
                extend(targets, free_by_name.get(name.as_str()));
            }
        }
        CallSite::Bare(name) => extend(targets, free_by_name.get(name.as_str())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(&[SourceFile::from_source("fixture.rs", src)])
    }

    fn idx(g: &CallGraph, q: &str) -> usize {
        g.items
            .iter()
            .position(|i| i.qualified() == q)
            .unwrap_or_else(|| panic!("item `{q}` missing"))
    }

    fn calls(g: &CallGraph, from: &str, to: &str) -> bool {
        g.edges[idx(g, from)].contains(&idx(g, to))
    }

    #[test]
    fn self_calls_resolve_precisely() {
        let src = "\
impl Heap {
    pub fn pop(&mut self) { self.sift_down(0); }
    fn sift_down(&mut self, i: usize) { work() }
}
impl Other {
    fn sift_down(&mut self) { other_work() }
}
fn work() {}
fn other_work() {}
";
        let g = graph(src);
        assert!(calls(&g, "Heap::pop", "Heap::sift_down"));
        assert!(
            !calls(&g, "Heap::pop", "Other::sift_down"),
            "self.m() must not fan out across impls"
        );
    }

    #[test]
    fn trait_object_method_calls_fan_out() {
        let src = "\
trait Distance { fn distance(&mut self) -> u32; }
impl Distance for Exact { fn distance(&mut self) -> u32 { exact() } }
impl Distance for Approx { fn distance(&mut self) -> u32 { approx() } }
fn query(d: &mut dyn Distance) { d.distance(); }
fn exact() -> u32 { 0 }
fn approx() -> u32 { 0 }
";
        let g = graph(src);
        assert!(calls(&g, "query", "Exact::distance"));
        assert!(calls(&g, "query", "Approx::distance"));
        let r = g.reach(&g.resolve_entry("query"));
        assert!(r.reached(idx(&g, "exact")) && r.reached(idx(&g, "approx")));
    }

    #[test]
    fn qualified_and_turbofish_calls_resolve() {
        let src = "\
impl Heap { pub fn new(n: usize) -> Self { Heap } }
fn make() { let h = Heap::new(4); let v = parse::<u32>(\"1\"); }
fn parse<T>(s: &str) -> T { todo_impl() }
fn todo_impl<T>() -> T { loop {} }
";
        let g = graph(src);
        assert!(calls(&g, "make", "Heap::new"));
        assert!(calls(&g, "make", "parse"), "turbofish call missed");
    }

    #[test]
    fn closure_captured_calls_belong_to_the_enclosing_fn() {
        let src = "\
fn outer(xs: &[u32]) -> u32 { xs.iter().map(|x| helper(*x)).sum() }
fn helper(x: u32) -> u32 { x }
";
        let g = graph(src);
        assert!(calls(&g, "outer", "helper"));
    }

    #[test]
    fn nested_fn_calls_are_not_charged_to_the_parent() {
        let src = "\
fn parent() { child(); }
fn child() { fn grand() { deep(); } grand(); }
fn deep() {}
";
        let g = graph(src);
        assert!(calls(&g, "parent", "child"));
        assert!(calls(&g, "child", "grand"));
        assert!(calls(&g, "grand", "deep"));
        assert!(
            !calls(&g, "child", "deep"),
            "grand's body must not leak into child"
        );
    }

    #[test]
    fn recursion_cycles_terminate() {
        let src = "\
fn even(n: u32) -> bool { if n == 0 { true } else { odd(n - 1) } }
fn odd(n: u32) -> bool { if n == 0 { false } else { even(n - 1) } }
fn selfrec(n: u32) { selfrec(n) }
";
        let g = graph(src);
        let r = g.reach(&g.resolve_entry("even"));
        assert!(r.reached(idx(&g, "odd")));
        let chain = r.chain(idx(&g, "odd"));
        assert_eq!(chain.len(), 2, "shortest chain is even → odd");
        let r2 = g.reach(&g.resolve_entry("selfrec"));
        assert!(r2.reached(idx(&g, "selfrec")));
    }

    #[test]
    fn debug_and_test_code_is_outside_the_graph() {
        let src = "\
fn live() {
    debug_assert!(check());
    #[cfg(debug_assertions)]
    audit();
    real();
}
#[cfg(any(debug_assertions, feature = \"audit\"))]
fn audit() { boom() }
fn check() -> bool { true }
fn real() {}
fn boom() {}
#[cfg(test)]
mod tests {
    fn helper() { boom_test() }
}
";
        let g = graph(src);
        assert!(calls(&g, "live", "real"));
        assert!(
            !calls(&g, "live", "check"),
            "debug_assert! args are compiled out of release"
        );
        assert!(
            !calls(&g, "live", "audit"),
            "cfg(debug_assertions)-gated statement is compiled out"
        );
        let r = g.reach(&g.resolve_entry("live"));
        assert!(!r.reached(idx(&g, "boom")));
    }

    #[test]
    fn reach_avoiding_blocks_the_warm_up_boundary() {
        let src = "\
impl Engine {
    pub fn serve(&self) { self.step(); Engine::new(); }
    fn step(&self) { kernel(); }
    pub fn new() -> Self { warm_helper(); Engine }
}
fn kernel() {}
fn warm_helper() {}
";
        let g = graph(src);
        let avoid = g.resolve_entry("Engine::new");
        let r = g.reach_avoiding(&g.resolve_entry("Engine::serve"), &avoid);
        assert!(r.reached(idx(&g, "kernel")));
        assert!(!r.reached(idx(&g, "Engine::new")), "avoided item reached");
        assert!(
            !r.reached(idx(&g, "warm_helper")),
            "nothing behind the boundary may be reached through it"
        );
        // Avoid wins even over entry listing.
        let r2 = g.reach_avoiding(&g.resolve_entry("Engine::new"), &avoid);
        assert!(!r2.reached(idx(&g, "Engine::new")));
    }

    #[test]
    fn receiver_typing_resolves_self_fields_and_locals() {
        let src = "\
struct Heap { entries: Vec<u64>, scratch: Buffer }
impl Heap {
    fn grow(&mut self, n: usize, out: &mut Vec<u32>) {
        self.entries.push(1);
        out.push(2);
        let mut local = Vec::new();
        local.push(3);
        let b = Buffer { data: 0 };
        b.push(4);
        unknown.push(5);
        a.b.push(6);
        self.scratch.push(7);
    }
    fn reheap(&mut self) {}
}
";
        let file = SourceFile::from_source("fixture.rs", src);
        let g = CallGraph::build(&[SourceFile::from_source("fixture.rs", src)]);
        let i = idx(&g, "Heap::grow");
        let locals = g.local_types(&file, i);
        assert_eq!(locals.get("local").map(String::as_str), Some("Vec"));
        assert_eq!(locals.get("b").map(String::as_str), Some("Buffer"));
        assert_eq!(locals.get("out").map(String::as_str), Some("Vec"));
        assert!(!locals.contains_key("unknown"));

        // Receiver per planted `push` call, in source order.
        let receivers: Vec<Option<String>> = (0..file.code.len())
            .filter(|&k| file.tokens[file.code[k]].text == "push")
            .map(|k| g.receiver_type(&file, i, k, &locals))
            .collect();
        assert_eq!(
            receivers,
            vec![
                Some("Vec".into()),    // self.entries.push — declared field
                Some("Vec".into()),    // out.push — typed param
                Some("Vec".into()),    // local.push — Vec::new binding
                Some("Buffer".into()), // b.push — struct-literal binding
                None,                  // unknown.push — unbound local
                None,                  // a.b.push — non-self chain
                Some("Buffer".into()), // self.scratch.push — declared field
            ]
        );
        assert!(g
            .certified_methods
            .contains(&("Heap".into(), "reheap".into())));
        assert_eq!(
            g.field_types
                .get(&("Heap".into(), "entries".into()))
                .map(String::as_str),
            Some("Vec")
        );
    }

    fn typed_calls(g: &CallGraph, from: &str, to: &str) -> bool {
        g.typed_edges[idx(g, from)].contains(&idx(g, to))
    }

    #[test]
    fn typed_edges_require_a_known_receiver_and_never_fan_out() {
        let src = "\
struct Decoder { pool: Pool }
impl Pool {
    fn take(&mut self) -> u32 { 0 }
}
impl DaryHeap {
    fn push(&mut self, x: u32) { grow() }
}
impl Decoder {
    fn decode(&mut self, entries: &mut Vec<u32>) {
        self.pool.take();
        entries.push(1);
        self.helper();
    }
    fn helper(&mut self) {}
}
fn query(d: &mut dyn Distance) { d.distance(); }
impl Distance for Exact { fn distance(&mut self) -> u32 { 0 } }
fn grow() {}
";
        let g = graph(src);
        // Field-typed receiver resolves precisely.
        assert!(typed_calls(&g, "Decoder::decode", "Pool::take"));
        // `entries.push(…)` is a Vec push: the conservative set fans out
        // into every `push`, the typed set must not.
        assert!(calls(&g, "Decoder::decode", "DaryHeap::push"));
        assert!(!typed_calls(&g, "Decoder::decode", "DaryHeap::push"));
        // self-calls stay precise in both sets.
        assert!(typed_calls(&g, "Decoder::decode", "Decoder::helper"));
        // Unknown (trait-object) receivers: conservative fans out, typed
        // drops the edge — the under-approximation the taint classifier
        // compensates for by scanning every tainted body.
        assert!(calls(&g, "query", "Exact::distance"));
        assert!(!typed_calls(&g, "query", "Exact::distance"));
        // Typed edges are a subset of the conservative edges, always.
        for i in 0..g.items.len() {
            for t in &g.typed_edges[i] {
                assert!(g.edges[i].contains(t), "typed edge outside edges");
            }
        }
    }

    #[test]
    fn typed_qualified_calls_do_not_fall_back_to_fan_out() {
        let src = "\
impl Graph {
    fn from_csr_parts() -> Self { Graph }
}
fn decode() { Graph::from_csr_parts(); Missing::from_csr_parts(); helper(); }
fn helper() {}
";
        let g = graph(src);
        assert!(typed_calls(&g, "decode", "Graph::from_csr_parts"));
        assert!(typed_calls(&g, "decode", "helper"));
        // `Missing::…` has no certified method table entry and no free fn
        // of that name: the conservative set fans out to Graph's method,
        // the typed set resolves it to nothing new.
        assert_eq!(g.typed_edges[idx(&g, "decode")].len(), 2);
    }

    #[test]
    fn entry_specs_resolve_by_type_and_method() {
        let src = "\
impl Engine { pub fn top_k(&mut self) { self.inner(); } fn inner(&mut self) {} }
impl Other { pub fn top_k(&mut self) {} }
";
        let g = graph(src);
        assert_eq!(g.resolve_entry("Engine::top_k").len(), 1);
        assert_eq!(g.resolve_entry("top_k").len(), 2);
        assert!(g.resolve_entry("Engine::missing").is_empty());
    }
}
