//! `cargo xtask taint` — the untrusted-input flow certifier.
//!
//! The three reachability certifiers (`panics`, `allocs`, `determinism`)
//! answer "what can this entry point *do*?". This one answers the dual
//! question for the snapshot/serving boundary: "where can untrusted
//! *bytes* go?" — and proves every source→sink flow crosses a sanitizer
//! or carries a reviewed `TAINT-OK(reason)` justification.
//!
//! The model has three vocabularies, registered in this module:
//!
//! * **Sources** ([`SOURCE_CLASSES`]): where attacker-controlled values
//!   enter. `snapshot-bytes` is every typed section accessor of
//!   [`SnapshotFile`] plus raw `from_le_bytes` decoding; `cli-path` is
//!   file reads named on the command line (`fs::read`); `network` is
//!   registered but intentionally empty — the reserved class the
//!   kspin-server front-end (ROADMAP item 1) must populate before its
//!   frame parser ships.
//! * **Sanitizers** ([`SANITIZERS`]): the hand-audited validation
//!   boundary. `SnapshotFile::validate` (structural: checksums, offsets,
//!   lengths), the `Pool`/`decoded_usize`/`len_field` checked-extraction
//!   helpers, and the `from_*_parts` constructors that re-validate
//!   semantic invariants and return structured `SnapshotError`s. The
//!   flood never enters a sanitizer: its body is the audited perimeter.
//! * **Sinks** (classified per tainted body): slice indexing and
//!   `get_unchecked`, allocation capacities (`with_capacity`/`reserve`/
//!   `resize`), unchecked `+`/`-`/`*` arithmetic on decoded offsets, and
//!   id-typed tuple constructors (`VertexId(..)` et al.).
//!
//! **Propagation** is argument-level "lite": an item is *seeded* when it
//! calls a source (its locals hold decoded values) or matches a source
//! token pattern, then taint floods **forward** over the call graph's
//! [`typed_edges`](crate::callgraph::CallGraph::typed_edges) — callees
//! receive tainted arguments. The typed edge set is deliberately an
//! under-approximation (no name fan-out, receivers must type): a fanned
//! `.push(…)` edge from a decode-local `Vec` into the serving heap
//! kernel would poison the whole serving surface with false taint. The
//! compensating soundness argument: sinks are classified in *every*
//! tainted body directly, sanitizer bodies are hand-audited, and the
//! conservative edge set still backs the panic/alloc certificates.
//!
//! Like its three siblings, the tool burns findings to zero: fix the
//! flow (checked conversion, destructuring `let`, capacity clamp) or
//! justify the site with `TAINT-OK(reason)` on the line or the comment
//! block above it. Findings ride the shared `lint-baseline.json` ratchet
//! under rule `taint-flow`; `--deny-stale` arms the shrink direction.

use std::process::ExitCode;

use crate::baseline::Ratchet;
use crate::callgraph::{body_tokens, CallGraph};
use crate::json::Json;
use crate::lex::TokenKind;
use crate::report::{self, print_stale, to_f64, Format, Site};
use crate::rules::{statement_around, tok, Finding, Rule, Summary};
use crate::scope::SourceFile;

const USAGE: &str = "\
usage: cargo xtask taint [options]

Certifies that no untrusted input (snapshot bytes, CLI file paths)
reaches a dangerous sink (indexing, capacity, unchecked arithmetic,
id constructors) without crossing a sanitizer, over the typed call
graph of the snapshot + serving perimeter.

options:
  --format <human|json>   report format (default human)
  --list-sources          print the source classes and sanitizer registry
  --update-baseline       rewrite lint-baseline.json from current findings
  --deny-stale            fail when baselined findings no longer fire
  -h, --help              this help";

/// One class of untrusted-input entry points: named fns (resolved like
/// entry specs, hard error on rot) plus `::`-path token patterns matched
/// inside certified bodies.
pub struct SourceClass {
    pub name: &'static str,
    /// `Type::method` / free-fn specs; each must resolve.
    pub specs: &'static [&'static str],
    /// Call-path patterns (`fs::read`, `from_le_bytes`) seeding the
    /// containing fn.
    pub patterns: &'static [&'static str],
    /// Whether the class may match nothing — only for classes reserved
    /// for code that does not exist yet (the network front-end).
    pub allow_empty: bool,
}

/// The registered source classes. Order is report order.
pub const SOURCE_CLASSES: [SourceClass; 3] = [
    SourceClass {
        name: "snapshot-bytes",
        specs: &[
            "SnapshotFile::u32s",
            "SnapshotFile::u64s",
            "SnapshotFile::f64s",
            "SnapshotFile::bytes",
            "SnapshotFile::u32s_opt",
            "SnapshotFile::section",
            "SnapshotFile::section_at",
            "SnapshotFile::sections",
        ],
        patterns: &["from_le_bytes"],
        allow_empty: false,
    },
    SourceClass {
        name: "cli-path",
        specs: &[],
        patterns: &["fs::read", "fs::read_to_string"],
        allow_empty: false,
    },
    SourceClass {
        name: "network",
        specs: &[],
        patterns: &[],
        // Reserved: the kspin-server frame parser registers its specs
        // here before ROADMAP item 1 ships; until then the class is
        // intentionally empty.
        allow_empty: true,
    },
];

/// The sanitizer registry: the flood never enters these fns, so each
/// body is part of the hand-audited validation boundary. Every spec must
/// resolve — a renamed sanitizer silently *widens* the tainted set, the
/// unsound direction, so rot is a hard error.
pub const SANITIZERS: [&str; 15] = [
    // Structural validation: checksums, offsets, canonical layout.
    "SnapshotFile::validate",
    // Checked-extraction helpers of the core decode layer.
    "Pool::take",
    "Pool::take1",
    "Pool::finish",
    "decoded_usize",
    "decoded_bools",
    "len_field",
    // Re-validating constructors: decoded parts in, structured
    // SnapshotError/String out.
    "Graph::from_csr_parts",
    "MortonSpace::from_parts",
    "AdjacencyGraph::from_flat",
    "ApproxNvd::from_snapshot_parts",
    "KspinIndex::from_snapshot_parts",
    "AltIndex::from_flat_parts",
    "ContractionHierarchy::from_flat_parts",
    "Relabeling::try_from_order",
];

/// Capacity-shaped sink methods: a decoded length reaching one of these
/// is an allocation-amplification primitive.
const CAPACITY_SINKS: [&str; 5] = [
    "with_capacity",
    "reserve",
    "reserve_exact",
    "resize",
    "resize_with",
];

/// Id-typed tuple constructors: wrapping a decoded integer into a typed
/// handle launders it past every downstream bounds contract.
const ID_CTORS: [&str; 3] = ["VertexId", "ObjectId", "TermId"];

/// Identifiers that may precede `[` without ending an expression. The
/// panic classifier's list plus `let` (slice-destructuring `let [a, b] =`
/// is a *pattern*, and the checked alternative this tool pushes decode
/// code toward).
const KEYWORDS_BEFORE_BRACKET: [&str; 7] = ["return", "in", "else", "match", "mut", "dyn", "let"];

/// Identifier keywords that cannot be the left operand of arithmetic.
const NON_OPERAND_KEYWORDS: [&str; 15] = [
    "return", "in", "else", "match", "if", "while", "let", "mut", "as", "break", "continue",
    "move", "loop", "unsafe", "ref",
];

/// The full result of one taint run, kept for reporting and self-tests.
#[derive(Debug)]
pub struct TaintAnalysis {
    pub graph: CallGraph,
    /// `tainted[i]` = index into the class table of the source class that
    /// reached item `i`; `None` = clean.
    pub tainted: Vec<Option<usize>>,
    /// BFS predecessor for chain rendering; `Some(i)` marks a seed.
    pub parent: Vec<Option<usize>>,
    /// Class names, parallel to the `tainted` indices.
    pub class_names: Vec<String>,
    /// Seeded fns per class (fns that call a source / match a pattern).
    pub seeds_per_class: Vec<usize>,
    /// Resolved sanitizer fn count.
    pub sanitizer_fns: usize,
    /// Unjustified findings under [`Rule::Taint`].
    pub summary: Summary,
}

impl TaintAnalysis {
    /// The source-to-sink call chain ending at item `i`, source first.
    pub fn chain(&self, mut i: usize) -> Vec<usize> {
        let mut chain = vec![i];
        while let Some(p) = self.parent[i] {
            if p == i {
                break;
            }
            chain.push(p);
            i = p;
        }
        chain.reverse();
        chain
    }

    /// Index of the certified item named `name` (bare or `Type::name`),
    /// for the self-tests and the fuzz-agreement regression test.
    #[cfg(test)]
    pub fn item(&self, spec: &str) -> Option<usize> {
        self.graph.resolve_entry(spec).into_iter().next()
    }
}

/// Whether the ident at code index `k` completes `pattern` (a
/// `::`-separated call path whose last segment is called): the ident
/// matches the last segment, is followed by `(`, and each preceding
/// segment matches backwards through `::`.
fn pattern_at(file: &SourceFile, k: usize, pattern: &str) -> bool {
    let segs: Vec<&str> = pattern.split("::").collect();
    let t = tok(file, k);
    if t.kind != TokenKind::Ident || t.text != segs[segs.len() - 1] {
        return false;
    }
    if !(k + 1 < file.code.len() && tok(file, k + 1).is_punct("(")) {
        return false;
    }
    let mut j = k;
    for seg in segs.iter().rev().skip(1) {
        if j < 2 || !tok(file, j - 1).is_punct("::") {
            return false;
        }
        let q = tok(file, j - 2);
        if q.kind != TokenKind::Ident || q.text != *seg {
            return false;
        }
        j -= 2;
    }
    true
}

/// Classifies the sink sites in the (tainted) body of `items[idx]`.
pub fn taint_sinks(file: &SourceFile, graph: &CallGraph, idx: usize) -> Vec<Site> {
    let mut out = Vec::new();
    for k in body_tokens(file, &graph.items, idx) {
        let t = tok(file, k);
        let prev = |n: usize| (k >= n).then(|| tok(file, k - n));
        let next = |n: usize| (k + n < file.code.len()).then(|| tok(file, k + n));
        let site = |what: String| Site {
            line: t.line,
            col: t.col,
            what,
        };
        match t.kind {
            TokenKind::Punct if t.text == "[" => {
                // An index *expression*: the previous token ends an
                // expression (same shape test as the panic classifier;
                // `let [a, b] =` destructuring is a pattern, not a sink).
                let indexes = prev(1).is_some_and(|p| {
                    matches!(p.kind, TokenKind::Ident | TokenKind::NumLit)
                        && !KEYWORDS_BEFORE_BRACKET.contains(&p.text.as_str())
                        || p.is_punct(")")
                        || p.is_punct("]")
                });
                if indexes {
                    out.push(site("slice index on decoded data".to_string()));
                }
            }
            TokenKind::Punct if matches!(t.text.as_str(), "+" | "-" | "*" | "+=" | "-=" | "*=") => {
                let operand = prev(1).is_some_and(|p| {
                    matches!(p.kind, TokenKind::Ident | TokenKind::NumLit)
                        && !NON_OPERAND_KEYWORDS.contains(&p.text.as_str())
                        || p.is_punct(")")
                        || p.is_punct("]")
                });
                if operand && !statement_is_checked_or_float(file, k) {
                    out.push(site(format!(
                        "unchecked `{}` arithmetic on decoded value",
                        t.text
                    )));
                }
            }
            TokenKind::Ident
                if (t.text == "get_unchecked" || t.text == "get_unchecked_mut")
                    && prev(1).is_some_and(|p| p.is_punct("."))
                    && next(1).is_some_and(|n| n.is_punct("(")) =>
            {
                out.push(site(format!("{}() on decoded data", t.text)));
            }
            // A literal capacity cannot be attacker-controlled, so a lone
            // numeric-literal argument clears the sink.
            TokenKind::Ident
                if CAPACITY_SINKS.contains(&t.text.as_str())
                    && next(1).is_some_and(|n| n.is_punct("("))
                    && !(next(2).is_some_and(|a| a.kind == TokenKind::NumLit)
                        && next(3).is_some_and(|c| c.is_punct(")"))) =>
            {
                out.push(site(format!(
                    "allocation capacity via {} from decoded value",
                    t.text
                )));
            }
            TokenKind::Ident
                if ID_CTORS.contains(&t.text.as_str())
                    && next(1).is_some_and(|n| n.is_punct("(")) =>
            {
                out.push(site(format!(
                    "id-typed constructor {}(..) on decoded value",
                    t.text
                )));
            }
            _ => {}
        }
    }
    out
}

/// Whether the statement around code index `k` shows float evidence (its
/// arithmetic is weight math, not offset math) or already goes through a
/// `checked_`/`saturating_`/`wrapping_` helper.
fn statement_is_checked_or_float(file: &SourceFile, k: usize) -> bool {
    let (start, end) = statement_around(file, k);
    for j in start..end {
        let t = tok(file, j);
        match t.kind {
            TokenKind::Ident
                if t.text == "f64"
                    || t.text == "f32"
                    || t.text.ends_with("_f64")
                    || t.text.ends_with("_f32")
                    || t.text.starts_with("checked_")
                    || t.text.starts_with("saturating_")
                    || t.text.starts_with("wrapping_") =>
            {
                return true;
            }
            TokenKind::NumLit if is_float_literal(&t.text) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Whether a numeric literal is a float: a decimal point, an `f32`/`f64`
/// suffix, or a scientific-notation exponent (`1e3`). Radix-prefixed
/// literals (`0x1E3`) are always integers — their `e`/`E` is a hex digit
/// — and the `e` of an integer suffix (`3usize`) never follows a digit.
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    if text.contains('.') || text.ends_with("f64") || text.ends_with("f32") {
        return true;
    }
    let b = text.as_bytes();
    b.iter().enumerate().any(|(i, &c)| {
        (c == b'e' || c == b'E')
            && i > 0
            && b[i - 1].is_ascii_digit()
            && b.get(i + 1)
                .is_some_and(|&n| n.is_ascii_digit() || n == b'+' || n == b'-')
    })
}

/// Runs the taint analysis over `files` with the registered source
/// classes and sanitizers. Spec rot (a source or sanitizer that resolves
/// to nothing) is a hard error in both directions: a lost source narrows
/// the certificate, a lost sanitizer widens the tainted set.
pub fn certify(files: Vec<SourceFile>) -> Result<TaintAnalysis, String> {
    certify_with(files, &SOURCE_CLASSES, &SANITIZERS)
}

/// [`certify`] with explicit registries, for fixture self-tests.
pub fn certify_with(
    files: Vec<SourceFile>,
    classes: &[SourceClass],
    sanitizers: &[&str],
) -> Result<TaintAnalysis, String> {
    let graph = CallGraph::build(&files);
    let n = graph.items.len();

    // Sanitizer barrier set: every spec must resolve.
    let mut barrier = vec![false; n];
    let mut missing = Vec::new();
    let mut sanitizer_fns = 0usize;
    for spec in sanitizers {
        let resolved = graph.resolve_entry(spec);
        if resolved.is_empty() {
            missing.push((*spec).to_string());
        }
        sanitizer_fns += resolved.len();
        for i in resolved {
            barrier[i] = true;
        }
    }
    if !missing.is_empty() {
        return Err(format!(
            "sanitizer spec(s) resolved to no certified fn — renamed or removed? {}",
            missing.join(", ")
        ));
    }

    // Seed the flood: source fns themselves, fns that call a source
    // (return-value taint), and fns matching a source token pattern.
    let mut tainted: Vec<Option<usize>> = vec![None; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seeds_per_class = vec![0usize; classes.len()];
    let mut queue = std::collections::VecDeque::new();
    let mut seed = |i: usize,
                    c: usize,
                    p: usize,
                    tainted: &mut Vec<Option<usize>>,
                    parent: &mut Vec<Option<usize>>,
                    queue: &mut std::collections::VecDeque<usize>| {
        if !barrier[i] && tainted[i].is_none() && graph.items[i].certified() {
            tainted[i] = Some(c);
            parent[i] = Some(p);
            seeds_per_class[c] += 1;
            queue.push_back(i);
        }
    };
    for (c, class) in classes.iter().enumerate() {
        let mut missing = Vec::new();
        let mut source_items = Vec::new();
        for spec in class.specs {
            let resolved = graph.resolve_entry(spec);
            if resolved.is_empty() {
                missing.push((*spec).to_string());
            }
            source_items.extend(resolved);
        }
        if !missing.is_empty() {
            return Err(format!(
                "source spec(s) of class `{}` resolved to no certified fn — renamed or removed? {}",
                class.name,
                missing.join(", ")
            ));
        }
        let mut class_hit = !source_items.is_empty();
        // The source fns decode raw bytes themselves.
        for &s in &source_items {
            seed(s, c, s, &mut tainted, &mut parent, &mut queue);
        }
        for i in 0..n {
            if !graph.items[i].certified() || barrier[i] {
                continue;
            }
            // Return-value taint: calling a source taints the caller.
            if let Some(&s) = graph.typed_edges[i]
                .iter()
                .find(|t| source_items.contains(t))
            {
                seed(i, c, s, &mut tainted, &mut parent, &mut queue);
            }
            // Pattern sources (`fs::read`, `from_le_bytes`).
            let file = &files[graph.items[i].file_idx];
            let hit = body_tokens(file, &graph.items, i)
                .into_iter()
                .any(|k| class.patterns.iter().any(|p| pattern_at(file, k, p)));
            if hit {
                class_hit = true;
                seed(i, c, i, &mut tainted, &mut parent, &mut queue);
            }
        }
        if !class_hit && !class.allow_empty {
            return Err(format!(
                "source class `{}` matched nothing — sources moved or renamed?",
                class.name
            ));
        }
    }

    // Forward flood over the typed edges: callees receive tainted
    // arguments. Sanitizers are barriers; their bodies are the audited
    // validation boundary.
    while let Some(i) = queue.pop_front() {
        let c = tainted[i].expect("queued items are tainted");
        for &j in &graph.typed_edges[i] {
            if tainted[j].is_none() && !barrier[j] && graph.items[j].certified() {
                tainted[j] = Some(c);
                parent[j] = Some(i);
                queue.push_back(j);
            }
        }
    }

    // Classify sinks in every tainted body.
    let mut analysis = TaintAnalysis {
        graph,
        tainted,
        parent,
        class_names: classes.iter().map(|c| c.name.to_string()).collect(),
        seeds_per_class,
        sanitizer_fns,
        summary: Summary {
            files_scanned: files.len(),
            ..Summary::default()
        },
    };
    let mut findings = Vec::new();
    for i in 0..n {
        let Some(c) = analysis.tainted[i] else {
            continue;
        };
        let file = &files[analysis.graph.items[i].file_idx];
        for site in taint_sinks(file, &analysis.graph, i) {
            if file.taint_justified(site.line) {
                *analysis
                    .summary
                    .justified
                    .entry(Rule::Taint.key())
                    .or_insert(0) += 1;
                continue;
            }
            let chain: Vec<String> = analysis
                .chain(i)
                .into_iter()
                .map(|j| analysis.graph.items[j].qualified())
                .collect();
            findings.push(Finding {
                rule: Rule::Taint,
                file: file.rel.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "{} [source: {}]; via {}",
                    site.what,
                    classes[c].name,
                    chain.join(" → ")
                ),
                snippet: file.snippet(site.line).to_string(),
            });
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col)
            .cmp(&(&b.file, b.line, b.col))
            .then_with(|| a.message.cmp(&b.message))
    });
    analysis.summary.findings = findings;
    Ok(analysis)
}

struct Options {
    format: Format,
    list_sources: bool,
    update_baseline: bool,
    deny_stale: bool,
    help: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Human,
        list_sources: false,
        update_baseline: false,
        deny_stale: false,
        help: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let value = it.next().ok_or("--format needs a value: human or json")?;
                opts.format = report::parse_format(value)?;
            }
            "--list-sources" => opts.list_sources = true,
            "--update-baseline" => opts.update_baseline = true,
            "--deny-stale" => opts.deny_stale = true,
            "-h" | "--help" => opts.help = true,
            other => {
                if let Some(value) = other.strip_prefix("--format=") {
                    opts.format = report::parse_format(value)?;
                } else {
                    return Err(format!("unknown argument `{other}`"));
                }
            }
        }
    }
    Ok(opts)
}

/// CLI entry: `cargo xtask taint [options]`.
pub fn run(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if opts.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if opts.list_sources {
        for class in &SOURCE_CLASSES {
            for spec in class.specs {
                println!("{:<16} {spec}", class.name);
            }
            for pattern in class.patterns {
                println!("{:<16} pattern {pattern}(", class.name);
            }
            if class.specs.is_empty() && class.patterns.is_empty() {
                println!("{:<16} (reserved — registers nothing yet)", class.name);
            }
        }
        for s in SANITIZERS {
            println!("sanitizer        {s}");
        }
        return ExitCode::SUCCESS;
    }

    let files = report::load_files(&crate::entrypoints::TAINT_DIRS);
    let analysis = match certify(files) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let classes = analysis
        .class_names
        .iter()
        .zip(&analysis.seeds_per_class)
        .map(|(name, &n)| (name.clone(), Json::Num(to_f64(n))))
        .collect();
    let extras = vec![
        (
            "tainted_fns".to_string(),
            Json::Num(to_f64(analysis.tainted.iter().flatten().count())),
        ),
        (
            "sanitizer_fns".to_string(),
            Json::Num(to_f64(analysis.sanitizer_fns)),
        ),
        ("source_classes".to_string(), Json::Obj(classes)),
    ];
    report::finish(
        "cargo-xtask-taint",
        &[Rule::Taint.key()],
        &analysis.summary,
        opts.update_baseline,
        opts.deny_stale,
        opts.format,
        extras,
        |ratchet| print_report(&analysis, ratchet),
    )
}

fn print_report(a: &TaintAnalysis, ratchet: &Ratchet) {
    let certified = a.graph.items.iter().filter(|i| i.certified()).count();
    let tainted = a.tainted.iter().flatten().count();
    println!(
        "cargo xtask taint — {} files, {} certified fns, {} tainted via {} source class(es), {} sanitizer barrier fn(s)",
        a.summary.files_scanned,
        certified,
        tainted,
        a.class_names.len(),
        a.sanitizer_fns
    );
    for (name, &seeds) in a.class_names.iter().zip(&a.seeds_per_class) {
        if seeds == 0 {
            println!("  source class {name:<16} → no sources (reserved)");
        } else {
            println!("  source class {name:<16} → {seeds} seeded fn(s)");
        }
    }
    let justified = a
        .summary
        .justified
        .get(Rule::Taint.key())
        .copied()
        .unwrap_or(0);
    println!(
        "  {} new finding(s), {} baselined, {} justified via TAINT-OK",
        ratchet.new.len(),
        ratchet.baselined.len(),
        justified
    );
    if !ratchet.new.is_empty() {
        println!();
        for f in &ratchet.new {
            println!("{f}");
            if !f.snippet.is_empty() {
                println!("    {}", f.snippet);
            }
        }
        println!("\n{} unjustified source→sink flow(s)", ratchet.new.len());
    }
    print_stale(ratchet);
}

// ---------------------------------------------------------------------------
// Self-tests: planted source→sink chains, sanitizer barriers, the
// justification grammar end-to-end, registry-rot errors, and the live
// workspace certificate (including agreement with the snapshot fuzz
// suite's corruption coverage).
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{Baseline, BaselineEntry};
    use crate::lint::workspace_root;
    use crate::report::BASELINE_FILE;

    const BYTES_ONLY: [SourceClass; 1] = [SourceClass {
        name: "snapshot-bytes",
        specs: &["SnapshotFile::u32s"],
        patterns: &[],
        allow_empty: false,
    }];

    fn analyze(src: &str, classes: &[SourceClass], sanitizers: &[&str]) -> TaintAnalysis {
        certify_with(
            vec![SourceFile::from_source("fixture.rs", src)],
            classes,
            sanitizers,
        )
        .expect("fixture registries resolve")
    }

    #[test]
    fn tainted_chain_is_reported_with_its_full_call_path() {
        let src = "\
impl SnapshotFile {
    fn u32s(&self) -> Vec<u32> { Vec::new() }
}
fn decode(f: &SnapshotFile) -> u32 {
    let lens = f.u32s();
    build(&lens)
}
fn build(lens: &[u32]) -> u32 {
    lens[0]
}
fn serving(xs: &[u32]) -> u32 {
    xs[1]
}
";
        let a = analyze(src, &BYTES_ONLY, &[]);
        assert!(a.tainted[a.item("decode").unwrap()].is_some());
        assert!(a.tainted[a.item("build").unwrap()].is_some());
        assert!(
            a.tainted[a.item("serving").unwrap()].is_none(),
            "no flow reaches serving"
        );
        assert_eq!(a.summary.findings.len(), 1, "{:?}", a.summary.findings);
        let f = &a.summary.findings[0];
        assert_eq!((f.line, f.col), (9, 9));
        assert!(
            f.message
                .contains("via SnapshotFile::u32s → decode → build"),
            "{}",
            f.message
        );
        assert!(f.message.contains("[source: snapshot-bytes]"));
        assert_eq!(f.snippet, "lens[0]");
    }

    #[test]
    fn sanitizer_barriers_stop_the_flood_and_their_bodies_are_exempt() {
        let src = "\
impl SnapshotFile {
    fn u32s(&self) -> Vec<u32> { Vec::new() }
}
impl Graph {
    fn from_csr_parts(offsets: &[u32]) -> Graph {
        Graph { n: offsets[0] }
    }
}
fn decode(f: &SnapshotFile) -> Graph {
    let offsets = f.u32s();
    Graph::from_csr_parts(&offsets)
}
";
        let a = analyze(src, &BYTES_ONLY, &["Graph::from_csr_parts"]);
        assert!(a.tainted[a.item("decode").unwrap()].is_some());
        assert!(
            a.tainted[a.item("Graph::from_csr_parts").unwrap()].is_none(),
            "the sanitizer is a barrier"
        );
        assert!(
            a.summary.findings.is_empty(),
            "the sink inside the sanitizer body is hand-audited: {:?}",
            a.summary.findings
        );
    }

    #[test]
    fn taint_ok_justifies_a_site_and_reasonless_markers_do_not() {
        let src = "\
impl SnapshotFile {
    fn u32s(&self) -> Vec<u32> { Vec::new() }
}
fn decode(f: &SnapshotFile) -> u32 {
    let v = f.u32s();
    // TAINT-OK(v.len() == 3 verified by the caller's section check)
    let a = v[0];
    // TAINT-OK()
    let b = v[1];
    a + b
}
";
        let a = analyze(src, &BYTES_ONLY, &[]);
        assert_eq!(a.summary.justified.get(Rule::Taint.key()), Some(&1));
        // v[1] (reason-less marker) and the `+` both remain findings.
        assert_eq!(a.summary.findings.len(), 2, "{:?}", a.summary.findings);
        assert!(a.summary.findings[0].message.contains("slice index"));
        assert!(a.summary.findings[1]
            .message
            .contains("unchecked `+` arithmetic"));
    }

    #[test]
    fn pattern_sources_seed_their_class() {
        let classes: [SourceClass; 1] = [SourceClass {
            name: "cli-path",
            specs: &[],
            patterns: &["fs::read"],
            allow_empty: false,
        }];
        let src = "\
fn cmd_load(path: &str) -> u8 {
    let bytes = std::fs::read(path).unwrap_or_default();
    parse(&bytes)
}
fn parse(b: &[u8]) -> u8 {
    b[0]
}
fn elsewhere(r: &Reader) {
    r.read();
}
";
        let a = analyze(src, &classes, &[]);
        assert!(a.tainted[a.item("cmd_load").unwrap()].is_some());
        assert!(a.tainted[a.item("parse").unwrap()].is_some());
        assert!(
            a.tainted[a.item("elsewhere").unwrap()].is_none(),
            "a `.read()` method call is not the fs::read path pattern"
        );
        assert_eq!(a.summary.findings.len(), 1);
        assert!(a.summary.findings[0].message.contains("[source: cli-path]"));
    }

    #[test]
    fn capacity_id_ctor_and_unchecked_access_sinks_classify() {
        let src = "\
impl SnapshotFile {
    fn u32s(&self) -> Vec<u32> { Vec::new() }
}
fn decode(f: &SnapshotFile) -> VertexId {
    let n = f.u32s();
    let len = n.first().copied().unwrap_or(0);
    let mut v = Vec::with_capacity(len);
    let w = Vec::with_capacity(16);
    v.reserve(len);
    let x = unsafe { n.get_unchecked(1) };
    VertexId(len)
}
";
        let a = analyze(src, &BYTES_ONLY, &[]);
        let whats: Vec<&str> = a
            .summary
            .findings
            .iter()
            .map(|f| f.message.split(" [source:").next().unwrap())
            .collect();
        assert_eq!(
            whats,
            vec![
                "allocation capacity via with_capacity from decoded value",
                "allocation capacity via reserve from decoded value",
                "get_unchecked() on decoded data",
                "id-typed constructor VertexId(..) on decoded value",
            ],
            "literal with_capacity(16) must not classify"
        );
    }

    #[test]
    fn checked_and_float_arithmetic_is_not_a_sink() {
        let src = "\
impl SnapshotFile {
    fn u32s(&self) -> Vec<u32> { Vec::new() }
}
fn decode(f: &SnapshotFile) -> u32 {
    let v = f.u32s();
    let n = v.len().checked_add(1).unwrap_or(0);
    let w = 0.5 * 3.0;
    let x = n.saturating_mul(2);
    let ms = t.as_secs_f64() * 1e3;
    let arr = [0u32; 4];
    n as u32
}
";
        let a = analyze(src, &BYTES_ONLY, &[]);
        assert!(a.summary.findings.is_empty(), "{:?}", a.summary.findings);
        assert!(is_float_literal("1e3") && is_float_literal("2.5"));
        assert!(!is_float_literal("0x1E3") && !is_float_literal("3usize"));
    }

    #[test]
    fn registry_rot_is_a_hard_error_and_reserved_classes_may_be_empty() {
        let src = "fn f() {}";
        let files = || vec![SourceFile::from_source("fixture.rs", src)];
        let gone: [SourceClass; 1] = [SourceClass {
            name: "snapshot-bytes",
            specs: &["SnapshotFile::gone"],
            patterns: &[],
            allow_empty: false,
        }];
        let err = certify_with(files(), &gone, &[]).unwrap_err();
        assert!(err.contains("source spec"), "{err}");
        let silent: [SourceClass; 1] = [SourceClass {
            name: "cli-path",
            specs: &[],
            patterns: &["fs::read"],
            allow_empty: false,
        }];
        let err = certify_with(files(), &silent, &[]).unwrap_err();
        assert!(err.contains("matched nothing"), "{err}");
        let reserved: [SourceClass; 1] = [SourceClass {
            name: "network",
            specs: &[],
            patterns: &[],
            allow_empty: true,
        }];
        assert!(certify_with(files(), &reserved, &[]).is_ok());
        let err = certify_with(files(), &reserved, &["Gone::sanitize"]).unwrap_err();
        assert!(err.contains("sanitizer spec"), "{err}");
    }

    #[test]
    fn removed_taint_ok_sites_surface_as_stale_baseline_entries() {
        let src = "\
impl SnapshotFile {
    fn u32s(&self) -> Vec<u32> { Vec::new() }
}
fn decode(f: &SnapshotFile) -> u32 {
    let v = f.u32s();
    v[0]
}
";
        let a = analyze(src, &BYTES_ONLY, &[]);
        assert_eq!(a.summary.findings.len(), 1);
        let entry = |file: &str, line: usize| BaselineEntry {
            rule: Rule::Taint.key().to_string(),
            file: file.to_string(),
            line,
            reason: "reviewed".to_string(),
        };
        let baseline = Baseline {
            note: String::new(),
            entries: vec![
                entry("fixture.rs", a.summary.findings[0].line),
                entry("fixture.rs", 999), // the flow this entry grandfathered was fixed
            ],
        };
        let ratchet = baseline.apply(&a.summary.findings);
        assert!(ratchet.new.is_empty());
        assert_eq!(ratchet.baselined.len(), 1);
        assert_eq!(
            ratchet.stale.len(),
            1,
            "a justification whose flow no longer fires must be reported stale"
        );
    }

    // -- live workspace ----------------------------------------------------

    fn live() -> TaintAnalysis {
        certify(report::load_files(&crate::entrypoints::TAINT_DIRS))
            .expect("live source/sanitizer registries resolve")
    }

    #[test]
    fn live_workspace_flows_are_sanitized_or_justified() {
        let a = live();
        let baseline = Baseline::load(&workspace_root().join(BASELINE_FILE)).expect("baseline");
        let taint_entries: Vec<_> = baseline
            .entries
            .into_iter()
            .filter(|e| e.rule == Rule::Taint.key())
            .collect();
        let ratchet = Baseline {
            note: String::new(),
            entries: taint_entries,
        }
        .apply(&a.summary.findings);
        assert!(
            ratchet.new.is_empty(),
            "unjustified source→sink flows:\n{}",
            ratchet
                .new
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            ratchet.stale.is_empty(),
            "stale taint baseline entries: {:?}",
            ratchet.stale
        );
    }

    /// Fuzz-agreement regression (the static certificate must cover what
    /// `tests/snapshot_roundtrip.rs` exercises dynamically): every decode
    /// fn a corrupted snapshot byte can reach — all section decoders and
    /// the facade loader — is certified tainted, so its sinks were either
    /// fixed or carry a reviewed TAINT-OK.
    #[test]
    fn every_fuzzer_corruptible_decode_path_is_certified_tainted() {
        let a = live();
        for spec in [
            "decode_graph",
            "decode_corpus",
            "decode_vocab",
            "decode_one_nvd",
            "decode_index",
            "decode_alt",
            "decode_ch",
            "decode_relabeling",
            "decode_hierarchy",
            "KspinSystem::load_snapshot",
            "describe_sections",
        ] {
            let idx = a
                .item(spec)
                .unwrap_or_else(|| panic!("decode fn `{spec}` missing from the perimeter"));
            assert!(
                a.tainted[idx].is_some(),
                "`{spec}` decodes snapshot bytes but the flood never reaches it — \
                 a source spec or call edge rotted"
            );
        }
        // The serving side stays clean: taint must not leak across the
        // sanitizer constructors into the query processors.
        for spec in crate::entrypoints::STEADY_ENTRIES {
            if spec == "SnapshotFile::validate" {
                continue; // the validator is a sanitizer, not a serving path
            }
            for idx in a.graph.resolve_entry(spec) {
                assert!(
                    a.tainted[idx].is_none(),
                    "serving entry `{spec}` is tainted — a sanitizer boundary leaked"
                );
            }
        }
    }
}
