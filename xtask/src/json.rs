//! A minimal JSON value type with parser and pretty-printer.
//!
//! The workspace vendors no serialization crates, so the lint engine's
//! `--format json` report and the `lint-baseline.json` ratchet use this
//! dependency-free implementation. It supports exactly the JSON the lint
//! tooling emits and consumes: objects (insertion-ordered), arrays,
//! strings with standard escapes, integers/floats, booleans and null.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key-value pairs in insertion order (stable output for diffs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as usize, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry a byte offset for context.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        src,
        i: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.i != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.i));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    src: &'a str,
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> u8 {
        self.bytes.get(self.i).copied().unwrap_or(0)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), b' ' | b'\t' | b'\r' | b'\n') {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(c), self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.src[self.i..].starts_with(word) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == b'-' {
            self.i += 1;
        }
        while matches!(self.peek(), b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            self.i += 1;
        }
        self.src[start..self.i]
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                0 => return Err("unterminated string".into()),
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.i))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.src[self.i..];
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == b']' {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_document() {
        let doc = Json::Obj(vec![
            ("tool".into(), Json::Str("cargo-xtask-lint".into())),
            ("files".into(), Json::Num(42.0)),
            (
                "findings".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("rule".into(), Json::Str("no-alloc-in-hot-loop".into())),
                    ("line".into(), Json::Num(7.0)),
                    ("snippet".into(), Json::Str("let v = \"x\\ny\";".into())),
                    ("baselined".into(), Json::Bool(false)),
                ])]),
            ),
            ("stale".into(), Json::Arr(vec![])),
            ("note".into(), Json::Null),
        ]);
        let text = doc.render();
        let back = parse(&text).expect("rendered JSON must parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "a\"b\\c\ndé", "n": -1.5}"#).expect("parses");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\ndé"));
        assert_eq!(v.get("n"), Some(&Json::Num(-1.5)));
    }

    #[test]
    fn accessors_see_object_shape() {
        let v = parse(r#"{"entries": [{"line": 324}]}"#).expect("parses");
        let entries = v.get("entries").and_then(Json::as_arr).expect("array");
        assert_eq!(entries[0].get("line").and_then(Json::as_usize), Some(324));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("nulll").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
